// amdgcnn_cli — run any dataset / model combination from the command line.
//
//   amdgcnn_cli --dataset primekg|biokg|wordnet|cora
//               [--model am|vanilla]        (default am)
//               [--epochs N]                (default 10)
//               [--lr X] [--hidden N] [--sort-k N]
//               [--train N] [--test N]      (link budgets)
//               [--seed S] [--save FILE] [--load FILE]
//               [--dtype f32|f64]           (default f32)
//               [--tune]                    (Bayesian-optimize HPs first)
//
// Prints dataset statistics, the training curve and final AUC / AP /
// accuracy; optionally saves or loads model weights.
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/experiment.h"
#include "datasets/biokg_sim.h"
#include "datasets/cora_sim.h"
#include "datasets/primekg_sim.h"
#include "datasets/wordnet_sim.h"
#include "models/serialize.h"
#include "util/table.h"

using namespace amdgcnn;

namespace {

struct CliOptions {
  std::string dataset = "primekg";
  std::string model = "am";
  std::int64_t epochs = 10;
  double lr = 0.0;          // 0 = dataset default
  std::int64_t hidden = 0;  // 0 = dataset default
  std::int64_t sort_k = 0;
  std::int64_t train = 0;
  std::int64_t test = 0;
  std::uint64_t seed = 17;
  std::string save_path;
  std::string load_path;
  // f32 is the CLI default: halves activation/parameter bandwidth on the
  // matmul-bound hot path at equal AUC (see EXPERIMENTS.md); --dtype f64
  // restores the double-precision pipeline.
  std::string dtype = "f32";
  bool tune = false;
};

ag::Dtype parse_dtype(const std::string& name) {
  if (name == "f32") return ag::Dtype::f32;
  if (name == "f64") return ag::Dtype::f64;
  throw std::runtime_error("--dtype must be f32 or f64, got: " + name);
}

void usage() {
  std::cerr << "usage: amdgcnn_cli --dataset primekg|biokg|wordnet|cora\n"
               "  [--model am|vanilla] [--epochs N] [--lr X] [--hidden N]\n"
               "  [--sort-k N] [--train N] [--test N] [--seed S]\n"
               "  [--save FILE] [--load FILE] [--dtype f32|f64] [--tune]\n";
}

bool parse(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--dataset") opts.dataset = next();
    else if (arg == "--model") opts.model = next();
    else if (arg == "--epochs") opts.epochs = std::atoll(next());
    else if (arg == "--lr") opts.lr = std::atof(next());
    else if (arg == "--hidden") opts.hidden = std::atoll(next());
    else if (arg == "--sort-k") opts.sort_k = std::atoll(next());
    else if (arg == "--train") opts.train = std::atoll(next());
    else if (arg == "--test") opts.test = std::atoll(next());
    else if (arg == "--seed") opts.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--save") opts.save_path = next();
    else if (arg == "--load") opts.load_path = next();
    else if (arg == "--dtype") opts.dtype = next();
    else if (arg == "--tune") opts.tune = true;
    else if (arg == "--help" || arg == "-h") return false;
    else throw std::runtime_error("unknown flag: " + arg);
  }
  return true;
}

datasets::LinkDataset build_dataset(const CliOptions& opts) {
  if (opts.dataset == "primekg") {
    datasets::PrimeKGSimOptions o;
    o.scale = 0.5;
    o.num_train = opts.train ? opts.train : 800;
    o.num_test = opts.test ? opts.test : 200;
    return datasets::make_primekg_sim(o);
  }
  if (opts.dataset == "biokg") {
    datasets::BioKGSimOptions o;
    o.scale = 0.5;
    o.num_train = opts.train ? opts.train : 650;
    o.num_test = opts.test ? opts.test : 200;
    return datasets::make_biokg_sim(o);
  }
  if (opts.dataset == "wordnet") {
    datasets::WordNetSimOptions o;
    o.num_nodes = 2000;
    o.num_train = opts.train ? opts.train : 1300;
    o.num_test = opts.test ? opts.test : 300;
    return datasets::make_wordnet_sim(o);
  }
  if (opts.dataset == "cora") {
    datasets::CoraSimOptions o;
    o.num_pos_links = opts.train ? opts.train / 2 + (opts.test ? opts.test : 200) / 2
                                 : 500;
    return datasets::make_cora_sim(o);
  }
  throw std::runtime_error("unknown dataset: " + opts.dataset);
}

hpo::HyperParams dataset_defaults(const std::string& dataset) {
  hpo::HyperParams hp = core::cora_tuned_defaults();
  if (dataset == "primekg") {
    hp.learning_rate = 3e-3;
    hp.hidden_dim = 32;
    hp.sort_k = 24;
  } else if (dataset == "biokg") {
    hp.learning_rate = 3e-3;
    hp.hidden_dim = 64;
  } else if (dataset == "wordnet") {
    hp.learning_rate = 5e-3;
    hp.hidden_dim = 64;
    hp.sort_k = 20;
  }
  return hp;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  try {
    if (!parse(argc, argv, opts)) {
      usage();
      return 0;
    }

    std::cout << "building dataset '" << opts.dataset << "'...\n";
    auto data = build_dataset(opts);
    std::cout << "  " << data.graph.num_nodes() << " nodes, "
              << data.graph.num_edges() << " edges, " << data.num_classes
              << " classes, " << data.train_links.size() << " train / "
              << data.test_links.size() << " test links\n";

    const ag::Dtype dtype = parse_dtype(opts.dtype);
    auto seal_ds = core::prepare_seal_dataset(data, /*max_subgraph_nodes=*/48,
                                              /*max_drnl_label=*/24,
                                              /*build_threads=*/0, dtype);
    const auto kind = opts.model == "vanilla"
                          ? models::GnnKind::kVanillaDGCNN
                          : models::GnnKind::kAMDGCNN;

    hpo::HyperParams hp = dataset_defaults(opts.dataset);
    if (opts.lr > 0) hp.learning_rate = opts.lr;
    if (opts.hidden > 0) hp.hidden_dim = opts.hidden;
    if (opts.sort_k > 0) hp.sort_k = opts.sort_k;

    if (opts.tune) {
      std::cout << "Bayesian-optimizing hyperparameters...\n";
      hpo::BayesOptOptions bo;
      bo.num_initial = 3;
      bo.num_iterations = 4;
      auto tuned = core::tune_model(seal_ds, kind, bo, 3, 250, 120);
      hp = tuned.best;
      std::cout << "  best " << hp.to_string() << " (val AUC "
                << tuned.best_value << ")\n";
    }

    std::cout << "training " << models::gnn_kind_name(kind) << " with "
              << hp.to_string() << " for " << opts.epochs << " epochs...\n";

    models::ModelConfig mc;
    mc.kind = kind;
    mc.node_feature_dim = seal_ds.node_feature_dim;
    mc.edge_attr_dim = seal_ds.edge_attr_dim;
    mc.num_classes = seal_ds.num_classes;
    mc.hidden_dim = hp.hidden_dim;
    mc.sort_k = hp.sort_k;
    mc.dtype = dtype;
    util::Rng rng(opts.seed);
    auto model = models::make_link_gnn(mc, rng);
    if (!opts.load_path.empty()) {
      models::load_weights(*model, opts.load_path,
                           std::string(models::gnn_kind_name(kind)) + " " +
                               opts.dataset + " " + opts.dtype);
      std::cout << "loaded weights from " << opts.load_path << "\n";
    }

    models::TrainConfig tc;
    tc.learning_rate = hp.learning_rate;
    tc.epochs = opts.epochs;
    tc.seed = opts.seed;
    tc.dtype = dtype;
    models::Trainer trainer(*model, tc);
    const auto curve = trainer.fit(seal_ds.train, seal_ds.test, 2);
    for (const auto& rec : curve)
      std::cout << "  epoch " << rec.epoch << ": train loss "
                << util::Table::fmt(rec.train_loss, 4) << ", test AUC "
                << util::Table::fmt(rec.test_auc, 4) << "\n";

    const auto ev = trainer.evaluate(seal_ds.test);
    std::cout << "final: AUC " << util::Table::fmt(ev.metrics.macro_auc, 4)
              << "  AP " << util::Table::fmt(ev.metrics.macro_precision, 4)
              << "  accuracy " << util::Table::fmt(ev.metrics.accuracy, 4)
              << "  (" << model->num_parameters() << " parameters)\n";

    if (!opts.save_path.empty()) {
      models::save_weights(*model, opts.save_path);
      std::cout << "saved weights to " << opts.save_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
    return 1;
  }
}
