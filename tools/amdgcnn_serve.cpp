// amdgcnn_serve — answer link-classification queries with a trained model.
//
//   amdgcnn_serve --dataset primekg|biokg|wordnet|cora --weights FILE
//                 [--model am|vanilla]   (default am; must match the save)
//                 [--hidden N] [--sort-k N] [--dtype f32|f64]
//                 [--quantize none|f16|q8]  (default none = exact forward)
//                 [--queries FILE]       (default: read stdin)
//                 [--threads N]          (0 = serial batch, default)
//                 [--workers N]          (0 = one-shot predict_links, default;
//                                         N>0 = persistent serve::Server)
//                 [--batch N]            (links per request; 0 = all in one)
//                 [--repeat N]           (replay the query stream N times)
//                 [--proba]              (print per-class probabilities)
//
// Loads the checkpoint ONCE into a frozen inference engine
// (core::LinkPredictor — arena-allocated forward pass, no autograd), then
// classifies one "<node-a> <node-b>" query per input line.  Blank lines and
// '#' comments are skipped.  Output, one line per query:
//
//   <node-a> <node-b> <predicted-class> [p0 p1 ...]
//
// With --workers N the queries flow through the persistent serving runtime
// (serve::Server, DESIGN.md §2.8): warm pooled workers, batched
// endpoint-grouped scoring and the cross-query score/frontier caches.  Both
// paths produce bit-identical predictions; --repeat replays the stream so
// cache-hit steady state is visible in the counters.  The stderr summary
// reports per-request p50/p99 latency and cache hit rates.
//
// The model flags must reproduce the configuration the checkpoint was saved
// with (amdgcnn_cli --save); mismatches are rejected at load time with the
// offending parameter spelled out.  Summary statistics go to stderr so the
// classification stream stays pipeable.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/link_predictor.h"
#include "serve/server.h"
#include "datasets/biokg_sim.h"
#include "datasets/cora_sim.h"
#include "datasets/primekg_sim.h"
#include "datasets/wordnet_sim.h"
#include "models/serialize.h"
#include "util/stopwatch.h"

using namespace amdgcnn;

namespace {

struct ServeOptions {
  std::string dataset = "primekg";
  std::string model = "am";
  std::string weights;
  std::string queries_path;  // empty = stdin
  std::int64_t hidden = 0;   // 0 = dataset default (matches amdgcnn_cli)
  std::int64_t sort_k = 0;
  std::int64_t threads = 0;
  std::int64_t workers = 0;  // 0 = one-shot predict_links path
  std::int64_t batch = 0;    // links per request; 0 = whole stream at once
  std::int64_t repeat = 1;
  std::string dtype = "f32";
  std::string quantize = "none";
  bool proba = false;
};

void usage() {
  std::cerr << "usage: amdgcnn_serve --dataset primekg|biokg|wordnet|cora "
               "--weights FILE\n"
               "  [--model am|vanilla] [--hidden N] [--sort-k N]\n"
               "  [--dtype f32|f64] [--quantize none|f16|q8]\n"
               "  [--queries FILE] [--threads N] [--workers N] [--batch N]\n"
               "  [--repeat N] [--proba]\n";
}

bool parse(int argc, char** argv, ServeOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--dataset") opts.dataset = next();
    else if (arg == "--model") opts.model = next();
    else if (arg == "--weights") opts.weights = next();
    else if (arg == "--queries") opts.queries_path = next();
    else if (arg == "--hidden") opts.hidden = std::atoll(next());
    else if (arg == "--sort-k") opts.sort_k = std::atoll(next());
    else if (arg == "--threads") opts.threads = std::atoll(next());
    else if (arg == "--workers") opts.workers = std::atoll(next());
    else if (arg == "--batch") opts.batch = std::atoll(next());
    else if (arg == "--repeat") opts.repeat = std::atoll(next());
    else if (arg == "--dtype") opts.dtype = next();
    else if (arg == "--quantize") opts.quantize = next();
    else if (arg == "--proba") opts.proba = true;
    else if (arg == "--help" || arg == "-h") return false;
    else throw std::runtime_error("unknown flag: " + arg);
  }
  if (opts.weights.empty()) throw std::runtime_error("--weights is required");
  if (opts.workers < 0) throw std::runtime_error("--workers must be >= 0");
  if (opts.batch < 0) throw std::runtime_error("--batch must be >= 0");
  if (opts.repeat < 1) throw std::runtime_error("--repeat must be >= 1");
  return true;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

double rate(std::int64_t hits, std::int64_t misses) {
  const auto total = hits + misses;
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

ag::Dtype parse_dtype(const std::string& name) {
  if (name == "f32") return ag::Dtype::f32;
  if (name == "f64") return ag::Dtype::f64;
  throw std::runtime_error("--dtype must be f32 or f64, got: " + name);
}

ag::quant::Scheme parse_quantize(const std::string& name) {
  if (name == "none") return ag::quant::Scheme::kNone;
  if (name == "f16") return ag::quant::Scheme::kF16;
  if (name == "q8") return ag::quant::Scheme::kQ8;
  throw std::runtime_error("--quantize must be none, f16 or q8, got: " + name);
}

// The simulated datasets are deterministic generators, so rebuilding with the
// amdgcnn_cli defaults reproduces the exact graph the model was trained on.
datasets::LinkDataset build_dataset(const std::string& name) {
  if (name == "primekg") {
    datasets::PrimeKGSimOptions o;
    o.scale = 0.5;
    o.num_train = 800;
    o.num_test = 200;
    return datasets::make_primekg_sim(o);
  }
  if (name == "biokg") {
    datasets::BioKGSimOptions o;
    o.scale = 0.5;
    o.num_train = 650;
    o.num_test = 200;
    return datasets::make_biokg_sim(o);
  }
  if (name == "wordnet") {
    datasets::WordNetSimOptions o;
    o.num_nodes = 2000;
    o.num_train = 1300;
    o.num_test = 300;
    return datasets::make_wordnet_sim(o);
  }
  if (name == "cora") {
    datasets::CoraSimOptions o;
    o.num_pos_links = 500;
    return datasets::make_cora_sim(o);
  }
  throw std::runtime_error("unknown dataset: " + name);
}

std::int64_t default_hidden(const std::string& dataset) {
  if (dataset == "primekg") return 32;
  if (dataset == "biokg" || dataset == "wordnet") return 64;
  return core::cora_tuned_defaults().hidden_dim;
}

std::int64_t default_sort_k(const std::string& dataset) {
  if (dataset == "primekg") return 24;
  if (dataset == "wordnet") return 20;
  return core::cora_tuned_defaults().sort_k;
}

std::vector<seal::LinkExample> read_queries(std::istream& in,
                                            std::int64_t num_nodes) {
  std::vector<seal::LinkExample> links;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream row(line);
    seal::LinkExample link;
    if (!(row >> link.a >> link.b))
      throw std::runtime_error("query line " + std::to_string(lineno) +
                               ": expected '<node-a> <node-b>', got: " + line);
    if (link.a < 0 || link.a >= num_nodes || link.b < 0 || link.b >= num_nodes)
      throw std::runtime_error("query line " + std::to_string(lineno) +
                               ": node id out of range [0, " +
                               std::to_string(num_nodes) + ")");
    if (link.a == link.b)
      throw std::runtime_error("query line " + std::to_string(lineno) +
                               ": self-links are not classifiable");
    links.push_back(link);
  }
  return links;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opts;
  try {
    if (!parse(argc, argv, opts)) {
      usage();
      return 0;
    }
    const ag::Dtype dtype = parse_dtype(opts.dtype);

    util::Stopwatch watch;
    const auto data = build_dataset(opts.dataset);

    // Same extraction / feature recipe as core::prepare_seal_dataset, minus
    // the sample builds — serve only needs the graph and the feature widths.
    core::LinkPredictor::Options predictor_options;
    auto& ds = predictor_options.dataset;
    ds.extract.num_hops = 2;
    ds.extract.mode = data.neighborhood_mode;
    ds.extract.max_nodes = 48;
    ds.features.max_drnl_label = 24;
    ds.features.dtype = dtype;
    ds.num_threads = opts.threads;
    predictor_options.warm_nodes = ds.extract.max_nodes;
    predictor_options.warm_edges = ds.extract.max_nodes * 8;
    predictor_options.quantize = parse_quantize(opts.quantize);

    models::ModelConfig mc;
    mc.kind = opts.model == "vanilla" ? models::GnnKind::kVanillaDGCNN
                                      : models::GnnKind::kAMDGCNN;
    mc.node_feature_dim = seal::node_feature_dim(data.graph, ds.features);
    mc.edge_attr_dim = data.graph.edge_attr_dim();
    mc.num_classes = data.num_classes;
    mc.hidden_dim = opts.hidden > 0 ? opts.hidden : default_hidden(opts.dataset);
    mc.sort_k = opts.sort_k > 0 ? opts.sort_k : default_sort_k(opts.dataset);
    mc.dtype = dtype;

    util::Rng rng(1);  // overwritten by the checkpoint
    auto model = models::make_link_gnn(mc, rng);
    models::load_weights(*model, opts.weights,
                         std::string(models::gnn_kind_name(mc.kind)) + " " +
                             opts.dataset + " " + opts.dtype);
    core::LinkPredictor predictor(*model, predictor_options);
    model.reset();  // the frozen engine shares the parameter storage
    std::cerr << "amdgcnn_serve: " << opts.dataset << " graph ("
              << data.graph.num_nodes() << " nodes), "
              << models::gnn_kind_name(mc.kind) << " " << opts.dtype;
    if (predictor_options.quantize != ag::quant::Scheme::kNone)
      std::cerr << " (quantized " << ag::quant::scheme_name(
                       predictor_options.quantize)
                << ", " << predictor.weight_bytes() << " B resident)";
    std::cerr << " checkpoint loaded in " << watch.seconds() << " s\n";

    std::vector<seal::LinkExample> links;
    if (opts.queries_path.empty()) {
      links = read_queries(std::cin, data.graph.num_nodes());
    } else {
      std::ifstream in(opts.queries_path);
      if (!in)
        throw std::runtime_error("cannot open queries file: " +
                                 opts.queries_path);
      links = read_queries(in, data.graph.num_nodes());
    }
    if (links.empty()) {
      std::cerr << "amdgcnn_serve: no queries\n";
      return 0;
    }

    // Chunk the stream into requests of --batch links (0 = one request) and
    // replay it --repeat times.  Every pass scores every link; later passes
    // show the caches at steady state.  Predictions are taken from the last
    // pass — bit-identical to the first by the §2.8 cache contract.
    const std::size_t batch =
        opts.batch > 0 ? static_cast<std::size_t>(opts.batch) : links.size();
    std::unique_ptr<serve::Server> server;
    if (opts.workers > 0) {
      serve::ServerOptions so;
      so.num_workers = static_cast<int>(opts.workers);
      server = std::make_unique<serve::Server>(predictor, data.graph, so);
    }

    const std::int64_t c = predictor.config().num_classes;
    core::LinkPredictions predictions;
    predictions.num_classes = c;
    predictions.labels.resize(links.size());
    predictions.proba.resize(links.size() * static_cast<std::size_t>(c));
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<std::size_t>(opts.repeat) *
                         ((links.size() + batch - 1) / batch));

    watch = util::Stopwatch();
    for (std::int64_t pass = 0; pass < opts.repeat; ++pass) {
      for (std::size_t begin = 0; begin < links.size(); begin += batch) {
        const auto end = std::min(begin + batch, links.size());
        const std::vector<seal::LinkExample> request(links.begin() + begin,
                                                     links.begin() + end);
        util::Stopwatch request_watch;
        const auto part = server
                              ? server->score_batch(request)
                              : predictor.predict_links(data.graph, request);
        latencies_ms.push_back(request_watch.seconds() * 1e3);
        std::copy(part.labels.begin(), part.labels.end(),
                  predictions.labels.begin() + begin);
        std::copy(part.proba.begin(), part.proba.end(),
                  predictions.proba.begin() + begin * c);
      }
    }
    const double seconds = watch.seconds();

    for (std::size_t i = 0; i < links.size(); ++i) {
      std::cout << links[i].a << " " << links[i].b << " "
                << predictions.labels[i];
      if (opts.proba)
        for (std::int64_t j = 0; j < c; ++j)
          std::cout << " " << predictions.proba[i * c + j];
      std::cout << "\n";
    }

    const auto total_links = links.size() * static_cast<std::size_t>(opts.repeat);
    std::cerr << "amdgcnn_serve: " << total_links << " links ("
              << links.size() << " x" << opts.repeat << ") in "
              << seconds << " s ("
              << static_cast<double>(total_links) / seconds << " links/s, "
              << latencies_ms.size() << " requests, p50 "
              << percentile(latencies_ms, 0.50) << " ms, p99 "
              << percentile(latencies_ms, 0.99) << " ms)\n";
    if (server) {
      const auto s = server->stats();
      std::cerr << "amdgcnn_serve: server workers=" << server->num_workers()
                << " scored=" << s.scored << "/" << s.links
                << " deduped=" << s.deduped
                << " score-hit=" << rate(s.score_hits, s.score_misses)
                << " endpoint-hit=" << rate(s.endpoint_hits, s.endpoint_misses)
                << " row-hit=" << rate(s.row_hits, s.row_misses) << "\n";
      server->shutdown();
    } else {
      const auto s = predictor.stats();
      std::cerr << "amdgcnn_serve: predictor score-hit="
                << rate(s.score.hits, s.score.misses) << " frontier-hit="
                << rate(s.frontier_hits, s.frontier_misses)
                << " arena peak " << predictor.arena_peak_bytes() << " B\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
    return 1;
  }
}
