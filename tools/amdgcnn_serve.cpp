// amdgcnn_serve — answer link-classification queries with a trained model.
//
//   amdgcnn_serve --dataset primekg|biokg|wordnet|cora --weights FILE
//                 [--model am|vanilla]   (default am; must match the save)
//                 [--hidden N] [--sort-k N] [--dtype f32|f64]
//                 [--quantize none|f16|q8]  (default none = exact forward)
//                 [--queries FILE]       (default: read stdin)
//                 [--threads N]          (0 = serial batch, default)
//                 [--proba]              (print per-class probabilities)
//
// Loads the checkpoint ONCE into a frozen inference engine
// (core::LinkPredictor — arena-allocated forward pass, no autograd), then
// classifies one "<node-a> <node-b>" query per input line.  Blank lines and
// '#' comments are skipped.  Output, one line per query:
//
//   <node-a> <node-b> <predicted-class> [p0 p1 ...]
//
// The model flags must reproduce the configuration the checkpoint was saved
// with (amdgcnn_cli --save); mismatches are rejected at load time with the
// offending parameter spelled out.  Summary statistics go to stderr so the
// classification stream stays pipeable.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/link_predictor.h"
#include "datasets/biokg_sim.h"
#include "datasets/cora_sim.h"
#include "datasets/primekg_sim.h"
#include "datasets/wordnet_sim.h"
#include "models/serialize.h"
#include "util/stopwatch.h"

using namespace amdgcnn;

namespace {

struct ServeOptions {
  std::string dataset = "primekg";
  std::string model = "am";
  std::string weights;
  std::string queries_path;  // empty = stdin
  std::int64_t hidden = 0;   // 0 = dataset default (matches amdgcnn_cli)
  std::int64_t sort_k = 0;
  std::int64_t threads = 0;
  std::string dtype = "f32";
  std::string quantize = "none";
  bool proba = false;
};

void usage() {
  std::cerr << "usage: amdgcnn_serve --dataset primekg|biokg|wordnet|cora "
               "--weights FILE\n"
               "  [--model am|vanilla] [--hidden N] [--sort-k N]\n"
               "  [--dtype f32|f64] [--quantize none|f16|q8]\n"
               "  [--queries FILE] [--threads N] [--proba]\n";
}

bool parse(int argc, char** argv, ServeOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--dataset") opts.dataset = next();
    else if (arg == "--model") opts.model = next();
    else if (arg == "--weights") opts.weights = next();
    else if (arg == "--queries") opts.queries_path = next();
    else if (arg == "--hidden") opts.hidden = std::atoll(next());
    else if (arg == "--sort-k") opts.sort_k = std::atoll(next());
    else if (arg == "--threads") opts.threads = std::atoll(next());
    else if (arg == "--dtype") opts.dtype = next();
    else if (arg == "--quantize") opts.quantize = next();
    else if (arg == "--proba") opts.proba = true;
    else if (arg == "--help" || arg == "-h") return false;
    else throw std::runtime_error("unknown flag: " + arg);
  }
  if (opts.weights.empty()) throw std::runtime_error("--weights is required");
  return true;
}

ag::Dtype parse_dtype(const std::string& name) {
  if (name == "f32") return ag::Dtype::f32;
  if (name == "f64") return ag::Dtype::f64;
  throw std::runtime_error("--dtype must be f32 or f64, got: " + name);
}

ag::quant::Scheme parse_quantize(const std::string& name) {
  if (name == "none") return ag::quant::Scheme::kNone;
  if (name == "f16") return ag::quant::Scheme::kF16;
  if (name == "q8") return ag::quant::Scheme::kQ8;
  throw std::runtime_error("--quantize must be none, f16 or q8, got: " + name);
}

// The simulated datasets are deterministic generators, so rebuilding with the
// amdgcnn_cli defaults reproduces the exact graph the model was trained on.
datasets::LinkDataset build_dataset(const std::string& name) {
  if (name == "primekg") {
    datasets::PrimeKGSimOptions o;
    o.scale = 0.5;
    o.num_train = 800;
    o.num_test = 200;
    return datasets::make_primekg_sim(o);
  }
  if (name == "biokg") {
    datasets::BioKGSimOptions o;
    o.scale = 0.5;
    o.num_train = 650;
    o.num_test = 200;
    return datasets::make_biokg_sim(o);
  }
  if (name == "wordnet") {
    datasets::WordNetSimOptions o;
    o.num_nodes = 2000;
    o.num_train = 1300;
    o.num_test = 300;
    return datasets::make_wordnet_sim(o);
  }
  if (name == "cora") {
    datasets::CoraSimOptions o;
    o.num_pos_links = 500;
    return datasets::make_cora_sim(o);
  }
  throw std::runtime_error("unknown dataset: " + name);
}

std::int64_t default_hidden(const std::string& dataset) {
  if (dataset == "primekg") return 32;
  if (dataset == "biokg" || dataset == "wordnet") return 64;
  return core::cora_tuned_defaults().hidden_dim;
}

std::int64_t default_sort_k(const std::string& dataset) {
  if (dataset == "primekg") return 24;
  if (dataset == "wordnet") return 20;
  return core::cora_tuned_defaults().sort_k;
}

std::vector<seal::LinkExample> read_queries(std::istream& in,
                                            std::int64_t num_nodes) {
  std::vector<seal::LinkExample> links;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream row(line);
    seal::LinkExample link;
    if (!(row >> link.a >> link.b))
      throw std::runtime_error("query line " + std::to_string(lineno) +
                               ": expected '<node-a> <node-b>', got: " + line);
    if (link.a < 0 || link.a >= num_nodes || link.b < 0 || link.b >= num_nodes)
      throw std::runtime_error("query line " + std::to_string(lineno) +
                               ": node id out of range [0, " +
                               std::to_string(num_nodes) + ")");
    if (link.a == link.b)
      throw std::runtime_error("query line " + std::to_string(lineno) +
                               ": self-links are not classifiable");
    links.push_back(link);
  }
  return links;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opts;
  try {
    if (!parse(argc, argv, opts)) {
      usage();
      return 0;
    }
    const ag::Dtype dtype = parse_dtype(opts.dtype);

    util::Stopwatch watch;
    const auto data = build_dataset(opts.dataset);

    // Same extraction / feature recipe as core::prepare_seal_dataset, minus
    // the sample builds — serve only needs the graph and the feature widths.
    core::LinkPredictor::Options predictor_options;
    auto& ds = predictor_options.dataset;
    ds.extract.num_hops = 2;
    ds.extract.mode = data.neighborhood_mode;
    ds.extract.max_nodes = 48;
    ds.features.max_drnl_label = 24;
    ds.features.dtype = dtype;
    ds.num_threads = opts.threads;
    predictor_options.warm_nodes = ds.extract.max_nodes;
    predictor_options.warm_edges = ds.extract.max_nodes * 8;
    predictor_options.quantize = parse_quantize(opts.quantize);

    models::ModelConfig mc;
    mc.kind = opts.model == "vanilla" ? models::GnnKind::kVanillaDGCNN
                                      : models::GnnKind::kAMDGCNN;
    mc.node_feature_dim = seal::node_feature_dim(data.graph, ds.features);
    mc.edge_attr_dim = data.graph.edge_attr_dim();
    mc.num_classes = data.num_classes;
    mc.hidden_dim = opts.hidden > 0 ? opts.hidden : default_hidden(opts.dataset);
    mc.sort_k = opts.sort_k > 0 ? opts.sort_k : default_sort_k(opts.dataset);
    mc.dtype = dtype;

    util::Rng rng(1);  // overwritten by the checkpoint
    auto model = models::make_link_gnn(mc, rng);
    models::load_weights(*model, opts.weights,
                         std::string(models::gnn_kind_name(mc.kind)) + " " +
                             opts.dataset + " " + opts.dtype);
    core::LinkPredictor predictor(*model, predictor_options);
    model.reset();  // the frozen engine shares the parameter storage
    std::cerr << "amdgcnn_serve: " << opts.dataset << " graph ("
              << data.graph.num_nodes() << " nodes), "
              << models::gnn_kind_name(mc.kind) << " " << opts.dtype;
    if (predictor_options.quantize != ag::quant::Scheme::kNone)
      std::cerr << " (quantized " << ag::quant::scheme_name(
                       predictor_options.quantize)
                << ", " << predictor.weight_bytes() << " B resident)";
    std::cerr << " checkpoint loaded in " << watch.seconds() << " s\n";

    std::vector<seal::LinkExample> links;
    if (opts.queries_path.empty()) {
      links = read_queries(std::cin, data.graph.num_nodes());
    } else {
      std::ifstream in(opts.queries_path);
      if (!in)
        throw std::runtime_error("cannot open queries file: " +
                                 opts.queries_path);
      links = read_queries(in, data.graph.num_nodes());
    }
    if (links.empty()) {
      std::cerr << "amdgcnn_serve: no queries\n";
      return 0;
    }

    watch = util::Stopwatch();
    const auto predictions = predictor.predict_links(data.graph, links);
    const double seconds = watch.seconds();

    const std::int64_t c = predictions.num_classes;
    for (std::size_t i = 0; i < links.size(); ++i) {
      std::cout << links[i].a << " " << links[i].b << " "
                << predictions.labels[i];
      if (opts.proba)
        for (std::int64_t j = 0; j < c; ++j)
          std::cout << " " << predictions.proba[i * c + j];
      std::cout << "\n";
    }
    std::cerr << "amdgcnn_serve: " << links.size() << " links in " << seconds
              << " s (" << static_cast<double>(links.size()) / seconds
              << " links/s, arena peak " << predictor.arena_peak_bytes()
              << " B)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
    return 1;
  }
}
