// Dev tool: sweep training budgets / hyperparameters on the synthetic
// datasets to calibrate the generator noise so measured AUC bands land near
// the paper's Table III.  Not part of the bench harness.
//
//   calibrate <dataset> <train> <test> <epochs> <lr> <hidden> <k> [cap]
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "util/stopwatch.h"
#include "datasets/biokg_sim.h"
#include "datasets/cora_sim.h"
#include "datasets/primekg_sim.h"
#include "datasets/wordnet_sim.h"

using namespace amdgcnn;

int main(int argc, char** argv) {
  if (argc < 8) {
    std::cerr << "usage: calibrate <dataset> <train> <test> <epochs> <lr> "
                 "<hidden> <k> [cap]\n";
    return 1;
  }
  const std::string name = argv[1];
  const std::int64_t n_train = std::atoll(argv[2]);
  const std::int64_t n_test = std::atoll(argv[3]);
  const std::int64_t epochs = std::atoll(argv[4]);
  hpo::HyperParams hp;
  hp.learning_rate = std::atof(argv[5]);
  hp.hidden_dim = std::atoll(argv[6]);
  hp.sort_k = std::atoll(argv[7]);
  const std::int64_t cap = argc > 8 ? std::atoll(argv[8]) : 32;
  const std::int64_t bs = argc > 9 ? std::atoll(argv[9]) : 16;

  datasets::LinkDataset data;
  if (name == "wordnet") {
    datasets::WordNetSimOptions o;
    o.num_nodes = 2000;
    o.num_train = n_train;
    o.num_test = n_test;
    data = datasets::make_wordnet_sim(o);
  } else if (name == "primekg") {
    datasets::PrimeKGSimOptions o;
    o.scale = 0.5;
    o.num_train = n_train;
    o.num_test = n_test;
    data = datasets::make_primekg_sim(o);
  } else if (name == "biokg") {
    datasets::BioKGSimOptions o;
    o.scale = 0.5;
    o.num_train = n_train;
    o.num_test = n_test;
    data = datasets::make_biokg_sim(o);
  } else if (name == "cora") {
    datasets::CoraSimOptions o;
    o.num_pos_links = n_train / 2 + n_test / 2;
    data = datasets::make_cora_sim(o);
  } else {
    std::cerr << "unknown dataset\n";
    return 1;
  }

  util::Stopwatch watch;
  auto ds = core::prepare_seal_dataset(data, cap);
  std::cerr << "dataset built in " << watch.seconds() << "s, mean subgraph "
            << ds.mean_subgraph_nodes() << " nodes\n";

  for (auto kind :
       {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
    watch.reset();
    auto run = core::run_model(ds, kind, hp, epochs, 17, /*eval_every=*/2, 0, bs);
    std::cout << run.model_name << ": final AUC "
              << run.final_eval.metrics.macro_auc << " AP "
              << run.final_eval.metrics.macro_precision << " acc "
              << run.final_eval.metrics.accuracy << " (" << watch.seconds()
              << "s)\n  curve:";
    for (const auto& r : run.curve)
      std::cout << " e" << r.epoch << "=" << r.test_auc;
    std::cout << "\n";
  }
  return 0;
}
