#!/usr/bin/env bash
# Build the Release tree and run the training-throughput benchmark, leaving
# BENCH_training.json at the repository root.
#
# Usage: scripts/run_benches.sh [--smoke]
#   --smoke   shrink datasets/iterations (seconds instead of minutes)
#
# AMDGCNN_BENCH_SCALE=full additionally scales the figure benches when run
# by hand; this script only drives the throughput bench.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j --target bench_training_throughput

"${build_dir}/bench/bench_training_throughput" \
  --out "${repo_root}/BENCH_training.json" "$@"

echo "wrote ${repo_root}/BENCH_training.json"
