#!/usr/bin/env bash
# Build the Release tree and run the throughput benchmarks, leaving
# BENCH_training.json and BENCH_extraction.json at the repository root
# (the training bench covers both storage precisions: every dataset/model
# pair gets f64 and f32 rows plus a per-dtype determinism check), then
# re-run the parallel-build determinism/property tests AND the dtype suite
# under ASan+UBSan (AMDGCNN_SANITIZE=ON) in a separate build tree.
#
# Usage: scripts/run_benches.sh [--smoke] [--skip-sanitize]
#   --smoke           shrink datasets/iterations (seconds instead of minutes)
#   --skip-sanitize   skip the sanitizer re-run of the new test layer
#
# AMDGCNN_BENCH_SCALE=full additionally scales the figure benches when run
# by hand; this script only drives the throughput benches.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
asan_dir="${repo_root}/build-asan"

bench_args=()
run_sanitize=1
for arg in "$@"; do
  case "${arg}" in
    --smoke) bench_args+=("--smoke") ;;
    --skip-sanitize) run_sanitize=0 ;;
    *)
      echo "unknown argument: ${arg}" >&2
      echo "usage: $0 [--smoke] [--skip-sanitize]" >&2
      exit 2
      ;;
  esac
done

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j \
  --target bench_training_throughput bench_extraction_throughput

"${build_dir}/bench/bench_training_throughput" \
  --out "${repo_root}/BENCH_training.json" ${bench_args[@]+"${bench_args[@]}"}
echo "wrote ${repo_root}/BENCH_training.json"

"${build_dir}/bench/bench_extraction_throughput" \
  --out "${repo_root}/BENCH_extraction.json" ${bench_args[@]+"${bench_args[@]}"}
echo "wrote ${repo_root}/BENCH_extraction.json"

if [[ "${run_sanitize}" -eq 1 ]]; then
  # The determinism / property / pool tests guard the parallel dataset build,
  # and the dtype suite exercises the f32 storage path (dual-width buffer
  # pools, cast boundaries, v2 checkpoints); running them under ASan+UBSan
  # catches scratch-buffer misuse (aliasing, use-after-release, short reads
  # across the f32/f64 width change) that the plain build cannot see.
  cmake -B "${asan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAMDGCNN_SANITIZE=ON
  cmake --build "${asan_dir}" -j --target amdgcnn_tests amdgcnn_dtype_tests
  ctest --test-dir "${asan_dir}" --output-on-failure \
    -R 'ParallelDatasetBuild|DrnlProperty|ExtractionProperty|BufferPool|SortPoolEquivalence'
  ctest --test-dir "${asan_dir}" --output-on-failure -L dtype
  echo "sanitizer pass over the parallel-build and dtype test layers: OK"
fi
