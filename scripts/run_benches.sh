#!/usr/bin/env bash
# Build the Release tree and run the throughput benchmarks, leaving
# BENCH_training.json, BENCH_extraction.json, BENCH_inference.json,
# BENCH_dynamic.json and BENCH_serving.json at the repository root (the
# training and inference benches cover both storage precisions: every
# dataset/model pair gets f64 and f32 rows plus per-dtype determinism /
# bit-identity checks; the dynamic bench gates the overlay-vs-rebuild
# speedup and score-cache coherence; the serving bench gates the >= 2x
# batched warm-pool speedup and the Server bit-identity contracts), then
# re-run the parallel-build determinism/property tests, the dtype suite,
# the forward-only inference suite, the dynamic-graph suite, the scale-tier
# suite (snapshot round-trips, epoch extraction, id-capacity guards), the
# quantized-inference suite (f16 codec, q8 blocks, v3 checkpoint negative
# paths) AND the serving suite (worker pool, batched Server, cache layers)
# under ASan+UBSan (AMDGCNN_SANITIZE=ON) in a separate build tree, plus a
# ThreadSanitizer spot-check (AMDGCNN_SANITIZE=thread) over the pool/queue
# synchronisation in a third tree.
#
# Usage: scripts/run_benches.sh [--smoke] [--skip-sanitize]
#   --smoke           shrink datasets/iterations (seconds instead of minutes)
#   --skip-sanitize   skip the sanitizer re-runs of the new test layers
#
# AMDGCNN_BENCH_SCALE=full additionally scales the figure benches when run
# by hand; this script only drives the throughput benches.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
asan_dir="${repo_root}/build-asan"
tsan_dir="${repo_root}/build-tsan"

bench_args=()
run_sanitize=1
for arg in "$@"; do
  case "${arg}" in
    --smoke) bench_args+=("--smoke") ;;
    --skip-sanitize) run_sanitize=0 ;;
    *)
      echo "unknown argument: ${arg}" >&2
      echo "usage: $0 [--smoke] [--skip-sanitize]" >&2
      exit 2
      ;;
  esac
done

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j \
  --target bench_training_throughput bench_extraction_throughput \
           bench_inference_throughput bench_dynamic_graph \
           bench_serving_throughput

"${build_dir}/bench/bench_training_throughput" \
  --out "${repo_root}/BENCH_training.json" ${bench_args[@]+"${bench_args[@]}"}
echo "wrote ${repo_root}/BENCH_training.json"

"${build_dir}/bench/bench_extraction_throughput" \
  --out "${repo_root}/BENCH_extraction.json" ${bench_args[@]+"${bench_args[@]}"}
echo "wrote ${repo_root}/BENCH_extraction.json"

"${build_dir}/bench/bench_inference_throughput" \
  --out "${repo_root}/BENCH_inference.json" ${bench_args[@]+"${bench_args[@]}"}
echo "wrote ${repo_root}/BENCH_inference.json"

"${build_dir}/bench/bench_dynamic_graph" \
  --out "${repo_root}/BENCH_dynamic.json" ${bench_args[@]+"${bench_args[@]}"}
echo "wrote ${repo_root}/BENCH_dynamic.json"

"${build_dir}/bench/bench_serving_throughput" \
  --out "${repo_root}/BENCH_serving.json" ${bench_args[@]+"${bench_args[@]}"}
echo "wrote ${repo_root}/BENCH_serving.json"

# A labeled ctest invocation that matches nothing "passes" vacuously (ctest
# exits 0 on zero tests), which would let a renamed suite or a broken label
# silently drop a whole layer from the sanitizer pass.  Fail loudly instead.
require_tests() {
  local dir="$1"; shift
  local count
  count="$(ctest --test-dir "${dir}" -N "$@" | sed -n 's/^Total Tests: //p')"
  if [[ -z "${count}" || "${count}" -eq 0 ]]; then
    echo "FATAL: ctest $* matches no tests in ${dir}" >&2
    exit 1
  fi
}

if [[ "${run_sanitize}" -eq 1 ]]; then
  # The determinism / property / pool tests guard the parallel dataset build,
  # the dtype suite exercises the f32 storage path (dual-width buffer
  # pools, cast boundaries, v2 checkpoints), and the infer suite exercises
  # the bump-pointer arena forward (raw pointer arithmetic over one block);
  # running them under ASan+UBSan catches scratch-buffer misuse (aliasing,
  # use-after-release, short reads across the f32/f64 width change,
  # out-of-arena writes) that the plain build cannot see.
  cmake -B "${asan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAMDGCNN_SANITIZE=ON
  cmake --build "${asan_dir}" -j \
    --target amdgcnn_tests amdgcnn_dtype_tests amdgcnn_infer_tests \
             amdgcnn_dynamic_tests amdgcnn_scale_tests amdgcnn_quant_tests \
             amdgcnn_serve_tests
  require_tests "${asan_dir}" \
    -R 'ParallelDatasetBuild|DrnlProperty|ExtractionProperty|DynamicGraphProperty|BufferPool|SortPoolEquivalence'
  ctest --test-dir "${asan_dir}" --output-on-failure \
    -R 'ParallelDatasetBuild|DrnlProperty|ExtractionProperty|DynamicGraphProperty|BufferPool|SortPoolEquivalence'
  require_tests "${asan_dir}" -L dtype
  ctest --test-dir "${asan_dir}" --output-on-failure -L dtype
  # -E: the bench smokes also carry the `infer` / `dynamic` labels, but
  # their speedup floors are calibrated for an uninstrumented Release build.
  require_tests "${asan_dir}" -L infer -E bench_
  ctest --test-dir "${asan_dir}" --output-on-failure -L infer -E bench_
  require_tests "${asan_dir}" -L dynamic -E bench_
  ctest --test-dir "${asan_dir}" --output-on-failure -L dynamic -E bench_
  # The scale tier touches the rawest memory in the tree (mmap'd views, the
  # epoch stamp arrays, the 32-bit local CSR): the snapshot round-trip and
  # kernel-equivalence tests run under the sanitizers too.
  require_tests "${asan_dir}" -L scale
  ctest --test-dir "${asan_dir}" --output-on-failure -L scale
  # The quant tier decodes packed payloads (u16 bit patterns, int8 blocks)
  # into arena scratch and parses the v3 checkpoint byte stream — exactly
  # the kind of code where a short read or an off-by-one block count hides
  # until the sanitizers see it.
  require_tests "${asan_dir}" -L quant
  ctest --test-dir "${asan_dir}" --output-on-failure -L quant
  # The serving runtime hands raw pointers (job function, error collector,
  # result rows) across threads and recycles per-worker arenas between
  # requests — ASan/UBSan over the whole suite catches lifetime misuse.
  # -E: the serving bench smoke also carries the `serve` label, but its 2x
  # speedup floor is calibrated for an uninstrumented Release build.
  require_tests "${asan_dir}" -L serve -E bench_
  ctest --test-dir "${asan_dir}" --output-on-failure -L serve -E bench_
  echo "sanitizer pass over the parallel-build, dtype, infer, dynamic, scale, quant and serve test layers: OK"

  # ThreadSanitizer spot-check of the pool/queue synchronisation: condvar
  # parking, job hand-off, error capture, graceful shutdown.  Restricted to
  # the WorkerPool lifecycle/fork-join cases — they never enter an OpenMP
  # region, which TSan cannot instrument (libgomp's internal barriers would
  # drown the report in false positives).
  cmake -B "${tsan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAMDGCNN_SANITIZE=thread
  cmake --build "${tsan_dir}" -j --target amdgcnn_serve_tests
  require_tests "${tsan_dir}" -R 'WorkerPoolRun|WorkerPoolLifecycle'
  ctest --test-dir "${tsan_dir}" --output-on-failure \
    -R 'WorkerPoolRun|WorkerPoolLifecycle'
  echo "ThreadSanitizer pass over the worker-pool lifecycle tests: OK"
fi
