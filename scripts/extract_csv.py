#!/usr/bin/env python3
"""Split a recorded bench_output.txt into per-experiment CSV files.

Each bench binary prints a header line starting with `# <title>` followed by
an aligned table and a `CSV:` block.  This script extracts every CSV block
into out_dir/<slug>.csv so results can be plotted with any tool.

Usage: scripts/extract_csv.py [bench_output.txt] [out_dir]
"""
import os
import re
import sys


def slugify(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    return slug[:60] or "experiment"


def main() -> int:
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "results"
    with open(src, encoding="utf-8") as fh:
        lines = fh.read().splitlines()

    os.makedirs(out_dir, exist_ok=True)
    title = "experiment"
    in_csv = False
    rows: list[str] = []
    written = 0

    def flush() -> None:
        nonlocal rows, written
        if not rows:
            return
        path = os.path.join(out_dir, f"{slugify(title)}.csv")
        with open(path, "w", encoding="utf-8") as out:
            out.write("\n".join(rows) + "\n")
        print(f"wrote {path} ({len(rows) - 1} rows)")
        rows = []
        written += 1

    for line in lines:
        if line.startswith("# ") and not in_csv:
            flush()
            title = line[2:].split(":")[0] + "-" + line[2:].split(":")[-1][:30]
        if line.strip() == "CSV:":
            in_csv = True
            rows = []
            continue
        if in_csv:
            if line.strip() == "" or line.startswith(("#", "+", "|")):
                in_csv = False
                flush()
            else:
                rows.append(line)
    flush()
    print(f"{written} CSV files extracted to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
