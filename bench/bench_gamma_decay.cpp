// Empirical check of the γ-decaying-heuristic theory (paper §II-B, after
// Zhang & Chen 2018): a high-order heuristic like the Katz index, when
// computed INSIDE the k-hop enclosing subgraph, approximates its full-graph
// value with error that shrinks rapidly as k grows — the justification for
// SEAL's (and AM-DGCNN's) use of small local subgraphs.
//
// Protocol: sample node pairs on wordnet_sim, compute Katz(u, v) on the
// full graph and inside the k-hop enclosing subgraph for k = 1..4; report
// the mean relative error and the Pearson correlation per k.
#include <cmath>

#include "bench_common.h"

#include "graph/subgraph.h"
#include "heuristics/katz.h"
#include "util/rng.h"

namespace {

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const auto n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  return denom > 0.0 ? cov / denom : 0.0;
}

}  // namespace

int main() {
  using namespace amdgcnn;
  const auto scale = core::bench_scale_from_env();
  bench::print_header(
      "gamma-decay check: Katz on k-hop enclosing subgraph vs full graph",
      scale);

  datasets::WordNetSimOptions opts;
  opts.num_nodes = scale == core::BenchScale::kFull ? 4000 : 1200;
  opts.num_train = 10;  // links unused; we only need the graph
  opts.num_test = 5;
  auto data = datasets::make_wordnet_sim(opts);

  const std::int64_t num_pairs =
      scale == core::BenchScale::kFull ? 300 : 60;
  util::Rng rng(71);
  heuristics::KatzOptions katz_opts;
  katz_opts.beta = 0.05;
  katz_opts.max_length = 7;  // long enough that paths can escape small subgraphs

  // Sample pairs at distance <= 3 so full-graph Katz is non-trivial.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  while (static_cast<std::int64_t>(pairs.size()) < num_pairs) {
    const auto u = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(data.graph.num_nodes())));
    const auto nbrs = data.graph.neighbors(u);
    if (nbrs.empty()) continue;
    // Random 2-3 step walk endpoint.
    graph::NodeId v = u;
    for (int s = 0; s < 3; ++s) {
      const auto nv = data.graph.neighbors(v);
      if (nv.empty()) break;
      v = nv[rng.uniform_int(nv.size())].node;
    }
    // Non-adjacent pairs only: extraction always masks the target link, so
    // comparing against full-graph Katz is only apples-to-apples when there
    // is no direct edge to mask.
    if (u != v && !data.graph.has_edge(u, v)) pairs.push_back({u, v});
  }

  std::vector<double> truth(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    truth[i] = heuristics::katz_index(data.graph, pairs[i].first,
                                      pairs[i].second, katz_opts);

  util::Table table({"k (hops)", "mean rel. error", "Pearson r",
                     "mean subgraph nodes"});
  for (std::int32_t k = 1; k <= 4; ++k) {
    graph::ExtractOptions eo;
    eo.num_hops = k;
    std::vector<double> approx(pairs.size());
    double nodes_sum = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto sub = graph::extract_enclosing_subgraph(
          data.graph, pairs[i].first, pairs[i].second, eo);
      const auto local = graph::materialize_subgraph(data.graph, sub);
      approx[i] = heuristics::katz_index(
          local, graph::EnclosingSubgraph::kTargetA,
          graph::EnclosingSubgraph::kTargetB, katz_opts);
      nodes_sum += static_cast<double>(sub.num_nodes());
    }
    double rel_err = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (truth[i] <= 0.0) continue;
      rel_err += std::abs(approx[i] - truth[i]) / truth[i];
      ++counted;
    }
    rel_err /= static_cast<double>(std::max<std::size_t>(1, counted));
    table.add_row({std::to_string(k), util::Table::fmt(rel_err, 4),
                   util::Table::fmt(pearson(approx, truth), 4),
                   util::Table::fmt(nodes_sum /
                                        static_cast<double>(pairs.size()),
                                    1)});
    std::cerr << "[gamma-decay] k=" << k << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "# expectation: relative error falls and correlation rises "
               "toward 1 as k grows — the paper's justification for k=2.\n";
  return 0;
}
