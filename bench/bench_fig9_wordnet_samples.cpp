// Reproduces paper Fig. 9 (a, b): AUC vs number of training samples on
// WordNet-18 (10 training epochs) under default and auto-tuned
// hyperparameters.
#include "bench_common.h"

int main() {
  using namespace amdgcnn;
  bench::run_sample_sweep(bench::make_wordnet(core::bench_scale_from_env()),
                          "Fig9");
  return 0;
}
