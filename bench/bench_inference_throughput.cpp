// Inference-throughput benchmark for the forward-only engine (DESIGN.md
// §2.4).
//
// Trains both models (AM-DGCNN, Vanilla-DGCNN) briefly on the Cora simulator
// at each storage precision, then measures single-link query cost three
// ways:
//   * trainer_forward — the training-path forward (autograd graph + buffer
//     pool) via Trainer::predict_proba on one sample at a time,
//   * arena_forward   — the frozen arena forward on the same prebuilt
//     samples (core::LinkPredictor::predict_proba_sample),
//   * pipeline        — the full predict_links serving path per query
//     (extract -> DRNL -> featurize -> forward), serial and 1-worker rows.
// Trainer and arena queries are interleaved (trainer query, then the same
// arena query back to back) and the reported speedup is the median of the
// per-query trainer/arena latency ratios: each pair samples the same
// host-frequency phase, so the estimate survives the throttling and
// multi-millisecond stalls of shared CI hosts that wreck a totals-based
// ratio.
//
// The benchmark asserts that trainer and arena probabilities agree
// bit-for-bit, that the serial and 1-worker pipeline batches agree
// bit-for-bit, and that the AM-DGCNN f64 arena forward — the paper's model
// at reference precision — clears a >= 1.5x speedup floor over the trainer
// forward.  Steady-state measurements sit around 1.9x; the floor is set
// below that so host throttling cannot flake the smoke test.  Roughly half
// of either forward is scalar-libm tanh — shared by both paths and pinned
// by the bit-identity contract (any faster tanh would change the training
// numerics too) — so the ratio is bounded near 2x even with every
// removable byte of autograd, pool and copy overhead gone from the arena
// path, and the bound tightens exactly where the autograd overhead is
// smallest (f32, and the attention-free vanilla model).  Those
// combinations are reported unasserted.
//
// Output goes to stdout as a table and to a JSON file (default
// BENCH_inference.json in the current directory; override with --out PATH).
// --smoke shrinks everything so the binary doubles as a CTest smoke test.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/link_predictor.h"
#include "models/trainer.h"

namespace {

using namespace amdgcnn;

struct RunRow {
  std::string mode;   // "trainer_forward", "arena_forward" or "pipeline"
  std::string dtype;  // "f32" or "f64"
  int threads = 0;    // pipeline worker count (0 = serial)
  double p50_us = 0.0;
  double p99_us = 0.0;
  double links_per_sec = 0.0;
  double seconds = 0.0;          // total wall time of the timed queries
  std::size_t arena_peak_bytes = 0;  // 0 for the trainer baseline
};

struct ModelResult {
  std::string model;
  double speedup_f64 = 0.0;  // median per-query trainer/arena latency ratio
  double speedup_f32 = 0.0;
  std::vector<RunRow> runs;
};

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

void fill_latency_stats(RunRow& row, const std::vector<double>& latencies_s) {
  double total = 0.0;
  std::vector<double> us;
  us.reserve(latencies_s.size());
  for (double s : latencies_s) {
    total += s;
    us.push_back(s * 1e6);
  }
  row.seconds = total;
  row.p50_us = percentile(us, 0.50);
  row.p99_us = percentile(us, 0.99);
  row.links_per_sec =
      total > 0.0 ? static_cast<double>(latencies_s.size()) / total : 0.0;
}

struct ForwardPair {
  RunRow trainer;
  RunRow arena;
  double speedup = 0.0;  // median per-query trainer/arena latency ratio
};

/// Times the training-path forward (one autograd forward + softmax per
/// sample, exactly what serving on the Trainer would do) and the frozen
/// arena forward back to back on each query, for `rounds` passes over the
/// sample set.  The speedup is the median of the per-query latency ratios:
/// the two halves of a pair run microseconds apart under the same host
/// conditions, so frequency drift cancels per pair and the median sheds
/// scheduler stalls.
ForwardPair time_forward_pair(const models::Trainer& trainer,
                              const core::LinkPredictor& predictor,
                              const std::vector<seal::SubgraphSample>& samples,
                              int rounds, ag::Dtype dtype) {
  std::vector<seal::SubgraphSample> one(1);
  std::vector<double> out(
      static_cast<std::size_t>(predictor.config().num_classes));
  std::vector<double> lat_t, lat_a, ratios;
  lat_t.reserve(samples.size() * static_cast<std::size_t>(rounds));
  lat_a.reserve(lat_t.capacity());
  ratios.reserve(lat_t.capacity());
  ForwardPair pair;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& s : samples) {
      one[0] = s;  // shallow tensor copies
      util::Stopwatch tw;
      (void)trainer.predict_proba(one);
      const double t = tw.seconds();
      util::Stopwatch aw;
      predictor.predict_proba_sample(s, out.data());
      const double a = aw.seconds();
      lat_t.push_back(t);
      lat_a.push_back(a);
      if (a > 0.0) ratios.push_back(t / a);
    }
  }
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    pair.speedup = ratios[ratios.size() / 2];
  }
  pair.trainer.mode = "trainer_forward";
  pair.trainer.dtype = ag::dtype_name(dtype);
  fill_latency_stats(pair.trainer, lat_t);
  pair.arena.mode = "arena_forward";
  pair.arena.dtype = ag::dtype_name(dtype);
  fill_latency_stats(pair.arena, lat_a);
  pair.arena.arena_peak_bytes = predictor.arena_peak_bytes();
  return pair;
}

/// Per-query latencies of the full serving pipeline: each timed call is
/// predict_links on a single candidate link, so extraction, DRNL labelling,
/// featurisation and the forward are all inside the clock.
RunRow time_pipeline(const core::LinkPredictor& predictor,
                     const graph::KnowledgeGraph& g,
                     const std::vector<seal::LinkExample>& links,
                     std::int64_t threads, ag::Dtype dtype) {
  std::vector<seal::LinkExample> one(1);
  std::vector<double> lat;
  lat.reserve(links.size());
  for (const auto& link : links) {
    one[0] = link;
    util::Stopwatch watch;
    (void)predictor.predict_links(g, one);
    lat.push_back(watch.seconds());
  }
  RunRow row;
  row.mode = "pipeline";
  row.dtype = ag::dtype_name(dtype);
  row.threads = static_cast<int>(threads);
  fill_latency_stats(row, lat);
  row.arena_peak_bytes = predictor.arena_peak_bytes();
  return row;
}

void write_json(const std::string& path, const std::string& dataset,
                std::size_t forward_queries, std::size_t pipeline_queries,
                const std::vector<ModelResult>& models, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"bench\": \"inference_throughput\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"speedup_gate\": {\"model\": \"AM-DGCNN\", \"dtype\": \"f64\", "
         "\"min\": 1.5},\n"
      << "  \"dataset\": \"" << dataset << "\",\n"
      << "  \"forward_queries\": " << forward_queries << ",\n"
      << "  \"pipeline_queries\": " << pipeline_queries << ",\n"
      << "  \"models\": [\n";
  for (std::size_t m = 0; m < models.size(); ++m) {
    const auto& mr = models[m];
    char head[256];
    std::snprintf(head, sizeof(head),
                  "    {\n      \"model\": \"%s\",\n"
                  "      \"arena_speedup_vs_trainer\": "
                  "{\"f64\": %.2f, \"f32\": %.2f},\n"
                  "      \"runs\": [\n",
                  mr.model.c_str(), mr.speedup_f64, mr.speedup_f32);
    out << head;
    for (std::size_t r = 0; r < mr.runs.size(); ++r) {
      const auto& run = mr.runs[r];
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "        {\"mode\": \"%s\", \"dtype\": \"%s\", "
                    "\"threads\": %d, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                    "\"links_per_sec\": %.1f, \"seconds\": %.4f, "
                    "\"arena_peak_bytes\": %zu}%s\n",
                    run.mode.c_str(), run.dtype.c_str(), run.threads,
                    run.p50_us, run.p99_us, run.links_per_sec, run.seconds,
                    run.arena_peak_bytes,
                    r + 1 < mr.runs.size() ? "," : "");
      out << buf;
    }
    out << "      ]\n    }" << (m + 1 < models.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_inference.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a PATH argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s'\nusage: %s [--smoke] [--out "
                   "PATH]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  const int train_epochs = smoke ? 1 : 2;
  const int rounds = smoke ? 2 : 3;  // interleaved passes over the query set
  const std::size_t max_pipeline_links = smoke ? 12 : 100;

  datasets::CoraSimOptions cora;
  cora.num_pos_links = smoke ? 60 : 500;
  const auto data = datasets::make_cora_sim(cora);

  // Candidate links for the end-to-end pipeline rows: the held-out test
  // links, capped so the extraction-dominated rows stay affordable.
  std::vector<seal::LinkExample> pipeline_links(
      data.test_links.begin(),
      data.test_links.begin() +
          static_cast<std::ptrdiff_t>(
              std::min(max_pipeline_links, data.test_links.size())));
  if (pipeline_links.size() < data.test_links.size())
    std::fprintf(stderr,
                 "pipeline rows use the first %zu of %zu test links\n",
                 pipeline_links.size(), data.test_links.size());

  const auto hp = core::cora_tuned_defaults();
  std::vector<ModelResult> results;
  std::size_t forward_queries = 0;  // test samples x passes, set below
  for (auto kind :
       {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
    ModelResult mr;
    mr.model = models::gnn_kind_name(kind);
    for (ag::Dtype dtype : {ag::Dtype::f64, ag::Dtype::f32}) {
      // Native-dtype dataset build: the f32 rows measure f32 compute, not
      // boundary casts.
      const auto seal_ds = core::prepare_seal_dataset(
          data, /*max_subgraph_nodes=*/48, /*max_drnl_label=*/24,
          seal::default_build_threads(), dtype);

      models::ModelConfig mc;
      mc.kind = kind;
      mc.node_feature_dim = seal_ds.node_feature_dim;
      mc.edge_attr_dim = seal_ds.edge_attr_dim;
      mc.num_classes = seal_ds.num_classes;
      mc.hidden_dim = hp.hidden_dim;
      mc.sort_k = hp.sort_k;
      mc.dtype = dtype;
      util::Rng rng(17);
      auto model = models::make_link_gnn(mc, rng);

      models::TrainConfig tc;
      tc.learning_rate = hp.learning_rate;
      tc.seed = 17;
      tc.dtype = dtype;
      models::Trainer trainer(*model, tc);
      for (int e = 0; e < train_epochs; ++e)
        (void)trainer.train_epoch(seal_ds.train);

      core::LinkPredictor::Options po;
      po.dataset.extract.num_hops = 2;
      po.dataset.extract.mode = data.neighborhood_mode;
      po.dataset.extract.max_nodes = 48;
      po.dataset.features.max_drnl_label = 24;
      po.dataset.features.dtype = dtype;
      po.warm_nodes = 48;
      po.warm_edges = 48 * 8;
      core::LinkPredictor predictor(*model, po);

      // Contract check: frozen arena probabilities must equal the training
      // forward's bit-for-bit on every query sample.
      {
        const auto want = trainer.predict_proba(seal_ds.test);
        const auto c = static_cast<std::size_t>(mc.num_classes);
        std::vector<double> got(c);
        for (std::size_t i = 0; i < seal_ds.test.size(); ++i) {
          predictor.predict_proba_sample(seal_ds.test[i], got.data());
          for (std::size_t j = 0; j < c; ++j)
            if (want[i * c + j] != got[j]) {
              std::fprintf(stderr,
                           "FATAL: %s %s arena proba diverges from trainer "
                           "at sample %zu class %zu (%.17g vs %.17g)\n",
                           mr.model.c_str(), ag::dtype_name(dtype), i, j,
                           want[i * c + j], got[j]);
              return 1;
            }
        }
      }

      forward_queries =
          seal_ds.test.size() * static_cast<std::size_t>(rounds);
      const ForwardPair fwd =
          time_forward_pair(trainer, predictor, seal_ds.test, rounds, dtype);
      const RunRow& trainer_row = fwd.trainer;
      const RunRow& arena_row = fwd.arena;
      const double speedup = fwd.speedup;
      (dtype == ag::Dtype::f64 ? mr.speedup_f64 : mr.speedup_f32) = speedup;
      std::printf("%-14s arena/trainer forward speedup (%s): %.2fx "
                  "(trainer p50=%.1fus arena p50=%.1fus)\n",
                  mr.model.c_str(), ag::dtype_name(dtype), speedup,
                  trainer_row.p50_us, arena_row.p50_us);
      // The asserted floor (see the header comment): the paper's model at
      // reference precision must clear 1.5x — set below the ~1.9x
      // steady-state so host throttling cannot flake the smoke run.  Other
      // combos are reported unasserted.
      if (kind == models::GnnKind::kAMDGCNN && dtype == ag::Dtype::f64 &&
          speedup < 1.5) {
        std::fprintf(stderr,
                     "FATAL: %s %s arena forward is only %.2fx the trainer "
                     "forward (asserted floor: >= 1.5x)\n",
                     mr.model.c_str(), ag::dtype_name(dtype), speedup);
        return 1;
      }

      // Serving rows: serial (threads = 0) and deterministic 1-worker
      // pipeline, which must agree bit-for-bit on the whole batch.
      auto serial_row =
          time_pipeline(predictor, data.graph, pipeline_links, 0, dtype);
      core::LinkPredictor::Options po1 = po;
      po1.dataset.num_threads = 1;
      core::LinkPredictor predictor1(*model, po1);
      auto worker_row =
          time_pipeline(predictor1, data.graph, pipeline_links, 1, dtype);
      {
        const auto a = predictor.predict_links(data.graph, pipeline_links);
        const auto b = predictor1.predict_links(data.graph, pipeline_links);
        if (a.proba != b.proba) {
          std::fprintf(stderr,
                       "FATAL: %s %s pipeline is not deterministic across "
                       "worker counts\n",
                       mr.model.c_str(), ag::dtype_name(dtype));
          return 1;
        }
      }

      for (const auto& row :
           {trainer_row, arena_row, serial_row, worker_row}) {
        std::printf("%-14s %-16s %s threads=%d  p50=%8.1fus  p99=%8.1fus  "
                    "%8.1f links/sec  arena_peak=%zuB\n",
                    mr.model.c_str(), row.mode.c_str(), row.dtype.c_str(),
                    row.threads, row.p50_us, row.p99_us, row.links_per_sec,
                    row.arena_peak_bytes);
        mr.runs.push_back(row);
      }
      std::printf("%-14s arena/trainer forward speedup (%s): %.2fx\n",
                  mr.model.c_str(), ag::dtype_name(dtype), speedup);
    }
    results.push_back(std::move(mr));
  }

  write_json(out_path, data.name, forward_queries, pipeline_links.size(),
             results, smoke);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
