// Inference-throughput benchmark for the forward-only engine (DESIGN.md
// §2.4).
//
// Trains both models (AM-DGCNN, Vanilla-DGCNN) briefly on the Cora simulator
// at each storage precision, then measures single-link query cost three
// ways:
//   * trainer_forward — the training-path forward (autograd graph + buffer
//     pool) via Trainer::predict_proba on one sample at a time,
//   * arena_forward   — the frozen arena forward on the same prebuilt
//     samples (core::LinkPredictor::predict_proba_sample),
//   * pipeline        — the full predict_links serving path per query
//     (extract -> DRNL -> featurize -> forward), serial and 1-worker rows.
// Trainer and arena queries are interleaved (trainer query, then the same
// arena query back to back) and the reported speedup is the median of the
// per-query trainer/arena latency ratios: each pair samples the same
// host-frequency phase, so the estimate survives the throttling and
// multi-millisecond stalls of shared CI hosts that wreck a totals-based
// ratio.
//
// The benchmark asserts that trainer and arena probabilities agree
// bit-for-bit, that the serial and 1-worker pipeline batches agree
// bit-for-bit, and that the AM-DGCNN f64 arena forward — the paper's model
// at reference precision — clears a >= 1.5x speedup floor over the trainer
// forward.  Steady-state measurements sit around 1.9x; the floor is set
// below that so host throttling cannot flake the smoke test.  Roughly half
// of either forward is scalar-libm tanh — shared by both paths and pinned
// by the bit-identity contract (any faster tanh would change the training
// numerics too) — so the ratio is bounded near 2x even with every
// removable byte of autograd, pool and copy overhead gone from the arena
// path, and the bound tightens exactly where the autograd overhead is
// smallest (f32, and the attention-free vanilla model).  Those
// combinations are reported unasserted.
//
// The f32 iteration additionally measures the quantized serving modes
// (DESIGN.md §2.7): f16 and q8 arena forwards timed pairwise against the
// exact f32 arena forward (same paired-ratio-median estimator), plus the
// storage story — v3 checkpoint bytes and resident weight bytes against the
// f64 reference checkpoint.  Two floors are asserted for the paper's model:
// the q8 arena forward must clear >= 2x the f32 arena links/sec (the
// relaxed-numerics kernels replace the scalar-libm tanh/exp that dominate
// the exact forward), and the q8 checkpoint + resident weights must shrink
// >= 4x vs the f64 reference (expected ~7.1x; f16 is exactly 4x and is
// reported unasserted).  Serial vs 1-worker determinism is asserted per
// quantized mode — the modes are not bit-identical to f32, but each one is
// bit-identical to itself for any worker count.
//
// Output goes to stdout as a table and to a JSON file (default
// BENCH_inference.json in the current directory; override with --out PATH).
// --smoke shrinks everything so the binary doubles as a CTest smoke test.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/link_predictor.h"
#include "models/serialize.h"
#include "models/trainer.h"

namespace {

using namespace amdgcnn;

struct RunRow {
  std::string mode;   // "trainer_forward", "arena_forward" or "pipeline"
  std::string dtype;  // "f32" or "f64"
  int threads = 0;    // pipeline worker count (0 = serial)
  double p50_us = 0.0;
  double p99_us = 0.0;
  double links_per_sec = 0.0;
  double seconds = 0.0;          // total wall time of the timed queries
  std::size_t arena_peak_bytes = 0;  // 0 for the trainer baseline
};

struct QuantStats {
  double speedup_f16 = 0.0;  // median per-query f32-arena/quant-arena ratio
  double speedup_q8 = 0.0;
  std::size_t ckpt_f64 = 0;  // v2 f64 reference checkpoint bytes
  std::size_t ckpt_f16 = 0;  // v3 checkpoint bytes per scheme
  std::size_t ckpt_q8 = 0;
  std::size_t weight_f64 = 0;  // resident frozen weight bytes per mode
  std::size_t weight_f32 = 0;
  std::size_t weight_f16 = 0;
  std::size_t weight_q8 = 0;
};

struct ModelResult {
  std::string model;
  double speedup_f64 = 0.0;  // median per-query trainer/arena latency ratio
  double speedup_f32 = 0.0;
  QuantStats quant;
  std::vector<RunRow> runs;
};

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

void fill_latency_stats(RunRow& row, const std::vector<double>& latencies_s) {
  double total = 0.0;
  std::vector<double> us;
  us.reserve(latencies_s.size());
  for (double s : latencies_s) {
    total += s;
    us.push_back(s * 1e6);
  }
  row.seconds = total;
  row.p50_us = percentile(us, 0.50);
  row.p99_us = percentile(us, 0.99);
  row.links_per_sec =
      total > 0.0 ? static_cast<double>(latencies_s.size()) / total : 0.0;
}

struct ForwardPair {
  RunRow trainer;
  RunRow arena;
  double speedup = 0.0;  // median per-query trainer/arena latency ratio
};

/// Times the training-path forward (one autograd forward + softmax per
/// sample, exactly what serving on the Trainer would do) and the frozen
/// arena forward back to back on each query, for `rounds` passes over the
/// sample set.  The speedup is the median of the per-query latency ratios:
/// the two halves of a pair run microseconds apart under the same host
/// conditions, so frequency drift cancels per pair and the median sheds
/// scheduler stalls.
ForwardPair time_forward_pair(const models::Trainer& trainer,
                              const core::LinkPredictor& predictor,
                              const std::vector<seal::SubgraphSample>& samples,
                              int rounds, ag::Dtype dtype) {
  std::vector<seal::SubgraphSample> one(1);
  std::vector<double> out(
      static_cast<std::size_t>(predictor.config().num_classes));
  std::vector<double> lat_t, lat_a, ratios;
  lat_t.reserve(samples.size() * static_cast<std::size_t>(rounds));
  lat_a.reserve(lat_t.capacity());
  ratios.reserve(lat_t.capacity());
  ForwardPair pair;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& s : samples) {
      one[0] = s;  // shallow tensor copies
      util::Stopwatch tw;
      (void)trainer.predict_proba(one);
      const double t = tw.seconds();
      util::Stopwatch aw;
      predictor.predict_proba_sample(s, out.data());
      const double a = aw.seconds();
      lat_t.push_back(t);
      lat_a.push_back(a);
      if (a > 0.0) ratios.push_back(t / a);
    }
  }
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    pair.speedup = ratios[ratios.size() / 2];
  }
  pair.trainer.mode = "trainer_forward";
  pair.trainer.dtype = ag::dtype_name(dtype);
  fill_latency_stats(pair.trainer, lat_t);
  pair.arena.mode = "arena_forward";
  pair.arena.dtype = ag::dtype_name(dtype);
  fill_latency_stats(pair.arena, lat_a);
  pair.arena.arena_peak_bytes = predictor.arena_peak_bytes();
  return pair;
}

/// Times the exact f32 arena forward and a quantized arena forward back to
/// back on each query (same pairing rationale as time_forward_pair) and
/// returns the quantized row; `*speedup` receives the median per-query
/// f32/quantized latency ratio.
RunRow time_quant_arena(const core::LinkPredictor& exact,
                        const core::LinkPredictor& quant,
                        const std::vector<seal::SubgraphSample>& samples,
                        int rounds, const char* qname, double* speedup) {
  std::vector<double> out(
      static_cast<std::size_t>(exact.config().num_classes));
  std::vector<double> lat_q, ratios;
  lat_q.reserve(samples.size() * static_cast<std::size_t>(rounds));
  ratios.reserve(lat_q.capacity());
  for (int r = 0; r < rounds; ++r) {
    for (const auto& s : samples) {
      util::Stopwatch ew;
      exact.predict_proba_sample(s, out.data());
      const double e = ew.seconds();
      util::Stopwatch qw;
      quant.predict_proba_sample(s, out.data());
      const double q = qw.seconds();
      lat_q.push_back(q);
      if (q > 0.0) ratios.push_back(e / q);
    }
  }
  *speedup = 0.0;
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    *speedup = ratios[ratios.size() / 2];
  }
  RunRow row;
  row.mode = "arena_forward";
  row.dtype = qname;
  fill_latency_stats(row, lat_q);
  row.arena_peak_bytes = quant.arena_peak_bytes();
  return row;
}

/// Per-query latencies of the full serving pipeline: each timed call is
/// predict_links on a single candidate link, so extraction, DRNL labelling,
/// featurisation and the forward are all inside the clock.
RunRow time_pipeline(const core::LinkPredictor& predictor,
                     const graph::KnowledgeGraph& g,
                     const std::vector<seal::LinkExample>& links,
                     std::int64_t threads, ag::Dtype dtype) {
  std::vector<seal::LinkExample> one(1);
  std::vector<double> lat;
  lat.reserve(links.size());
  for (const auto& link : links) {
    one[0] = link;
    util::Stopwatch watch;
    (void)predictor.predict_links(g, one);
    lat.push_back(watch.seconds());
  }
  RunRow row;
  row.mode = "pipeline";
  row.dtype = ag::dtype_name(dtype);
  row.threads = static_cast<int>(threads);
  fill_latency_stats(row, lat);
  row.arena_peak_bytes = predictor.arena_peak_bytes();
  return row;
}

void write_json(const std::string& path, const std::string& dataset,
                std::size_t forward_queries, std::size_t pipeline_queries,
                const std::vector<ModelResult>& models, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"bench\": \"inference_throughput\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"speedup_gate\": {\"model\": \"AM-DGCNN\", \"dtype\": \"f64\", "
         "\"min\": 1.5},\n"
      << "  \"quant_gates\": {\"q8_arena_speedup_vs_f32_min\": 2.0, "
         "\"q8_shrink_vs_f64_min\": 4.0},\n"
      << "  \"dataset\": \"" << dataset << "\",\n"
      << "  \"forward_queries\": " << forward_queries << ",\n"
      << "  \"pipeline_queries\": " << pipeline_queries << ",\n"
      << "  \"models\": [\n";
  for (std::size_t m = 0; m < models.size(); ++m) {
    const auto& mr = models[m];
    char head[768];
    std::snprintf(
        head, sizeof(head),
        "    {\n      \"model\": \"%s\",\n"
        "      \"arena_speedup_vs_trainer\": "
        "{\"f64\": %.2f, \"f32\": %.2f},\n"
        "      \"quant\": {\n"
        "        \"arena_speedup_vs_f32\": {\"f16\": %.2f, \"q8\": %.2f},\n"
        "        \"checkpoint_bytes\": "
        "{\"f64_v2\": %zu, \"f16_v3\": %zu, \"q8_v3\": %zu},\n"
        "        \"resident_weight_bytes\": "
        "{\"f64\": %zu, \"f32\": %zu, \"f16\": %zu, \"q8\": %zu}\n"
        "      },\n"
        "      \"runs\": [\n",
        mr.model.c_str(), mr.speedup_f64, mr.speedup_f32,
        mr.quant.speedup_f16, mr.quant.speedup_q8, mr.quant.ckpt_f64,
        mr.quant.ckpt_f16, mr.quant.ckpt_q8, mr.quant.weight_f64,
        mr.quant.weight_f32, mr.quant.weight_f16, mr.quant.weight_q8);
    out << head;
    for (std::size_t r = 0; r < mr.runs.size(); ++r) {
      const auto& run = mr.runs[r];
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "        {\"mode\": \"%s\", \"dtype\": \"%s\", "
                    "\"threads\": %d, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                    "\"links_per_sec\": %.1f, \"seconds\": %.4f, "
                    "\"arena_peak_bytes\": %zu}%s\n",
                    run.mode.c_str(), run.dtype.c_str(), run.threads,
                    run.p50_us, run.p99_us, run.links_per_sec, run.seconds,
                    run.arena_peak_bytes,
                    r + 1 < mr.runs.size() ? "," : "");
      out << buf;
    }
    out << "      ]\n    }" << (m + 1 < models.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_inference.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a PATH argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s'\nusage: %s [--smoke] [--out "
                   "PATH]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  const int train_epochs = smoke ? 1 : 2;
  const int rounds = smoke ? 2 : 3;  // interleaved passes over the query set
  const std::size_t max_pipeline_links = smoke ? 12 : 100;

  datasets::CoraSimOptions cora;
  cora.num_pos_links = smoke ? 60 : 500;
  const auto data = datasets::make_cora_sim(cora);

  // Candidate links for the end-to-end pipeline rows: the held-out test
  // links, capped so the extraction-dominated rows stay affordable.
  std::vector<seal::LinkExample> pipeline_links(
      data.test_links.begin(),
      data.test_links.begin() +
          static_cast<std::ptrdiff_t>(
              std::min(max_pipeline_links, data.test_links.size())));
  if (pipeline_links.size() < data.test_links.size())
    std::fprintf(stderr,
                 "pipeline rows use the first %zu of %zu test links\n",
                 pipeline_links.size(), data.test_links.size());

  const auto hp = core::cora_tuned_defaults();
  std::vector<ModelResult> results;
  std::size_t forward_queries = 0;  // test samples x passes, set below
  for (auto kind :
       {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
    ModelResult mr;
    mr.model = models::gnn_kind_name(kind);
    for (ag::Dtype dtype : {ag::Dtype::f64, ag::Dtype::f32}) {
      // Native-dtype dataset build: the f32 rows measure f32 compute, not
      // boundary casts.
      const auto seal_ds = core::prepare_seal_dataset(
          data, /*max_subgraph_nodes=*/48, /*max_drnl_label=*/24,
          seal::default_build_threads(), dtype);

      models::ModelConfig mc;
      mc.kind = kind;
      mc.node_feature_dim = seal_ds.node_feature_dim;
      mc.edge_attr_dim = seal_ds.edge_attr_dim;
      mc.num_classes = seal_ds.num_classes;
      mc.hidden_dim = hp.hidden_dim;
      mc.sort_k = hp.sort_k;
      mc.dtype = dtype;
      util::Rng rng(17);
      auto model = models::make_link_gnn(mc, rng);

      models::TrainConfig tc;
      tc.learning_rate = hp.learning_rate;
      tc.seed = 17;
      tc.dtype = dtype;
      models::Trainer trainer(*model, tc);
      for (int e = 0; e < train_epochs; ++e)
        (void)trainer.train_epoch(seal_ds.train);

      core::LinkPredictor::Options po;
      po.dataset.extract.num_hops = 2;
      po.dataset.extract.mode = data.neighborhood_mode;
      po.dataset.extract.max_nodes = 48;
      po.dataset.features.max_drnl_label = 24;
      po.dataset.features.dtype = dtype;
      po.warm_nodes = 48;
      po.warm_edges = 48 * 8;
      core::LinkPredictor predictor(*model, po);

      // Contract check: frozen arena probabilities must equal the training
      // forward's bit-for-bit on every query sample.
      {
        const auto want = trainer.predict_proba(seal_ds.test);
        const auto c = static_cast<std::size_t>(mc.num_classes);
        std::vector<double> got(c);
        for (std::size_t i = 0; i < seal_ds.test.size(); ++i) {
          predictor.predict_proba_sample(seal_ds.test[i], got.data());
          for (std::size_t j = 0; j < c; ++j)
            if (want[i * c + j] != got[j]) {
              std::fprintf(stderr,
                           "FATAL: %s %s arena proba diverges from trainer "
                           "at sample %zu class %zu (%.17g vs %.17g)\n",
                           mr.model.c_str(), ag::dtype_name(dtype), i, j,
                           want[i * c + j], got[j]);
              return 1;
            }
        }
      }

      forward_queries =
          seal_ds.test.size() * static_cast<std::size_t>(rounds);
      const ForwardPair fwd =
          time_forward_pair(trainer, predictor, seal_ds.test, rounds, dtype);
      const RunRow& trainer_row = fwd.trainer;
      const RunRow& arena_row = fwd.arena;
      const double speedup = fwd.speedup;
      (dtype == ag::Dtype::f64 ? mr.speedup_f64 : mr.speedup_f32) = speedup;
      std::printf("%-14s arena/trainer forward speedup (%s): %.2fx "
                  "(trainer p50=%.1fus arena p50=%.1fus)\n",
                  mr.model.c_str(), ag::dtype_name(dtype), speedup,
                  trainer_row.p50_us, arena_row.p50_us);
      // The asserted floor (see the header comment): the paper's model at
      // reference precision must clear 1.5x — set below the ~1.9x
      // steady-state so host throttling cannot flake the smoke run.  Other
      // combos are reported unasserted.
      if (kind == models::GnnKind::kAMDGCNN && dtype == ag::Dtype::f64 &&
          speedup < 1.5) {
        std::fprintf(stderr,
                     "FATAL: %s %s arena forward is only %.2fx the trainer "
                     "forward (asserted floor: >= 1.5x)\n",
                     mr.model.c_str(), ag::dtype_name(dtype), speedup);
        return 1;
      }

      // Serving rows: serial (threads = 0) and deterministic 1-worker
      // pipeline, which must agree bit-for-bit on the whole batch.
      auto serial_row =
          time_pipeline(predictor, data.graph, pipeline_links, 0, dtype);
      core::LinkPredictor::Options po1 = po;
      po1.dataset.num_threads = 1;
      core::LinkPredictor predictor1(*model, po1);
      auto worker_row =
          time_pipeline(predictor1, data.graph, pipeline_links, 1, dtype);
      {
        const auto a = predictor.predict_links(data.graph, pipeline_links);
        const auto b = predictor1.predict_links(data.graph, pipeline_links);
        if (a.proba != b.proba) {
          std::fprintf(stderr,
                       "FATAL: %s %s pipeline is not deterministic across "
                       "worker counts\n",
                       mr.model.c_str(), ag::dtype_name(dtype));
          return 1;
        }
      }

      for (const auto& row :
           {trainer_row, arena_row, serial_row, worker_row}) {
        std::printf("%-14s %-16s %s threads=%d  p50=%8.1fus  p99=%8.1fus  "
                    "%8.1f links/sec  arena_peak=%zuB\n",
                    mr.model.c_str(), row.mode.c_str(), row.dtype.c_str(),
                    row.threads, row.p50_us, row.p99_us, row.links_per_sec,
                    row.arena_peak_bytes);
        mr.runs.push_back(row);
      }
      std::printf("%-14s arena/trainer forward speedup (%s): %.2fx\n",
                  mr.model.c_str(), ag::dtype_name(dtype), speedup);

      // Quantized serving modes (DESIGN.md §2.7).  The f64 iteration pins
      // the reference storage story (v2 checkpoint + resident bytes); the
      // f32 iteration times f16/q8 against the exact f32 arena forward and
      // checks per-mode worker-count determinism.
      const std::string ckpt_tmp =
          out_path + "." + ag::dtype_name(dtype) + ".ckpt.tmp";
      if (dtype == ag::Dtype::f64) {
        models::save_weights(*model, ckpt_tmp);
        mr.quant.ckpt_f64 =
            static_cast<std::size_t>(std::filesystem::file_size(ckpt_tmp));
        std::filesystem::remove(ckpt_tmp);
        mr.quant.weight_f64 = predictor.weight_bytes();
      } else {
        mr.quant.weight_f32 = predictor.weight_bytes();
        for (auto scheme :
             {ag::quant::Scheme::kF16, ag::quant::Scheme::kQ8}) {
          const char* qname = ag::quant::scheme_name(scheme);
          core::LinkPredictor::Options qo = po;
          qo.quantize = scheme;
          core::LinkPredictor qpred(*model, qo);

          models::save_weights_quantized(*model, ckpt_tmp, scheme);
          const auto ckpt_bytes =
              static_cast<std::size_t>(std::filesystem::file_size(ckpt_tmp));
          std::filesystem::remove(ckpt_tmp);

          double qspeed = 0.0;
          auto qrow = time_quant_arena(predictor, qpred, seal_ds.test,
                                       rounds, qname, &qspeed);

          // Each quantized mode must be bit-identical to itself across
          // worker counts (it is NOT bit-identical to the exact f32 path —
          // that is the relaxed-numerics contract, checked for accuracy in
          // bench_table3_accuracy).
          core::LinkPredictor::Options qo1 = qo;
          qo1.dataset.num_threads = 1;
          core::LinkPredictor qpred1(*model, qo1);
          const auto qa = qpred.predict_links(data.graph, pipeline_links);
          const auto qb = qpred1.predict_links(data.graph, pipeline_links);
          if (qa.proba != qb.proba) {
            std::fprintf(stderr,
                         "FATAL: %s %s quantized pipeline is not "
                         "deterministic across worker counts\n",
                         mr.model.c_str(), qname);
            return 1;
          }

          if (scheme == ag::quant::Scheme::kF16) {
            mr.quant.speedup_f16 = qspeed;
            mr.quant.ckpt_f16 = ckpt_bytes;
            mr.quant.weight_f16 = qpred.weight_bytes();
          } else {
            mr.quant.speedup_q8 = qspeed;
            mr.quant.ckpt_q8 = ckpt_bytes;
            mr.quant.weight_q8 = qpred.weight_bytes();
          }
          std::printf("%-14s %-16s %s threads=0  p50=%8.1fus  p99=%8.1fus  "
                      "%8.1f links/sec  arena_peak=%zuB  (%.2fx vs f32 "
                      "arena, ckpt=%zuB, resident=%zuB)\n",
                      mr.model.c_str(), qrow.mode.c_str(), qname, qrow.p50_us,
                      qrow.p99_us, qrow.links_per_sec, qrow.arena_peak_bytes,
                      qspeed, ckpt_bytes, qpred.weight_bytes());
          mr.runs.push_back(qrow);
        }
      }
    }

    // Shrink gate (paper model only; the ratio is shape-independent):
    // q8 checkpoint and resident weights must shrink >= 4x vs the f64
    // reference — expected ~7.1x (1 byte + a shared f32 scale per 32 values
    // against 8-byte doubles), so 4x leaves margin for per-tensor framing
    // overhead on small models.
    {
      const auto& q = mr.quant;
      const double ckpt_shrink = q.ckpt_q8 > 0
                                     ? static_cast<double>(q.ckpt_f64) /
                                           static_cast<double>(q.ckpt_q8)
                                     : 0.0;
      const double weight_shrink = q.weight_q8 > 0
                                       ? static_cast<double>(q.weight_f64) /
                                             static_cast<double>(q.weight_q8)
                                       : 0.0;
      std::printf("%-14s quant storage: ckpt f64=%zuB f16=%zuB q8=%zuB "
                  "(q8 shrink %.2fx), resident f64=%zuB f32=%zuB f16=%zuB "
                  "q8=%zuB (q8 shrink %.2fx)\n",
                  mr.model.c_str(), q.ckpt_f64, q.ckpt_f16, q.ckpt_q8,
                  ckpt_shrink, q.weight_f64, q.weight_f32, q.weight_f16,
                  q.weight_q8, weight_shrink);
      if (kind == models::GnnKind::kAMDGCNN &&
          (ckpt_shrink < 4.0 || weight_shrink < 4.0)) {
        std::fprintf(stderr,
                     "FATAL: %s q8 shrink vs f64 reference is ckpt %.2fx / "
                     "resident %.2fx (asserted floor: >= 4x both)\n",
                     mr.model.c_str(), ckpt_shrink, weight_shrink);
        return 1;
      }
    }
    results.push_back(std::move(mr));
  }

  // Speed gate: the q8 arena forward must clear >= 2x the exact f32 arena
  // links/sec on at least one model shape.  The win comes from the
  // relaxed-numerics kernels (table-free fast tanh/exp replace the scalar
  // libm calls that dominate the exact forward), which only the quantized
  // modes may use — the exact paths are pinned by the bit-identity
  // contract.
  {
    double best_q8 = 0.0;
    for (const auto& mr : results)
      best_q8 = std::max(best_q8, mr.quant.speedup_q8);
    std::printf("best q8 arena speedup vs f32 arena: %.2fx\n", best_q8);
    if (best_q8 < 2.0) {
      std::fprintf(stderr,
                   "FATAL: best q8 arena speedup is only %.2fx the f32 "
                   "arena forward (asserted floor: >= 2x on at least one "
                   "model)\n",
                   best_q8);
      return 1;
    }
  }

  write_json(out_path, data.name, forward_queries, pipeline_links.size(),
             results, smoke);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
