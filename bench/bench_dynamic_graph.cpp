// Dynamic-graph benchmark (DESIGN.md §2.5): cost of the incremental-update
// path against full rebuilds, serving throughput under interleaved
// update/query workloads, and overlay depth vs compaction cadence.
//
// Three sections, all on the Cora simulator:
//   * update_vs_rebuild — per-update cost of insert_edge/delete_edge through
//     the DeltaOverlay vs re-running the full add_edge + finalize build
//     after every update (the only option before the overlay existed).  The
//     asserted floor: overlay updates must be >= 10x faster per update at
//     cora-sim scale.  Steady-state sits orders of magnitude above that —
//     an overlay update is O(degree) on first touch of an endpoint and O(1)
//     amortised after, while a rebuild is O(V + E) — so the floor only
//     guards against the overlay degenerating into a rebuild.
//   * serving — classification throughput of the cached predict_links path
//     while the graph mutates underneath it, swept over the update rate
//     (mutations per query batch).  Reports the cache hit/invalidation
//     counters so the throughput numbers can be read against cache
//     effectiveness: at rate 0 repeat batches are pure hits; higher rates
//     dirty more hop-hulls and push the path back toward cold extraction.
//   * compaction — one long update stream compacted every K updates
//     (including never), reporting updates/sec with the compaction cost
//     folded in plus the peak overlay depth, i.e. the memory-vs-throughput
//     trade the cadence knob buys.
//
// The serving section asserts that cached probabilities stay bit-identical
// to a cache-off predictor at every sampled rate (the coherence contract of
// the score cache under mutation).
//
// Output goes to stdout as a table and to a JSON file (default
// BENCH_dynamic.json; override with --out PATH).  --smoke shrinks the
// workload so the binary doubles as a CTest smoke test.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/link_predictor.h"
#include "graph/graph_types.h"
#include "models/trainer.h"
#include "util/rng.h"

namespace {

using namespace amdgcnn;

// ---- Seeded valid-update stream (bench-local; the test suite has its own
// generator in tests/test_util.h, which cannot be included here because it
// pulls in gtest).
struct UpdateStream {
  graph::KnowledgeGraph* g;
  util::Rng rng;
  explicit UpdateStream(graph::KnowledgeGraph& graph, std::uint64_t seed)
      : g(&graph), rng(seed) {}

  /// One random valid mutation: ~half deletions of existing edges, the rest
  /// inserts of fresh pairs (retrying until a valid move is found).
  void step() {
    const auto n = static_cast<std::uint64_t>(g->num_nodes());
    for (;;) {
      const auto a = static_cast<graph::NodeId>(rng.uniform_int(n));
      const auto b = static_cast<graph::NodeId>(rng.uniform_int(n));
      if (a == b) continue;
      const bool present = g->has_edge(a, b);
      if (present && rng.uniform() < 0.7) {
        g->delete_edge(a, b);
        return;
      }
      if (!present) {
        g->insert_edge(a, b,
                       static_cast<std::int32_t>(rng.uniform_int(
                           static_cast<std::uint64_t>(g->num_edge_types()))));
        return;
      }
    }
  }
};

/// The full static rebuild an update would have cost before the overlay:
/// copy every node and live edge into a fresh graph and finalize.
graph::KnowledgeGraph full_rebuild(const graph::KnowledgeGraph& g) {
  graph::KnowledgeGraph out(g.num_node_types(), g.num_edge_types(),
                            g.edge_attr_dim(), g.node_feat_dim());
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.num_nodes());
       ++v) {
    out.add_node(g.node_type(v));
    if (g.node_feat_dim() > 0) out.set_node_features(v, g.node_features(v));
  }
  if (g.edge_attr_dim() > 0)
    for (std::int32_t t = 0; t < g.num_edge_types(); ++t)
      out.set_edge_type_attr(t, g.edge_type_attr(t));
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.num_edges());
       ++e) {
    if (g.edge_removed(e)) continue;
    const auto& rec = g.edge(e);
    out.add_edge(rec.src, rec.dst, rec.type);
  }
  out.finalize();
  return out;
}

struct ServingRow {
  int updates_per_batch = 0;
  double links_per_sec = 0.0;
  double hit_rate = 0.0;  // hits / (hits + misses)
  std::int64_t invalidated = 0;
  double seconds = 0.0;
};

struct CompactionRow {
  std::int64_t cadence = 0;  // 0 = never compact
  double updates_per_sec = 0.0;
  std::int64_t peak_overlay_depth = 0;
  double seconds = 0.0;
};

void write_json(const std::string& path, const std::string& dataset,
                bool smoke, std::int64_t num_updates, double overlay_us,
                double rebuild_us, double speedup,
                const std::vector<ServingRow>& serving,
                const std::vector<CompactionRow>& compaction) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  char buf[512];
  out << "{\n  \"bench\": \"dynamic_graph\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"dataset\": \"" << dataset << "\",\n"
      << "  \"rebuild_gate\": {\"min_speedup\": 10.0},\n";
  std::snprintf(buf, sizeof(buf),
                "  \"update_vs_rebuild\": {\"updates\": %lld, "
                "\"overlay_us_per_update\": %.3f, "
                "\"rebuild_us_per_update\": %.3f, \"speedup\": %.1f},\n",
                static_cast<long long>(num_updates), overlay_us, rebuild_us,
                speedup);
  out << buf << "  \"serving\": [\n";
  for (std::size_t i = 0; i < serving.size(); ++i) {
    const auto& r = serving[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"updates_per_batch\": %d, \"links_per_sec\": %.1f, "
                  "\"cache_hit_rate\": %.3f, \"invalidated\": %lld, "
                  "\"seconds\": %.4f}%s\n",
                  r.updates_per_batch, r.links_per_sec, r.hit_rate,
                  static_cast<long long>(r.invalidated), r.seconds,
                  i + 1 < serving.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"compaction\": [\n";
  for (std::size_t i = 0; i < compaction.size(); ++i) {
    const auto& r = compaction[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"compact_every\": %lld, \"updates_per_sec\": %.1f, "
                  "\"peak_overlay_depth\": %lld, \"seconds\": %.4f}%s\n",
                  static_cast<long long>(r.cadence), r.updates_per_sec,
                  static_cast<long long>(r.peak_overlay_depth), r.seconds,
                  i + 1 < compaction.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_dynamic.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a PATH argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s'\nusage: %s [--smoke] [--out "
                   "PATH]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  datasets::CoraSimOptions cora;
  cora.num_pos_links = smoke ? 60 : 300;
  const auto data = datasets::make_cora_sim(cora);

  // ---- Section 1: overlay update vs full rebuild ---------------------------
  const std::int64_t num_updates = smoke ? 200 : 2000;
  const std::int64_t num_rebuilds = smoke ? 20 : 100;
  double overlay_us = 0.0, rebuild_us = 0.0;
  {
    auto g = data.graph;
    UpdateStream stream(g, 11);
    util::Stopwatch watch;
    for (std::int64_t i = 0; i < num_updates; ++i) stream.step();
    overlay_us = watch.seconds() * 1e6 / static_cast<double>(num_updates);

    // Rebuild cost per update: each mutation forces a full static rebuild
    // (measured on fewer iterations — it is the slow side by construction).
    util::Stopwatch rw;
    for (std::int64_t i = 0; i < num_rebuilds; ++i) {
      stream.step();
      auto fresh = full_rebuild(g);
      if (fresh.num_edges() != g.num_live_edges()) {
        std::fprintf(stderr, "FATAL: rebuild dropped edges\n");
        return 1;
      }
    }
    rebuild_us = rw.seconds() * 1e6 / static_cast<double>(num_rebuilds);
  }
  const double speedup = overlay_us > 0.0 ? rebuild_us / overlay_us : 0.0;
  std::printf("update_vs_rebuild: overlay %.3fus/update, rebuild "
              "%.3fus/update, speedup %.1fx\n",
              overlay_us, rebuild_us, speedup);
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "FATAL: overlay updates are only %.1fx faster than full "
                 "rebuilds (asserted floor: >= 10x)\n",
                 speedup);
    return 1;
  }

  // ---- Trained predictor for the serving section ---------------------------
  const auto seal_ds = core::prepare_seal_dataset(
      data, /*max_subgraph_nodes=*/32, /*max_drnl_label=*/16,
      seal::default_build_threads(), ag::Dtype::f64);
  models::ModelConfig mc;
  mc.kind = models::GnnKind::kAMDGCNN;
  mc.node_feature_dim = seal_ds.node_feature_dim;
  mc.edge_attr_dim = seal_ds.edge_attr_dim;
  mc.num_classes = seal_ds.num_classes;
  mc.hidden_dim = 16;
  mc.sort_k = 10;
  util::Rng rng(17);
  auto model = models::make_link_gnn(mc, rng);
  models::TrainConfig tc;
  tc.seed = 17;
  models::Trainer trainer(*model, tc);
  (void)trainer.train_epoch(seal_ds.train);

  core::LinkPredictor::Options po;
  po.dataset.extract.num_hops = 2;
  po.dataset.extract.mode = data.neighborhood_mode;
  po.dataset.extract.max_nodes = 32;
  po.dataset.features.max_drnl_label = 16;
  po.warm_nodes = 32;
  po.warm_edges = 32 * 8;

  // ---- Section 2: serving throughput vs update rate ------------------------
  // Each round applies `rate` mutations and then classifies one batch drawn
  // round-robin from a small pool of candidate batches; the pool re-queries
  // the same links so the cache's hit path matters.
  const int rounds = smoke ? 10 : 60;
  const std::size_t batch = smoke ? 8 : 24;
  const std::size_t pool = 3;  // distinct batches cycled round-robin
  std::vector<ServingRow> serving;
  for (const int rate : {0, 1, 4, 16}) {
    auto g = data.graph;
    UpdateStream stream(g, 23);
    po.cache_scores = true;
    core::LinkPredictor cached(*model, po);
    po.cache_scores = false;
    core::LinkPredictor cold(*model, po);

    // Candidate batches from the held-out links (wraps if the pool runs
    // past the end).
    std::vector<std::vector<seal::LinkExample>> batches(pool);
    for (std::size_t p = 0; p < pool; ++p)
      for (std::size_t j = 0; j < batch; ++j)
        batches[p].push_back(
            data.test_links[(p * batch + j) % data.test_links.size()]);

    ServingRow row;
    row.updates_per_batch = rate;
    std::int64_t served = 0;
    for (int r = 0; r < rounds; ++r) {
      for (int u = 0; u < rate; ++u) stream.step();
      const auto& links = batches[static_cast<std::size_t>(r) % pool];
      util::Stopwatch watch;  // only the cached call is in the clock
      const auto got = cached.predict_links(g, links);
      row.seconds += watch.seconds();
      served += static_cast<std::int64_t>(links.size());
      // Coherence gate, sampled so the bench stays affordable; the cold
      // pass runs outside the clock.
      if (r % 5 == 0 &&
          got.proba != cold.predict_links(g, links).proba) {
        std::fprintf(stderr,
                     "FATAL: cached scores diverge from cold path at "
                     "rate %d round %d\n",
                     rate, r);
        return 1;
      }
    }
    row.links_per_sec =
        row.seconds > 0.0 ? static_cast<double>(served) / row.seconds : 0.0;
    const auto& st = cached.cache_stats();
    row.hit_rate = st.hits + st.misses > 0
                       ? static_cast<double>(st.hits) /
                             static_cast<double>(st.hits + st.misses)
                       : 0.0;
    row.invalidated = st.invalidated;
    serving.push_back(row);
    std::printf("serving: rate=%2d  %8.1f links/sec  hit_rate=%.3f  "
                "invalidated=%lld\n",
                rate, row.links_per_sec, row.hit_rate,
                static_cast<long long>(row.invalidated));
  }

  // ---- Section 3: overlay depth vs compaction cadence ----------------------
  const std::int64_t stream_len = smoke ? 400 : 4000;
  std::vector<CompactionRow> compaction;
  for (const std::int64_t cadence : {std::int64_t{0}, std::int64_t{64},
                                     std::int64_t{256}}) {
    auto g = data.graph;
    UpdateStream stream(g, 31);
    CompactionRow row;
    row.cadence = cadence;
    util::Stopwatch watch;
    for (std::int64_t i = 1; i <= stream_len; ++i) {
      stream.step();
      row.peak_overlay_depth =
          std::max(row.peak_overlay_depth, g.overlay_depth());
      if (cadence > 0 && i % cadence == 0) g.compact();
    }
    row.seconds = watch.seconds();
    row.updates_per_sec =
        row.seconds > 0.0 ? static_cast<double>(stream_len) / row.seconds
                          : 0.0;
    compaction.push_back(row);
    std::printf("compaction: every %4lld  %8.1f updates/sec  "
                "peak_depth=%lld\n",
                static_cast<long long>(cadence), row.updates_per_sec,
                static_cast<long long>(row.peak_overlay_depth));
  }

  write_json(out_path, data.name, smoke, num_updates, overlay_us, rebuild_us,
             speedup, serving, compaction);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
