// Reproduces paper Table III: AUC and AP of AM-DGCNN vs vanilla DGCNN on
// all four datasets, each model trained to convergence (10 epochs, the
// paper's observed optimum) with per-dataset auto-tuned hyperparameters.
//
// Paper reference values:
//   PrimeKG      AM 0.99 / 97%   vanilla 0.75 / 55%
//   OGBL-BioKG   AM 0.80 / 75%   vanilla 0.66 / 40%
//   WordNet-18   AM 0.85 / 89%   vanilla 0.52 / 38%
//   Cora         AM 0.91 / 92%   vanilla 0.84 / 88%
//
// Each dataset is additionally trained end-to-end at f32 (the f32-vs-f64
// parity sweep: storage precision must not move the headline metrics), and
// the f32 AM-DGCNN model is re-evaluated through the quantized inference
// engine (f16 and q8 LinkPredictor) on the identical test samples.  Gate:
// the quantized AUC may differ from the exact-f32 AUC by at most
// kQuantAucTolerance — quantization must be accuracy-neutral, not just
// fast (DESIGN.md §2.7).
#include "bench_common.h"

#include "core/link_predictor.h"
#include "metrics/classification.h"

namespace {

/// Exact or quantized forward-only evaluation of a trained f32 model over
/// prebuilt samples, through the same LinkPredictor the serving driver
/// uses.
amdgcnn::metrics::MulticlassEval eval_frozen(
    const amdgcnn::models::LinkGNN& model,
    const std::vector<amdgcnn::seal::SubgraphSample>& samples,
    amdgcnn::ag::quant::Scheme scheme) {
  using namespace amdgcnn;
  core::LinkPredictor::Options opts;
  opts.quantize = scheme;
  core::LinkPredictor predictor(model, opts);
  const std::int64_t c = model.config().num_classes;
  std::vector<double> probs(samples.size() * static_cast<std::size_t>(c));
  std::vector<std::int32_t> labels(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    predictor.predict_proba_sample(samples[i],
                                   probs.data() + i * static_cast<std::size_t>(c));
    labels[i] = samples[i].label;
  }
  return metrics::evaluate_multiclass(probs, c, labels);
}

}  // namespace

int main() {
  using namespace amdgcnn;
  const auto scale = core::bench_scale_from_env();
  bench::print_header(
      "Table III: prediction accuracy of different GNNs (AUC / AP)", scale);

  // Quantized inference is lossy storage, exact accumulation: its AUC must
  // sit within run-to-run noise of the exact f32 evaluation.
  constexpr double kQuantAucTolerance = 0.02;

  util::Table table({"Dataset", "Model", "dtype", "AUC", "AP", "Accuracy",
                     "train-s", "params"});

  struct Entry {
    const char* name;
    datasets::LinkDataset data;
  };
  std::vector<Entry> entries;
  entries.push_back({"PrimeKG", bench::make_primekg(scale)});
  entries.push_back({"OGBL-BioKG", bench::make_biokg(scale)});
  entries.push_back({"WordNet-18", bench::make_wordnet(scale)});
  entries.push_back({"Cora in Planetoid", bench::make_cora(scale)});

  double worst_parity_delta = 0.0;   // |AUC_f32 - AUC_f64|, reported only
  double worst_quant_delta = 0.0;    // |AUC_quant - AUC_f32|, gated
  bool gate_failed = false;

  for (const auto& entry : entries) {
    const auto hp = bench::tuned_params(entry.data.name);

    // f64 reference rows (the long-standing Table III protocol) and the
    // f32 parity rows train on *identically generated* samples — only the
    // feature/parameter storage width differs.
    double auc_f64_am = 0.0;
    for (auto dtype : {ag::Dtype::f64, ag::Dtype::f32}) {
      const auto seal_ds = bench::prepare(entry.data, dtype);
      const char* dname = dtype == ag::Dtype::f64 ? "f64" : "f32";
      for (auto kind :
           {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
        const auto run = core::run_model(seal_ds, kind, hp, /*epochs=*/12);
        table.add_row({entry.name, run.model_name, dname,
                       util::Table::fmt(run.final_eval.metrics.macro_auc, 2),
                       util::Table::fmt(run.final_eval.metrics.macro_precision, 2),
                       util::Table::fmt(run.final_eval.metrics.accuracy, 2),
                       util::Table::fmt(run.train_seconds, 1),
                       std::to_string(run.num_parameters)});
        std::cerr << "[table3] " << entry.name << " / " << run.model_name
                  << " (" << dname << ") done\n";

        const bool am = kind == models::GnnKind::kAMDGCNN;
        if (am && dtype == ag::Dtype::f64)
          auc_f64_am = run.final_eval.metrics.macro_auc;
        if (dtype != ag::Dtype::f32) continue;

        if (am)
          worst_parity_delta =
              std::max(worst_parity_delta,
                       std::abs(run.final_eval.metrics.macro_auc - auc_f64_am));

        // Quantized rows: the SAME trained f32 model evaluated through the
        // f16 / q8 frozen engine on the SAME test samples, so any metric
        // movement is attributable to quantization alone.
        if (!am) continue;
        const double auc_f32 = run.final_eval.metrics.macro_auc;
        for (auto scheme :
             {ag::quant::Scheme::kF16, ag::quant::Scheme::kQ8}) {
          const char* qname = scheme == ag::quant::Scheme::kF16 ? "f16" : "q8";
          const auto ev = eval_frozen(*run.model, seal_ds.test, scheme);
          table.add_row({entry.name, run.model_name, qname,
                         util::Table::fmt(ev.macro_auc, 2),
                         util::Table::fmt(ev.macro_precision, 2),
                         util::Table::fmt(ev.accuracy, 2), "-",
                         std::to_string(run.num_parameters)});
          const double delta = std::abs(ev.macro_auc - auc_f32);
          worst_quant_delta = std::max(worst_quant_delta, delta);
          if (delta > kQuantAucTolerance) {
            std::fprintf(stderr,
                         "FATAL: %s %s AUC %.4f deviates from exact-f32 AUC "
                         "%.4f by %.4f (tolerance %.2f)\n",
                         entry.name, qname, ev.macro_auc, auc_f32, delta,
                         kQuantAucTolerance);
            gate_failed = true;
          }
          std::cerr << "[table3] " << entry.name << " / quantized " << qname
                    << " done\n";
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::printf("\nworst f32-vs-f64 AM AUC delta: %.4f\n", worst_parity_delta);
  std::printf("worst quantized-vs-f32 AM AUC delta: %.4f (gate: <= %.2f)\n",
              worst_quant_delta, kQuantAucTolerance);
  return gate_failed ? 1 : 0;
}
