// Reproduces paper Table III: AUC and AP of AM-DGCNN vs vanilla DGCNN on
// all four datasets, each model trained to convergence (10 epochs, the
// paper's observed optimum) with per-dataset auto-tuned hyperparameters.
//
// Paper reference values:
//   PrimeKG      AM 0.99 / 97%   vanilla 0.75 / 55%
//   OGBL-BioKG   AM 0.80 / 75%   vanilla 0.66 / 40%
//   WordNet-18   AM 0.85 / 89%   vanilla 0.52 / 38%
//   Cora         AM 0.91 / 92%   vanilla 0.84 / 88%
#include "bench_common.h"

int main() {
  using namespace amdgcnn;
  const auto scale = core::bench_scale_from_env();
  bench::print_header(
      "Table III: prediction accuracy of different GNNs (AUC / AP)", scale);

  util::Table table({"Dataset", "Model", "AUC", "AP", "Accuracy",
                     "train-s", "params"});

  struct Entry {
    const char* name;
    datasets::LinkDataset data;
  };
  std::vector<Entry> entries;
  entries.push_back({"PrimeKG", bench::make_primekg(scale)});
  entries.push_back({"OGBL-BioKG", bench::make_biokg(scale)});
  entries.push_back({"WordNet-18", bench::make_wordnet(scale)});
  entries.push_back({"Cora in Planetoid", bench::make_cora(scale)});

  for (const auto& entry : entries) {
    const auto seal_ds = bench::prepare(entry.data);
    const auto hp = bench::tuned_params(entry.data.name);
    for (auto kind :
         {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
      const auto run = core::run_model(seal_ds, kind, hp, /*epochs=*/12);
      table.add_row({entry.name, run.model_name,
                     util::Table::fmt(run.final_eval.metrics.macro_auc, 2),
                     util::Table::fmt(run.final_eval.metrics.macro_precision, 2),
                     util::Table::fmt(run.final_eval.metrics.accuracy, 2),
                     util::Table::fmt(run.train_seconds, 1),
                     std::to_string(run.num_parameters)});
      std::cerr << "[table3] " << entry.name << " / " << run.model_name
                << " done\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
