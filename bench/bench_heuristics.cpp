// Baseline study (paper §I / §VI-A): classical heuristic link scorers vs
// the learned models on the binary link-existence task (cora_sim).
// Supervised heuristic learning should dominate every fixed heuristic.
#include "bench_common.h"

#include "heuristics/scorer.h"

int main() {
  using namespace amdgcnn;
  const auto scale = core::bench_scale_from_env();
  bench::print_header(
      "Heuristic baselines vs supervised heuristic learning (cora_sim)",
      scale);

  auto data = bench::make_cora(scale);
  util::Table table({"method", "test AUC"});

  // Fixed heuristics score the test links directly (no training).
  for (const auto& scorer : heuristics::standard_scorers()) {
    const double auc =
        heuristics::scorer_auc(scorer, data.graph, data.test_links);
    table.add_row({scorer.name, util::Table::fmt(auc, 3)});
    std::cerr << "[heuristics] " << scorer.name << " done\n";
  }

  // Learned models.
  const auto seal_ds = bench::prepare(data);
  const auto hp = bench::tuned_params(data.name);
  for (auto kind :
       {models::GnnKind::kVanillaDGCNN, models::GnnKind::kAMDGCNN}) {
    auto run = core::run_model(seal_ds, kind, hp, /*epochs=*/10);
    table.add_row({std::string("SEAL + ") + run.model_name,
                   util::Table::fmt(run.final_eval.metrics.macro_auc, 3)});
    std::cerr << "[heuristics] " << run.model_name << " done\n";
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
