// Reproduces paper Table II: summary of the four benchmark datasets
// (#node types, #edge types, #nodes, #edges) plus the link-task statistics
// the generators expose.  Paper reference:
//   PrimeKG     10 / 30 / 129,375 / 4,050,249
//   OGBL-BioKG   5 / 51 / 100k    / 4,000,000
//   WordNet-18   1 / 18 / 40,943  / 150k
//   Cora         7 /  1 / 2,708   / 5,429
// (our graphs are scaled down per DESIGN.md §4; type structure is exact).
#include "bench_common.h"

int main() {
  using namespace amdgcnn;
  const auto scale = core::bench_scale_from_env();
  bench::print_header("Table II: summary of datasets", scale);

  util::Table table({"Dataset", "#Node types", "#Edge types", "#Nodes",
                     "#Edges", "#Classes", "train/test links",
                     "edge-attr dim"});

  auto add = [&](const char* name, const datasets::LinkDataset& d) {
    table.add_row({name, std::to_string(d.graph.num_node_types()),
                   std::to_string(d.graph.num_edge_types()),
                   std::to_string(d.graph.num_nodes()),
                   std::to_string(d.graph.num_edges()),
                   std::to_string(d.num_classes),
                   std::to_string(d.train_links.size()) + "/" +
                       std::to_string(d.test_links.size()),
                   std::to_string(d.graph.edge_attr_dim())});
  };
  add("PrimeKG", bench::make_primekg(scale));
  add("OGBL-BioKG", bench::make_biokg(scale));
  add("WordNet-18", bench::make_wordnet(scale));
  add("Cora in Planetoid", bench::make_cora(scale));

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
