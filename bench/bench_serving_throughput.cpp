// Serving-runtime benchmark (DESIGN.md §2.8): batched warm-pool serving
// through serve::Server against the per-request predict_links path it
// replaces, on shared-endpoint candidate workloads.
//
// Workload shape: a small set of hot source nodes, each with a pool of
// candidate destinations; every request fans the hot sources against pool
// slices, and the same (source, destination) pairs recur across requests —
// the recommendation/monitoring pattern the serving runtime is built for
// (hot candidate sets re-scored as the stream cycles).  The baseline scores
// every request from scratch with a fresh-eyes predict_links call (the
// pre-§2.8 serving story: no cross-request state beyond the warm arena);
// the Server amortises via its three cache layers — in-batch dedup +
// cross-query score LRU skip repeat forwards entirely, endpoint frontiers
// and node rows cut the cold-link cost.
//
// Asserted gates (the binary exits non-zero on violation):
//   * speedup — batched warm-pool serving must clear >= 2x the baseline
//     links/sec on BOTH shapes: cora-sim (trained f32 model) and the scale
//     tier (make_scale_kg graph, randomly initialised model — throughput
//     only, accuracy is meaningless there).
//   * bit-identity — every Server response must be byte-identical to the
//     serial cold predict_links answer for the exact schemes (f32 and f64
//     storage), and byte-identical ACROSS WORKER COUNTS for every scheme
//     including the relaxed-numerics f16/q8 quantized forwards.
//
// Output: a table on stdout and BENCH_serving.json (override with --out
// PATH); rows carry per-request p50/p99 latency for both modes plus the
// Server cache hit rates.  --smoke shrinks the workload for CTest.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/link_predictor.h"
#include "datasets/kg_generator.h"
#include "models/trainer.h"
#include "serve/server.h"
#include "util/rng.h"

namespace {

using namespace amdgcnn;

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

double rate(std::int64_t hits, std::int64_t misses) {
  const auto total = hits + misses;
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

bool identical(const core::LinkPredictions& a, const core::LinkPredictions& b) {
  return a.proba.size() == b.proba.size() && a.labels == b.labels &&
         std::memcmp(a.proba.data(), b.proba.data(),
                     a.proba.size() * sizeof(double)) == 0;
}

/// Hot-pool candidate stream: `hot.size()` sources, each with a `pool`-wide
/// destination set; request r, slot j scores hot[(r + j) % H] against its
/// pool entry (r * 7 + j) % P.  Within one request all pairs are distinct;
/// across requests the same pairs recur — total/distinct is the repeat
/// factor the cross-query cache can harvest.
std::vector<std::vector<seal::LinkExample>> hot_pool_requests(
    const graph::KnowledgeGraph& g, const std::vector<graph::NodeId>& hot,
    std::size_t pool, std::size_t per_request, std::size_t requests,
    std::uint64_t seed) {
  util::Rng rng(seed);
  const auto n = static_cast<std::uint64_t>(g.num_nodes());
  std::vector<std::vector<graph::NodeId>> pools(hot.size());
  for (std::size_t h = 0; h < hot.size(); ++h)
    while (pools[h].size() < pool) {
      const auto b = static_cast<graph::NodeId>(rng.uniform_int(n));
      if (b != hot[h]) pools[h].push_back(b);
    }
  std::vector<std::vector<seal::LinkExample>> out(requests);
  for (std::size_t r = 0; r < requests; ++r)
    for (std::size_t j = 0; j < per_request; ++j) {
      const auto h = (r + j) % hot.size();
      out[r].push_back({hot[h], pools[h][(r * 7 + j) % pool], 0});
    }
  return out;
}

struct ShapeRow {
  std::string shape;
  std::int64_t links = 0;     // total across all requests
  std::int64_t distinct = 0;  // unique (a, b) pairs in the stream
  double base_links_per_sec = 0.0;
  double base_p50_ms = 0.0, base_p99_ms = 0.0;
  double serve_links_per_sec = 0.0;
  double serve_p50_ms = 0.0, serve_p99_ms = 0.0;
  double speedup = 0.0;
  double score_hit_rate = 0.0;
  double endpoint_hit_rate = 0.0;
  double row_hit_rate = 0.0;
};

std::int64_t count_distinct(
    const std::vector<std::vector<seal::LinkExample>>& requests) {
  std::vector<std::uint64_t> keys;
  for (const auto& r : requests)
    for (const auto& l : r)
      keys.push_back((static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(l.a))
                      << 32) |
                     static_cast<std::uint32_t>(l.b));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return static_cast<std::int64_t>(keys.size());
}

/// Time both modes over one request stream and enforce the identity and
/// speedup gates.  Returns false on a gate violation (after printing it).
bool run_shape(const char* shape, const core::LinkPredictor& predictor,
               const graph::KnowledgeGraph& g,
               const std::vector<std::vector<seal::LinkExample>>& requests,
               ShapeRow& row) {
  row.shape = shape;
  row.distinct = count_distinct(requests);
  std::vector<core::LinkPredictions> base_results;
  base_results.reserve(requests.size());

  // Baseline: one fresh-eyes predict_links call per request (warm arena,
  // per-thread frontier reuse — everything the pre-serving path already had,
  // but no cross-request state).
  std::vector<double> base_ms;
  double base_seconds = 0.0;
  for (const auto& links : requests) {
    util::Stopwatch watch;
    base_results.push_back(predictor.predict_links(g, links));
    const double s = watch.seconds();
    base_seconds += s;
    base_ms.push_back(s * 1e3);
    row.links += static_cast<std::int64_t>(links.size());
  }

  // Batched warm-pool serving over the SAME stream.
  serve::Server server(predictor, g, {});
  std::vector<double> serve_ms;
  double serve_seconds = 0.0;
  std::vector<core::LinkPredictions> serve_results;
  serve_results.reserve(requests.size());
  for (const auto& links : requests) {
    util::Stopwatch watch;
    serve_results.push_back(server.score_batch(links));
    const double s = watch.seconds();
    serve_seconds += s;
    serve_ms.push_back(s * 1e3);
  }

  // Identity gate (outside the clock): every response byte-equal to the
  // serial cold path, and to a second server with a different worker count.
  serve::ServerOptions multi;
  multi.num_workers = 2;
  serve::Server server2(predictor, g, multi);
  for (std::size_t r = 0; r < requests.size(); ++r) {
    if (!identical(serve_results[r], base_results[r])) {
      std::fprintf(stderr,
                   "FATAL: %s request %zu: server response diverges from the "
                   "serial cold path\n",
                   shape, r);
      return false;
    }
    if (!identical(server2.score_batch(requests[r]), base_results[r])) {
      std::fprintf(stderr,
                   "FATAL: %s request %zu: response depends on the worker "
                   "count\n",
                   shape, r);
      return false;
    }
  }

  const auto total = static_cast<double>(row.links);
  row.base_links_per_sec = base_seconds > 0.0 ? total / base_seconds : 0.0;
  row.base_p50_ms = percentile(base_ms, 0.50);
  row.base_p99_ms = percentile(base_ms, 0.99);
  row.serve_links_per_sec = serve_seconds > 0.0 ? total / serve_seconds : 0.0;
  row.serve_p50_ms = percentile(serve_ms, 0.50);
  row.serve_p99_ms = percentile(serve_ms, 0.99);
  row.speedup = row.base_links_per_sec > 0.0
                    ? row.serve_links_per_sec / row.base_links_per_sec
                    : 0.0;
  const auto s = server.stats();
  row.score_hit_rate = rate(s.score_hits, s.score_misses);
  row.endpoint_hit_rate = rate(s.endpoint_hits, s.endpoint_misses);
  row.row_hit_rate = rate(s.row_hits, s.row_misses);

  std::printf("%-10s links=%5lld distinct=%4lld  baseline %8.1f l/s "
              "(p50 %6.2fms p99 %6.2fms)  serve %8.1f l/s (p50 %6.2fms "
              "p99 %6.2fms)  speedup %.2fx  score-hit %.3f\n",
              shape, static_cast<long long>(row.links),
              static_cast<long long>(row.distinct), row.base_links_per_sec,
              row.base_p50_ms, row.base_p99_ms, row.serve_links_per_sec,
              row.serve_p50_ms, row.serve_p99_ms, row.speedup,
              row.score_hit_rate);
  if (row.speedup < 2.0) {
    std::fprintf(stderr,
                 "FATAL: %s: batched warm-pool serving is only %.2fx the "
                 "per-request baseline (asserted floor: >= 2x)\n",
                 shape, row.speedup);
    return false;
  }
  return true;
}

void write_json(const std::string& path, bool smoke,
                const std::vector<ShapeRow>& shapes, bool identity_exact,
                bool identity_quant) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  char buf[640];
  out << "{\n  \"bench\": \"serving_throughput\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"gate\": {\"min_speedup\": 2.0},\n"
      << "  \"identity\": {\"exact_vs_cold\": "
      << (identity_exact ? "true" : "false")
      << ", \"quant_worker_invariant\": "
      << (identity_quant ? "true" : "false") << "},\n"
      << "  \"shapes\": [\n";
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const auto& r = shapes[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"shape\": \"%s\", \"links\": %lld, \"distinct\": %lld, "
        "\"baseline_links_per_sec\": %.1f, \"baseline_p50_ms\": %.3f, "
        "\"baseline_p99_ms\": %.3f, \"serve_links_per_sec\": %.1f, "
        "\"serve_p50_ms\": %.3f, \"serve_p99_ms\": %.3f, "
        "\"speedup\": %.2f, \"score_hit_rate\": %.3f, "
        "\"endpoint_hit_rate\": %.3f, \"row_hit_rate\": %.3f}%s\n",
        r.shape.c_str(), static_cast<long long>(r.links),
        static_cast<long long>(r.distinct), r.base_links_per_sec,
        r.base_p50_ms, r.base_p99_ms, r.serve_links_per_sec, r.serve_p50_ms,
        r.serve_p99_ms, r.speedup, r.score_hit_rate, r.endpoint_hit_rate,
        r.row_hit_rate, i + 1 < shapes.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serving.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a PATH argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s'\nusage: %s [--smoke] [--out "
                   "PATH]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  std::vector<ShapeRow> shapes;

  // ---- Shape 1: cora-sim, trained models (f32 gated; f64 identity) --------
  datasets::CoraSimOptions cora;
  cora.num_pos_links = smoke ? 60 : 300;
  const auto data = datasets::make_cora_sim(cora);

  auto train_model = [&](ag::Dtype dtype) {
    const auto seal_ds = core::prepare_seal_dataset(
        data, /*max_subgraph_nodes=*/32, /*max_drnl_label=*/16,
        seal::default_build_threads(), dtype);
    models::ModelConfig mc;
    mc.kind = models::GnnKind::kAMDGCNN;
    mc.node_feature_dim = seal_ds.node_feature_dim;
    mc.edge_attr_dim = seal_ds.edge_attr_dim;
    mc.num_classes = seal_ds.num_classes;
    mc.hidden_dim = 16;
    mc.sort_k = 10;
    mc.dtype = dtype;
    util::Rng rng(17);
    auto model = models::make_link_gnn(mc, rng);
    models::TrainConfig tc;
    tc.seed = 17;
    tc.dtype = dtype;
    models::Trainer trainer(*model, tc);
    (void)trainer.train_epoch(seal_ds.train);
    return model;
  };
  const auto model_f32 = train_model(ag::Dtype::f32);
  const auto model_f64 = train_model(ag::Dtype::f64);

  auto cora_options = [&](ag::Dtype dtype) {
    core::LinkPredictor::Options po;
    po.dataset.extract.num_hops = 2;
    po.dataset.extract.mode = data.neighborhood_mode;
    po.dataset.extract.max_nodes = 32;
    po.dataset.features.max_drnl_label = 16;
    po.dataset.features.dtype = dtype;
    po.warm_nodes = 32;
    po.warm_edges = 32 * 8;
    return po;
  };

  // Hot sources drawn from the held-out links so they sit inside the
  // connected component the model was trained on.
  std::vector<graph::NodeId> cora_hot;
  for (const auto& l : data.test_links) {
    if (std::find(cora_hot.begin(), cora_hot.end(), l.a) == cora_hot.end())
      cora_hot.push_back(l.a);
    if (cora_hot.size() == (smoke ? 3u : 4u)) break;
  }
  const auto cora_requests = hot_pool_requests(
      data.graph, cora_hot, /*pool=*/smoke ? 8 : 32,
      /*per_request=*/smoke ? 12 : 32, /*requests=*/smoke ? 12 : 24,
      /*seed=*/101);

  {
    const core::LinkPredictor predictor(*model_f32, cora_options(ag::Dtype::f32));
    ShapeRow row;
    if (!run_shape("cora-sim", predictor, data.graph, cora_requests, row))
      return 1;
    shapes.push_back(row);
  }

  // f64 identity: a smaller stream, identity-gated but not throughput-gated
  // (the gate above already covers the serving dtype; this pins the exact
  // f64 path to the same bytes-equal contract).
  bool identity_exact = true;
  {
    const core::LinkPredictor predictor(*model_f64, cora_options(ag::Dtype::f64));
    const auto f64_requests = hot_pool_requests(
        data.graph, cora_hot, /*pool=*/6, /*per_request=*/8, /*requests=*/4,
        /*seed=*/103);
    serve::ServerOptions so;
    so.num_workers = 2;
    serve::Server server(predictor, data.graph, so);
    for (const auto& links : f64_requests)
      if (!identical(server.score_batch(links),
                     predictor.predict_links(data.graph, links))) {
        std::fprintf(stderr,
                     "FATAL: f64 server response diverges from the serial "
                     "cold path\n");
        return 1;
      }
  }

  // Quantized schemes: relaxed numerics, so the contract is worker-count
  // invariance (same bytes from 1 worker and 3), not equality with exact.
  bool identity_quant = true;
  for (const auto scheme : {ag::quant::Scheme::kF16, ag::quant::Scheme::kQ8}) {
    auto po = cora_options(ag::Dtype::f32);
    po.quantize = scheme;
    const core::LinkPredictor predictor(*model_f32, po);
    serve::ServerOptions one;
    one.num_workers = 1;
    serve::ServerOptions three;
    three.num_workers = 3;
    serve::Server s1(predictor, data.graph, one);
    serve::Server s3(predictor, data.graph, three);
    const auto quant_requests = hot_pool_requests(
        data.graph, cora_hot, /*pool=*/6, /*per_request=*/8, /*requests=*/4,
        /*seed=*/107);
    for (const auto& links : quant_requests)
      if (!identical(s1.score_batch(links), s3.score_batch(links))) {
        std::fprintf(stderr,
                     "FATAL: %s server responses depend on the worker count\n",
                     ag::quant::scheme_name(scheme));
        return 1;
      }
  }

  // ---- Shape 2: scale tier, randomly initialised model ---------------------
  {
    datasets::ScaleKGOptions o;
    o.num_nodes = smoke ? 20'000 : 200'000;
    o.seed = 7;
    const auto g = datasets::make_scale_kg(o);

    core::LinkPredictor::Options po;
    po.dataset.extract.num_hops = 2;
    po.dataset.extract.max_nodes = 32;
    po.dataset.features.max_drnl_label = 16;
    po.dataset.features.dtype = ag::Dtype::f32;
    po.warm_nodes = 32;
    po.warm_edges = 32 * 8;

    models::ModelConfig mc;
    mc.kind = models::GnnKind::kAMDGCNN;
    mc.node_feature_dim = seal::node_feature_dim(g, po.dataset.features);
    mc.edge_attr_dim = g.edge_attr_dim();
    mc.num_classes = 2;
    mc.hidden_dim = 16;
    mc.sort_k = 10;
    mc.dtype = ag::Dtype::f32;
    util::Rng rng(19);
    const auto model = models::make_link_gnn(mc, rng);
    const core::LinkPredictor predictor(*model, po);

    // Hot sources away from the low-id hubs (mid-range ids have the typical
    // degree shape; hubs would blow every subgraph to max_nodes).
    std::vector<graph::NodeId> hot;
    for (std::size_t h = 0; h < (smoke ? 3u : 4u); ++h)
      hot.push_back(static_cast<graph::NodeId>(g.num_nodes() / 2 +
                                               static_cast<std::int64_t>(h) *
                                                   997));
    const auto requests = hot_pool_requests(
        g, hot, /*pool=*/smoke ? 8 : 32, /*per_request=*/smoke ? 12 : 32,
        /*requests=*/smoke ? 12 : 24, /*seed=*/113);
    ShapeRow row;
    if (!run_shape("scale-kg", predictor, g, requests, row)) return 1;
    shapes.push_back(row);
  }

  write_json(out_path, smoke, shapes, identity_exact, identity_quant);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
