// Reproduces paper Fig. 5 (a, b): AUC vs training epochs on OGBL-BioKG under
// default (Cora-tuned) and per-dataset auto-tuned hyperparameters.
#include "bench_common.h"

int main() {
  using namespace amdgcnn;
  bench::run_epoch_sweep(bench::make_biokg(core::bench_scale_from_env()),
                         "Fig5");
  return 0;
}
