// Reproduces paper Fig. 8 (a, b): AUC vs number of training samples on
// OGBL-BioKG (10 training epochs) under default and auto-tuned
// hyperparameters.  Paper: AM-DGCNN reaches ~0.8 AUC with ~2/3 of the
// (already scarce) training samples.
#include "bench_common.h"

int main() {
  using namespace amdgcnn;
  bench::run_sample_sweep(bench::make_biokg(core::bench_scale_from_env()),
                          "Fig8");
  return 0;
}
