// Reproduces paper Fig. 6 (a, b): AUC vs training epochs on WordNet-18 under
// default (Cora-tuned) and per-dataset auto-tuned hyperparameters.  The
// paper's starkest panel: without node features the vanilla DGCNN stays at
// chance while AM-DGCNN climbs on edge attributes alone.
#include "bench_common.h"

int main() {
  using namespace amdgcnn;
  bench::run_epoch_sweep(bench::make_wordnet(core::bench_scale_from_env()),
                         "Fig6");
  return 0;
}
