// google-benchmark micro-benchmarks for the kernels the training loop lives
// in: GAT vs GCN layer forward/backward (the paper's "without a significant
// cost to computational latency" claim), subgraph extraction, DRNL, sort
// pooling and the conv read-out head.
#include <benchmark/benchmark.h>

#include "datasets/wordnet_sim.h"
#include "graph/subgraph.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "seal/drnl.h"
#include "seal/feature_builder.h"
#include "tensor/conv_ops.h"
#include "tensor/fwd_kernels.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace {

using namespace amdgcnn;

/// Random subgraph-shaped inputs: n nodes, ~3n directed edges.
struct LayerFixture {
  std::int64_t n;
  ag::Tensor x;
  std::vector<std::int64_t> src, dst;
  ag::Tensor edge_attr;

  LayerFixture(std::int64_t nodes, std::int64_t feat, std::int64_t edge_dim,
               std::uint64_t seed)
      : n(nodes) {
    util::Rng rng(seed);
    x = ag::Tensor::randn({n, feat}, rng);
    const std::int64_t e = 3 * n;
    for (std::int64_t i = 0; i < e; ++i) {
      auto a = static_cast<std::int64_t>(rng.uniform_int(
          static_cast<std::uint64_t>(n)));
      auto b = static_cast<std::int64_t>(rng.uniform_int(
          static_cast<std::uint64_t>(n)));
      if (a == b) continue;
      src.push_back(a);
      dst.push_back(b);
      src.push_back(b);
      dst.push_back(a);
    }
    if (edge_dim > 0)
      edge_attr = ag::Tensor::randn(
          {static_cast<std::int64_t>(src.size()), edge_dim}, rng);
  }
};

void BM_GCNConvForwardBackward(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  LayerFixture fix(n, 32, 0, 1);
  util::Rng rng(2);
  nn::GCNConv layer(32, 32, rng);
  for (auto _ : state) {
    auto out = layer.forward(fix.x, fix.src, fix.dst, fix.n);
    auto loss = ag::ops::mean(ag::ops::mul(out, out));
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
    for (auto p : layer.parameters()) p.zero_grad();
  }
  state.SetItemsProcessed(state.iterations() * fix.src.size());
}
BENCHMARK(BM_GCNConvForwardBackward)->Arg(16)->Arg(48)->Arg(128);

void BM_GATConvForwardBackward(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t edge_dim = state.range(1);
  LayerFixture fix(n, 32, edge_dim, 1);
  util::Rng rng(2);
  nn::GATConv layer(32, 8, 4, edge_dim, rng);
  for (auto _ : state) {
    auto out =
        layer.forward(fix.x, fix.src, fix.dst, fix.edge_attr, fix.n);
    auto loss = ag::ops::mean(ag::ops::mul(out, out));
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
    for (auto p : layer.parameters()) p.zero_grad();
  }
  state.SetItemsProcessed(state.iterations() * fix.src.size());
}
BENCHMARK(BM_GATConvForwardBackward)
    ->Args({16, 0})
    ->Args({48, 0})
    ->Args({48, 18})
    ->Args({128, 18});

void BM_SubgraphExtraction(benchmark::State& state) {
  datasets::WordNetSimOptions opts;
  opts.num_nodes = 2000;
  opts.num_train = 10;
  opts.num_test = 5;
  auto data = datasets::make_wordnet_sim(opts);
  graph::ExtractOptions eo;
  eo.num_hops = 2;
  eo.max_nodes = state.range(0);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto a = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(data.graph.num_nodes())));
    const auto b = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(data.graph.num_nodes())));
    if (a == b) continue;
    auto sub = graph::extract_enclosing_subgraph(data.graph, a, b, eo);
    benchmark::DoNotOptimize(sub.num_nodes());
  }
}
BENCHMARK(BM_SubgraphExtraction)->Arg(32)->Arg(128);

void BM_DrnlLabeling(benchmark::State& state) {
  datasets::WordNetSimOptions opts;
  opts.num_nodes = 1000;
  opts.num_train = 10;
  opts.num_test = 5;
  auto data = datasets::make_wordnet_sim(opts);
  graph::ExtractOptions eo;
  eo.max_nodes = 64;
  auto sub = graph::extract_enclosing_subgraph(data.graph, 1, 2, eo);
  for (auto _ : state) {
    auto labels = seal::drnl_labels(sub);
    benchmark::DoNotOptimize(labels.data());
  }
}
BENCHMARK(BM_DrnlLabeling);

void BM_SortPooling(benchmark::State& state) {
  util::Rng rng(4);
  auto x = ag::Tensor::randn({state.range(0), 97}, rng);
  for (auto _ : state) {
    auto out = ag::ops::sort_pool(x, 30);
    benchmark::DoNotOptimize(out.item(0));
  }
}
BENCHMARK(BM_SortPooling)->Arg(16)->Arg(64)->Arg(256);

void BM_ConvReadoutHead(benchmark::State& state) {
  util::Rng rng(5);
  const std::int64_t k = 30, channels = 97;
  auto pooled = ag::Tensor::randn({k, channels}, rng);
  auto w1 = ag::Tensor::randn({16, channels}, rng).requires_grad(true);
  auto w2 = ag::Tensor::randn({32, 16 * 5}, rng).requires_grad(true);
  for (auto _ : state) {
    auto seq = ag::ops::reshape(pooled, {1, k * channels});
    auto c1 = ag::ops::relu(ag::ops::conv1d(seq, w1, ag::Tensor(), channels,
                                            channels));
    auto p = ag::ops::max_pool1d(c1, 2, 2);
    auto c2 = ag::ops::relu(ag::ops::conv1d(p, w2, ag::Tensor(), 5, 1));
    auto loss = ag::ops::mean(c2);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
    w1.zero_grad();
    w2.zero_grad();
  }
}
BENCHMARK(BM_ConvReadoutHead);

// ---- Quantized-inference primitives (DESIGN.md §2.7) ----------------------
// The decode kernels and the decode+matmul composite the q8 arena forward is
// built from, timed at the MP-layer weight shape (hidden 64).

void BM_F16DecodeRow(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(6);
  auto t = ag::Tensor::randn({n}, rng, ag::Dtype::f32);
  const auto qt = ag::quant::quantize_tensor(t, ag::quant::Scheme::kF16);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    qt.decode(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(float));
}
BENCHMARK(BM_F16DecodeRow)->Arg(4096)->Arg(65536);

void BM_Q8DecodeRow(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(7);
  auto t = ag::Tensor::randn({n}, rng, ag::Dtype::f32);
  const auto qt = ag::quant::quantize_tensor(t, ag::quant::Scheme::kQ8);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    qt.decode(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(float));
}
BENCHMARK(BM_Q8DecodeRow)->Arg(4096)->Arg(65536);

void BM_Q8DecodeMatmul(benchmark::State& state) {
  // decode(q8 weight) + mm_add at the quant forward's MP shape:
  // x(n x 64) · W(64 x 64), weight decoded into scratch per call exactly as
  // FrozenModel::forward_quant does.
  const std::int64_t n = state.range(0), kDim = 64, m = 64;
  util::Rng rng(8);
  auto w = ag::Tensor::randn({kDim, m}, rng, ag::Dtype::f32);
  const auto qw = ag::quant::quantize_tensor(w, ag::quant::Scheme::kQ8);
  auto x = ag::Tensor::randn({n, kDim}, rng, ag::Dtype::f32);
  std::vector<float> wdec(static_cast<std::size_t>(kDim * m));
  std::vector<float> out(static_cast<std::size_t>(n * m));
  const float* xd = x.data_as<float>().data();
  for (auto _ : state) {
    qw.decode(wdec.data());
    std::fill(out.begin(), out.end(), 0.0f);
    ag::kern::mm_add(xd, wdec.data(), out.data(), n, kDim, m);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * kDim * m);
}
BENCHMARK(BM_Q8DecodeMatmul)->Arg(16)->Arg(48)->Arg(128);

void BM_F32Matmul(benchmark::State& state) {
  // The exact-path counterpart of BM_Q8DecodeMatmul (no decode step).
  const std::int64_t n = state.range(0), kDim = 64, m = 64;
  util::Rng rng(9);
  auto w = ag::Tensor::randn({kDim, m}, rng, ag::Dtype::f32);
  auto x = ag::Tensor::randn({n, kDim}, rng, ag::Dtype::f32);
  const float* xd = x.data_as<float>().data();
  const float* wd = w.data_as<float>().data();
  std::vector<float> out(static_cast<std::size_t>(n * m));
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    ag::kern::mm_add(xd, wd, out.data(), n, kDim, m);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * kDim * m);
}
BENCHMARK(BM_F32Matmul)->Arg(16)->Arg(48)->Arg(128);

void BM_FastTanhRow(benchmark::State& state) {
  // The relaxed rational tanh vs libm, at the per-query activation volume
  // of the tuned model (3 layers x 48 x 64).
  const std::int64_t n = 9216;
  std::vector<float> x(static_cast<std::size_t>(n)), y(x.size());
  for (std::int64_t i = 0; i < n; ++i)
    x[i] = -4.0f + 8.0f * static_cast<float>(i) / static_cast<float>(n);
  const bool relaxed = state.range(0) != 0;
  for (auto _ : state) {
    if (relaxed)
      for (std::int64_t i = 0; i < n; ++i) y[i] = ag::fwd::fast_tanh(x[i]);
    else
      for (std::int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(relaxed ? "fast_tanh" : "std::tanh");
}
BENCHMARK(BM_FastTanhRow)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
