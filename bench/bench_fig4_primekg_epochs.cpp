// Reproduces paper Fig. 4 (a, b): AUC vs training epochs on PrimeKG under
// default (Cora-tuned) and per-dataset auto-tuned hyperparameters.
#include "bench_common.h"

int main() {
  using namespace amdgcnn;
  bench::run_epoch_sweep(bench::make_primekg(core::bench_scale_from_env()),
                         "Fig4");
  return 0;
}
