// The related-work progression (paper §VI) on one knowledge-graph task:
//
//   heuristic features + decision tree        (Katragadda et al.)
//   heuristic features + logistic regression  (Vasavada & Wang)
//   WLNM                                      (Zhang & Chen 2017)
//   SEAL + vanilla DGCNN                      (Zhang & Chen 2018)
//   SEAL + AM-DGCNN                           (this paper)
//
// All five classify primekg_sim drug-disease links into 3 classes.  The
// expected ordering is monotone: learned subgraph models beat fixed-feature
// classifiers, and the edge-aware model beats them all (only it can read
// the polarity signal).
#include "bench_common.h"

#include "baselines/decision_tree.h"
#include "baselines/logistic_regression.h"
#include "baselines/wlnm.h"
#include "heuristics/pair_features.h"

int main() {
  using namespace amdgcnn;
  const auto scale = core::bench_scale_from_env();
  bench::print_header(
      "Related-work baselines vs AM-DGCNN on primekg_sim (3-class)", scale);

  auto data = bench::make_primekg(scale);
  util::Table table({"method", "AUC", "AP"});

  // ---- Heuristic-feature classifiers ----------------------------------------
  const auto dims =
      static_cast<std::int64_t>(heuristics::pair_feature_names().size());
  std::vector<std::pair<graph::NodeId, graph::NodeId>> train_pairs,
      test_pairs;
  std::vector<std::int32_t> train_y, test_y;
  for (const auto& l : data.train_links) {
    train_pairs.push_back({l.a, l.b});
    train_y.push_back(l.label);
  }
  for (const auto& l : data.test_links) {
    test_pairs.push_back({l.a, l.b});
    test_y.push_back(l.label);
  }
  std::cerr << "[baselines] extracting pair features...\n";
  auto train_x = heuristics::pair_feature_matrix(data.graph, train_pairs);
  auto test_x = heuristics::pair_feature_matrix(data.graph, test_pairs);
  const auto scaler = heuristics::FeatureScaler::fit(
      train_x, static_cast<std::size_t>(dims));
  scaler.apply(train_x);
  scaler.apply(test_x);

  auto record = [&](const std::string& name,
                    const std::vector<double>& probs) {
    const auto ev =
        metrics::evaluate_multiclass(probs, data.num_classes, test_y);
    table.add_row({name, util::Table::fmt(ev.macro_auc, 3),
                   util::Table::fmt(ev.macro_precision, 3)});
    std::cerr << "[baselines] " << name << " -> AUC " << ev.macro_auc
              << "\n";
  };

  {
    baselines::DecisionTree tree(dims, data.num_classes);
    tree.fit(train_x, train_y);
    record("heuristics + decision tree", tree.predict_proba(test_x));
  }
  {
    baselines::LogisticRegression lr(dims, data.num_classes);
    lr.fit(train_x, train_y);
    record("heuristics + logistic regression", lr.predict_proba(test_x));
  }

  // ---- WLNM ------------------------------------------------------------------
  {
    baselines::WlnmOptions wopts;
    wopts.vertex_budget = 10;
    wopts.epochs = scale == core::BenchScale::kFull ? 60 : 40;
    baselines::Wlnm wlnm(data.num_classes, wopts);
    std::cerr << "[baselines] training WLNM...\n";
    wlnm.fit(data.graph, data.train_links);
    record("WLNM", wlnm.predict_proba(data.graph, data.test_links));
  }

  // ---- SEAL + GNNs --------------------------------------------------------------
  const auto seal_ds = bench::prepare(data);
  const auto hp = bench::tuned_params(data.name);
  for (auto kind :
       {models::GnnKind::kVanillaDGCNN, models::GnnKind::kAMDGCNN}) {
    std::cerr << "[baselines] training SEAL + "
              << models::gnn_kind_name(kind) << "...\n";
    auto run = core::run_model(seal_ds, kind, hp, /*epochs=*/10);
    table.add_row({std::string("SEAL + ") + run.model_name,
                   util::Table::fmt(run.final_eval.metrics.macro_auc, 3),
                   util::Table::fmt(
                       run.final_eval.metrics.macro_precision, 3)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
