// Reproduces paper Fig. 3: AUC vs training epochs (2..12) on Cora with
// auto-tuned hyperparameters.  Cora has no edge attributes, so this panel
// isolates GAT-vs-GCN node message passing; the paper shows AM-DGCNN
// consistently above vanilla with both peaking near epoch 10.
//
// This bench additionally RUNS the Bayesian-optimization tuning on Cora
// (paper experiment set (i)) — the winning configuration is the "default
// hyperparameters" every other figure's (a) panel reuses.
#include "bench_common.h"

int main() {
  using namespace amdgcnn;
  const auto scale = core::bench_scale_from_env();
  auto data = bench::make_cora(scale);

  // Live Cora tuning (the source of core::cora_tuned_defaults()).
  {
    const auto seal_ds = bench::prepare(data);
    hpo::BayesOptOptions opts;
    opts.num_initial = scale == core::BenchScale::kFull ? 4 : 2;
    opts.num_iterations = scale == core::BenchScale::kFull ? 6 : 2;
    auto tuned = core::tune_model(seal_ds, models::GnnKind::kAMDGCNN, opts,
                                  /*tune_epochs=*/3,
                                  /*max_train_samples=*/200,
                                  /*max_val_samples=*/120);
    std::cout << "# Cora auto-tuning (AM-DGCNN): best " << tuned.best.to_string()
              << " val-AUC " << util::Table::fmt(tuned.best_value, 3) << "\n"
              << "# (library default cora_tuned_defaults(): "
              << core::cora_tuned_defaults().to_string() << ")\n";
  }

  bench::run_epoch_sweep(data, "Fig3", /*include_default_panel=*/false);
  return 0;
}
