// Ablation study over the design choices DESIGN.md §6 calls out:
//   1. union vs intersection enclosing subgraphs (paper §III-A),
//   2. DRNL one-hot on/off (paper §II-B),
//   3. edge attributes in attention on/off (the paper's thesis),
//   4. attention heads 1/2/4,
//   5. node2vec features on/off (paper: no gain on KGs).
// Each variant trains AM-DGCNN for 10 epochs on primekg_sim (plus
// wordnet_sim for the edge-attribute ablation, where the effect is
// starkest).
#include "bench_common.h"

#include "embed/node2vec.h"

namespace {

using namespace amdgcnn;

struct Variant {
  std::string name;
  seal::SealDatasetOptions dataset;
  models::ModelConfig model;  // kind/hidden/etc partially filled
};

double run_variant(const datasets::LinkDataset& data, const Variant& v,
                   const hpo::HyperParams& hp, std::int64_t epochs) {
  seal::SealDatasetOptions build_opts = v.dataset;
  build_opts.num_threads = seal::default_build_threads();
  auto ds = seal::build_seal_dataset(data.graph, data.train_links,
                                     data.test_links, data.num_classes,
                                     build_opts);
  models::ModelConfig mc = v.model;
  mc.node_feature_dim = ds.node_feature_dim;
  mc.edge_attr_dim = ds.edge_attr_dim;
  mc.num_classes = ds.num_classes;
  mc.hidden_dim = hp.hidden_dim;
  mc.sort_k = hp.sort_k;

  models::TrainConfig tc;
  tc.learning_rate = hp.learning_rate;
  tc.epochs = epochs;

  util::Rng rng(41);
  auto model = models::make_link_gnn(mc, rng);
  models::Trainer trainer(*model, tc);
  trainer.fit(ds.train, {}, 0);
  return trainer.evaluate(ds.test).metrics.macro_auc;
}

}  // namespace

int main() {
  using namespace amdgcnn;
  const auto scale = core::bench_scale_from_env();
  bench::print_header("Ablations over AM-DGCNN design choices", scale);

  auto primekg = bench::make_primekg(scale);
  auto wordnet = bench::make_wordnet(scale);
  const auto hp_prime = bench::tuned_params(primekg.name);
  const auto hp_word = bench::tuned_params(wordnet.name);

  seal::SealDatasetOptions base_ds;
  base_ds.extract.num_hops = 2;
  base_ds.extract.max_nodes = 32;
  base_ds.extract.mode = graph::NeighborhoodMode::kIntersection;
  base_ds.features.max_drnl_label = 24;
  models::ModelConfig base_model;
  base_model.kind = models::GnnKind::kAMDGCNN;

  const std::int64_t epochs = scale == core::BenchScale::kFull ? 10 : 8;
  util::Table table({"dataset", "variant", "test AUC"});
  auto record = [&](const datasets::LinkDataset& data, const Variant& v,
                    const hpo::HyperParams& hp) {
    const double auc = run_variant(data, v, hp, epochs);
    table.add_row({data.name, v.name, util::Table::fmt(auc, 3)});
    std::cerr << "[ablation] " << data.name << " / " << v.name << " -> "
              << auc << "\n";
  };

  // 1. Baseline + neighborhood rule.
  {
    Variant v{"baseline (intersection, paper's choice)", base_ds, base_model};
    record(primekg, v, hp_prime);
    v.name = "union neighborhoods";
    v.dataset.extract.mode = graph::NeighborhoodMode::kUnion;
    record(primekg, v, hp_prime);
  }
  // 2. DRNL off.
  {
    Variant v{"no DRNL labels", base_ds, base_model};
    v.dataset.features.use_drnl = false;
    record(primekg, v, hp_prime);
  }
  // 3. Edge attributes off (both datasets).
  {
    Variant v{"no edge attributes in attention", base_ds, base_model};
    v.model.use_edge_attr = false;
    record(primekg, v, hp_prime);
    Variant w = v;
    w.dataset.extract.mode = graph::NeighborhoodMode::kUnion;
    w.dataset.extract.max_nodes = 32;
    record(wordnet, w, hp_word);
    Variant w_base{"baseline (union)", w.dataset, base_model};
    record(wordnet, w_base, hp_word);
  }
  // 4. Attention heads.
  for (std::int64_t heads : {1, 2, 4}) {
    Variant v{"heads=" + std::to_string(heads), base_ds, base_model};
    v.model.heads = heads;
    record(primekg, v, hp_prime);
  }
  // 5. node2vec features appended (paper found no benefit on KGs).
  {
    Variant v{"with node2vec embeddings", base_ds, base_model};
    embed::Node2VecOptions n2v;
    n2v.dimensions = 16;
    n2v.walk.walks_per_node = scale == core::BenchScale::kFull ? 5 : 2;
    n2v.walk.walk_length = 10;
    n2v.epochs = 1;
    std::cerr << "[ablation] training node2vec embeddings...\n";
    v.dataset.features.embedding = embed::node2vec(primekg.graph, n2v);
    v.dataset.features.embedding_dim = n2v.dimensions;
    record(primekg, v, hp_prime);
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
