// Training-throughput benchmark for the tensor-engine hot path.
//
// Trains both models (AM-DGCNN, Vanilla-DGCNN) on the Cora and WordNet
// simulators and reports end-to-end samples/sec for
//   * the legacy serial trainer path   (num_threads = 0),
//   * the deterministic parallel path with 1 worker, and
//   * the parallel path with all hardware workers (when OpenMP is present);
// the two parallel rows must produce bit-identical losses — the benchmark
// asserts this.  Alongside, it times the three dominant primitives
// (matmul forward+backward, segment_softmax, scatter_add_rows) in µs/op and
// records buffer-pool statistics (peak bytes, hit rate).
//
// Output goes to stdout as a table and to a JSON file (default
// BENCH_training.json in the current directory; override with --out PATH).
// --smoke shrinks everything so the binary doubles as a CTest smoke test.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.h"
#include "models/trainer.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"

namespace {

using namespace amdgcnn;

struct RunResult {
  std::string mode;       // "serial" or "parallel"
  int threads = 0;        // TrainConfig::num_threads
  double samples_per_sec = 0.0;
  double seconds = 0.0;
  double final_loss = 0.0;
};

struct ModelResult {
  std::string model;
  std::vector<RunResult> runs;
  ag::PoolStats pool;  // captured after the serial run
};

struct DatasetResult {
  std::string dataset;
  std::size_t train_samples = 0;
  std::vector<ModelResult> models;
};

struct MicroResult {
  std::string op;
  double us_per_op = 0.0;
};

RunResult time_training(models::LinkGNN& model, const seal::SealDataset& ds,
                        std::int64_t num_threads, int epochs) {
  models::TrainConfig tc;
  tc.seed = 17;
  tc.num_threads = num_threads;
  models::Trainer trainer(model, tc);
  trainer.train_epoch(ds.train);  // warmup: fills the buffer pool
  util::Stopwatch watch;
  double loss = 0.0;
  for (int e = 0; e < epochs; ++e) loss = trainer.train_epoch(ds.train);
  RunResult r;
  r.mode = num_threads == 0 ? "serial" : "parallel";
  r.threads = static_cast<int>(num_threads);
  r.seconds = watch.seconds();
  r.samples_per_sec =
      static_cast<double>(ds.train.size()) * epochs / r.seconds;
  r.final_loss = loss;
  return r;
}

/// µs per forward+backward of a representative matmul
/// ([rows, 64] x [64, 32], both sides differentiable).
MicroResult micro_matmul(int iters) {
  util::Rng rng(7);
  auto a = ag::Tensor::randn({48, 64}, rng).requires_grad(true);
  auto b = ag::Tensor::randn({64, 32}, rng).requires_grad(true);
  util::Stopwatch watch;
  for (int i = 0; i < iters; ++i) {
    auto y = ag::ops::matmul(a, b);
    auto loss = ag::ops::sum(y);
    loss.backward();
    ag::release_graph(loss);
  }
  return {"matmul_48x64x32_fwd_bwd", watch.seconds() * 1e6 / iters};
}

/// µs per forward+backward of segment_softmax over a GAT-sized score matrix
/// (200 edges, 4 heads, 48 destination segments).
MicroResult micro_segment_softmax(int iters) {
  util::Rng rng(7);
  auto scores = ag::Tensor::randn({200, 4}, rng).requires_grad(true);
  std::vector<std::int64_t> seg(200);
  for (std::size_t i = 0; i < seg.size(); ++i)
    seg[i] = static_cast<std::int64_t>(rng.uniform_int(std::uint64_t{48}));
  util::Stopwatch watch;
  for (int i = 0; i < iters; ++i) {
    auto alpha = ag::ops::segment_softmax(scores, seg, 48);
    auto loss = ag::ops::sum(alpha);
    loss.backward();
    ag::release_graph(loss);
  }
  return {"segment_softmax_200x4_seg48_fwd_bwd", watch.seconds() * 1e6 / iters};
}

/// µs per forward+backward of scatter_add_rows on message-passing shapes
/// (200 edge messages of width 64 into 48 nodes).
MicroResult micro_scatter_add(int iters) {
  util::Rng rng(7);
  auto src = ag::Tensor::randn({200, 64}, rng).requires_grad(true);
  std::vector<std::int64_t> idx(200);
  for (std::size_t i = 0; i < idx.size(); ++i)
    idx[i] = static_cast<std::int64_t>(rng.uniform_int(std::uint64_t{48}));
  util::Stopwatch watch;
  for (int i = 0; i < iters; ++i) {
    auto agg = ag::ops::scatter_add_rows(src, idx, 48);
    auto loss = ag::ops::sum(agg);
    loss.backward();
    ag::release_graph(loss);
  }
  return {"scatter_add_200x64_to_48_fwd_bwd", watch.seconds() * 1e6 / iters};
}

void write_json(const std::string& path,
                const std::vector<DatasetResult>& datasets,
                const std::vector<MicroResult>& micros, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"bench\": \"training_throughput\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"datasets\": [\n";
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const auto& ds = datasets[d];
    out << "    {\n      \"dataset\": \"" << ds.dataset << "\",\n"
        << "      \"train_samples\": " << ds.train_samples << ",\n"
        << "      \"models\": [\n";
    for (std::size_t m = 0; m < ds.models.size(); ++m) {
      const auto& mr = ds.models[m];
      out << "        {\n          \"model\": \"" << mr.model << "\",\n"
          << "          \"runs\": [\n";
      for (std::size_t r = 0; r < mr.runs.size(); ++r) {
        const auto& run = mr.runs[r];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "            {\"mode\": \"%s\", \"threads\": %d, "
                      "\"samples_per_sec\": %.1f, \"seconds\": %.4f, "
                      "\"final_loss\": %.9f}%s\n",
                      run.mode.c_str(), run.threads, run.samples_per_sec,
                      run.seconds, run.final_loss,
                      r + 1 < mr.runs.size() ? "," : "");
        out << buf;
      }
      const double acq =
          static_cast<double>(mr.pool.hits + mr.pool.misses);
      out << "          ],\n          \"pool\": {"
          << "\"peak_in_use_bytes\": " << mr.pool.peak_in_use_bytes
          << ", \"peak_pooled_bytes\": " << mr.pool.peak_pooled_bytes
          << ", \"hit_rate\": "
          << (acq > 0.0 ? static_cast<double>(mr.pool.hits) / acq : 0.0)
          << "}\n        }" << (m + 1 < ds.models.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (d + 1 < datasets.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"micro_ops_us\": {\n";
  for (std::size_t i = 0; i < micros.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "    \"%s\": %.3f%s\n",
                  micros[i].op.c_str(), micros[i].us_per_op,
                  i + 1 < micros.size() ? "," : "");
    out << buf;
  }
  out << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_training.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a PATH argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\nusage: %s [--smoke] [--out PATH]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  const int epochs = smoke ? 1 : 3;
  const int micro_iters = smoke ? 50 : 2000;

  int max_threads = 1;
#ifdef _OPENMP
  max_threads = omp_get_max_threads();
#endif

  std::vector<datasets::LinkDataset> data;
  {
    datasets::CoraSimOptions o;
    o.num_pos_links = smoke ? 60 : 500;
    data.push_back(datasets::make_cora_sim(o));
  }
  {
    datasets::WordNetSimOptions o;
    o.num_nodes = smoke ? 500 : 2000;
    o.num_train = smoke ? 150 : 1300;
    o.num_test = smoke ? 40 : 300;
    data.push_back(datasets::make_wordnet_sim(o));
  }

  std::vector<DatasetResult> results;
  for (const auto& dset : data) {
    const auto seal_ds = bench::prepare(dset);
    DatasetResult dr;
    dr.dataset = dset.name;
    dr.train_samples = seal_ds.train.size();
    for (auto kind :
         {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
      models::ModelConfig mc;
      mc.kind = kind;
      mc.node_feature_dim = seal_ds.train[0].node_feat.dim(1);
      mc.edge_attr_dim = seal_ds.edge_attr_dim;
      mc.num_classes = seal_ds.num_classes;
      ModelResult mr;
      mr.model = models::gnn_kind_name(kind);

      // Fresh identically-seeded weights per run so every row trains the
      // same function and the losses are comparable.
      for (std::int64_t nt : std::vector<std::int64_t>{0, 1}) {
        util::Rng rng(17);
        auto model = models::make_link_gnn(mc, rng);
        if (nt == 0) ag::reset_pool_stats();
        mr.runs.push_back(time_training(*model, seal_ds, nt, epochs));
        if (nt == 0) mr.pool = ag::pool_stats();
      }
      if (max_threads > 1) {
        util::Rng rng(17);
        auto model = models::make_link_gnn(mc, rng);
        mr.runs.push_back(time_training(*model, seal_ds, max_threads, epochs));
        // Determinism contract: 1 worker and N workers must agree bit-for-bit.
        if (mr.runs.back().final_loss != mr.runs[1].final_loss) {
          std::fprintf(stderr,
                       "FATAL: parallel trainer is not deterministic "
                       "(1-thread loss %.17g vs %d-thread loss %.17g)\n",
                       mr.runs[1].final_loss, max_threads,
                       mr.runs.back().final_loss);
          return 1;
        }
      }

      for (const auto& run : mr.runs)
        std::printf("%-12s %-14s %s threads=%d  %8.1f samples/sec  loss=%.6f\n",
                    dr.dataset.c_str(), mr.model.c_str(), run.mode.c_str(),
                    run.threads, run.samples_per_sec, run.final_loss);
      std::printf("%-12s %-14s pool: peak_in_use=%zuB peak_pooled=%zuB "
                  "hit_rate=%.4f\n",
                  dr.dataset.c_str(), mr.model.c_str(),
                  mr.pool.peak_in_use_bytes, mr.pool.peak_pooled_bytes,
                  static_cast<double>(mr.pool.hits) /
                      std::max<std::uint64_t>(1, mr.pool.hits +
                                                     mr.pool.misses));
      dr.models.push_back(std::move(mr));
    }
    results.push_back(std::move(dr));
  }

  std::vector<MicroResult> micros = {micro_matmul(micro_iters),
                                     micro_segment_softmax(micro_iters),
                                     micro_scatter_add(micro_iters)};
  for (const auto& m : micros)
    std::printf("%-40s %10.3f us/op\n", m.op.c_str(), m.us_per_op);

  write_json(out_path, results, micros, smoke);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
