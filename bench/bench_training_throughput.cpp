// Training-throughput benchmark for the tensor-engine hot path.
//
// Trains both models (AM-DGCNN, Vanilla-DGCNN) on the Cora and WordNet
// simulators and reports end-to-end samples/sec for
//   * the legacy serial trainer path   (num_threads = 0),
//   * the deterministic parallel path with 1 worker, and
//   * the parallel path with all hardware workers (when OpenMP is present);
// the two parallel rows must produce bit-identical losses — the benchmark
// asserts this.  Alongside, it times the three dominant primitives
// (matmul forward+backward, segment_softmax, scatter_add_rows) in µs/op and
// records buffer-pool statistics (peak bytes, hit rate).
//
// Output goes to stdout as a table and to a JSON file (default
// BENCH_training.json in the current directory; override with --out PATH).
// --smoke shrinks everything so the binary doubles as a CTest smoke test.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.h"
#include "models/trainer.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"

namespace {

using namespace amdgcnn;

struct RunResult {
  std::string mode;       // "serial" or "parallel"
  std::string dtype;      // "f32" or "f64" (storage precision of the run)
  int threads = 0;        // TrainConfig::num_threads
  double samples_per_sec = 0.0;
  double seconds = 0.0;
  double final_loss = 0.0;
};

struct ModelResult {
  std::string model;
  std::vector<RunResult> runs;
  ag::PoolStats pool;  // captured over the interleaved serial f64+f32 pair
};

struct DatasetResult {
  std::string dataset;
  std::size_t train_samples = 0;
  std::vector<ModelResult> models;
};

struct MicroResult {
  std::string op;
  double us_per_op = 0.0;
};

RunResult time_training(models::LinkGNN& model, const seal::SealDataset& ds,
                        std::int64_t num_threads, int epochs, ag::Dtype dtype) {
  models::TrainConfig tc;
  tc.seed = 17;
  tc.num_threads = num_threads;
  tc.dtype = dtype;
  models::Trainer trainer(model, tc);
  trainer.train_epoch(ds.train);  // warmup: fills the buffer pool
  // Time each epoch separately and rate the row by its fastest epoch: on a
  // shared single-core host, scheduler noise within any one multi-second
  // window swings rows by ~10%, which would drown the f32-vs-f64
  // comparison.  The minimum is the standard noise-shedding estimator and
  // is applied identically to every row; `seconds` stays the total.
  double loss = 0.0, total = 0.0, best = 0.0;
  for (int e = 0; e < epochs; ++e) {
    util::Stopwatch watch;
    loss = trainer.train_epoch(ds.train);
    const double s = watch.seconds();
    total += s;
    if (e == 0 || s < best) best = s;
  }
  RunResult r;
  r.mode = num_threads == 0 ? "serial" : "parallel";
  r.dtype = ag::dtype_name(dtype);
  r.threads = static_cast<int>(num_threads);
  r.seconds = total;
  r.samples_per_sec = static_cast<double>(ds.train.size()) / best;
  r.final_loss = loss;
  return r;
}

/// Serial f64 and f32 rows measured as a pair: one warmup epoch each, then
/// alternating timed epochs (f64, f32, f64, f32, ...).  Host throughput on a
/// shared box drifts 10-30% over minutes, so timing the two precisions in
/// separate multi-second blocks lets that drift dominate the f32/f64 ratio;
/// interleaving puts the compared epochs seconds apart and the drift
/// cancels.  Each row is still rated by its fastest epoch (see
/// time_training).
std::pair<RunResult, RunResult> time_serial_pair(models::LinkGNN& m64,
                                                 models::LinkGNN& m32,
                                                 const seal::SealDataset& ds64,
                                                 const seal::SealDataset& ds32,
                                                 int epochs) {
  models::TrainConfig tc64, tc32;
  tc64.seed = tc32.seed = 17;
  tc64.num_threads = tc32.num_threads = 0;
  tc64.dtype = ag::Dtype::f64;
  tc32.dtype = ag::Dtype::f32;
  models::Trainer t64(m64, tc64);
  models::Trainer t32(m32, tc32);
  t64.train_epoch(ds64.train);  // warmup: fills the buffer pools
  t32.train_epoch(ds32.train);
  double loss64 = 0.0, loss32 = 0.0;
  double tot64 = 0.0, tot32 = 0.0, best64 = 0.0, best32 = 0.0;
  for (int e = 0; e < epochs; ++e) {
    {
      util::Stopwatch watch;
      loss64 = t64.train_epoch(ds64.train);
      const double s = watch.seconds();
      tot64 += s;
      if (e == 0 || s < best64) best64 = s;
    }
    {
      util::Stopwatch watch;
      loss32 = t32.train_epoch(ds32.train);
      const double s = watch.seconds();
      tot32 += s;
      if (e == 0 || s < best32) best32 = s;
    }
  }
  RunResult r64, r32;
  r64.mode = r32.mode = "serial";
  r64.dtype = "f64";
  r32.dtype = "f32";
  r64.seconds = tot64;
  r32.seconds = tot32;
  r64.samples_per_sec = static_cast<double>(ds64.train.size()) / best64;
  r32.samples_per_sec = static_cast<double>(ds32.train.size()) / best32;
  r64.final_loss = loss64;
  r32.final_loss = loss32;
  return {r64, r32};
}

/// Copy of `ds` with every feature tensor stored at `dtype`, matching what
/// seal::FeatureOptions::dtype would have built natively — so the f32 rows
/// measure f32 compute, not per-forward boundary casts.
seal::SealDataset dataset_at_dtype(const seal::SealDataset& ds,
                                   ag::Dtype dtype) {
  seal::SealDataset out = ds;
  for (auto* split : {&out.train, &out.test})
    for (auto& s : *split) {
      s.node_feat = ag::ops::cast(s.node_feat, dtype);
      if (s.edge_attr.defined()) s.edge_attr = ag::ops::cast(s.edge_attr, dtype);
    }
  return out;
}

/// µs per forward+backward of a representative matmul
/// ([rows, 64] x [64, 32], both sides differentiable).
MicroResult micro_matmul(int iters) {
  util::Rng rng(7);
  auto a = ag::Tensor::randn({48, 64}, rng).requires_grad(true);
  auto b = ag::Tensor::randn({64, 32}, rng).requires_grad(true);
  util::Stopwatch watch;
  for (int i = 0; i < iters; ++i) {
    auto y = ag::ops::matmul(a, b);
    auto loss = ag::ops::sum(y);
    loss.backward();
    ag::release_graph(loss);
  }
  return {"matmul_48x64x32_fwd_bwd", watch.seconds() * 1e6 / iters};
}

/// µs per forward+backward of segment_softmax over a GAT-sized score matrix
/// (200 edges, 4 heads, 48 destination segments).
MicroResult micro_segment_softmax(int iters) {
  util::Rng rng(7);
  auto scores = ag::Tensor::randn({200, 4}, rng).requires_grad(true);
  std::vector<std::int64_t> seg(200);
  for (std::size_t i = 0; i < seg.size(); ++i)
    seg[i] = static_cast<std::int64_t>(rng.uniform_int(std::uint64_t{48}));
  util::Stopwatch watch;
  for (int i = 0; i < iters; ++i) {
    auto alpha = ag::ops::segment_softmax(scores, seg, 48);
    auto loss = ag::ops::sum(alpha);
    loss.backward();
    ag::release_graph(loss);
  }
  return {"segment_softmax_200x4_seg48_fwd_bwd", watch.seconds() * 1e6 / iters};
}

/// µs per forward+backward of scatter_add_rows on message-passing shapes
/// (200 edge messages of width 64 into 48 nodes).
MicroResult micro_scatter_add(int iters) {
  util::Rng rng(7);
  auto src = ag::Tensor::randn({200, 64}, rng).requires_grad(true);
  std::vector<std::int64_t> idx(200);
  for (std::size_t i = 0; i < idx.size(); ++i)
    idx[i] = static_cast<std::int64_t>(rng.uniform_int(std::uint64_t{48}));
  util::Stopwatch watch;
  for (int i = 0; i < iters; ++i) {
    auto agg = ag::ops::scatter_add_rows(src, idx, 48);
    auto loss = ag::ops::sum(agg);
    loss.backward();
    ag::release_graph(loss);
  }
  return {"scatter_add_200x64_to_48_fwd_bwd", watch.seconds() * 1e6 / iters};
}

void write_json(const std::string& path,
                const std::vector<DatasetResult>& datasets,
                const std::vector<MicroResult>& micros, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"bench\": \"training_throughput\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"datasets\": [\n";
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const auto& ds = datasets[d];
    out << "    {\n      \"dataset\": \"" << ds.dataset << "\",\n"
        << "      \"train_samples\": " << ds.train_samples << ",\n"
        << "      \"models\": [\n";
    for (std::size_t m = 0; m < ds.models.size(); ++m) {
      const auto& mr = ds.models[m];
      out << "        {\n          \"model\": \"" << mr.model << "\",\n"
          << "          \"runs\": [\n";
      for (std::size_t r = 0; r < mr.runs.size(); ++r) {
        const auto& run = mr.runs[r];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "            {\"mode\": \"%s\", \"dtype\": \"%s\", "
                      "\"threads\": %d, "
                      "\"samples_per_sec\": %.1f, \"seconds\": %.4f, "
                      "\"final_loss\": %.9f}%s\n",
                      run.mode.c_str(), run.dtype.c_str(), run.threads,
                      run.samples_per_sec, run.seconds, run.final_loss,
                      r + 1 < mr.runs.size() ? "," : "");
        out << buf;
      }
      const double acq =
          static_cast<double>(mr.pool.hits + mr.pool.misses);
      out << "          ],\n          \"pool\": {"
          << "\"peak_in_use_bytes\": " << mr.pool.peak_in_use_bytes
          << ", \"peak_pooled_bytes\": " << mr.pool.peak_pooled_bytes
          << ", \"hit_rate\": "
          << (acq > 0.0 ? static_cast<double>(mr.pool.hits) / acq : 0.0)
          << "}\n        }" << (m + 1 < ds.models.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (d + 1 < datasets.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"micro_ops_us\": {\n";
  for (std::size_t i = 0; i < micros.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "    \"%s\": %.3f%s\n",
                  micros[i].op.c_str(), micros[i].us_per_op,
                  i + 1 < micros.size() ? "," : "");
    out << buf;
  }
  out << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_training.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a PATH argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\nusage: %s [--smoke] [--out PATH]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  const int epochs = smoke ? 1 : 5;
  const int micro_iters = smoke ? 50 : 2000;

  int max_threads = 1;
#ifdef _OPENMP
  max_threads = omp_get_max_threads();
#endif

  std::vector<datasets::LinkDataset> data;
  {
    datasets::CoraSimOptions o;
    o.num_pos_links = smoke ? 60 : 500;
    data.push_back(datasets::make_cora_sim(o));
  }
  {
    datasets::WordNetSimOptions o;
    o.num_nodes = smoke ? 500 : 2000;
    o.num_train = smoke ? 150 : 1300;
    o.num_test = smoke ? 40 : 300;
    data.push_back(datasets::make_wordnet_sim(o));
  }

  std::vector<DatasetResult> results;
  for (const auto& dset : data) {
    const auto seal_ds = bench::prepare(dset);
    DatasetResult dr;
    dr.dataset = dset.name;
    dr.train_samples = seal_ds.train.size();
    for (auto kind :
         {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
      models::ModelConfig mc;
      mc.kind = kind;
      mc.node_feature_dim = seal_ds.train[0].node_feat.dim(1);
      mc.edge_attr_dim = seal_ds.edge_attr_dim;
      mc.num_classes = seal_ds.num_classes;
      ModelResult mr;
      mr.model = models::gnn_kind_name(kind);

      // Fresh identically-seeded weights per run so every row trains the
      // same function and the losses are comparable.  randn narrows the
      // same f64 RNG draws for f32, so the two precisions start from
      // bit-rounded copies of the same weights.  The two serial rows are
      // measured as an epoch-interleaved pair (see time_serial_pair) so the
      // f32/f64 ratio is robust to host throughput drift.
      const auto ds_f32 = dataset_at_dtype(seal_ds, ag::Dtype::f32);
      RunResult serial64, serial32;
      {
        mc.dtype = ag::Dtype::f64;
        util::Rng rng64(17);
        auto m64 = models::make_link_gnn(mc, rng64);
        mc.dtype = ag::Dtype::f32;
        util::Rng rng32(17);
        auto m32 = models::make_link_gnn(mc, rng32);
        ag::reset_pool_stats();
        std::tie(serial64, serial32) =
            time_serial_pair(*m64, *m32, seal_ds, ds_f32, epochs);
        mr.pool = ag::pool_stats();
      }

      for (ag::Dtype dt : {ag::Dtype::f64, ag::Dtype::f32}) {
        const auto& ds_dt = dt == ag::Dtype::f64 ? seal_ds : ds_f32;
        mc.dtype = dt;
        mr.runs.push_back(dt == ag::Dtype::f64 ? serial64 : serial32);
        const std::size_t one_thread_row = mr.runs.size();
        {
          util::Rng rng(17);
          auto model = models::make_link_gnn(mc, rng);
          mr.runs.push_back(time_training(*model, ds_dt, 1, epochs, dt));
        }
        if (max_threads > 1) {
          util::Rng rng(17);
          auto model = models::make_link_gnn(mc, rng);
          mr.runs.push_back(
              time_training(*model, ds_dt, max_threads, epochs, dt));
          // Determinism contract, per dtype: 1 worker and N workers must
          // agree bit-for-bit.
          if (mr.runs.back().final_loss !=
              mr.runs[one_thread_row].final_loss) {
            std::fprintf(stderr,
                         "FATAL: parallel trainer is not deterministic at %s "
                         "(1-thread loss %.17g vs %d-thread loss %.17g)\n",
                         ag::dtype_name(dt),
                         mr.runs[one_thread_row].final_loss, max_threads,
                         mr.runs.back().final_loss);
            return 1;
          }
        }
      }
      // The f64 serial row leads each dtype block; report the bandwidth win
      // of halving the scalar width on the serial hot path.
      const std::size_t rows_per_dtype = mr.runs.size() / 2;
      std::printf("%-12s %-14s f32/f64 serial speedup: %.2fx\n",
                  dr.dataset.c_str(), mr.model.c_str(),
                  mr.runs[rows_per_dtype].samples_per_sec /
                      mr.runs[0].samples_per_sec);

      for (const auto& run : mr.runs)
        std::printf(
            "%-12s %-14s %s %s threads=%d  %8.1f samples/sec  loss=%.6f\n",
            dr.dataset.c_str(), mr.model.c_str(), run.dtype.c_str(),
            run.mode.c_str(), run.threads, run.samples_per_sec,
            run.final_loss);
      std::printf("%-12s %-14s pool: peak_in_use=%zuB peak_pooled=%zuB "
                  "hit_rate=%.4f\n",
                  dr.dataset.c_str(), mr.model.c_str(),
                  mr.pool.peak_in_use_bytes, mr.pool.peak_pooled_bytes,
                  static_cast<double>(mr.pool.hits) /
                      std::max<std::uint64_t>(1, mr.pool.hits +
                                                     mr.pool.misses));
      dr.models.push_back(std::move(mr));
    }
    results.push_back(std::move(dr));
  }

  std::vector<MicroResult> micros = {micro_matmul(micro_iters),
                                     micro_segment_softmax(micro_iters),
                                     micro_scatter_add(micro_iters)};
  for (const auto& m : micros)
    std::printf("%-40s %10.3f us/op\n", m.op.c_str(), m.us_per_op);

  write_json(out_path, results, micros, smoke);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
