// Reproduces paper Fig. 7 (a, b): AUC vs number of training samples on
// PrimeKG (10 training epochs) under default and auto-tuned
// hyperparameters.  Paper: AM-DGCNN exceeds 0.9 AUC with half the samples.
#include "bench_common.h"

int main() {
  using namespace amdgcnn;
  bench::run_sample_sweep(bench::make_primekg(core::bench_scale_from_env()),
                          "Fig7");
  return 0;
}
