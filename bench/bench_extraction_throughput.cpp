// Throughput benchmark for the SEAL dataset-build pipeline (DESIGN.md §2.2).
//
// For each dataset it measures end-to-end links/sec of build_samples under
//   * the legacy serial loop            (num_threads = 0),
//   * the deterministic parallel path with 1 worker, and
//   * the parallel path with all hardware workers (when OpenMP is present);
// the parallel rows must be bit-identical to the serial build — the
// benchmark asserts this over every tensor byte, edge list and label.
// Alongside, it times the three pipeline stages in isolation on the serial
// path: enclosing-subgraph extraction, DRNL labeling, and feature-tensor
// construction (the feature stage re-runs DRNL internally, so the three
// stage times slightly exceed the end-to-end time).
//
// Output goes to stdout as a table and to a JSON file (default
// BENCH_extraction.json in the current directory; override with --out PATH).
// --smoke shrinks everything so the binary doubles as a CTest smoke test.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "seal/drnl.h"

namespace {

using namespace amdgcnn;

struct RunResult {
  std::string mode;  // "serial" or "parallel"
  int threads = 0;   // SealDatasetOptions::num_threads
  double links_per_sec = 0.0;
  double seconds = 0.0;
};

struct StageResult {
  std::string stage;
  double seconds = 0.0;
  double links_per_sec = 0.0;
};

struct DatasetResult {
  std::string dataset;
  std::size_t num_links = 0;
  std::vector<RunResult> runs;
  std::vector<StageResult> stages;  // serial per-stage breakdown
  ag::PoolStats i32_pool;           // int32 scratch pool after the runs
};

seal::SealDatasetOptions build_options(const datasets::LinkDataset& data) {
  seal::SealDatasetOptions o;
  o.extract.num_hops = 2;
  o.extract.mode = data.neighborhood_mode;
  o.extract.max_nodes = 32;
  o.features.max_drnl_label = 24;
  return o;
}

bool samples_identical(const std::vector<seal::SubgraphSample>& a,
                       const std::vector<seal::SubgraphSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].num_nodes != b[i].num_nodes || a[i].label != b[i].label ||
        a[i].src != b[i].src || a[i].dst != b[i].dst)
      return false;
    if (a[i].node_feat.shape() != b[i].node_feat.shape() ||
        a[i].node_feat.data() != b[i].node_feat.data())
      return false;
    if (a[i].edge_attr.defined() != b[i].edge_attr.defined()) return false;
    if (a[i].edge_attr.defined() &&
        (a[i].edge_attr.shape() != b[i].edge_attr.shape() ||
         a[i].edge_attr.data() != b[i].edge_attr.data()))
      return false;
  }
  return true;
}

RunResult time_build(const graph::KnowledgeGraph& g,
                     const std::vector<seal::LinkExample>& links,
                     seal::SealDatasetOptions options, std::int64_t threads,
                     int reps, std::vector<seal::SubgraphSample>* keep) {
  options.num_threads = threads;
  seal::build_samples(g, links, options);  // warmup: fills the scratch pool
  util::Stopwatch watch;
  std::vector<seal::SubgraphSample> samples;
  for (int r = 0; r < reps; ++r)
    samples = seal::build_samples(g, links, options);
  RunResult result;
  result.mode = threads == 0 ? "serial" : "parallel";
  result.threads = static_cast<int>(threads);
  result.seconds = watch.seconds();
  result.links_per_sec =
      static_cast<double>(links.size()) * reps / result.seconds;
  if (keep != nullptr) *keep = std::move(samples);
  return result;
}

/// Serial per-stage timings: extraction alone, DRNL over the cached
/// subgraphs, and feature-tensor construction over the cached subgraphs.
std::vector<StageResult> time_stages(const graph::KnowledgeGraph& g,
                                     const std::vector<seal::LinkExample>& links,
                                     const seal::SealDatasetOptions& options,
                                     int reps) {
  std::vector<StageResult> stages;
  const double n = static_cast<double>(links.size()) * reps;

  std::vector<graph::EnclosingSubgraph> subs;
  subs.reserve(links.size());
  {
    util::Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      subs.clear();
      for (const auto& link : links)
        subs.push_back(graph::extract_enclosing_subgraph(g, link.a, link.b,
                                                         options.extract));
    }
    const double s = watch.seconds();
    stages.push_back({"extract", s, n / s});
  }
  {
    util::Stopwatch watch;
    for (int r = 0; r < reps; ++r)
      for (const auto& sub : subs) seal::drnl_labels(sub);
    const double s = watch.seconds();
    stages.push_back({"drnl", s, n / s});
  }
  {
    util::Stopwatch watch;
    for (int r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < subs.size(); ++i)
        seal::build_sample(g, subs[i], links[i].label, options.features);
    const double s = watch.seconds();
    stages.push_back({"features_f64", s, n / s});
  }
  {
    // Same stage with f32 storage (FeatureOptions::dtype) — records the
    // tensor-construction side of the f32-vs-f64 bandwidth comparison that
    // bench_training_throughput makes for the training hot path.
    auto f32_features = options.features;
    f32_features.dtype = ag::Dtype::f32;
    util::Stopwatch watch;
    for (int r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < subs.size(); ++i)
        seal::build_sample(g, subs[i], links[i].label, f32_features);
    const double s = watch.seconds();
    stages.push_back({"features_f32", s, n / s});
  }
  return stages;
}

void write_json(const std::string& path,
                const std::vector<DatasetResult>& datasets, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"bench\": \"extraction_throughput\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"datasets\": [\n";
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const auto& ds = datasets[d];
    out << "    {\n      \"dataset\": \"" << ds.dataset << "\",\n"
        << "      \"num_links\": " << ds.num_links << ",\n"
        << "      \"runs\": [\n";
    for (std::size_t r = 0; r < ds.runs.size(); ++r) {
      const auto& run = ds.runs[r];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "        {\"mode\": \"%s\", \"threads\": %d, "
                    "\"links_per_sec\": %.1f, \"seconds\": %.4f}%s\n",
                    run.mode.c_str(), run.threads, run.links_per_sec,
                    run.seconds, r + 1 < ds.runs.size() ? "," : "");
      out << buf;
    }
    out << "      ],\n      \"serial_stages\": [\n";
    for (std::size_t s = 0; s < ds.stages.size(); ++s) {
      const auto& st = ds.stages[s];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "        {\"stage\": \"%s\", \"seconds\": %.4f, "
                    "\"links_per_sec\": %.1f}%s\n",
                    st.stage.c_str(), st.seconds, st.links_per_sec,
                    s + 1 < ds.stages.size() ? "," : "");
      out << buf;
    }
    const double acq =
        static_cast<double>(ds.i32_pool.hits + ds.i32_pool.misses);
    out << "      ],\n      \"i32_pool\": {"
        << "\"peak_in_use_bytes\": " << ds.i32_pool.peak_in_use_bytes
        << ", \"peak_pooled_bytes\": " << ds.i32_pool.peak_pooled_bytes
        << ", \"hit_rate\": "
        << (acq > 0.0 ? static_cast<double>(ds.i32_pool.hits) / acq : 0.0)
        << "}\n    }" << (d + 1 < datasets.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_extraction.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a PATH argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s'\nusage: %s [--smoke] [--out PATH]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  const int reps = smoke ? 1 : 3;
  const auto max_threads = seal::default_build_threads();

  std::vector<datasets::LinkDataset> data;
  {
    datasets::CoraSimOptions o;
    o.num_pos_links = smoke ? 60 : 500;
    data.push_back(datasets::make_cora_sim(o));
  }
  {
    datasets::WordNetSimOptions o;
    o.num_nodes = smoke ? 500 : 2000;
    o.num_train = smoke ? 150 : 1300;
    o.num_test = smoke ? 40 : 300;
    data.push_back(datasets::make_wordnet_sim(o));
  }

  std::vector<DatasetResult> results;
  for (const auto& dset : data) {
    // Train + test links together: the build path is the same and more
    // links mean steadier timings.
    std::vector<seal::LinkExample> links = dset.train_links;
    links.insert(links.end(), dset.test_links.begin(), dset.test_links.end());
    const auto options = build_options(dset);

    DatasetResult dr;
    dr.dataset = dset.name;
    dr.num_links = links.size();

    std::vector<seal::SubgraphSample> serial_samples, one_thread_samples;
    dr.runs.push_back(time_build(dset.graph, links, options, /*threads=*/0,
                                 reps, &serial_samples));
    dr.runs.push_back(time_build(dset.graph, links, options, /*threads=*/1,
                                 reps, &one_thread_samples));
    if (!samples_identical(serial_samples, one_thread_samples)) {
      std::fprintf(stderr,
                   "FATAL: 1-worker build differs from the serial build on %s\n",
                   dset.name.c_str());
      return 1;
    }
    if (max_threads > 1) {
      std::vector<seal::SubgraphSample> parallel_samples;
      dr.runs.push_back(time_build(dset.graph, links, options, max_threads,
                                   reps, &parallel_samples));
      // Determinism contract: N workers must reproduce the serial bytes.
      if (!samples_identical(serial_samples, parallel_samples)) {
        std::fprintf(stderr,
                     "FATAL: %d-worker build differs from the serial build "
                     "on %s\n",
                     static_cast<int>(max_threads), dset.name.c_str());
        return 1;
      }
    }
    dr.stages = time_stages(dset.graph, links, options, reps);
    dr.i32_pool = ag::detail::i32_buffer_pool().stats();

    for (const auto& run : dr.runs)
      std::printf("%-12s %-8s threads=%d  %8.1f links/sec  (%.4fs)\n",
                  dr.dataset.c_str(), run.mode.c_str(), run.threads,
                  run.links_per_sec, run.seconds);
    for (const auto& st : dr.stages)
      std::printf("%-12s stage %-9s %8.1f links/sec  (%.4fs)\n",
                  dr.dataset.c_str(), st.stage.c_str(), st.links_per_sec,
                  st.seconds);
    results.push_back(std::move(dr));
  }

  write_json(out_path, results, smoke);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
