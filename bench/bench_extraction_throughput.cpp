// Throughput benchmark for the SEAL dataset-build pipeline (DESIGN.md §2.2).
//
// For each dataset it measures end-to-end links/sec of build_samples under
//   * the legacy serial loop            (num_threads = 0),
//   * the deterministic parallel path with 1 worker, and
//   * the parallel path with all hardware workers (when OpenMP is present);
// the parallel rows must be bit-identical to the serial build — the
// benchmark asserts this over every tensor byte, edge list and label.
// Alongside, it times the three pipeline stages in isolation on the serial
// path: enclosing-subgraph extraction, DRNL labeling, and feature-tensor
// construction (the feature stage re-runs DRNL internally, so the three
// stage times slightly exceed the end-to-end time).
//
// The scale tier (DESIGN.md §2.6) then runs the same extraction on
// 10^5- and 10^6-node streaming-generated graphs, comparing the legacy
// clear-per-link kernel against the epoch kernel (gated at >= 5x at a
// million nodes) and the frontier-reuse cache on a shared-endpoint candidate
// batch, plus snapshot save / mmap-load timings (mmap load gated at >= 20x
// over the generator build).  The gates are asserted in full mode only;
// --smoke shrinks the tier to one small graph and checks bytes, not speed.
//
// Output goes to stdout as a table and to a JSON file (default
// BENCH_extraction.json in the current directory; override with --out PATH).
// --smoke shrinks everything so the binary doubles as a CTest smoke test.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datasets/kg_generator.h"
#include "graph/subgraph.h"
#include "seal/drnl.h"
#include "util/rng.h"

namespace {

using namespace amdgcnn;

struct RunResult {
  std::string mode;  // "serial" or "parallel"
  int threads = 0;   // SealDatasetOptions::num_threads
  double links_per_sec = 0.0;
  double seconds = 0.0;
};

struct StageResult {
  std::string stage;
  double seconds = 0.0;
  double links_per_sec = 0.0;
};

struct DatasetResult {
  std::string dataset;
  std::size_t num_links = 0;
  std::vector<RunResult> runs;
  std::vector<StageResult> stages;  // serial per-stage breakdown
  ag::PoolStats i32_pool;           // int32 scratch pool after the runs
};

seal::SealDatasetOptions build_options(const datasets::LinkDataset& data) {
  seal::SealDatasetOptions o;
  o.extract.num_hops = 2;
  o.extract.mode = data.neighborhood_mode;
  o.extract.max_nodes = 32;
  o.features.max_drnl_label = 24;
  return o;
}

bool samples_identical(const std::vector<seal::SubgraphSample>& a,
                       const std::vector<seal::SubgraphSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].num_nodes != b[i].num_nodes || a[i].label != b[i].label ||
        a[i].src != b[i].src || a[i].dst != b[i].dst)
      return false;
    if (a[i].node_feat.shape() != b[i].node_feat.shape() ||
        a[i].node_feat.data() != b[i].node_feat.data())
      return false;
    if (a[i].edge_attr.defined() != b[i].edge_attr.defined()) return false;
    if (a[i].edge_attr.defined() &&
        (a[i].edge_attr.shape() != b[i].edge_attr.shape() ||
         a[i].edge_attr.data() != b[i].edge_attr.data()))
      return false;
  }
  return true;
}

RunResult time_build(const graph::KnowledgeGraph& g,
                     const std::vector<seal::LinkExample>& links,
                     seal::SealDatasetOptions options, std::int64_t threads,
                     int reps, std::vector<seal::SubgraphSample>* keep) {
  options.num_threads = threads;
  seal::build_samples(g, links, options);  // warmup: fills the scratch pool
  util::Stopwatch watch;
  std::vector<seal::SubgraphSample> samples;
  for (int r = 0; r < reps; ++r)
    samples = seal::build_samples(g, links, options);
  RunResult result;
  result.mode = threads == 0 ? "serial" : "parallel";
  result.threads = static_cast<int>(threads);
  result.seconds = watch.seconds();
  result.links_per_sec =
      static_cast<double>(links.size()) * reps / result.seconds;
  if (keep != nullptr) *keep = std::move(samples);
  return result;
}

/// Serial per-stage timings: extraction alone, DRNL over the cached
/// subgraphs, and feature-tensor construction over the cached subgraphs.
std::vector<StageResult> time_stages(const graph::KnowledgeGraph& g,
                                     const std::vector<seal::LinkExample>& links,
                                     const seal::SealDatasetOptions& options,
                                     int reps) {
  std::vector<StageResult> stages;
  const double n = static_cast<double>(links.size()) * reps;

  std::vector<graph::EnclosingSubgraph> subs;
  subs.reserve(links.size());
  {
    util::Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      subs.clear();
      for (const auto& link : links)
        subs.push_back(graph::extract_enclosing_subgraph(g, link.a, link.b,
                                                         options.extract));
    }
    const double s = watch.seconds();
    stages.push_back({"extract", s, n / s});
  }
  {
    util::Stopwatch watch;
    for (int r = 0; r < reps; ++r)
      for (const auto& sub : subs) seal::drnl_labels(sub);
    const double s = watch.seconds();
    stages.push_back({"drnl", s, n / s});
  }
  {
    util::Stopwatch watch;
    for (int r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < subs.size(); ++i)
        seal::build_sample(g, subs[i], links[i].label, options.features);
    const double s = watch.seconds();
    stages.push_back({"features_f64", s, n / s});
  }
  {
    // Same stage with f32 storage (FeatureOptions::dtype) — records the
    // tensor-construction side of the f32-vs-f64 bandwidth comparison that
    // bench_training_throughput makes for the training hot path.
    auto f32_features = options.features;
    f32_features.dtype = ag::Dtype::f32;
    util::Stopwatch watch;
    for (int r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < subs.size(); ++i)
        seal::build_sample(g, subs[i], links[i].label, f32_features);
    const double s = watch.seconds();
    stages.push_back({"features_f32", s, n / s});
  }
  return stages;
}

// ---- Scale tier (DESIGN.md §2.6) --------------------------------------------

struct ScaleResult {
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  std::size_t num_links = 0;
  double build_seconds = 0.0;      // streaming generator + finalize()
  double save_seconds = 0.0;       // save_snapshot
  double load_map_seconds = 0.0;   // load_snapshot(kMap)
  double load_copy_seconds = 0.0;  // load_snapshot(kCopy)
  double clear_links_per_sec = 0.0;     // legacy clear-per-link kernel
  double epoch_links_per_sec = 0.0;     // epoch kernel (default)
  double frontier_links_per_sec = 0.0;  // epoch + reuse on a candidate batch
  double epoch_speedup = 0.0;           // epoch vs clear
  double load_speedup = 0.0;            // build vs mmap load
};

bool subgraphs_equal(const graph::EnclosingSubgraph& x,
                     const graph::EnclosingSubgraph& y) {
  if (x.nodes != y.nodes || x.dist_a != y.dist_a || x.dist_b != y.dist_b ||
      x.edges.size() != y.edges.size())
    return false;
  for (std::size_t i = 0; i < x.edges.size(); ++i)
    if (x.edges[i].src != y.edges[i].src ||
        x.edges[i].dst != y.edges[i].dst ||
        x.edges[i].orig != y.edges[i].orig)
      return false;
  return true;
}

/// Links/sec of extraction over `links`, repeating whole passes until the
/// clock has accumulated enough signal (>= 3 passes and >= 0.25 s).
double time_extraction(const graph::KnowledgeGraph& g,
                       const std::vector<seal::LinkExample>& links,
                       const graph::ExtractOptions& opt) {
  graph::extract_enclosing_subgraph(g, links[0].a, links[0].b, opt);  // warmup
  util::Stopwatch watch;
  int passes = 0;
  do {
    for (const auto& l : links)
      graph::extract_enclosing_subgraph(g, l.a, l.b, opt);
    ++passes;
  } while (passes < 3 || watch.seconds() < 0.25);
  return static_cast<double>(links.size()) * passes / watch.seconds();
}

ScaleResult run_scale_tier(std::int64_t num_nodes, bool smoke) {
  datasets::ScaleKGOptions o;
  o.num_nodes = num_nodes;
  o.seed = 7;
  util::Stopwatch build_watch;
  const auto g = datasets::make_scale_kg(o);
  ScaleResult r;
  r.build_seconds = build_watch.seconds();
  r.num_nodes = g.num_nodes();
  r.num_edges = g.num_edges();

  // Snapshot round trip: save once, then time both load modes.  The byte-
  // exactness of the loaded graphs is covered by the scale test tier; here
  // only the cheap shape invariants are asserted.
  const std::string snap_path =
      "bench_scale_" + std::to_string(num_nodes) + ".snap";
  {
    util::Stopwatch w;
    g.save_snapshot(snap_path);
    r.save_seconds = w.seconds();
  }
  {
    util::Stopwatch w;
    const auto mapped = graph::KnowledgeGraph::load_snapshot(
        snap_path, graph::SnapshotLoadMode::kMap);
    r.load_map_seconds = w.seconds();
    if (mapped.num_nodes() != g.num_nodes() ||
        mapped.num_edges() != g.num_edges()) {
      std::fprintf(stderr, "FATAL: mapped snapshot shape mismatch\n");
      std::exit(1);
    }
  }
  {
    util::Stopwatch w;
    const auto copied = graph::KnowledgeGraph::load_snapshot(
        snap_path, graph::SnapshotLoadMode::kCopy);
    r.load_copy_seconds = w.seconds();
    if (copied.num_edges() != g.num_edges()) {
      std::fprintf(stderr, "FATAL: copied snapshot shape mismatch\n");
      std::exit(1);
    }
  }
  std::remove(snap_path.c_str());
  r.load_speedup = r.build_seconds / std::max(r.load_map_seconds, 1e-9);

  const auto links =
      datasets::sample_scale_links(g, smoke ? 24 : 40, /*seed=*/11);
  r.num_links = links.size();
  graph::ExtractOptions ex;
  ex.num_hops = 2;
  ex.max_nodes = 32;

  // Both kernels must produce identical subgraphs before their speeds mean
  // anything.
  for (const auto& l : links) {
    auto clear_opt = ex;
    clear_opt.clear_per_link = true;
    const auto a = graph::extract_enclosing_subgraph(g, l.a, l.b, clear_opt);
    const auto b = graph::extract_enclosing_subgraph(g, l.a, l.b, ex);
    if (!subgraphs_equal(a, b)) {
      std::fprintf(stderr,
                   "FATAL: epoch kernel differs from clear-per-link on "
                   "(%d, %d) at %lld nodes\n",
                   l.a, l.b, static_cast<long long>(num_nodes));
      std::exit(1);
    }
  }

  auto clear_opt = ex;
  clear_opt.clear_per_link = true;
  r.clear_links_per_sec = time_extraction(g, links, clear_opt);
  r.epoch_links_per_sec = time_extraction(g, links, ex);
  r.epoch_speedup = r.epoch_links_per_sec / r.clear_links_per_sec;

  // Serving-shaped candidate batch: one source fanned out against many
  // destinations — the frontier cache's hit case.
  std::vector<seal::LinkExample> batch;
  {
    util::Rng rng(23);
    const auto src = links[0].a;
    while (batch.size() < links.size()) {
      const auto v = static_cast<graph::NodeId>(
          rng.uniform_int(static_cast<std::uint64_t>(g.num_nodes())));
      if (v != src) batch.push_back({src, v, 0});
    }
  }
  auto reuse_opt = ex;
  reuse_opt.reuse_frontiers = true;
  r.frontier_links_per_sec = time_extraction(g, batch, reuse_opt);
  return r;
}

void write_json(const std::string& path,
                const std::vector<DatasetResult>& datasets,
                const std::vector<ScaleResult>& scale, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"bench\": \"extraction_throughput\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"datasets\": [\n";
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const auto& ds = datasets[d];
    out << "    {\n      \"dataset\": \"" << ds.dataset << "\",\n"
        << "      \"num_links\": " << ds.num_links << ",\n"
        << "      \"runs\": [\n";
    for (std::size_t r = 0; r < ds.runs.size(); ++r) {
      const auto& run = ds.runs[r];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "        {\"mode\": \"%s\", \"threads\": %d, "
                    "\"links_per_sec\": %.1f, \"seconds\": %.4f}%s\n",
                    run.mode.c_str(), run.threads, run.links_per_sec,
                    run.seconds, r + 1 < ds.runs.size() ? "," : "");
      out << buf;
    }
    out << "      ],\n      \"serial_stages\": [\n";
    for (std::size_t s = 0; s < ds.stages.size(); ++s) {
      const auto& st = ds.stages[s];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "        {\"stage\": \"%s\", \"seconds\": %.4f, "
                    "\"links_per_sec\": %.1f}%s\n",
                    st.stage.c_str(), st.seconds, st.links_per_sec,
                    s + 1 < ds.stages.size() ? "," : "");
      out << buf;
    }
    const double acq =
        static_cast<double>(ds.i32_pool.hits + ds.i32_pool.misses);
    out << "      ],\n      \"i32_pool\": {"
        << "\"peak_in_use_bytes\": " << ds.i32_pool.peak_in_use_bytes
        << ", \"peak_pooled_bytes\": " << ds.i32_pool.peak_pooled_bytes
        << ", \"hit_rate\": "
        << (acq > 0.0 ? static_cast<double>(ds.i32_pool.hits) / acq : 0.0)
        << "}\n    }" << (d + 1 < datasets.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"scale_tier\": [\n";
  for (std::size_t s = 0; s < scale.size(); ++s) {
    const auto& sc = scale[s];
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"num_nodes\": %lld, \"num_edges\": %lld, \"num_links\": %zu,\n"
        "     \"build_seconds\": %.4f, \"save_seconds\": %.4f, "
        "\"load_map_seconds\": %.6f, \"load_copy_seconds\": %.4f,\n"
        "     \"clear_links_per_sec\": %.1f, \"epoch_links_per_sec\": %.1f, "
        "\"frontier_links_per_sec\": %.1f,\n"
        "     \"epoch_speedup\": %.2f, \"load_speedup\": %.1f}%s\n",
        static_cast<long long>(sc.num_nodes),
        static_cast<long long>(sc.num_edges), sc.num_links, sc.build_seconds,
        sc.save_seconds, sc.load_map_seconds, sc.load_copy_seconds,
        sc.clear_links_per_sec, sc.epoch_links_per_sec,
        sc.frontier_links_per_sec, sc.epoch_speedup, sc.load_speedup,
        s + 1 < scale.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_extraction.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a PATH argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s'\nusage: %s [--smoke] [--out PATH]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  const int reps = smoke ? 1 : 3;
  const auto max_threads = seal::default_build_threads();

  std::vector<datasets::LinkDataset> data;
  {
    datasets::CoraSimOptions o;
    o.num_pos_links = smoke ? 60 : 500;
    data.push_back(datasets::make_cora_sim(o));
  }
  {
    datasets::WordNetSimOptions o;
    o.num_nodes = smoke ? 500 : 2000;
    o.num_train = smoke ? 150 : 1300;
    o.num_test = smoke ? 40 : 300;
    data.push_back(datasets::make_wordnet_sim(o));
  }

  std::vector<DatasetResult> results;
  for (const auto& dset : data) {
    // Train + test links together: the build path is the same and more
    // links mean steadier timings.
    std::vector<seal::LinkExample> links = dset.train_links;
    links.insert(links.end(), dset.test_links.begin(), dset.test_links.end());
    const auto options = build_options(dset);

    DatasetResult dr;
    dr.dataset = dset.name;
    dr.num_links = links.size();

    std::vector<seal::SubgraphSample> serial_samples, one_thread_samples;
    dr.runs.push_back(time_build(dset.graph, links, options, /*threads=*/0,
                                 reps, &serial_samples));
    dr.runs.push_back(time_build(dset.graph, links, options, /*threads=*/1,
                                 reps, &one_thread_samples));
    if (!samples_identical(serial_samples, one_thread_samples)) {
      std::fprintf(stderr,
                   "FATAL: 1-worker build differs from the serial build on %s\n",
                   dset.name.c_str());
      return 1;
    }
    if (max_threads > 1) {
      std::vector<seal::SubgraphSample> parallel_samples;
      dr.runs.push_back(time_build(dset.graph, links, options, max_threads,
                                   reps, &parallel_samples));
      // Determinism contract: N workers must reproduce the serial bytes.
      if (!samples_identical(serial_samples, parallel_samples)) {
        std::fprintf(stderr,
                     "FATAL: %d-worker build differs from the serial build "
                     "on %s\n",
                     static_cast<int>(max_threads), dset.name.c_str());
        return 1;
      }
    }
    dr.stages = time_stages(dset.graph, links, options, reps);
    dr.i32_pool = ag::detail::i32_buffer_pool().stats();

    for (const auto& run : dr.runs)
      std::printf("%-12s %-8s threads=%d  %8.1f links/sec  (%.4fs)\n",
                  dr.dataset.c_str(), run.mode.c_str(), run.threads,
                  run.links_per_sec, run.seconds);
    for (const auto& st : dr.stages)
      std::printf("%-12s stage %-9s %8.1f links/sec  (%.4fs)\n",
                  dr.dataset.c_str(), st.stage.c_str(), st.links_per_sec,
                  st.seconds);
    results.push_back(std::move(dr));
  }

  // Scale tier: smoke uses one small graph (byte checks only); full runs
  // 10^5 and 10^6 nodes and asserts the DESIGN.md §2.6 gates.
  std::vector<ScaleResult> scale_results;
  const std::vector<std::int64_t> tiers =
      smoke ? std::vector<std::int64_t>{20'000}
            : std::vector<std::int64_t>{100'000, 1'000'000};
  for (const auto tier : tiers) {
    auto sc = run_scale_tier(tier, smoke);
    std::printf(
        "scale %-9lld build=%.2fs save=%.2fs mmap=%.5fs (%.0fx) "
        "clear=%.1f epoch=%.1f (%.1fx) frontier=%.1f links/sec\n",
        static_cast<long long>(sc.num_nodes), sc.build_seconds,
        sc.save_seconds, sc.load_map_seconds, sc.load_speedup,
        sc.clear_links_per_sec, sc.epoch_links_per_sec, sc.epoch_speedup,
        sc.frontier_links_per_sec);
    if (!smoke) {
      if (sc.load_speedup < 20.0) {
        std::fprintf(stderr,
                     "FATAL: mmap load only %.1fx faster than the generator "
                     "build at %lld nodes (gate: 20x)\n",
                     sc.load_speedup, static_cast<long long>(sc.num_nodes));
        return 1;
      }
      if (sc.num_nodes >= 1'000'000 && sc.epoch_speedup < 5.0) {
        std::fprintf(stderr,
                     "FATAL: epoch kernel only %.2fx over clear-per-link at "
                     "%lld nodes (gate: 5x)\n",
                     sc.epoch_speedup, static_cast<long long>(sc.num_nodes));
        return 1;
      }
    }
    scale_results.push_back(sc);
  }

  write_json(out_path, results, scale_results, smoke);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
