// Shared plumbing for the benchmark harness (bench_* binaries).
//
// Each bench binary regenerates one paper table or figure (DESIGN.md §5).
// All of them honour AMDGCNN_BENCH_SCALE = quick (default) | full:
// quick halves the link budgets so the whole harness runs in minutes on one
// CPU core; full approaches the reproduction scale of DESIGN.md §4.
#pragma once

#include <iostream>
#include <string>

#include "core/experiment.h"
#include "datasets/biokg_sim.h"
#include "datasets/cora_sim.h"
#include "datasets/primekg_sim.h"
#include "datasets/wordnet_sim.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace amdgcnn::bench {

using core::BenchScale;

inline datasets::LinkDataset make_primekg(BenchScale scale) {
  datasets::PrimeKGSimOptions o;
  if (scale == BenchScale::kQuick) {
    o.scale = 0.5;
    o.num_train = 800;
    o.num_test = 200;
  }
  return datasets::make_primekg_sim(o);
}

inline datasets::LinkDataset make_biokg(BenchScale scale) {
  datasets::BioKGSimOptions o;
  if (scale == BenchScale::kQuick) {
    o.scale = 0.5;
    o.num_train = 650;
    o.num_test = 200;
  }
  return datasets::make_biokg_sim(o);
}

inline datasets::LinkDataset make_wordnet(BenchScale scale) {
  datasets::WordNetSimOptions o;
  if (scale == BenchScale::kQuick) {
    o.num_nodes = 2000;
    // 10% of the paper's 13000/4000 split (wordnet needs volume: the
    // 18-way pair-decoding task is the most sample-hungry of the four).
    o.num_train = 1300;
    o.num_test = 300;
  }
  return datasets::make_wordnet_sim(o);
}

inline datasets::LinkDataset make_cora(BenchScale scale) {
  datasets::CoraSimOptions o;
  if (scale == BenchScale::kQuick) o.num_pos_links = 500;
  return datasets::make_cora_sim(o);
}

/// Per-dataset enclosing-subgraph size caps (the knob the paper's
/// intersection-vs-union discussion is about); values match the
/// calibration runs recorded in EXPERIMENTS.md.  The benches build with all
/// hardware workers — safe because the parallel build is bit-identical to
/// the serial path for any worker count.
inline seal::SealDataset prepare(const datasets::LinkDataset& data,
                                 ag::Dtype dtype = ag::Dtype::f64) {
  std::int64_t cap = 48;  // cora
  if (data.name == "primekg_sim" || data.name == "wordnet_sim") cap = 32;
  else if (data.name == "biokg_sim") cap = 40;
  return core::prepare_seal_dataset(data, cap, /*max_drnl_label=*/24,
                                    seal::default_build_threads(), dtype);
}

/// Per-dataset auto-tuned hyperparameters (paper experiment set (ii)).
/// Derived once by running `tune_model` at full scale (bench_hpo_space
/// re-runs the tuning live); recorded here so the figure benches don't pay
/// the tuning cost on every invocation.
inline hpo::HyperParams tuned_params(const std::string& dataset_name) {
  hpo::HyperParams hp;
  if (dataset_name == "primekg_sim") {
    hp.learning_rate = 3e-3;
    hp.hidden_dim = 32;
    hp.sort_k = 24;
  } else if (dataset_name == "biokg_sim") {
    hp.learning_rate = 3e-3;
    hp.hidden_dim = 64;
    hp.sort_k = 30;
  } else if (dataset_name == "wordnet_sim") {
    hp.learning_rate = 5e-3;
    hp.hidden_dim = 64;
    hp.sort_k = 20;
  } else {  // cora_sim
    hp = core::cora_tuned_defaults();
  }
  return hp;
}

inline void print_header(const std::string& what, BenchScale scale) {
  std::cout << "# " << what << "\n"
            << "# scale=" << core::bench_scale_name(scale)
            << " (set AMDGCNN_BENCH_SCALE=full for paper-scale runs)\n";
}

/// Figures 3-6: AUC after 2, 4, ..., 12 epochs for both models, under the
/// default (Cora-tuned) and per-dataset auto-tuned hyperparameters.
/// One table with a `setting` column replicates the paper's (a)/(b) panels.
inline void run_epoch_sweep(const datasets::LinkDataset& data,
                            const std::string& figure,
                            bool include_default_panel = true) {
  const auto scale = core::bench_scale_from_env();
  print_header(figure + ": effect of the number of epochs on AUC (" +
                   data.name + ")",
               scale);
  const auto seal_ds = prepare(data);
  std::cout << "# train=" << seal_ds.train.size()
            << " test=" << seal_ds.test.size()
            << " mean-subgraph=" << seal_ds.mean_subgraph_nodes() << "\n";

  util::Table table({"setting", "model", "epoch", "AUC", "AP"});
  struct Panel {
    const char* name;
    hpo::HyperParams hp;
  };
  std::vector<Panel> panels;
  if (include_default_panel)
    panels.push_back({"default", core::cora_tuned_defaults()});
  panels.push_back({"auto-tuned", tuned_params(data.name)});

  for (const auto& panel : panels) {
    for (auto kind :
         {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
      auto run = core::run_model(seal_ds, kind, panel.hp, /*epochs=*/12,
                                 /*seed=*/17, /*eval_every=*/2);
      for (const auto& rec : run.curve)
        table.add_row({panel.name, run.model_name,
                       std::to_string(rec.epoch),
                       util::Table::fmt(rec.test_auc, 3),
                       util::Table::fmt(rec.test_ap, 3)});
      std::cerr << "[" << figure << "] " << panel.name << " / "
                << run.model_name << " done (" << run.train_seconds
                << "s)\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
}

/// Figures 7-9: AUC of the fully trained models (10 epochs) vs the number
/// of training samples, under default and auto-tuned hyperparameters.
inline void run_sample_sweep(const datasets::LinkDataset& data,
                             const std::string& figure) {
  const auto scale = core::bench_scale_from_env();
  print_header(figure +
                   ": effect of the number of training samples on AUC (" +
                   data.name + ")",
               scale);
  const auto seal_ds = prepare(data);
  const auto total = static_cast<std::int64_t>(seal_ds.train.size());
  std::cout << "# train=" << total << " test=" << seal_ds.test.size() << "\n";

  util::Table table({"setting", "model", "train-samples", "AUC", "AP"});
  struct Panel {
    const char* name;
    hpo::HyperParams hp;
  };
  const Panel panels[] = {{"default", core::cora_tuned_defaults()},
                          {"auto-tuned", tuned_params(data.name)}};

  for (const auto& panel : panels) {
    for (auto kind :
         {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
      for (int frac = 2; frac <= 6; frac += 2) {
        const std::int64_t subset = total * frac / 6;
        auto run = core::run_model(seal_ds, kind, panel.hp, /*epochs=*/10,
                                   /*seed=*/17, /*eval_every=*/0, subset);
        table.add_row({panel.name, run.model_name, std::to_string(subset),
                       util::Table::fmt(run.final_eval.metrics.macro_auc, 3),
                       util::Table::fmt(
                           run.final_eval.metrics.macro_precision, 3)});
        std::cerr << "[" << figure << "] " << panel.name << " / "
                  << run.model_name << " n=" << subset << " done\n";
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
}

}  // namespace amdgcnn::bench
