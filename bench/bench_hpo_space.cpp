// Paper Table I + §III-D: prints the hyperparameter search space and runs
// the centralized Bayesian optimization (our DeepHyper substitute) live on
// one dataset, reporting the trial history and the winning configuration.
#include "bench_common.h"

#include "hpo/random_search.h"

int main() {
  using namespace amdgcnn;
  const auto scale = core::bench_scale_from_env();
  bench::print_header(
      "Table I: hyperparameter space + Bayesian-optimization demo", scale);

  hpo::SearchSpace space;
  util::Table space_table({"HyperParameter", "Options"});
  space_table.add_row({"Learning Rate", "[1e-06, 0.01] (log-uniform)"});
  space_table.add_row({"GNN Layer (GAT/GCN) Hidden Dimensions",
                       "16, 32, 64, 128"});
  space_table.add_row({"Sort Aggregator k Value",
                       std::to_string(space.k_min) + ", ..., " +
                           std::to_string(space.k_max) +
                           " (paper: 5..150; k >= 10 required by the conv "
                           "head)"});
  space_table.print(std::cout);

  // Live tuning demo on biokg_sim (the dataset the paper calls
  // hyperparameter-hungry due to data scarcity).
  auto data = bench::make_biokg(scale);
  const auto seal_ds = bench::prepare(data);
  hpo::BayesOptOptions opts;
  opts.num_initial = scale == core::BenchScale::kFull ? 4 : 2;
  opts.num_iterations = scale == core::BenchScale::kFull ? 8 : 3;
  const auto result = core::tune_model(seal_ds, models::GnnKind::kAMDGCNN,
                                       opts, /*tune_epochs=*/3,
                                       /*max_train_samples=*/200,
                                       /*max_val_samples=*/100);

  util::Table trials({"trial", "lr", "hidden", "sort-k", "val-AUC"});
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& t = result.history[i];
    trials.add_row({std::to_string(i + 1),
                    util::Table::fmt(t.params.learning_rate, 6),
                    std::to_string(t.params.hidden_dim),
                    std::to_string(t.params.sort_k),
                    util::Table::fmt(t.value, 3)});
  }
  std::cout << "\n# Bayesian-optimization trials (AM-DGCNN on "
            << data.name << "):\n";
  trials.print(std::cout);
  std::cout << "# best: " << result.best.to_string() << " -> val-AUC "
            << util::Table::fmt(result.best_value, 3) << "\n";
  return 0;
}
