#include "tensor/optim.h"

#include <cmath>

namespace amdgcnn::ag {

namespace {

// Optimiser state (momentum / Adam moments) is always f64 regardless of the
// parameter dtype (DESIGN.md §2.3): the moving averages are long-horizon
// accumulations, exactly the kind of sum the dtype policy keeps in double.
// Each update widens the parameter/gradient to f64, advances the f64 state,
// and narrows only the final write-back.

template <typename T>
double grad_sq_sum(Tensor& p) {
  // Lane-split f64 reduction (fixed order, bit-deterministic): a single
  // running sum is a serial FP chain that cannot vectorise.
  constexpr int kLanes = 8;
  double lanes[kLanes] = {};
  const auto& g = p.grad_as<T>();
  const T* __restrict__ gp = g.data();
  const std::size_t n = g.size();
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes)
    for (int l = 0; l < kLanes; ++l) {
      const double gd = static_cast<double>(gp[j + l]);
      lanes[l] += gd * gd;
    }
  double sq = 0.0;
  for (int l = 0; l < kLanes; ++l) sq += lanes[l];
  for (; j < n; ++j) {
    const double gd = static_cast<double>(gp[j]);
    sq += gd * gd;
  }
  return sq;
}

template <typename T>
void grad_scale(Tensor& p, double scale) {
  for (T& g : p.grad_as<T>()) g = static_cast<T>(static_cast<double>(g) * scale);
}

template <typename T>
void sgd_step_param(Tensor& p, std::vector<double>& vel, double lr,
                    double momentum, double weight_decay) {
  T* __restrict__ data = p.data_as<T>().data();
  const T* __restrict__ grad = p.grad_as<T>().data();
  double* __restrict__ vp = vel.data();
  const std::size_t n = static_cast<std::size_t>(p.numel());
  for (std::size_t j = 0; j < n; ++j) {
    const double g = static_cast<double>(grad[j]) +
                     weight_decay * static_cast<double>(data[j]);
    vp[j] = momentum * vp[j] + g;
    data[j] = static_cast<T>(static_cast<double>(data[j]) - lr * vp[j]);
  }
}

template <typename T>
void adam_step_param(Tensor& p, std::vector<double>& m, std::vector<double>& v,
                     double lr, double beta1, double beta2, double eps,
                     double weight_decay, double bc1, double bc2) {
  // __restrict__ lets the per-element update vectorise (the sqrt/div chain
  // is the cost; packed sqrt and div are IEEE-exact, so results are
  // bit-identical to the scalar loop).
  T* __restrict__ data = p.data_as<T>().data();
  const T* __restrict__ grad = p.grad_as<T>().data();
  double* __restrict__ mp = m.data();
  double* __restrict__ vp = v.data();
  const std::size_t n = static_cast<std::size_t>(p.numel());
  for (std::size_t j = 0; j < n; ++j) {
    const double g = static_cast<double>(grad[j]) +
                     weight_decay * static_cast<double>(data[j]);
    mp[j] = beta1 * mp[j] + (1.0 - beta1) * g;
    vp[j] = beta2 * vp[j] + (1.0 - beta2) * g * g;
    const double mhat = mp[j] / bc1;
    const double vhat = vp[j] / bc2;
    data[j] = static_cast<T>(static_cast<double>(data[j]) -
                             lr * mhat / (std::sqrt(vhat) + eps));
  }
}

}  // namespace

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (auto& p : params_) {
    check(p.defined(), "Optimizer: undefined parameter");
    check(p.requires_grad(), "Optimizer: parameter does not require grad");
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

double Optimizer::clip_grad_norm(double max_norm) {
  check(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
  double sq = 0.0;
  for (auto& p : params_)
    sq += p.dtype() == Dtype::f32 ? grad_sq_sum<float>(p)
                                  : grad_sq_sum<double>(p);
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (auto& p : params_) {
      if (p.dtype() == Dtype::f32)
        grad_scale<float>(p, scale);
      else
        grad_scale<double>(p, scale);
    }
  }
  return norm;
}

SGD::SGD(std::vector<Tensor> params, double lr_in, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr(lr_in),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    velocity_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0);
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].dtype() == Dtype::f32)
      sgd_step_param<float>(params_[i], velocity_[i], lr, momentum_,
                            weight_decay_);
    else
      sgd_step_param<double>(params_[i], velocity_[i], lr, momentum_,
                             weight_decay_);
  }
}

Adam::Adam(std::vector<Tensor> params, double lr_in, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr(lr_in),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0);
    v_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].dtype() == Dtype::f32)
      adam_step_param<float>(params_[i], m_[i], v_[i], lr, beta1_, beta2_,
                             eps_, weight_decay_, bc1, bc2);
    else
      adam_step_param<double>(params_[i], m_[i], v_[i], lr, beta1_, beta2_,
                              eps_, weight_decay_, bc1, bc2);
  }
}

}  // namespace amdgcnn::ag
