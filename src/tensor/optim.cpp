#include "tensor/optim.h"

#include <cmath>

namespace amdgcnn::ag {

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (auto& p : params_) {
    check(p.defined(), "Optimizer: undefined parameter");
    check(p.requires_grad(), "Optimizer: parameter does not require grad");
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

double Optimizer::clip_grad_norm(double max_norm) {
  check(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
  double sq = 0.0;
  for (auto& p : params_)
    for (double g : p.grad()) sq += g * g;
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (auto& p : params_)
      for (double& g : p.grad()) g *= scale;
  }
  return norm;
}

SGD::SGD(std::vector<Tensor> params, double lr_in, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr(lr_in),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    velocity_[i].assign(params_[i].data().size(), 0.0);
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    auto& grad = params_[i].grad();
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < data.size(); ++j) {
      double g = grad[j] + weight_decay_ * data[j];
      vel[j] = momentum_ * vel[j] + g;
      data[j] -= lr * vel[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, double lr_in, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr(lr_in),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0);
    v_[i].assign(params_[i].data().size(), 0.0);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    auto& grad = params_[i].grad();
    for (std::size_t j = 0; j < data.size(); ++j) {
      double g = grad[j] + weight_decay_ * data[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0 - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0 - beta2_) * g * g;
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      data[j] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace amdgcnn::ag
