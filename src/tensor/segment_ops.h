// Segment (scatter/gather) operations — the message-passing primitives.
//
// GNN layers express neighborhood aggregation as gather_rows (ops.h) over
// edge sources followed by scatter_add_rows over edge destinations;
// attention normalisation is a softmax *within each destination segment*
// (segment_softmax).  These mirror torch_scatter / PyG's building blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace amdgcnn::ag::ops {

/// out[index[i], :] += src[i, :], out has `num_rows` rows.
/// index values must lie in [0, num_rows).
Tensor scatter_add_rows(const Tensor& src,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows);

/// Fused scatter_add_rows + row-broadcast bias add:
/// out = bias (broadcast over rows); out[index[i], :] += src[i, :].
/// Saves one full pass over the aggregated node matrix per GNN layer
/// compared with scatter_add_rows followed by add_rowvec.
Tensor scatter_add_bias(const Tensor& src,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows, const Tensor& bias);

/// Softmax over rows sharing a segment id, independently per column.
/// scores: [E, H]; segment: E ids in [0, num_segments).
/// out[e, h] = exp(scores[e, h]) / sum_{e': segment[e']=segment[e]}
///             exp(scores[e', h])   (numerically stabilised per segment).
/// Rows of an empty segment do not exist by construction; every input row
/// belongs to exactly one segment, so each output row is a valid softmax
/// weight and the weights of each (segment, column) pair sum to 1.
Tensor segment_softmax(const Tensor& scores,
                       const std::vector<std::int64_t>& segment,
                       std::int64_t num_segments);

/// out[s, :] = sum of src rows with segment id s (dense segment sum).
Tensor segment_sum(const Tensor& src, const std::vector<std::int64_t>& segment,
                   std::int64_t num_segments);

}  // namespace amdgcnn::ag::ops
