// IEEE 754 half-precision (binary16) storage codec (DESIGN.md §2.7).
//
// f16 is a STORAGE format, not a compute format: weights are held as
// bit-cast std::uint16_t and decoded to f32 before any arithmetic, so every
// kernel keeps running at f32/f64 and the dtype determinism contract is
// untouched.  Decode goes through a process-wide 65536-entry f32 table
// (the ggml `wsp_ggml_table_f32_f16` idiom, SNIPPETS.md §1): one L1/L2 load
// per element, branch-free, and trivially exact — the table IS the decode
// function, enumerated.  Encode is round-to-nearest-even with subnormal,
// overflow-to-inf and NaN-payload handling; round-tripping any f16 bit
// pattern through decode→encode reproduces the original bits (asserted for
// all 65536 patterns by tests/test_quant.cpp).
#pragma once

#include <cstdint>

namespace amdgcnn::ag {

/// Bit-cast half-precision storage scalar.
struct f16_t {
  std::uint16_t bits = 0;
};

namespace detail {
/// The 65536-entry decode table; built once on first use (thread-safe
/// function-local static).  Index with the raw f16 bit pattern.
const float* f16_table();

/// Pure bit-manipulation decode — used to BUILD the table and by tests to
/// cross-check it; runtime decode should go through the table.
float f16_decode_bits(std::uint16_t h);
}  // namespace detail

/// Decode through the lookup table.
inline float f16_to_f32(f16_t h) { return detail::f16_table()[h.bits]; }

/// Round-to-nearest-even f32 -> f16 encode.  Values beyond the f16 range
/// become ±inf; NaNs stay NaN (top payload bits kept, quiet bit forced so
/// the significand can never collapse to zero/inf).
f16_t f32_to_f16(float f);

/// Bulk table decode (dst[i] = table[src[i].bits]); the frozen-inference
/// per-layer weight decode.
void f16_decode_row(const f16_t* src, float* dst, std::int64_t n);

}  // namespace amdgcnn::ag
