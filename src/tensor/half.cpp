#include "tensor/half.h"

#include <cstring>

namespace amdgcnn::ag {

namespace detail {

namespace {

inline float bits_to_float(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

inline std::uint32_t float_to_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

}  // namespace

float f16_decode_bits(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h >> 15) << 31;
  const std::uint32_t exp = (h >> 10) & 0x1F;
  std::uint32_t mant = h & 0x3FF;
  if (exp == 0) {
    if (mant == 0) return bits_to_float(sign);  // ±0
    // Subnormal: value = mant * 2^-24.  Normalise by shifting the mantissa
    // up until its leading bit reaches the implicit-1 position.
    std::uint32_t e = 127 - 15 + 1;  // exponent of 2^-14 before the shifts
    while ((mant & 0x400) == 0) {
      mant <<= 1;
      --e;
    }
    mant &= 0x3FF;
    return bits_to_float(sign | (e << 23) | (mant << 13));
  }
  if (exp == 0x1F) {  // inf / NaN: payload bits keep their top positions
    return bits_to_float(sign | 0x7F800000u | (mant << 13));
  }
  return bits_to_float(sign | ((exp + (127 - 15)) << 23) | (mant << 13));
}

const float* f16_table() {
  // Built once, 256 KiB, immutable afterwards.  A function-local static
  // keeps initialisation thread-safe without an init call in main().
  static const float* table = [] {
    float* t = new float[1 << 16];
    for (std::uint32_t i = 0; i < (1u << 16); ++i)
      t[i] = f16_decode_bits(static_cast<std::uint16_t>(i));
    return t;
  }();
  return table;
}

}  // namespace detail

f16_t f32_to_f16(float f) {
  const std::uint32_t u = detail::float_to_bits(f);
  const std::uint16_t sign = static_cast<std::uint16_t>((u >> 16) & 0x8000);
  const std::uint32_t exp = (u >> 23) & 0xFF;
  const std::uint32_t mant = u & 0x7FFFFF;

  if (exp == 0xFF) {  // inf / NaN
    if (mant == 0) return {static_cast<std::uint16_t>(sign | 0x7C00)};
    // NaN: keep the top 10 payload bits; only when the payload lives
    // entirely in the dropped low bits force the quiet bit, so the
    // significand cannot collapse to zero and decay into inf.  (An
    // unconditional force would quieten f16-origin signalling NaNs and
    // break the all-65536-patterns round-trip.)
    std::uint16_t m = static_cast<std::uint16_t>(mant >> 13);
    if (m == 0) m = 0x200;
    return {static_cast<std::uint16_t>(sign | 0x7C00 | m)};
  }

  // Unbiased exponent; f16 normals cover [-14, 15].
  const std::int32_t e = static_cast<std::int32_t>(exp) - 127;
  if (e >= 16) {  // too large even after rounding: ±inf
    return {static_cast<std::uint16_t>(sign | 0x7C00)};
  }
  if (e >= -14) {
    // Normal range: round the 23-bit mantissa to 10 bits (RNE).  The
    // carry-out of an all-ones mantissa rounds up into the exponent field —
    // including 65520 -> 2^16, which lands exactly on the inf encoding.
    std::uint32_t out = (static_cast<std::uint32_t>(e + 15) << 10) |
                        (mant >> 13);
    const std::uint32_t rest = mant & 0x1FFF;
    if (rest > 0x1000 || (rest == 0x1000 && (out & 1))) ++out;
    if (out >= 0x7C00) return {static_cast<std::uint16_t>(sign | 0x7C00)};
    return {static_cast<std::uint16_t>(sign | out)};
  }
  if (e >= -25) {
    // Subnormal range: shift the implicit-1 significand right so the result
    // is an integer count of 2^-24 ulps, then RNE on the dropped bits.
    const std::uint32_t sig = mant | 0x800000;
    const std::uint32_t shift = static_cast<std::uint32_t>(-14 - e) + 13;
    std::uint32_t out = sig >> shift;
    const std::uint32_t rest = sig & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    if (rest > half || (rest == half && (out & 1))) ++out;
    // out can carry into the smallest normal (exp field 1) — correct encoding.
    return {static_cast<std::uint16_t>(sign | out)};
  }
  return {sign};  // underflow to ±0
}

void f16_decode_row(const f16_t* src, float* dst, std::int64_t n) {
  const float* table = detail::f16_table();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = table[src[i].bits];
}

}  // namespace amdgcnn::ag
