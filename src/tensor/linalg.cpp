#include "tensor/linalg.h"

#include <cmath>
#include <stdexcept>

namespace amdgcnn::linalg {

std::vector<double> cholesky(const std::vector<double>& a, std::size_t n) {
  if (a.size() != n * n) throw std::invalid_argument("cholesky: bad size");
  std::vector<double> l(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (s <= 0.0)
          throw std::runtime_error("cholesky: matrix not positive definite");
        l[i * n + j] = std::sqrt(s);
      } else {
        l[i * n + j] = s / l[j * n + j];
      }
    }
  }
  return l;
}

std::vector<double> solve_lower(const std::vector<double>& l, std::size_t n,
                                const std::vector<double>& b) {
  if (b.size() != n) throw std::invalid_argument("solve_lower: bad rhs");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l[i * n + k] * y[k];
    y[i] = s / l[i * n + i];
  }
  return y;
}

std::vector<double> solve_lower_transpose(const std::vector<double>& l,
                                          std::size_t n,
                                          const std::vector<double>& y) {
  if (y.size() != n)
    throw std::invalid_argument("solve_lower_transpose: bad rhs");
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l[k * n + ii] * x[k];
    x[ii] = s / l[ii * n + ii];
  }
  return x;
}

std::vector<double> solve_spd(const std::vector<double>& a, std::size_t n,
                              const std::vector<double>& b) {
  auto l = cholesky(a, n);
  return solve_lower_transpose(l, n, solve_lower(l, n, b));
}

std::vector<double> matvec(const std::vector<double>& a, std::size_t n,
                           std::size_t m, const std::vector<double>& x) {
  if (a.size() != n * m || x.size() != m)
    throw std::invalid_argument("matvec: size mismatch");
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) y[i] += a[i * m + j] * x[j];
  return y;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace amdgcnn::linalg
