#include "tensor/segment_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels.h"

namespace amdgcnn::ag::ops {

Tensor scatter_add_rows(const Tensor& src,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows) {
  check(src.rank() == 2, "scatter_add_rows: src must be rank-2");
  check(static_cast<std::int64_t>(index.size()) == src.dim(0),
        "scatter_add_rows: index length must equal src rows");
  const std::int64_t m = src.dim(1);
  for (auto i : index)
    check(i >= 0 && i < num_rows, "scatter_add_rows: index out of range");
  const auto& sv = src.data();
  std::vector<double> out =
      detail::new_zeroed(static_cast<std::size_t>(num_rows * m));
  for (std::size_t r = 0; r < index.size(); ++r)
    for (std::int64_t c = 0; c < m; ++c)
      out[index[r] * m + c] += sv[r * m + c];
  return Tensor::make_op_result(
      {num_rows, m}, std::move(out), {src},
      [src, index, m](detail::TensorImpl& self) {
        if (!src.requires_grad()) return;
        auto& g = detail::grad_of(*src.impl());
        for (std::size_t r = 0; r < index.size(); ++r)
          for (std::int64_t c = 0; c < m; ++c)
            g[r * m + c] += self.grad[index[r] * m + c];
      });
}

Tensor scatter_add_bias(const Tensor& src,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows, const Tensor& bias) {
  check(src.rank() == 2, "scatter_add_bias: src must be rank-2");
  check(static_cast<std::int64_t>(index.size()) == src.dim(0),
        "scatter_add_bias: index length must equal src rows");
  const std::int64_t m = src.dim(1);
  check(bias.numel() == m, "scatter_add_bias: bias length must equal columns");
  for (auto i : index)
    check(i >= 0 && i < num_rows, "scatter_add_bias: index out of range");
  const auto& sv = src.data();
  const double* bv = bias.data().data();
  std::vector<double> out =
      detail::new_buffer(static_cast<std::size_t>(num_rows * m));
  for (std::int64_t r = 0; r < num_rows; ++r)
    std::copy_n(bv, m, out.data() + r * m);
  for (std::size_t r = 0; r < index.size(); ++r)
    for (std::int64_t c = 0; c < m; ++c)
      out[index[r] * m + c] += sv[r * m + c];
  return Tensor::make_op_result(
      {num_rows, m}, std::move(out), {src, bias},
      [src, bias, index, num_rows, m](detail::TensorImpl& self) {
        if (src.requires_grad()) {
          auto& g = detail::grad_of(*src.impl());
          for (std::size_t r = 0; r < index.size(); ++r)
            for (std::int64_t c = 0; c < m; ++c)
              g[r * m + c] += self.grad[index[r] * m + c];
        }
        if (bias.requires_grad())
          kern::col_sum_add(self.grad.data(),
                            detail::grad_of(*bias.impl()).data(), num_rows, m);
      });
}

Tensor segment_softmax(const Tensor& scores,
                       const std::vector<std::int64_t>& segment,
                       std::int64_t num_segments) {
  check(scores.rank() == 2, "segment_softmax: scores must be rank-2");
  check(static_cast<std::int64_t>(segment.size()) == scores.dim(0),
        "segment_softmax: segment length must equal score rows");
  const std::int64_t e = scores.dim(0), h = scores.dim(1);
  for (auto s : segment)
    check(s >= 0 && s < num_segments, "segment_softmax: segment out of range");
  const auto& sv = scores.data();

  // Per-(segment, column) max for numerical stability, then normalise.  The
  // scratch vectors are pooled; only `out` escapes into the tape.
  std::vector<double> seg_max =
      detail::new_buffer(static_cast<std::size_t>(num_segments * h));
  std::fill(seg_max.begin(), seg_max.end(),
            -std::numeric_limits<double>::infinity());
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      seg_max[segment[r] * h + c] =
          std::max(seg_max[segment[r] * h + c], sv[r * h + c]);

  std::vector<double> out = detail::new_buffer(sv.size());
  std::vector<double> seg_sum =
      detail::new_zeroed(static_cast<std::size_t>(num_segments * h));
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c) {
      out[r * h + c] = std::exp(sv[r * h + c] - seg_max[segment[r] * h + c]);
      seg_sum[segment[r] * h + c] += out[r * h + c];
    }
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      out[r * h + c] /= seg_sum[segment[r] * h + c];
  detail::buffer_pool().release(std::move(seg_max));
  detail::buffer_pool().release(std::move(seg_sum));

  return Tensor::make_op_result(
      {e, h}, std::move(out), {scores},
      [scores, segment, e, h, num_segments](detail::TensorImpl& self) {
        if (!scores.requires_grad()) return;
        // d score = alpha * (d alpha - sum_seg(alpha * d alpha)).
        std::vector<double> seg_dot =
            detail::new_zeroed(static_cast<std::size_t>(num_segments * h));
        for (std::int64_t r = 0; r < e; ++r)
          for (std::int64_t c = 0; c < h; ++c)
            seg_dot[segment[r] * h + c] +=
                self.data[r * h + c] * self.grad[r * h + c];
        auto& g = detail::grad_of(*scores.impl());
        for (std::int64_t r = 0; r < e; ++r)
          for (std::int64_t c = 0; c < h; ++c)
            g[r * h + c] += self.data[r * h + c] *
                            (self.grad[r * h + c] -
                             seg_dot[segment[r] * h + c]);
        detail::buffer_pool().release(std::move(seg_dot));
      });
}

Tensor segment_sum(const Tensor& src, const std::vector<std::int64_t>& segment,
                   std::int64_t num_segments) {
  return scatter_add_rows(src, segment, num_segments);
}

}  // namespace amdgcnn::ag::ops
