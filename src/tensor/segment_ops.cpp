#include "tensor/segment_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace amdgcnn::ag::ops {

Tensor scatter_add_rows(const Tensor& src,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows) {
  check(src.rank() == 2, "scatter_add_rows: src must be rank-2");
  check(static_cast<std::int64_t>(index.size()) == src.dim(0),
        "scatter_add_rows: index length must equal src rows");
  const std::int64_t m = src.dim(1);
  for (auto i : index)
    check(i >= 0 && i < num_rows, "scatter_add_rows: index out of range");
  std::vector<double> out(static_cast<std::size_t>(num_rows * m), 0.0);
  for (std::size_t r = 0; r < index.size(); ++r)
    for (std::int64_t c = 0; c < m; ++c)
      out[index[r] * m + c] += src.data()[r * m + c];
  return Tensor::make_op_result(
      {num_rows, m}, std::move(out), {src},
      [src, index, m](detail::TensorImpl& self) {
        if (!src.requires_grad()) return;
        auto& g = src.impl()->grad;
        for (std::size_t r = 0; r < index.size(); ++r)
          for (std::int64_t c = 0; c < m; ++c)
            g[r * m + c] += self.grad[index[r] * m + c];
      });
}

Tensor segment_softmax(const Tensor& scores,
                       const std::vector<std::int64_t>& segment,
                       std::int64_t num_segments) {
  check(scores.rank() == 2, "segment_softmax: scores must be rank-2");
  check(static_cast<std::int64_t>(segment.size()) == scores.dim(0),
        "segment_softmax: segment length must equal score rows");
  const std::int64_t e = scores.dim(0), h = scores.dim(1);
  for (auto s : segment)
    check(s >= 0 && s < num_segments, "segment_softmax: segment out of range");

  // Per-(segment, column) max for numerical stability, then normalise.
  std::vector<double> seg_max(static_cast<std::size_t>(num_segments * h),
                              -std::numeric_limits<double>::infinity());
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      seg_max[segment[r] * h + c] =
          std::max(seg_max[segment[r] * h + c], scores.data()[r * h + c]);

  std::vector<double> out(scores.data().size());
  std::vector<double> seg_sum(static_cast<std::size_t>(num_segments * h), 0.0);
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c) {
      out[r * h + c] =
          std::exp(scores.data()[r * h + c] - seg_max[segment[r] * h + c]);
      seg_sum[segment[r] * h + c] += out[r * h + c];
    }
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      out[r * h + c] /= seg_sum[segment[r] * h + c];

  return Tensor::make_op_result(
      {e, h}, std::move(out), {scores},
      [scores, segment, e, h, num_segments](detail::TensorImpl& self) {
        if (!scores.requires_grad()) return;
        // d score = alpha * (d alpha - sum_seg(alpha * d alpha)).
        std::vector<double> seg_dot(
            static_cast<std::size_t>(num_segments * h), 0.0);
        for (std::int64_t r = 0; r < e; ++r)
          for (std::int64_t c = 0; c < h; ++c)
            seg_dot[segment[r] * h + c] +=
                self.data[r * h + c] * self.grad[r * h + c];
        auto& g = scores.impl()->grad;
        for (std::int64_t r = 0; r < e; ++r)
          for (std::int64_t c = 0; c < h; ++c)
            g[r * h + c] += self.data[r * h + c] *
                            (self.grad[r * h + c] -
                             seg_dot[segment[r] * h + c]);
      });
}

Tensor segment_sum(const Tensor& src, const std::vector<std::int64_t>& segment,
                   std::int64_t num_segments) {
  return scatter_add_rows(src, segment, num_segments);
}

}  // namespace amdgcnn::ag::ops
