// Dtype-generic segment/scatter ops used by the GNN message passing.  The
// scatter adds run at native width in fixed row order (deterministic for
// either dtype); the segment-softmax normalisers accumulate in f64 per the
// dtype policy (DESIGN.md §2.3).
#include "tensor/segment_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/fwd_kernels.h"
#include "tensor/kernels.h"

namespace amdgcnn::ag::ops {

namespace {

#define AG_DISPATCH(dt, fn, ...) \
  ((dt) == Dtype::f32 ? fn<float>(__VA_ARGS__) : fn<double>(__VA_ARGS__))

template <typename T>
Tensor scatter_add_rows_impl(const Tensor& src,
                             const std::vector<std::int64_t>& index,
                             std::int64_t num_rows) {
  const std::int64_t m = src.dim(1);
  const auto& sv = src.data_as<T>();
  std::vector<T> out =
      detail::new_zeroed_t<T>(static_cast<std::size_t>(num_rows * m));
  for (std::size_t r = 0; r < index.size(); ++r)
    for (std::int64_t c = 0; c < m; ++c)
      out[index[r] * m + c] += sv[r * m + c];
  return Tensor::make_op_result(
      {num_rows, m}, std::move(out), {src},
      [src, index, m](detail::TensorImpl& self) {
        if (!src.requires_grad()) return;
        const auto& sg = self.grad_as<T>();
        auto& g = detail::grad_of<T>(*src.impl());
        for (std::size_t r = 0; r < index.size(); ++r)
          for (std::int64_t c = 0; c < m; ++c)
            g[r * m + c] += sg[index[r] * m + c];
      });
}

template <typename T>
Tensor scatter_add_bias_impl(const Tensor& src,
                             const std::vector<std::int64_t>& index,
                             std::int64_t num_rows, const Tensor& bias) {
  const std::int64_t m = src.dim(1);
  const auto& sv = src.data_as<T>();
  const T* bv = bias.data_as<T>().data();
  std::vector<T> out =
      detail::new_buffer_t<T>(static_cast<std::size_t>(num_rows * m));
  fwd::scatter_add_bias_fwd(sv.data(), index.data(),
                            static_cast<std::int64_t>(index.size()), num_rows,
                            m, bv, out.data());
  return Tensor::make_op_result(
      {num_rows, m}, std::move(out), {src, bias},
      [src, bias, index, num_rows, m](detail::TensorImpl& self) {
        const auto& sg = self.grad_as<T>();
        if (src.requires_grad()) {
          auto& g = detail::grad_of<T>(*src.impl());
          for (std::size_t r = 0; r < index.size(); ++r)
            for (std::int64_t c = 0; c < m; ++c)
              g[r * m + c] += sg[index[r] * m + c];
        }
        if (bias.requires_grad())
          kern::col_sum_add(sg.data(), detail::grad_of<T>(*bias.impl()).data(),
                            num_rows, m);
      });
}

template <typename T>
Tensor segment_softmax_impl(const Tensor& scores,
                            const std::vector<std::int64_t>& segment,
                            std::int64_t num_segments) {
  const std::int64_t e = scores.dim(0), h = scores.dim(1);
  const auto& sv = scores.data_as<T>();

  // Shared forward (fwd_kernels.h — also the frozen inference path).  The
  // max pass and exp run at the storage width T (max is exact in either
  // width, and exp of an f32 score only moves the result within storage
  // rounding — std::exp(float) is ~2x cheaper); the normaliser seg_sum is
  // pooled f64 regardless of dtype (policy: softmax normalisers accumulate
  // in double).  Only `out` escapes into the tape at the tensor's width.
  std::vector<T> seg_max =
      detail::new_buffer_t<T>(static_cast<std::size_t>(num_segments * h));
  std::vector<T> out = detail::new_buffer_t<T>(sv.size());
  std::vector<double> seg_sum =
      detail::new_zeroed(static_cast<std::size_t>(num_segments * h));
  fwd::segment_softmax_fwd(sv.data(), segment.data(), out.data(),
                           seg_max.data(), seg_sum.data(), e, h,
                           num_segments);
  detail::pool_of<T>().release(std::move(seg_max));
  detail::buffer_pool().release(std::move(seg_sum));

  return Tensor::make_op_result(
      {e, h}, std::move(out), {scores},
      [scores, segment, e, h, num_segments](detail::TensorImpl& self) {
        if (!scores.requires_grad()) return;
        // d score = alpha * (d alpha - sum_seg(alpha * d alpha)).
        const auto& sg = self.grad_as<T>();
        const auto& sd = self.data_as<T>();
        std::vector<double> seg_dot =
            detail::new_zeroed(static_cast<std::size_t>(num_segments * h));
        for (std::int64_t r = 0; r < e; ++r)
          for (std::int64_t c = 0; c < h; ++c)
            seg_dot[segment[r] * h + c] +=
                static_cast<double>(sd[r * h + c]) *
                static_cast<double>(sg[r * h + c]);
        auto& g = detail::grad_of<T>(*scores.impl());
        for (std::int64_t r = 0; r < e; ++r)
          for (std::int64_t c = 0; c < h; ++c)
            g[r * h + c] += static_cast<T>(
                static_cast<double>(sd[r * h + c]) *
                (static_cast<double>(sg[r * h + c]) -
                 seg_dot[segment[r] * h + c]));
        detail::buffer_pool().release(std::move(seg_dot));
      });
}

}  // namespace

Tensor scatter_add_rows(const Tensor& src,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows) {
  check(src.rank() == 2, "scatter_add_rows: src must be rank-2");
  check(static_cast<std::int64_t>(index.size()) == src.dim(0),
        "scatter_add_rows: index length must equal src rows");
  for (auto i : index)
    check(i >= 0 && i < num_rows, "scatter_add_rows: index out of range");
  return AG_DISPATCH(src.dtype(), scatter_add_rows_impl, src, index, num_rows);
}

Tensor scatter_add_bias(const Tensor& src,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows, const Tensor& bias) {
  check(src.rank() == 2, "scatter_add_bias: src must be rank-2");
  check(static_cast<std::int64_t>(index.size()) == src.dim(0),
        "scatter_add_bias: index length must equal src rows");
  check(bias.numel() == src.dim(1),
        "scatter_add_bias: bias length must equal columns");
  check(src.dtype() == bias.dtype(), "scatter_add_bias: dtype mismatch");
  for (auto i : index)
    check(i >= 0 && i < num_rows, "scatter_add_bias: index out of range");
  return AG_DISPATCH(src.dtype(), scatter_add_bias_impl, src, index, num_rows,
                     bias);
}

Tensor segment_softmax(const Tensor& scores,
                       const std::vector<std::int64_t>& segment,
                       std::int64_t num_segments) {
  check(scores.rank() == 2, "segment_softmax: scores must be rank-2");
  check(static_cast<std::int64_t>(segment.size()) == scores.dim(0),
        "segment_softmax: segment length must equal score rows");
  for (auto s : segment)
    check(s >= 0 && s < num_segments, "segment_softmax: segment out of range");
  return AG_DISPATCH(scores.dtype(), segment_softmax_impl, scores, segment,
                     num_segments);
}

Tensor segment_sum(const Tensor& src, const std::vector<std::int64_t>& segment,
                   std::int64_t num_segments) {
  return scatter_add_rows(src, segment, num_segments);
}

#undef AG_DISPATCH

}  // namespace amdgcnn::ag::ops
