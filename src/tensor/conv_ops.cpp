// Dtype-generic SortPooling / 1-D convolution / max-pooling ops.  Each op is
// implemented once over the scalar type T and dispatched on the input dtype;
// the conv accumulator runs at native width (matmul-family, bandwidth-bound),
// while comparisons (sort order, pooling argmax) are exact in either width.
#include "tensor/conv_ops.h"

#include <algorithm>
#include <numeric>

#include "tensor/fwd_kernels.h"

namespace amdgcnn::ag::ops {

namespace {

#define AG_DISPATCH(dt, fn, ...) \
  ((dt) == Dtype::f32 ? fn<float>(__VA_ARGS__) : fn<double>(__VA_ARGS__))

template <typename T>
Tensor sort_pool_impl(const Tensor& x, std::int64_t k) {
  const std::int64_t n = x.dim(0), c = x.dim(1);

  // Row selection lives in fwd::sort_perm_topk (fwd_kernels.h, shared with
  // the frozen inference path): descending last column, then descending
  // earlier columns, finally ascending original index — a strict total
  // order, so the top-k row SET is unique and nth_element + partial sort of
  // the kept prefix selects exactly the rows a full sort would, in the same
  // order, at O(n + k log k) instead of O(n log n).
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  const auto& d = x.data_as<T>();
  const std::int64_t keep = fwd::sort_perm_topk(d.data(), n, c, k, perm.data());
  std::vector<T> out = detail::new_zeroed_t<T>(static_cast<std::size_t>(k * c));
  for (std::int64_t r = 0; r < keep; ++r)
    std::copy_n(d.begin() + perm[r] * c, c, out.begin() + r * c);

  std::vector<std::int64_t> sel(perm.begin(), perm.begin() + keep);
  return Tensor::make_op_result(
      {k, c}, std::move(out), {x},
      [x, sel, c](detail::TensorImpl& self) {
        if (!x.requires_grad()) return;
        const auto& sg = self.grad_as<T>();
        auto& g = detail::grad_of<T>(*x.impl());
        for (std::size_t r = 0; r < sel.size(); ++r)
          for (std::int64_t col = 0; col < c; ++col)
            g[sel[r] * c + col] += sg[r * c + col];
      });
}

template <typename T>
Tensor conv1d_impl(const Tensor& x, const Tensor& weight, const Tensor& bias,
                   std::int64_t kernel, std::int64_t stride) {
  const std::int64_t cin = x.dim(0), len = x.dim(1);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t lout = (len - kernel) / stride + 1;
  const bool has_bias = bias.defined();

  std::vector<T> out =
      detail::new_buffer_t<T>(static_cast<std::size_t>(cout * lout));
  const auto& xd = x.data_as<T>();
  const auto& wd = weight.data_as<T>();
  const T* bv = has_bias ? bias.data_as<T>().data() : nullptr;
  // Shared forward (fwd_kernels.h — the frozen inference path runs the same
  // instantiation).  Two layouts, both fixed-order (bit-deterministic for a
  // given dtype): stride == 1 (the second read-out conv, K=5) vectorises
  // across output positions; strided (the first read-out conv, kernel =
  // stride = total embedding width) splits each unavoidable dot product
  // into kLanes independent accumulators — a single running sum is a serial
  // FP chain the compiler may not reassociate into SIMD.
  fwd::conv1d_fwd(xd.data(), wd.data(), bv, out.data(), cin, len, cout,
                  kernel, stride);

  std::vector<Tensor> parents = {x, weight};
  if (has_bias) parents.push_back(bias);
  return Tensor::make_op_result(
      {cout, lout}, std::move(out), parents,
      [x, weight, bias, kernel, stride, cin, cout, len, lout,
       has_bias](detail::TensorImpl& self) {
        const T* __restrict__ xd = x.data_as<T>().data();
        const T* __restrict__ wd = weight.data_as<T>().data();
        const auto& sg = self.grad_as<T>();
        // Hoist the requires_grad branches and sink lookups out of the
        // quadruple loop; null pointers mean "no gradient wanted".  Grad
        // buffers never alias data buffers, so __restrict__ lets the
        // kernel-length inner loops vectorise.
        T* __restrict__ gx = x.requires_grad()
                                 ? detail::grad_of<T>(*x.impl()).data()
                                 : nullptr;
        T* __restrict__ gw = weight.requires_grad()
                                 ? detail::grad_of<T>(*weight.impl()).data()
                                 : nullptr;
        T* gb = (has_bias && bias.requires_grad())
                    ? detail::grad_of<T>(*bias.impl()).data()
                    : nullptr;
        for (std::int64_t oc = 0; oc < cout; ++oc)
          for (std::int64_t j = 0; j < lout; ++j) {
            const T go = sg[oc * lout + j];
            // Post-ReLU/pool upstream gradients are mostly zero here; this
            // skip is a measured win, unlike in dense matmul backward.
            if (go == T(0)) continue;
            const std::int64_t base = j * stride;
            if (gx != nullptr)
              for (std::int64_t ic = 0; ic < cin; ++ic)
                for (std::int64_t t = 0; t < kernel; ++t)
                  gx[ic * len + base + t] +=
                      go * wd[oc * cin * kernel + ic * kernel + t];
            if (gw != nullptr)
              for (std::int64_t ic = 0; ic < cin; ++ic)
                for (std::int64_t t = 0; t < kernel; ++t)
                  gw[oc * cin * kernel + ic * kernel + t] +=
                      go * xd[ic * len + base + t];
            if (gb != nullptr) gb[oc] += go;
          }
      });
}

template <typename T>
Tensor max_pool1d_impl(const Tensor& x, std::int64_t size,
                       std::int64_t stride) {
  const std::int64_t c = x.dim(0), len = x.dim(1);
  const std::int64_t lout = (len - size) / stride + 1;

  std::vector<T> out =
      detail::new_buffer_t<T>(static_cast<std::size_t>(c * lout));
  auto argmax = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(c * lout));
  const auto& xd = x.data_as<T>();
  fwd::max_pool1d_fwd(xd.data(), out.data(), argmax->data(), c, len, size,
                      stride);
  return Tensor::make_op_result(
      {c, lout}, std::move(out), {x},
      [x, argmax, c, len, lout](detail::TensorImpl& self) {
        if (!x.requires_grad()) return;
        const auto& sg = self.grad_as<T>();
        auto& g = detail::grad_of<T>(*x.impl());
        for (std::int64_t ch = 0; ch < c; ++ch)
          for (std::int64_t j = 0; j < lout; ++j)
            g[ch * len + (*argmax)[ch * lout + j]] += sg[ch * lout + j];
      });
}

}  // namespace

Tensor sort_pool(const Tensor& x, std::int64_t k) {
  check(x.rank() == 2, "sort_pool: input must be rank-2");
  check(k > 0, "sort_pool: k must be positive");
  check(x.dim(1) > 0, "sort_pool: zero-width embeddings");
  return AG_DISPATCH(x.dtype(), sort_pool_impl, x, k);
}

Tensor conv1d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              std::int64_t kernel, std::int64_t stride) {
  check(x.rank() == 2, "conv1d: input must be [C_in, L]");
  check(weight.rank() == 2, "conv1d: weight must be [C_out, C_in*K]");
  check(kernel > 0 && stride > 0, "conv1d: kernel and stride must be > 0");
  check(x.dtype() == weight.dtype(), "conv1d: input/weight dtype mismatch");
  const std::int64_t cin = x.dim(0), len = x.dim(1);
  check(weight.dim(1) == cin * kernel,
        "conv1d: weight inner dim must be C_in*K");
  check(len >= kernel, "conv1d: input shorter than kernel");
  if (bias.defined()) {
    check(bias.numel() == weight.dim(0),
          "conv1d: bias length must equal C_out");
    check(bias.dtype() == x.dtype(), "conv1d: bias dtype mismatch");
  }
  return AG_DISPATCH(x.dtype(), conv1d_impl, x, weight, bias, kernel, stride);
}

Tensor max_pool1d(const Tensor& x, std::int64_t size, std::int64_t stride) {
  check(x.rank() == 2, "max_pool1d: input must be [C, L]");
  check(size > 0 && stride > 0, "max_pool1d: size and stride must be > 0");
  check(x.dim(1) >= size, "max_pool1d: input shorter than window");
  return AG_DISPATCH(x.dtype(), max_pool1d_impl, x, size, stride);
}

#undef AG_DISPATCH

}  // namespace amdgcnn::ag::ops
