// Dtype-generic SortPooling / 1-D convolution / max-pooling ops.  Each op is
// implemented once over the scalar type T and dispatched on the input dtype;
// the conv accumulator runs at native width (matmul-family, bandwidth-bound),
// while comparisons (sort order, pooling argmax) are exact in either width.
#include "tensor/conv_ops.h"

#include <algorithm>
#include <numeric>

namespace amdgcnn::ag::ops {

namespace {

#define AG_DISPATCH(dt, fn, ...) \
  ((dt) == Dtype::f32 ? fn<float>(__VA_ARGS__) : fn<double>(__VA_ARGS__))

template <typename T>
Tensor sort_pool_impl(const Tensor& x, std::int64_t k) {
  const std::int64_t n = x.dim(0), c = x.dim(1);

  // Order row indices by descending last column, then by descending earlier
  // columns, finally by ascending original index.  The index tie-break makes
  // the comparator a strict total order, so the top-k row SET is unique:
  // nth_element + partial sort of the kept prefix selects exactly the rows a
  // full sort would, in the same order, at O(n + k log k) instead of
  // O(n log n) — only the k surviving rows ever need mutual ordering.
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  const auto& d = x.data_as<T>();
  const auto row_before = [&](std::int64_t a, std::int64_t b) {
    for (std::int64_t col = c - 1; col >= 0; --col) {
      const T va = d[a * c + col], vb = d[b * c + col];
      if (va != vb) return va > vb;
    }
    return a < b;
  };
  const std::int64_t keep = std::min(n, k);
  if (keep < n)
    std::nth_element(perm.begin(), perm.begin() + keep, perm.end(),
                     row_before);
  std::sort(perm.begin(), perm.begin() + keep, row_before);
  std::vector<T> out = detail::new_zeroed_t<T>(static_cast<std::size_t>(k * c));
  for (std::int64_t r = 0; r < keep; ++r)
    std::copy_n(d.begin() + perm[r] * c, c, out.begin() + r * c);

  std::vector<std::int64_t> sel(perm.begin(), perm.begin() + keep);
  return Tensor::make_op_result(
      {k, c}, std::move(out), {x},
      [x, sel, c](detail::TensorImpl& self) {
        if (!x.requires_grad()) return;
        const auto& sg = self.grad_as<T>();
        auto& g = detail::grad_of<T>(*x.impl());
        for (std::size_t r = 0; r < sel.size(); ++r)
          for (std::int64_t col = 0; col < c; ++col)
            g[sel[r] * c + col] += sg[r * c + col];
      });
}

template <typename T>
Tensor conv1d_impl(const Tensor& x, const Tensor& weight, const Tensor& bias,
                   std::int64_t kernel, std::int64_t stride) {
  const std::int64_t cin = x.dim(0), len = x.dim(1);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t lout = (len - kernel) / stride + 1;
  const bool has_bias = bias.defined();

  std::vector<T> out =
      detail::new_buffer_t<T>(static_cast<std::size_t>(cout * lout));
  const auto& xd = x.data_as<T>();
  const auto& wd = weight.data_as<T>();
  const T* bv = has_bias ? bias.data_as<T>().data() : nullptr;
  // Two layouts, both fixed-order (bit-deterministic for a given dtype):
  //  - stride == 1 (the second read-out conv, K=5): vectorise across output
  //    positions — for each weight tap the update `orow[j] += wv * xs[j]` is
  //    unit-stride in j, so the whole lout row runs as SIMD.  A dot-product
  //    per output element would spend more time zeroing accumulators than
  //    multiplying at K this small.
  //  - strided (the first read-out conv, kernel = stride = total embedding
  //    width): dot products are unavoidable, so split each into kLanes
  //    independent accumulators — a single running sum is a serial FP chain
  //    the compiler may not reassociate into SIMD.
  if (stride == 1) {
    T* __restrict__ op = out.data();
    for (std::int64_t oc = 0; oc < cout; ++oc) {
      T* __restrict__ orow = op + oc * lout;
      const T b0 = has_bias ? bv[oc] : T(0);
      for (std::int64_t j = 0; j < lout; ++j) orow[j] = b0;
      const T* wrow = wd.data() + oc * cin * kernel;
      for (std::int64_t ic = 0; ic < cin; ++ic) {
        const T* xrow = xd.data() + ic * len;
        const T* wk = wrow + ic * kernel;
        for (std::int64_t t = 0; t < kernel; ++t) {
          const T wv = wk[t];
          const T* __restrict__ xs = xrow + t;
          for (std::int64_t j = 0; j < lout; ++j) orow[j] += wv * xs[j];
        }
      }
    }
  } else {
    constexpr int kLanes = 64 / sizeof(T);
    for (std::int64_t oc = 0; oc < cout; ++oc) {
      const T* wrow = wd.data() + oc * cin * kernel;
      for (std::int64_t j = 0; j < lout; ++j) {
        T acc = has_bias ? bv[oc] : T(0);
        const std::int64_t base = j * stride;
        for (std::int64_t ic = 0; ic < cin; ++ic) {
          const T* xrow = xd.data() + ic * len + base;
          const T* wk = wrow + ic * kernel;
          T lanes[kLanes] = {};
          std::int64_t t = 0;
          for (; t + kLanes <= kernel; t += kLanes)
            for (int l = 0; l < kLanes; ++l)
              lanes[l] += xrow[t + l] * wk[t + l];
          for (int l = 0; l < kLanes; ++l) acc += lanes[l];
          for (; t < kernel; ++t) acc += xrow[t] * wk[t];
        }
        out[oc * lout + j] = acc;
      }
    }
  }

  std::vector<Tensor> parents = {x, weight};
  if (has_bias) parents.push_back(bias);
  return Tensor::make_op_result(
      {cout, lout}, std::move(out), parents,
      [x, weight, bias, kernel, stride, cin, cout, len, lout,
       has_bias](detail::TensorImpl& self) {
        const T* __restrict__ xd = x.data_as<T>().data();
        const T* __restrict__ wd = weight.data_as<T>().data();
        const auto& sg = self.grad_as<T>();
        // Hoist the requires_grad branches and sink lookups out of the
        // quadruple loop; null pointers mean "no gradient wanted".  Grad
        // buffers never alias data buffers, so __restrict__ lets the
        // kernel-length inner loops vectorise.
        T* __restrict__ gx = x.requires_grad()
                                 ? detail::grad_of<T>(*x.impl()).data()
                                 : nullptr;
        T* __restrict__ gw = weight.requires_grad()
                                 ? detail::grad_of<T>(*weight.impl()).data()
                                 : nullptr;
        T* gb = (has_bias && bias.requires_grad())
                    ? detail::grad_of<T>(*bias.impl()).data()
                    : nullptr;
        for (std::int64_t oc = 0; oc < cout; ++oc)
          for (std::int64_t j = 0; j < lout; ++j) {
            const T go = sg[oc * lout + j];
            // Post-ReLU/pool upstream gradients are mostly zero here; this
            // skip is a measured win, unlike in dense matmul backward.
            if (go == T(0)) continue;
            const std::int64_t base = j * stride;
            if (gx != nullptr)
              for (std::int64_t ic = 0; ic < cin; ++ic)
                for (std::int64_t t = 0; t < kernel; ++t)
                  gx[ic * len + base + t] +=
                      go * wd[oc * cin * kernel + ic * kernel + t];
            if (gw != nullptr)
              for (std::int64_t ic = 0; ic < cin; ++ic)
                for (std::int64_t t = 0; t < kernel; ++t)
                  gw[oc * cin * kernel + ic * kernel + t] +=
                      go * xd[ic * len + base + t];
            if (gb != nullptr) gb[oc] += go;
          }
      });
}

template <typename T>
Tensor max_pool1d_impl(const Tensor& x, std::int64_t size,
                       std::int64_t stride) {
  const std::int64_t c = x.dim(0), len = x.dim(1);
  const std::int64_t lout = (len - size) / stride + 1;

  std::vector<T> out =
      detail::new_buffer_t<T>(static_cast<std::size_t>(c * lout));
  auto argmax = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(c * lout));
  const auto& xd = x.data_as<T>();
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t j = 0; j < lout; ++j) {
      std::int64_t best = j * stride;
      for (std::int64_t t = 1; t < size; ++t)
        if (xd[ch * len + j * stride + t] > xd[ch * len + best])
          best = j * stride + t;
      out[ch * lout + j] = xd[ch * len + best];
      (*argmax)[ch * lout + j] = best;
    }
  return Tensor::make_op_result(
      {c, lout}, std::move(out), {x},
      [x, argmax, c, len, lout](detail::TensorImpl& self) {
        if (!x.requires_grad()) return;
        const auto& sg = self.grad_as<T>();
        auto& g = detail::grad_of<T>(*x.impl());
        for (std::int64_t ch = 0; ch < c; ++ch)
          for (std::int64_t j = 0; j < lout; ++j)
            g[ch * len + (*argmax)[ch * lout + j]] += sg[ch * lout + j];
      });
}

}  // namespace

Tensor sort_pool(const Tensor& x, std::int64_t k) {
  check(x.rank() == 2, "sort_pool: input must be rank-2");
  check(k > 0, "sort_pool: k must be positive");
  check(x.dim(1) > 0, "sort_pool: zero-width embeddings");
  return AG_DISPATCH(x.dtype(), sort_pool_impl, x, k);
}

Tensor conv1d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              std::int64_t kernel, std::int64_t stride) {
  check(x.rank() == 2, "conv1d: input must be [C_in, L]");
  check(weight.rank() == 2, "conv1d: weight must be [C_out, C_in*K]");
  check(kernel > 0 && stride > 0, "conv1d: kernel and stride must be > 0");
  check(x.dtype() == weight.dtype(), "conv1d: input/weight dtype mismatch");
  const std::int64_t cin = x.dim(0), len = x.dim(1);
  check(weight.dim(1) == cin * kernel,
        "conv1d: weight inner dim must be C_in*K");
  check(len >= kernel, "conv1d: input shorter than kernel");
  if (bias.defined()) {
    check(bias.numel() == weight.dim(0),
          "conv1d: bias length must equal C_out");
    check(bias.dtype() == x.dtype(), "conv1d: bias dtype mismatch");
  }
  return AG_DISPATCH(x.dtype(), conv1d_impl, x, weight, bias, kernel, stride);
}

Tensor max_pool1d(const Tensor& x, std::int64_t size, std::int64_t stride) {
  check(x.rank() == 2, "max_pool1d: input must be [C, L]");
  check(size > 0 && stride > 0, "max_pool1d: size and stride must be > 0");
  check(x.dim(1) >= size, "max_pool1d: input shorter than window");
  return AG_DISPATCH(x.dtype(), max_pool1d_impl, x, size, stride);
}

#undef AG_DISPATCH

}  // namespace amdgcnn::ag::ops
