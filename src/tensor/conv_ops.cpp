#include "tensor/conv_ops.h"

#include <algorithm>
#include <numeric>

namespace amdgcnn::ag::ops {

Tensor sort_pool(const Tensor& x, std::int64_t k) {
  check(x.rank() == 2, "sort_pool: input must be rank-2");
  check(k > 0, "sort_pool: k must be positive");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  check(c > 0, "sort_pool: zero-width embeddings");

  // Order row indices by descending last column, then by descending earlier
  // columns, finally by ascending original index.  The index tie-break makes
  // the comparator a strict total order, so the top-k row SET is unique:
  // nth_element + partial sort of the kept prefix selects exactly the rows a
  // full sort would, in the same order, at O(n + k log k) instead of
  // O(n log n) — only the k surviving rows ever need mutual ordering.
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  const auto& d = x.data();
  const auto row_before = [&](std::int64_t a, std::int64_t b) {
    for (std::int64_t col = c - 1; col >= 0; --col) {
      const double va = d[a * c + col], vb = d[b * c + col];
      if (va != vb) return va > vb;
    }
    return a < b;
  };
  const std::int64_t keep = std::min(n, k);
  if (keep < n)
    std::nth_element(perm.begin(), perm.begin() + keep, perm.end(),
                     row_before);
  std::sort(perm.begin(), perm.begin() + keep, row_before);
  std::vector<double> out =
      detail::new_zeroed(static_cast<std::size_t>(k * c));
  for (std::int64_t r = 0; r < keep; ++r)
    std::copy_n(d.begin() + perm[r] * c, c, out.begin() + r * c);

  std::vector<std::int64_t> sel(perm.begin(), perm.begin() + keep);
  return Tensor::make_op_result(
      {k, c}, std::move(out), {x},
      [x, sel, c](detail::TensorImpl& self) {
        if (!x.requires_grad()) return;
        auto& g = detail::grad_of(*x.impl());
        for (std::size_t r = 0; r < sel.size(); ++r)
          for (std::int64_t col = 0; col < c; ++col)
            g[sel[r] * c + col] += self.grad[r * c + col];
      });
}

Tensor conv1d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              std::int64_t kernel, std::int64_t stride) {
  check(x.rank() == 2, "conv1d: input must be [C_in, L]");
  check(weight.rank() == 2, "conv1d: weight must be [C_out, C_in*K]");
  check(kernel > 0 && stride > 0, "conv1d: kernel and stride must be > 0");
  const std::int64_t cin = x.dim(0), len = x.dim(1);
  check(weight.dim(1) == cin * kernel,
        "conv1d: weight inner dim must be C_in*K");
  const std::int64_t cout = weight.dim(0);
  check(len >= kernel, "conv1d: input shorter than kernel");
  const std::int64_t lout = (len - kernel) / stride + 1;
  const bool has_bias = bias.defined();
  if (has_bias)
    check(bias.numel() == cout, "conv1d: bias length must equal C_out");

  std::vector<double> out =
      detail::new_buffer(static_cast<std::size_t>(cout * lout));
  const auto& xd = x.data();
  const auto& wd = weight.data();
  const double* bv = has_bias ? bias.data().data() : nullptr;
  for (std::int64_t oc = 0; oc < cout; ++oc) {
    const double* wrow = wd.data() + oc * cin * kernel;
    for (std::int64_t j = 0; j < lout; ++j) {
      double acc = has_bias ? bv[oc] : 0.0;
      const std::int64_t base = j * stride;
      for (std::int64_t ic = 0; ic < cin; ++ic) {
        const double* xrow = xd.data() + ic * len + base;
        const double* wk = wrow + ic * kernel;
        for (std::int64_t t = 0; t < kernel; ++t) acc += xrow[t] * wk[t];
      }
      out[oc * lout + j] = acc;
    }
  }

  std::vector<Tensor> parents = {x, weight};
  if (has_bias) parents.push_back(bias);
  return Tensor::make_op_result(
      {cout, lout}, std::move(out), parents,
      [x, weight, bias, kernel, stride, cin, cout, len, lout,
       has_bias](detail::TensorImpl& self) {
        const auto& xd = x.data();
        const auto& wd = weight.data();
        // Hoist the requires_grad branches and sink lookups out of the
        // quadruple loop; null pointers mean "no gradient wanted".
        double* gx = x.requires_grad()
                         ? detail::grad_of(*x.impl()).data()
                         : nullptr;
        double* gw = weight.requires_grad()
                         ? detail::grad_of(*weight.impl()).data()
                         : nullptr;
        double* gb = (has_bias && bias.requires_grad())
                         ? detail::grad_of(*bias.impl()).data()
                         : nullptr;
        for (std::int64_t oc = 0; oc < cout; ++oc)
          for (std::int64_t j = 0; j < lout; ++j) {
            const double go = self.grad[oc * lout + j];
            // Post-ReLU/pool upstream gradients are mostly zero here; this
            // skip is a measured win, unlike in dense matmul backward.
            if (go == 0.0) continue;
            const std::int64_t base = j * stride;
            if (gx != nullptr)
              for (std::int64_t ic = 0; ic < cin; ++ic)
                for (std::int64_t t = 0; t < kernel; ++t)
                  gx[ic * len + base + t] +=
                      go * wd[oc * cin * kernel + ic * kernel + t];
            if (gw != nullptr)
              for (std::int64_t ic = 0; ic < cin; ++ic)
                for (std::int64_t t = 0; t < kernel; ++t)
                  gw[oc * cin * kernel + ic * kernel + t] +=
                      go * xd[ic * len + base + t];
            if (gb != nullptr) gb[oc] += go;
          }
      });
}

Tensor max_pool1d(const Tensor& x, std::int64_t size, std::int64_t stride) {
  check(x.rank() == 2, "max_pool1d: input must be [C, L]");
  check(size > 0 && stride > 0, "max_pool1d: size and stride must be > 0");
  const std::int64_t c = x.dim(0), len = x.dim(1);
  check(len >= size, "max_pool1d: input shorter than window");
  const std::int64_t lout = (len - size) / stride + 1;

  std::vector<double> out =
      detail::new_buffer(static_cast<std::size_t>(c * lout));
  auto argmax = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(c * lout));
  const auto& xd = x.data();
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t j = 0; j < lout; ++j) {
      std::int64_t best = j * stride;
      for (std::int64_t t = 1; t < size; ++t)
        if (xd[ch * len + j * stride + t] > xd[ch * len + best])
          best = j * stride + t;
      out[ch * lout + j] = xd[ch * len + best];
      (*argmax)[ch * lout + j] = best;
    }
  return Tensor::make_op_result(
      {c, lout}, std::move(out), {x},
      [x, argmax, c, len, lout](detail::TensorImpl& self) {
        if (!x.requires_grad()) return;
        auto& g = detail::grad_of(*x.impl());
        for (std::int64_t ch = 0; ch < c; ++ch)
          for (std::int64_t j = 0; j < lout; ++j)
            g[ch * len + (*argmax)[ch * lout + j]] +=
                self.grad[ch * lout + j];
      });
}

}  // namespace amdgcnn::ag::ops
