// Quantized weight storage for the frozen inference path (DESIGN.md §2.7).
//
// Two schemes on top of the dtype engine:
//   * kF16 — bit-cast IEEE half storage, table decode (tensor/half.h).
//   * kQ8  — block-quantized int8: 32 consecutive row-major elements share
//     one f32 scale = amax/127; q = round(x·127/amax) ∈ [-127, 127] and
//     dequant = q·scale, so the per-element error is bounded by scale/2.
//     -128 is never produced, which the checkpoint loader uses as a
//     fail-closed garbage detector.
//
// Quantization is a FROZEN-MODEL transform: training stays f32/f64, and the
// quantized forward decodes each weight tensor to f32 arena scratch right
// before its kernel runs (resident weights stay quantized; the arena holds
// one decoded tensor at a time inside a mark/rewind scope).  All arithmetic
// accumulates at f32-or-wider in a fixed order, so each quantized mode is
// bit-deterministic across OpenMP worker counts — the same contract the
// exact f32/f64 paths carry (the modes differ from each other and from f32,
// but never from themselves).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/half.h"
#include "tensor/tensor.h"

namespace amdgcnn::ag::quant {

/// Frozen-weight quantization scheme.  kNone leaves the exact f32/f64 path
/// untouched (bit-identical to training).
enum class Scheme : std::uint8_t { kNone = 0, kF16 = 1, kQ8 = 2 };

inline constexpr const char* scheme_name(Scheme s) {
  return s == Scheme::kNone ? "none" : (s == Scheme::kF16 ? "f16" : "q8");
}

/// Elements per q8 block (one f32 scale each).  32 matches the ggml-family
/// block formats and divides every layer width in the model zoo; tails
/// shorter than a block simply quantize as a short block.
inline constexpr std::int64_t kQ8Block = 32;

/// Number of q8 blocks covering n elements.
inline constexpr std::int64_t q8_num_blocks(std::int64_t n) {
  return (n + kQ8Block - 1) / kQ8Block;
}

/// Quantize n f32 values into int8 blocks; `scales` receives
/// q8_num_blocks(n) entries, `q` receives n values in [-127, 127].
/// An all-zero (or all-subnormal-flushed) block gets scale 0 and zeros.
void q8_quantize(const float* x, std::int64_t n, std::int8_t* q,
                 float* scales);

/// dst[i] = q[i] * scales[i / 32]; exact f32 products (q·scale never
/// rounds: the scale's significand gains at most 7 bits).
void q8_dequantize(const std::int8_t* q, const float* scales, float* dst,
                   std::int64_t n);

/// One frozen weight tensor in quantized storage.  Exactly one payload is
/// active, selected by `mode`; values() decodes into caller storage.
struct QuantizedTensor {
  Scheme mode = Scheme::kNone;
  std::int64_t n = 0;            // element count
  std::vector<f16_t> h;          // kF16 payload
  std::vector<std::int8_t> q;    // kQ8 payload
  std::vector<float> scales;     // kQ8 per-block scales

  /// Payload bytes resident in memory (what the shrink gate measures).
  std::size_t resident_bytes() const {
    return h.size() * sizeof(f16_t) + q.size() * sizeof(std::int8_t) +
           scales.size() * sizeof(float);
  }

  /// Decode the full tensor to f32 into dst[n].
  void decode(float* dst) const;
};

/// Quantize a tensor's values under `scheme` (f64 tensors are narrowed to
/// f32 first — the same cast the f32 training path applies at init).
QuantizedTensor quantize_tensor(const Tensor& t, Scheme scheme);

}  // namespace amdgcnn::ag::quant
