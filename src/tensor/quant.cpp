#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

namespace amdgcnn::ag::quant {

void q8_quantize(const float* x, std::int64_t n, std::int8_t* q,
                 float* scales) {
  for (std::int64_t b = 0; b * kQ8Block < n; ++b) {
    const std::int64_t lo = b * kQ8Block;
    const std::int64_t hi = std::min(n, lo + kQ8Block);
    float amax = 0.0f;
    for (std::int64_t i = lo; i < hi; ++i)
      amax = std::max(amax, std::fabs(x[i]));
    if (amax == 0.0f) {
      scales[b] = 0.0f;
      std::fill(q + lo, q + hi, std::int8_t{0});
      continue;
    }
    const float scale = amax / 127.0f;
    const float inv = 127.0f / amax;
    scales[b] = scale;
    for (std::int64_t i = lo; i < hi; ++i) {
      // round-half-away (nearbyint would tie-to-even; either is within the
      // scale/2 bound — lrintf keeps the loop vectorizable-free of errno).
      const float v = x[i] * inv;
      int iv = static_cast<int>(v >= 0.0f ? v + 0.5f : v - 0.5f);
      iv = std::clamp(iv, -127, 127);
      q[i] = static_cast<std::int8_t>(iv);
    }
  }
}

void q8_dequantize(const std::int8_t* q, const float* scales, float* dst,
                   std::int64_t n) {
  const std::int64_t full = (n / kQ8Block) * kQ8Block;
  for (std::int64_t b = 0; b * kQ8Block < full; ++b) {
    const float s = scales[b];
    const std::int8_t* qb = q + b * kQ8Block;
    float* db = dst + b * kQ8Block;
    for (std::int64_t i = 0; i < kQ8Block; ++i)
      db[i] = static_cast<float>(qb[i]) * s;
  }
  if (full < n) {
    const float s = scales[full / kQ8Block];
    for (std::int64_t i = full; i < n; ++i)
      dst[i] = static_cast<float>(q[i]) * s;
  }
}

void QuantizedTensor::decode(float* dst) const {
  if (mode == Scheme::kF16)
    f16_decode_row(h.data(), dst, n);
  else if (mode == Scheme::kQ8)
    q8_dequantize(q.data(), scales.data(), dst, n);
  else
    ag::fail("QuantizedTensor::decode: tensor holds no quantized payload");
}

QuantizedTensor quantize_tensor(const Tensor& t, Scheme scheme) {
  ag::check(t.defined(), "quantize_tensor: undefined tensor");
  ag::check(scheme != Scheme::kNone, "quantize_tensor: scheme is kNone");
  const auto n = t.numel();
  std::vector<float> f32;
  const float* src = nullptr;
  if (t.dtype() == Dtype::f32) {
    src = t.data_as<float>().data();
  } else {
    const auto& d = t.data_as<double>();
    f32.resize(d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
      f32[i] = static_cast<float>(d[i]);
    src = f32.data();
  }

  QuantizedTensor out;
  out.mode = scheme;
  out.n = n;
  if (scheme == Scheme::kF16) {
    out.h.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) out.h[i] = f32_to_f16(src[i]);
  } else {
    out.q.resize(static_cast<std::size_t>(n));
    out.scales.resize(static_cast<std::size_t>(q8_num_blocks(n)));
    q8_quantize(src, n, out.q.data(), out.scales.data());
  }
  return out;
}

}  // namespace amdgcnn::ag::quant
