// Forward-only kernels shared by the autograd ops (ops.cpp, conv_ops.cpp,
// segment_ops.cpp) and the frozen inference engine (src/infer).
//
// The inference engine's contract is BIT-IDENTICAL logits to the training
// forward pass.  That only holds if both paths execute the same floating-
// point operations in the same order AND the compiler emits the same code
// for them — a re-implementation that merely mirrors the loop structure can
// still diverge when the optimizer contracts a mul+add into an FMA in one
// translation unit but not the other.  Factoring the forward loop bodies
// into one set of inline templates removes that risk: every caller
// instantiates the same function from the same source under the same flags.
//
// Only the order- or contraction-sensitive forwards live here (dot-product
// reductions, softmax normalisers, conv taps, the SortPooling comparator).
// Single-FP-op-per-element forwards (add, relu, tanh, scaling) are exact by
// construction in any code shape and stay inline at their call sites.
//
// All kernels are raw-pointer, caller-allocated: autograd callers hand
// pooled vectors, the inference engine hands arena blocks.  None of them
// touch the tape, the buffer pool, or any global state.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>

#include "tensor/kernels.h"

namespace amdgcnn::ag::fwd {

/// out[n,m] = bias (row broadcast) + a[n,k] · w[k,m].  The fused-linear
/// forward (addmm / linear_relu / linear_tanh before their activations).
template <typename T>
inline void linear_fwd(const T* __restrict__ a, const T* __restrict__ w,
                       const T* __restrict__ bias, T* __restrict__ out,
                       std::int64_t n, std::int64_t k, std::int64_t m) {
  for (std::int64_t i = 0; i < n; ++i) std::copy_n(bias, m, out + i * m);
  kern::mm_add(a, w, out, n, k, m);
}

/// out[e,heads] = per-head dot of x[e,hf] rows against the parameter row
/// a[hf].  Lane-split f64 accumulation (dtype policy: attention logits that
/// feed a softmax accumulate in double for either storage width; the fixed
/// lane order keeps results bit-deterministic).
template <typename T>
inline void heads_dot_fwd(const T* __restrict__ x, const T* __restrict__ a,
                          T* __restrict__ out, std::int64_t e,
                          std::int64_t hf, std::int64_t heads) {
  const std::int64_t f = hf / heads;
  for (std::int64_t r = 0; r < e; ++r) {
    const T* xrow = x + r * hf;
    for (std::int64_t h = 0; h < heads; ++h) {
      constexpr int kLanes = 8;
      double lanes[kLanes] = {};
      const T* arow = a + h * f;
      const T* hx = xrow + h * f;
      std::int64_t c = 0;
      for (; c + kLanes <= f; c += kLanes)
        for (int l = 0; l < kLanes; ++l)
          lanes[l] += static_cast<double>(hx[c + l]) *
                      static_cast<double>(arow[c + l]);
      double acc = 0.0;
      for (int l = 0; l < kLanes; ++l) acc += lanes[l];
      for (; c < f; ++c)
        acc += static_cast<double>(hx[c]) * static_cast<double>(arow[c]);
      out[r * heads + h] = static_cast<T>(acc);
    }
  }
}

/// out[e,hf] = x[e,hf] with each head block scaled by alpha[e,heads].
template <typename T>
inline void heads_scale_fwd(const T* __restrict__ x,
                            const T* __restrict__ alpha, T* __restrict__ out,
                            std::int64_t e, std::int64_t hf,
                            std::int64_t heads) {
  const std::int64_t f = hf / heads;
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t h = 0; h < heads; ++h) {
      const T s = alpha[r * heads + h];
      const std::int64_t base = r * hf + h * f;
      for (std::int64_t c = 0; c < f; ++c) out[base + c] = x[base + c] * s;
    }
}

/// Segment-softmax forward: out[e,h] = softmax of scores[e,h] within each
/// destination segment.  `seg_max` is caller scratch of num_segments*h T
/// (overwritten), `seg_sum` caller scratch of num_segments*h doubles (must
/// be zeroed).  Max pass and exp run at storage width; the normaliser
/// accumulates in f64 (dtype policy, DESIGN.md §2.3).
template <typename T>
inline void segment_softmax_fwd(const T* __restrict__ sv,
                                const std::int64_t* __restrict__ segment,
                                T* __restrict__ out, T* __restrict__ seg_max,
                                double* __restrict__ seg_sum, std::int64_t e,
                                std::int64_t h, std::int64_t num_segments) {
  std::fill(seg_max, seg_max + num_segments * h,
            -std::numeric_limits<T>::infinity());
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      seg_max[segment[r] * h + c] =
          std::max(seg_max[segment[r] * h + c], sv[r * h + c]);
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c) {
      const T ex = std::exp(sv[r * h + c] - seg_max[segment[r] * h + c]);
      out[r * h + c] = ex;
      seg_sum[segment[r] * h + c] += static_cast<double>(ex);
    }
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      out[r * h + c] = static_cast<T>(static_cast<double>(out[r * h + c]) /
                                      seg_sum[segment[r] * h + c]);
}

/// out[num_rows,m] = bias (row broadcast) + scatter-add of src[e,m] rows by
/// `index`.  Fixed edge order — deterministic for either dtype.
template <typename T>
inline void scatter_add_bias_fwd(const T* __restrict__ src,
                                 const std::int64_t* __restrict__ index,
                                 std::int64_t e, std::int64_t num_rows,
                                 std::int64_t m, const T* __restrict__ bias,
                                 T* __restrict__ out) {
  for (std::int64_t r = 0; r < num_rows; ++r)
    std::copy_n(bias, m, out + r * m);
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < m; ++c)
      out[index[r] * m + c] += src[r * m + c];
}

/// SortPooling row selection: fill perm[0..n) with the indices of d[n,c]
/// ordered by the DGCNN comparator (descending last column, then descending
/// earlier columns, finally ascending index — a strict total order, so the
/// kept set and its order are unique).  Only the first min(n,k) entries are
/// mutually ordered (nth_element + sort of the kept prefix); returns that
/// count.  The caller copies the surviving rows.
template <typename T>
inline std::int64_t sort_perm_topk(const T* d, std::int64_t n, std::int64_t c,
                                   std::int64_t k, std::int64_t* perm) {
  std::iota(perm, perm + n, std::int64_t{0});
  const auto row_before = [&](std::int64_t a, std::int64_t b) {
    for (std::int64_t col = c - 1; col >= 0; --col) {
      const T va = d[a * c + col], vb = d[b * c + col];
      if (va != vb) return va > vb;
    }
    return a < b;
  };
  const std::int64_t keep = std::min(n, k);
  if (keep < n) std::nth_element(perm, perm + keep, perm + n, row_before);
  std::sort(perm, perm + keep, row_before);
  return keep;
}

/// 1-D convolution forward over a [cin, len] signal with weight
/// [cout, cin*kernel] and optional bias [cout] (nullptr = no bias).  Two
/// fixed-order layouts (see conv_ops.cpp for the rationale): stride == 1
/// vectorises across output positions, strided splits each dot product into
/// kLanes independent accumulators.
template <typename T>
inline void conv1d_fwd(const T* __restrict__ xd, const T* __restrict__ wd,
                       const T* __restrict__ bv, T* __restrict__ out,
                       std::int64_t cin, std::int64_t len, std::int64_t cout,
                       std::int64_t kernel, std::int64_t stride) {
  const std::int64_t lout = (len - kernel) / stride + 1;
  if (stride == 1) {
    // Short output rows (every model shape: lout = conv_out_len) are held
    // in registers across the whole (ic, t) accumulation instead of being
    // re-loaded/re-stored per tap; each orow[j] sees the same
    // bias-then-`+= wv·x` sequence in the same order either way.
    constexpr std::int64_t kMaxTile = 32;
    if (lout <= kMaxTile) {
      for (std::int64_t oc = 0; oc < cout; ++oc) {
        T acc[kMaxTile];
        const T b0 = bv != nullptr ? bv[oc] : T(0);
        for (std::int64_t j = 0; j < lout; ++j) acc[j] = b0;
        const T* wrow = wd + oc * cin * kernel;
        for (std::int64_t ic = 0; ic < cin; ++ic) {
          const T* xrow = xd + ic * len;
          const T* wk = wrow + ic * kernel;
          for (std::int64_t t = 0; t < kernel; ++t) {
            const T wv = wk[t];
            const T* __restrict__ xs = xrow + t;
            for (std::int64_t j = 0; j < lout; ++j) acc[j] += wv * xs[j];
          }
        }
        T* orow = out + oc * lout;
        for (std::int64_t j = 0; j < lout; ++j) orow[j] = acc[j];
      }
    } else {
      for (std::int64_t oc = 0; oc < cout; ++oc) {
        T* __restrict__ orow = out + oc * lout;
        const T b0 = bv != nullptr ? bv[oc] : T(0);
        for (std::int64_t j = 0; j < lout; ++j) orow[j] = b0;
        const T* wrow = wd + oc * cin * kernel;
        for (std::int64_t ic = 0; ic < cin; ++ic) {
          const T* xrow = xd + ic * len;
          const T* wk = wrow + ic * kernel;
          for (std::int64_t t = 0; t < kernel; ++t) {
            const T wv = wk[t];
            const T* __restrict__ xs = xrow + t;
            for (std::int64_t j = 0; j < lout; ++j) orow[j] += wv * xs[j];
          }
        }
      }
    }
  } else {
    constexpr int kLanes = 64 / sizeof(T);
    // Blocks of 4 output positions share each streamed weight row: one
    // independent lane array per position (a lane array is a single
    // 64-byte vector), so the four dot products interleave without
    // touching any one product's fixed lane/accumulation order, and the
    // four dependency chains cover the FMA latency a single chain leaves
    // idle.
    constexpr std::int64_t JB = 4;
    for (std::int64_t oc = 0; oc < cout; ++oc) {
      const T* wrow = wd + oc * cin * kernel;
      const T b0 = bv != nullptr ? bv[oc] : T(0);
      std::int64_t j = 0;
      for (; j + JB <= lout; j += JB) {
        T acc[JB];
        for (std::int64_t q = 0; q < JB; ++q) acc[q] = b0;
        for (std::int64_t ic = 0; ic < cin; ++ic) {
          const T* xrow = xd + ic * len + j * stride;
          const T* wk = wrow + ic * kernel;
          T lanes[JB][kLanes] = {};
          std::int64_t t = 0;
          for (; t + kLanes <= kernel; t += kLanes)
            for (std::int64_t q = 0; q < JB; ++q)
              for (int l = 0; l < kLanes; ++l)
                lanes[q][l] += xrow[q * stride + t + l] * wk[t + l];
          for (std::int64_t q = 0; q < JB; ++q)
            for (int l = 0; l < kLanes; ++l) acc[q] += lanes[q][l];
          for (; t < kernel; ++t)
            for (std::int64_t q = 0; q < JB; ++q)
              acc[q] += xrow[q * stride + t] * wk[t];
        }
        for (std::int64_t q = 0; q < JB; ++q) out[oc * lout + j + q] = acc[q];
      }
      for (; j < lout; ++j) {
        T acc = b0;
        const std::int64_t base = j * stride;
        for (std::int64_t ic = 0; ic < cin; ++ic) {
          const T* xrow = xd + ic * len + base;
          const T* wk = wrow + ic * kernel;
          T lanes[kLanes] = {};
          std::int64_t t = 0;
          for (; t + kLanes <= kernel; t += kLanes)
            for (int l = 0; l < kLanes; ++l)
              lanes[l] += xrow[t + l] * wk[t + l];
          for (int l = 0; l < kLanes; ++l) acc += lanes[l];
          for (; t < kernel; ++t) acc += xrow[t] * wk[t];
        }
        out[oc * lout + j] = acc;
      }
    }
  }
}

/// Max-pool forward over a [c, len] signal; writes the pooled values and the
/// winning input offsets (`argmax`, length c*lout — the training backward
/// routes gradients through them; inference hands scratch).  Comparisons are
/// exact in either width.
template <typename T>
inline void max_pool1d_fwd(const T* __restrict__ xd, T* __restrict__ out,
                           std::int64_t* __restrict__ argmax, std::int64_t c,
                           std::int64_t len, std::int64_t size,
                           std::int64_t stride) {
  const std::int64_t lout = (len - size) / stride + 1;
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t j = 0; j < lout; ++j) {
      std::int64_t best = j * stride;
      for (std::int64_t t = 1; t < size; ++t)
        if (xd[ch * len + j * stride + t] > xd[ch * len + best])
          best = j * stride + t;
      out[ch * lout + j] = xd[ch * len + best];
      argmax[ch * lout + j] = best;
    }
}

// ---- Relaxed-numerics kernels (quantized inference only, DESIGN.md §2.7) --
//
// The exact kernels above are pinned bit-for-bit to the training forward.
// The quantized frozen forward (FrozenModel with a quant::Scheme) carries a
// WEAKER contract — deterministic per mode across worker counts, AUC within
// noise of f32 — which frees it to trade ulps for throughput: polynomial
// exp/tanh instead of scalar libm (the libm tanh alone is ~55% of the exact
// f32 forward), f32 accumulation lanes instead of f64, and
// reciprocal-multiply normalisation.  Every function here is a pure scalar
// f32 map in a fixed order, so the per-mode determinism contract holds
// trivially.  NOT used by any exact path.

/// Cephes-style expf: n = round(x·log2e), two-part Cody–Waite ln2
/// reduction, degree-6 Horner polynomial on [-ln2/2, ln2/2], 2^n built
/// directly in the exponent field.  Relative error ~2e-7 over the clamped
/// range; monotone saturation to 0 / FLT_MAX-scale at the ends.
inline float fast_exp(float x) {
  x = std::min(x, 88.0f);
  x = std::max(x, -87.0f);
  // Round-to-nearest via the 2^23 magic constant instead of std::floor —
  // gcc refuses to vectorize the libm floor call (errno), and this is the
  // one statement that kept whole-row exp loops scalar (~10x).  Any
  // nearest-int choice of fx works: r compensates exactly.
  const float fx = (x * 1.44269504088896341f + 12582912.0f) - 12582912.0f;
  const auto n = static_cast<std::int32_t>(fx);
  float r = x - fx * 0.693359375f;
  r -= fx * -2.12194440e-4f;
  float y = 1.9875691500e-4f;
  y = y * r + 1.3981999507e-3f;
  y = y * r + 8.3334519073e-3f;
  y = y * r + 4.1665795894e-2f;
  y = y * r + 1.6666665459e-1f;
  y = y * r + 5.0000001201e-1f;
  y = y * r * r + r + 1.0f;
  // bit_cast, not memcpy: gcc vectorizes the former in row loops.
  const auto bits = static_cast<std::uint32_t>(n + 127) << 23;
  return y * std::bit_cast<float>(bits);
}

/// tanh as a clamped odd/even rational (13/6 Padé-style fit, the classic
/// single-precision coefficients).  Branch-free — clamp via min/max, two
/// Horner chains, one divide — so a loop over rows vectorizes; the
/// fast_exp formulation 1 - 2/(e^{2x}+1) does not (its exponent-field
/// bit-build defeats the vectorizer) and measured ~8x slower per element.
/// Relative error ~1e-7 inside the clamp range; |x| >= 7.9 saturates to
/// ±1 to within float rounding.
inline float fast_tanh(float x) {
  x = std::min(x, 7.90531110763549805f);
  x = std::max(x, -7.90531110763549805f);
  const float x2 = x * x;
  float p = -2.76076847742355e-16f;
  p = p * x2 + 2.00018790482477e-13f;
  p = p * x2 + -8.60467152213735e-11f;
  p = p * x2 + 5.12229709037114e-08f;
  p = p * x2 + 1.48572235717979e-05f;
  p = p * x2 + 6.37261928875436e-04f;
  p = p * x2 + 4.89352455891786e-03f;
  p *= x;
  float q = 1.19825839466702e-06f;
  q = q * x2 + 1.18534705686654e-04f;
  q = q * x2 + 2.26843463243900e-03f;
  q = q * x2 + 4.89352518554385e-03f;
  return p / q;
}

/// heads_dot with f32 lane accumulation (the exact kernel uses f64 lanes).
inline void heads_dot_relaxed(const float* __restrict__ x,
                              const float* __restrict__ a,
                              float* __restrict__ out, std::int64_t e,
                              std::int64_t hf, std::int64_t heads) {
  const std::int64_t f = hf / heads;
  for (std::int64_t r = 0; r < e; ++r) {
    const float* xrow = x + r * hf;
    for (std::int64_t h = 0; h < heads; ++h) {
      constexpr int kLanes = 8;
      float lanes[kLanes] = {};
      const float* arow = a + h * f;
      const float* hx = xrow + h * f;
      std::int64_t c = 0;
      for (; c + kLanes <= f; c += kLanes)
        for (int l = 0; l < kLanes; ++l) lanes[l] += hx[c + l] * arow[c + l];
      float acc = 0.0f;
      for (int l = 0; l < kLanes; ++l) acc += lanes[l];
      for (; c < f; ++c) acc += hx[c] * arow[c];
      out[r * heads + h] = acc;
    }
  }
}

/// Segment softmax with fast_exp, f32 segment sums and reciprocal-multiply
/// normalisation.  `seg_sum` is f32 caller scratch (zeroed here); it is
/// overwritten with the reciprocals during the normalise pass.  The
/// max-subtract (a gather) and the exp are separate passes so the exp runs
/// over a contiguous array and vectorizes — fused, the segment gather
/// forces it scalar (~4x the cost at typical subgraph sizes).
inline void segment_softmax_relaxed(const float* __restrict__ sv,
                                    const std::int64_t* __restrict__ segment,
                                    float* __restrict__ out,
                                    float* __restrict__ seg_max,
                                    float* __restrict__ seg_sum,
                                    std::int64_t e, std::int64_t h,
                                    std::int64_t num_segments) {
  std::fill(seg_max, seg_max + num_segments * h,
            -std::numeric_limits<float>::infinity());
  std::fill(seg_sum, seg_sum + num_segments * h, 0.0f);
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      seg_max[segment[r] * h + c] =
          std::max(seg_max[segment[r] * h + c], sv[r * h + c]);
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      out[r * h + c] = sv[r * h + c] - seg_max[segment[r] * h + c];
  for (std::int64_t i = 0; i < e * h; ++i) out[i] = fast_exp(out[i]);
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      seg_sum[segment[r] * h + c] += out[r * h + c];
  // Empty segments keep sum 0 -> inf reciprocal, but no edge reads them.
  for (std::int64_t i = 0; i < num_segments * h; ++i)
    seg_sum[i] = 1.0f / seg_sum[i];
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t c = 0; c < h; ++c)
      out[r * h + c] *= seg_sum[segment[r] * h + c];
}

/// out[i,j] = dot(a_i, b_j) for row-major a (m x k) and b (n x k): both
/// operands are walked along contiguous rows, so narrow outputs (n < a
/// register tile) stay fully vectorized where mm_add's column-tiled loop
/// would fall to its scalar remainder.  f32 lane accumulation, fixed order.
inline void dot_rows_relaxed(const float* __restrict__ a,
                             const float* __restrict__ b,
                             float* __restrict__ out, std::int64_t m,
                             std::int64_t n, std::int64_t k) {
  // b-row outer / a-row inner: each b row streams through once while the
  // (smaller) a matrix stays cache-resident — the other nesting re-streams
  // all of b per a row and falls off L1 once a+b exceed it (measured ~6x
  // at the conv1 shape).  Two lane arrays per dot break the single-FMA
  // dependency chain.
  constexpr int kLanes = 8;
  for (std::int64_t j = 0; j < n; ++j) {
    const float* brow = b + j * k;
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float lanes0[kLanes] = {};
      float lanes1[kLanes] = {};
      std::int64_t c = 0;
      for (; c + 2 * kLanes <= k; c += 2 * kLanes) {
        for (int l = 0; l < kLanes; ++l)
          lanes0[l] += arow[c + l] * brow[c + l];
        for (int l = 0; l < kLanes; ++l)
          lanes1[l] += arow[c + kLanes + l] * brow[c + kLanes + l];
      }
      for (; c + kLanes <= k; c += kLanes)
        for (int l = 0; l < kLanes; ++l) lanes0[l] += arow[c + l] * brow[c + l];
      float acc = 0.0f;
      for (int l = 0; l < kLanes; ++l) acc += lanes0[l] + lanes1[l];
      for (; c < k; ++c) acc += arow[c] * brow[c];
      out[i * n + j] = acc;
    }
  }
}

/// out[m] = bias[m] + a[k] · w[k,m] as k rank-1 updates: each step
/// broadcasts a[kk] and FMAs a contiguous weight row, so the loop
/// vectorizes over m regardless of how small the single "batch" row is
/// (mm_add's 4-row tile degenerates at n == 1).  f32 accumulation.
inline void vecmat_relaxed(const float* __restrict__ a,
                           const float* __restrict__ w,
                           const float* __restrict__ bias,
                           float* __restrict__ out, std::int64_t k,
                           std::int64_t m) {
  for (std::int64_t j = 0; j < m; ++j) out[j] = bias[j];
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float av = a[kk];
    const float* wrow = w + kk * m;
    for (std::int64_t j = 0; j < m; ++j) out[j] += av * wrow[j];
  }
}

/// Row-wise softmax forward (f64 max/normaliser per the dtype policy).
template <typename T>
inline void softmax_rows_fwd(const T* __restrict__ av, T* __restrict__ out,
                             std::int64_t n, std::int64_t m) {
  for (std::int64_t r = 0; r < n; ++r) {
    double mx = -std::numeric_limits<double>::infinity();
    for (std::int64_t c = 0; c < m; ++c)
      mx = std::max(mx, static_cast<double>(av[r * m + c]));
    double z = 0.0;
    for (std::int64_t c = 0; c < m; ++c) {
      const double e = std::exp(static_cast<double>(av[r * m + c]) - mx);
      out[r * m + c] = static_cast<T>(e);
      z += e;
    }
    for (std::int64_t c = 0; c < m; ++c)
      out[r * m + c] = static_cast<T>(static_cast<double>(out[r * m + c]) / z);
  }
}

}  // namespace amdgcnn::ag::fwd
