// Small dense linear-algebra kernels on plain vectors (no autograd).
//
// Used by the Gaussian-process surrogate in src/hpo (Cholesky factorisation,
// triangular solves) — the reproduction's stand-in for DeepHyper's Bayesian
// optimiser.  Matrices are row-major n x n in std::vector<double>.
#pragma once

#include <cstddef>
#include <vector>

namespace amdgcnn::linalg {

/// In-place lower Cholesky factor of a symmetric positive-definite matrix.
/// Returns L (row-major, upper triangle zeroed) with A = L L^T.
/// Throws std::runtime_error if A is not (numerically) positive definite.
std::vector<double> cholesky(const std::vector<double>& a, std::size_t n);

/// Solve L y = b for lower-triangular L.
std::vector<double> solve_lower(const std::vector<double>& l, std::size_t n,
                                const std::vector<double>& b);

/// Solve L^T x = y for lower-triangular L.
std::vector<double> solve_lower_transpose(const std::vector<double>& l,
                                          std::size_t n,
                                          const std::vector<double>& y);

/// Solve A x = b via Cholesky for SPD A (convenience wrapper).
std::vector<double> solve_spd(const std::vector<double>& a, std::size_t n,
                              const std::vector<double>& b);

/// Dense matrix-vector product (row-major n x m by m).
std::vector<double> matvec(const std::vector<double>& a, std::size_t n,
                           std::size_t m, const std::vector<double>& x);

/// Dot product.
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace amdgcnn::linalg
