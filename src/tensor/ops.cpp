#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels.h"

namespace amdgcnn::ag::ops {

namespace {

/// True when gradient must be accumulated into `t` during backward.
bool wants_grad(const Tensor& t) { return t.requires_grad(); }

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape())
    fail(std::string(op) + ": shape mismatch " + shape_str(a.shape()) +
         " vs " + shape_str(b.shape()));
}

void check_rank2(const Tensor& a, const char* op) {
  if (a.rank() != 2)
    fail(std::string(op) + ": expected rank-2 tensor, got " +
         shape_str(a.shape()));
}

void check_linear_shapes(const Tensor& a, const Tensor& w, const Tensor& bias,
                         const char* op) {
  check_rank2(a, op);
  check_rank2(w, op);
  if (a.dim(1) != w.dim(0))
    fail(std::string(op) + ": inner dimensions differ, " +
         shape_str(a.shape()) + " x " + shape_str(w.shape()));
  if (bias.numel() != w.dim(1))
    fail(std::string(op) + ": bias length " + std::to_string(bias.numel()) +
         " vs columns " + std::to_string(w.dim(1)));
}

/// Forward of the fused linear family: out = a·w + bias (row broadcast).
std::vector<double> linear_forward(const Tensor& a, const Tensor& w,
                                   const Tensor& bias) {
  const std::int64_t n = a.dim(0), k = a.dim(1), m = w.dim(1);
  std::vector<double> out = detail::new_buffer(static_cast<std::size_t>(n * m));
  const double* bv = bias.data().data();
  for (std::int64_t i = 0; i < n; ++i)
    std::copy_n(bv, m, out.data() + i * m);
  kern::mm_add(a.data().data(), w.data().data(), out.data(), n, k, m);
  return out;
}

/// Backward of the fused linear family given the post-activation gradient
/// `gz` (already masked/scaled by the activation derivative).
void linear_backward(const Tensor& a, const Tensor& w, const Tensor& bias,
                     const double* gz, std::int64_t n, std::int64_t k,
                     std::int64_t m) {
  if (wants_grad(a))
    kern::mm_abt_add(gz, w.data().data(),
                     detail::grad_of(*a.impl()).data(), n, k, m);
  if (wants_grad(w))
    kern::mm_atb_add(a.data().data(), gz,
                     detail::grad_of(*w.impl()).data(), n, k, m);
  if (wants_grad(bias))
    kern::col_sum_add(gz, detail::grad_of(*bias.impl()).data(), n, m);
}

}  // namespace

// ---- Elementwise arithmetic -------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  const auto& av = a.data();
  const auto& bv = b.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] + bv[i];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a, b},
      [a, b](detail::TensorImpl& self) {
        if (wants_grad(a)) {
          auto& ga = detail::grad_of(*a.impl());
          for (std::size_t i = 0; i < self.grad.size(); ++i)
            ga[i] += self.grad[i];
        }
        if (wants_grad(b)) {
          auto& gb = detail::grad_of(*b.impl());
          for (std::size_t i = 0; i < self.grad.size(); ++i)
            gb[i] += self.grad[i];
        }
      });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  const auto& av = a.data();
  const auto& bv = b.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] - bv[i];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a, b},
      [a, b](detail::TensorImpl& self) {
        if (wants_grad(a)) {
          auto& ga = detail::grad_of(*a.impl());
          for (std::size_t i = 0; i < self.grad.size(); ++i)
            ga[i] += self.grad[i];
        }
        if (wants_grad(b)) {
          auto& gb = detail::grad_of(*b.impl());
          for (std::size_t i = 0; i < self.grad.size(); ++i)
            gb[i] -= self.grad[i];
        }
      });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  const auto& av = a.data();
  const auto& bv = b.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] * bv[i];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a, b},
      [a, b](detail::TensorImpl& self) {
        if (wants_grad(a)) {
          auto& ga = detail::grad_of(*a.impl());
          const auto& bd = b.data();
          for (std::size_t i = 0; i < self.grad.size(); ++i)
            ga[i] += self.grad[i] * bd[i];
        }
        if (wants_grad(b)) {
          auto& gb = detail::grad_of(*b.impl());
          const auto& ad = a.data();
          for (std::size_t i = 0; i < self.grad.size(); ++i)
            gb[i] += self.grad[i] * ad[i];
        }
      });
}

Tensor add_scalar(const Tensor& a, double s) {
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] + s;
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          ga[i] += self.grad[i];
      });
}

Tensor mul_scalar(const Tensor& a, double s) {
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] * s;
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a, s](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          ga[i] += self.grad[i] * s;
      });
}

Tensor add_rowvec(const Tensor& a, const Tensor& bias) {
  check_rank2(a, "add_rowvec");
  if (bias.numel() != a.dim(1))
    fail("add_rowvec: bias length " + std::to_string(bias.numel()) +
         " vs columns " + std::to_string(a.dim(1)));
  const std::int64_t n = a.dim(0), m = a.dim(1);
  const auto& av = a.data();
  const auto& bv = bias.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < m; ++c)
      out[r * m + c] = av[r * m + c] + bv[c];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a, bias},
      [a, bias, n, m](detail::TensorImpl& self) {
        if (wants_grad(a)) {
          auto& ga = detail::grad_of(*a.impl());
          for (std::size_t i = 0; i < self.grad.size(); ++i)
            ga[i] += self.grad[i];
        }
        if (wants_grad(bias))
          kern::col_sum_add(self.grad.data(),
                            detail::grad_of(*bias.impl()).data(), n, m);
      });
}

// ---- Linear algebra ---------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  if (a.dim(1) != b.dim(0))
    fail("matmul: inner dimensions differ, " + shape_str(a.shape()) + " x " +
         shape_str(b.shape()));
  const std::int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  std::vector<double> out =
      detail::new_zeroed(static_cast<std::size_t>(n * m));
  kern::mm_add(a.data().data(), b.data().data(), out.data(), n, k, m);
  return Tensor::make_op_result(
      {n, m}, std::move(out), {a, b},
      [a, b, n, k, m](detail::TensorImpl& self) {
        // dA = dOut · Bᵀ; dB = Aᵀ · dOut — same blocked kernels as forward.
        if (wants_grad(a))
          kern::mm_abt_add(self.grad.data(), b.data().data(),
                           detail::grad_of(*a.impl()).data(), n, k, m);
        if (wants_grad(b))
          kern::mm_atb_add(a.data().data(), self.grad.data(),
                           detail::grad_of(*b.impl()).data(), n, k, m);
      });
}

Tensor addmm(const Tensor& a, const Tensor& w, const Tensor& bias) {
  check_linear_shapes(a, w, bias, "addmm");
  const std::int64_t n = a.dim(0), k = a.dim(1), m = w.dim(1);
  return Tensor::make_op_result(
      {n, m}, linear_forward(a, w, bias), {a, w, bias},
      [a, w, bias, n, k, m](detail::TensorImpl& self) {
        linear_backward(a, w, bias, self.grad.data(), n, k, m);
      });
}

Tensor linear_relu(const Tensor& a, const Tensor& w, const Tensor& bias) {
  check_linear_shapes(a, w, bias, "linear_relu");
  const std::int64_t n = a.dim(0), k = a.dim(1), m = w.dim(1);
  std::vector<double> out = linear_forward(a, w, bias);
  for (auto& v : out) v = v > 0.0 ? v : 0.0;
  return Tensor::make_op_result(
      {n, m}, std::move(out), {a, w, bias},
      [a, w, bias, n, k, m](detail::TensorImpl& self) {
        // Mask the upstream gradient by the activation before the shared
        // matmul backward; the temporary comes from (and returns to) the pool.
        std::vector<double> gz = detail::new_buffer(self.grad.size());
        for (std::size_t i = 0; i < gz.size(); ++i)
          gz[i] = self.data[i] > 0.0 ? self.grad[i] : 0.0;
        linear_backward(a, w, bias, gz.data(), n, k, m);
        detail::buffer_pool().release(std::move(gz));
      });
}

Tensor linear_tanh(const Tensor& a, const Tensor& w, const Tensor& bias) {
  check_linear_shapes(a, w, bias, "linear_tanh");
  const std::int64_t n = a.dim(0), k = a.dim(1), m = w.dim(1);
  std::vector<double> out = linear_forward(a, w, bias);
  for (auto& v : out) v = std::tanh(v);
  return Tensor::make_op_result(
      {n, m}, std::move(out), {a, w, bias},
      [a, w, bias, n, k, m](detail::TensorImpl& self) {
        std::vector<double> gz = detail::new_buffer(self.grad.size());
        for (std::size_t i = 0; i < gz.size(); ++i) {
          const double y = self.data[i];
          gz[i] = self.grad[i] * (1.0 - y * y);
        }
        linear_backward(a, w, bias, gz.data(), n, k, m);
        detail::buffer_pool().release(std::move(gz));
      });
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < m; ++c) out[c * n + r] = av[r * m + c];
  return Tensor::make_op_result(
      {m, n}, std::move(out), {a}, [a, n, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::int64_t r = 0; r < n; ++r)
          for (std::int64_t c = 0; c < m; ++c)
            ga[r * m + c] += self.grad[c * n + r];
      });
}

// ---- Shape manipulation -----------------------------------------------------

Tensor reshape(const Tensor& a, Shape new_shape) {
  if (ag::numel(new_shape) != a.numel())
    fail("reshape: numel mismatch " + shape_str(a.shape()) + " -> " +
         shape_str(new_shape));
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  std::copy(av.begin(), av.end(), out.begin());
  return Tensor::make_op_result(
      std::move(new_shape), std::move(out), {a},
      [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          ga[i] += self.grad[i];
      });
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_cols: no inputs");
  const std::int64_t n = parts[0].dim(0);
  std::int64_t total_cols = 0;
  for (const auto& p : parts) {
    check_rank2(p, "concat_cols");
    check(p.dim(0) == n, "concat_cols: row count mismatch");
    total_cols += p.dim(1);
  }
  std::vector<double> out =
      detail::new_buffer(static_cast<std::size_t>(n * total_cols));
  std::int64_t col_off = 0;
  for (const auto& p : parts) {
    const std::int64_t m = p.dim(1);
    const auto& pd = p.data();
    for (std::int64_t r = 0; r < n; ++r)
      for (std::int64_t c = 0; c < m; ++c)
        out[r * total_cols + col_off + c] = pd[r * m + c];
    col_off += m;
  }
  auto parts_copy = parts;
  return Tensor::make_op_result(
      {n, total_cols}, std::move(out), parts,
      [parts_copy, n, total_cols](detail::TensorImpl& self) {
        std::int64_t off = 0;
        for (const auto& p : parts_copy) {
          const std::int64_t m = p.dim(1);
          if (wants_grad(p)) {
            auto& gp = detail::grad_of(*p.impl());
            for (std::int64_t r = 0; r < n; ++r)
              for (std::int64_t c = 0; c < m; ++c)
                gp[r * m + c] += self.grad[r * total_cols + off + c];
          }
          off += m;
        }
      });
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_rows: no inputs");
  const std::int64_t m = parts[0].dim(1);
  std::int64_t total_rows = 0;
  for (const auto& p : parts) {
    check_rank2(p, "concat_rows");
    check(p.dim(1) == m, "concat_rows: column count mismatch");
    total_rows += p.dim(0);
  }
  std::vector<double> out =
      detail::new_buffer(static_cast<std::size_t>(total_rows * m));
  std::size_t off = 0;
  for (const auto& p : parts) {
    const auto& pd = p.data();
    std::copy(pd.begin(), pd.end(), out.begin() + off);
    off += pd.size();
  }
  auto parts_copy = parts;
  return Tensor::make_op_result(
      {total_rows, m}, std::move(out), parts,
      [parts_copy](detail::TensorImpl& self) {
        std::size_t off = 0;
        for (const auto& p : parts_copy) {
          const std::size_t sz = p.data().size();
          if (wants_grad(p)) {
            auto& gp = detail::grad_of(*p.impl());
            for (std::size_t i = 0; i < sz; ++i)
              gp[i] += self.grad[off + i];
          }
          off += sz;
        }
      });
}

Tensor slice_rows(const Tensor& a, std::int64_t start, std::int64_t len) {
  check_rank2(a, "slice_rows");
  check(start >= 0 && len >= 0 && start + len <= a.dim(0),
        "slice_rows: range out of bounds");
  const std::int64_t m = a.dim(1);
  std::vector<double> out =
      detail::new_buffer(static_cast<std::size_t>(len * m));
  std::copy_n(a.data().begin() + start * m, len * m, out.begin());
  return Tensor::make_op_result(
      {len, m}, std::move(out), {a},
      [a, start, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          ga[static_cast<std::size_t>(start * m) + i] += self.grad[i];
      });
}

Tensor gather_rows(const Tensor& a, const std::vector<std::int64_t>& index) {
  check_rank2(a, "gather_rows");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  for (auto i : index)
    check(i >= 0 && i < n, "gather_rows: index out of bounds");
  const auto e = static_cast<std::int64_t>(index.size());
  const auto& av = a.data();
  std::vector<double> out =
      detail::new_buffer(static_cast<std::size_t>(e * m));
  for (std::int64_t r = 0; r < e; ++r)
    std::copy_n(av.begin() + index[r] * m, m, out.begin() + r * m);
  return Tensor::make_op_result(
      {e, m}, std::move(out), {a},
      [a, index, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::size_t r = 0; r < index.size(); ++r)
          for (std::int64_t c = 0; c < m; ++c)
            ga[index[r] * m + c] += self.grad[r * m + c];
      });
}

Tensor scale_rows(const Tensor& a, const std::vector<double>& scale) {
  check_rank2(a, "scale_rows");
  check(static_cast<std::int64_t>(scale.size()) == a.dim(0),
        "scale_rows: scale length mismatch");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < m; ++c)
      out[r * m + c] = av[r * m + c] * scale[r];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a},
      [a, scale, n, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::int64_t r = 0; r < n; ++r)
          for (std::int64_t c = 0; c < m; ++c)
            ga[r * m + c] += self.grad[r * m + c] * scale[r];
      });
}

// ---- Activations ------------------------------------------------------------

Tensor relu(const Tensor& a) {
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = av[i] > 0.0 ? av[i] : 0.0;
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        const auto& ad = a.data();
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          if (ad[i] > 0.0) ga[i] += self.grad[i];
      });
}

Tensor leaky_relu(const Tensor& a, double negative_slope) {
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = av[i] > 0.0 ? av[i] : negative_slope * av[i];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a},
      [a, negative_slope](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        const auto& ad = a.data();
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          ga[i] += self.grad[i] * (ad[i] > 0.0 ? 1.0 : negative_slope);
      });
}

Tensor tanh_act(const Tensor& a) {
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(av[i]);
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
          const double y = self.data[i];
          ga[i] += self.grad[i] * (1.0 - y * y);
        }
      });
}

Tensor sigmoid(const Tensor& a) {
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = 1.0 / (1.0 + std::exp(-av[i]));
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
          const double y = self.data[i];
          ga[i] += self.grad[i] * y * (1.0 - y);
        }
      });
}

// ---- Reductions / losses ------------------------------------------------------

Tensor sum(const Tensor& a) {
  double total = 0.0;
  for (double v : a.data()) total += v;
  return Tensor::make_op_result(
      {1}, {total}, {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (auto& g : ga) g += self.grad[0];
      });
}

Tensor mean(const Tensor& a) {
  check(a.numel() > 0, "mean of empty tensor");
  double total = 0.0;
  for (double v : a.data()) total += v;
  const double inv = 1.0 / static_cast<double>(a.numel());
  return Tensor::make_op_result(
      {1}, {total * inv}, {a}, [a, inv](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (auto& g : ga) g += self.grad[0] * inv;
      });
}

Tensor softmax_rows(const Tensor& a) {
  check_rank2(a, "softmax_rows");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  check(m > 0, "softmax_rows: zero columns");
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::int64_t r = 0; r < n; ++r) {
    double mx = -std::numeric_limits<double>::infinity();
    for (std::int64_t c = 0; c < m; ++c) mx = std::max(mx, av[r * m + c]);
    double z = 0.0;
    for (std::int64_t c = 0; c < m; ++c) {
      out[r * m + c] = std::exp(av[r * m + c] - mx);
      z += out[r * m + c];
    }
    for (std::int64_t c = 0; c < m; ++c) out[r * m + c] /= z;
  }
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a, n, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::int64_t r = 0; r < n; ++r) {
          double dot = 0.0;
          for (std::int64_t c = 0; c < m; ++c)
            dot += self.grad[r * m + c] * self.data[r * m + c];
          for (std::int64_t c = 0; c < m; ++c)
            ga[r * m + c] +=
                self.data[r * m + c] * (self.grad[r * m + c] - dot);
        }
      });
}

Tensor log_softmax_rows(const Tensor& a) {
  check_rank2(a, "log_softmax_rows");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  check(m > 0, "log_softmax_rows: zero columns");
  const auto& av = a.data();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::int64_t r = 0; r < n; ++r) {
    double mx = -std::numeric_limits<double>::infinity();
    for (std::int64_t c = 0; c < m; ++c) mx = std::max(mx, av[r * m + c]);
    double z = 0.0;
    for (std::int64_t c = 0; c < m; ++c) z += std::exp(av[r * m + c] - mx);
    const double logz = mx + std::log(z);
    for (std::int64_t c = 0; c < m; ++c) out[r * m + c] = av[r * m + c] - logz;
  }
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a, n, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::int64_t r = 0; r < n; ++r) {
          double gsum = 0.0;
          for (std::int64_t c = 0; c < m; ++c) gsum += self.grad[r * m + c];
          for (std::int64_t c = 0; c < m; ++c)
            ga[r * m + c] += self.grad[r * m + c] -
                             std::exp(self.data[r * m + c]) * gsum;
        }
      });
}

Tensor nll_loss(const Tensor& logp, const std::vector<std::int64_t>& targets) {
  check_rank2(logp, "nll_loss");
  const std::int64_t n = logp.dim(0), m = logp.dim(1);
  check(static_cast<std::int64_t>(targets.size()) == n,
        "nll_loss: target count mismatch");
  double loss = 0.0;
  const auto& lp = logp.data();
  for (std::int64_t r = 0; r < n; ++r) {
    check(targets[r] >= 0 && targets[r] < m,
          "nll_loss: target class out of range");
    loss -= lp[r * m + targets[r]];
  }
  const double inv = 1.0 / static_cast<double>(n);
  return Tensor::make_op_result(
      {1}, {loss * inv}, {logp},
      [logp, targets, m, inv](detail::TensorImpl& self) {
        if (!wants_grad(logp)) return;
        auto& g = detail::grad_of(*logp.impl());
        for (std::size_t r = 0; r < targets.size(); ++r)
          g[r * m + targets[r]] -= self.grad[0] * inv;
      });
}

Tensor cross_entropy(const Tensor& logits,
                     const std::vector<std::int64_t>& targets) {
  return nll_loss(log_softmax_rows(logits), targets);
}

// ---- Regularisation -----------------------------------------------------------

Tensor dropout(const Tensor& a, double p, bool training, util::Rng& rng) {
  check(p >= 0.0 && p < 1.0, "dropout: p must be in [0, 1)");
  if (!training || p == 0.0) {
    // Identity pass-through that still participates in the tape.
    return mul_scalar(a, 1.0);
  }
  const double keep = 1.0 - p;
  const auto& av = a.data();
  auto mask = std::make_shared<std::vector<double>>(av.size());
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    (*mask)[i] = rng.bernoulli(keep) ? 1.0 / keep : 0.0;
    out[i] = av[i] * (*mask)[i];
  }
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a, mask](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        auto& ga = detail::grad_of(*a.impl());
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          ga[i] += self.grad[i] * (*mask)[i];
      });
}

// ---- Multi-head attention helpers ---------------------------------------------

Tensor heads_dot(const Tensor& x, const Tensor& a, std::int64_t heads) {
  check_rank2(x, "heads_dot");
  check(heads > 0 && x.dim(1) % heads == 0,
        "heads_dot: columns not divisible by heads");
  check(a.numel() == x.dim(1), "heads_dot: parameter length mismatch");
  const std::int64_t e = x.dim(0), hf = x.dim(1), f = hf / heads;
  const auto& xd = x.data();
  const auto& ad = a.data();
  std::vector<double> out =
      detail::new_buffer(static_cast<std::size_t>(e * heads));
  for (std::int64_t r = 0; r < e; ++r) {
    const double* xrow = xd.data() + r * hf;
    for (std::int64_t h = 0; h < heads; ++h) {
      double acc = 0.0;
      const double* arow = ad.data() + h * f;
      for (std::int64_t c = 0; c < f; ++c) acc += xrow[h * f + c] * arow[c];
      out[r * heads + h] = acc;
    }
  }
  return Tensor::make_op_result(
      {e, heads}, std::move(out), {x, a},
      [x, a, e, heads, f, hf](detail::TensorImpl& self) {
        if (wants_grad(x)) {
          auto& gx = detail::grad_of(*x.impl());
          const auto& ad = a.data();
          for (std::int64_t r = 0; r < e; ++r)
            for (std::int64_t h = 0; h < heads; ++h) {
              const double go = self.grad[r * heads + h];
              if (go == 0.0) continue;
              for (std::int64_t c = 0; c < f; ++c)
                gx[r * hf + h * f + c] += go * ad[h * f + c];
            }
        }
        if (wants_grad(a)) {
          auto& ga = detail::grad_of(*a.impl());
          const auto& xd = x.data();
          for (std::int64_t r = 0; r < e; ++r)
            for (std::int64_t h = 0; h < heads; ++h) {
              const double go = self.grad[r * heads + h];
              if (go == 0.0) continue;
              for (std::int64_t c = 0; c < f; ++c)
                ga[h * f + c] += go * xd[r * hf + h * f + c];
            }
        }
      });
}

Tensor heads_scale(const Tensor& x, const Tensor& alpha, std::int64_t heads) {
  check_rank2(x, "heads_scale");
  check_rank2(alpha, "heads_scale");
  check(heads > 0 && x.dim(1) % heads == 0,
        "heads_scale: columns not divisible by heads");
  check(alpha.dim(0) == x.dim(0) && alpha.dim(1) == heads,
        "heads_scale: alpha shape mismatch");
  const std::int64_t e = x.dim(0), hf = x.dim(1), f = hf / heads;
  const auto& xd = x.data();
  const auto& al = alpha.data();
  std::vector<double> out = detail::new_buffer(xd.size());
  for (std::int64_t r = 0; r < e; ++r)
    for (std::int64_t h = 0; h < heads; ++h) {
      const double s = al[r * heads + h];
      for (std::int64_t c = 0; c < f; ++c)
        out[r * hf + h * f + c] = xd[r * hf + h * f + c] * s;
    }
  return Tensor::make_op_result(
      x.shape(), std::move(out), {x, alpha},
      [x, alpha, e, heads, f, hf](detail::TensorImpl& self) {
        if (wants_grad(x)) {
          auto& gx = detail::grad_of(*x.impl());
          const auto& al = alpha.data();
          for (std::int64_t r = 0; r < e; ++r)
            for (std::int64_t h = 0; h < heads; ++h) {
              const double s = al[r * heads + h];
              for (std::int64_t c = 0; c < f; ++c)
                gx[r * hf + h * f + c] += self.grad[r * hf + h * f + c] * s;
            }
        }
        if (wants_grad(alpha)) {
          auto& gal = detail::grad_of(*alpha.impl());
          const auto& xd = x.data();
          for (std::int64_t r = 0; r < e; ++r)
            for (std::int64_t h = 0; h < heads; ++h) {
              double acc = 0.0;
              for (std::int64_t c = 0; c < f; ++c)
                acc += self.grad[r * hf + h * f + c] *
                       xd[r * hf + h * f + c];
              gal[r * heads + h] += acc;
            }
        }
      });
}

}  // namespace amdgcnn::ag::ops
