// Dtype-generic implementations of the dense differentiable ops.
//
// Every op is written once as a `template <typename T>` implementation over
// the tensor's scalar type and dispatched per call on the input dtype
// (AG_DISPATCH).  The dtype policy (DESIGN.md §2.3): storage, matmul kernels
// and elementwise math run at the tensor's native width; the order-sensitive
// accumulations — sum/mean, softmax and log-softmax normalisers, nll_loss,
// heads_dot products — run in f64 for both dtypes so f32 training keeps the
// same numerical contract (and the same bit-determinism guarantees) as f64.
#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/fwd_kernels.h"
#include "tensor/kernels.h"

namespace amdgcnn::ag::ops {

namespace {

/// Expands to the f32 or f64 instantiation of `fn` based on `dt`.
#define AG_DISPATCH(dt, fn, ...) \
  ((dt) == Dtype::f32 ? fn<float>(__VA_ARGS__) : fn<double>(__VA_ARGS__))

/// True when gradient must be accumulated into `t` during backward.
bool wants_grad(const Tensor& t) { return t.requires_grad(); }

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape())
    fail(std::string(op) + ": shape mismatch " + shape_str(a.shape()) +
         " vs " + shape_str(b.shape()));
}

void check_same_dtype(const Tensor& a, const Tensor& b, const char* op) {
  if (a.dtype() != b.dtype())
    fail(std::string(op) + ": dtype mismatch " +
         std::string(dtype_name(a.dtype())) + " vs " + dtype_name(b.dtype()) +
         " (insert ops::cast)");
}

void check_rank2(const Tensor& a, const char* op) {
  if (a.rank() != 2)
    fail(std::string(op) + ": expected rank-2 tensor, got " +
         shape_str(a.shape()));
}

void check_linear_shapes(const Tensor& a, const Tensor& w, const Tensor& bias,
                         const char* op) {
  check_rank2(a, op);
  check_rank2(w, op);
  check_same_dtype(a, w, op);
  check_same_dtype(a, bias, op);
  if (a.dim(1) != w.dim(0))
    fail(std::string(op) + ": inner dimensions differ, " +
         shape_str(a.shape()) + " x " + shape_str(w.shape()));
  if (bias.numel() != w.dim(1))
    fail(std::string(op) + ": bias length " + std::to_string(bias.numel()) +
         " vs columns " + std::to_string(w.dim(1)));
}

/// Forward of the fused linear family: out = a·w + bias (row broadcast).
/// The math lives in fwd::linear_fwd so the frozen inference path runs the
/// exact same instantiation (fwd_kernels.h).
template <typename T>
std::vector<T> linear_forward(const Tensor& a, const Tensor& w,
                              const Tensor& bias) {
  const std::int64_t n = a.dim(0), k = a.dim(1), m = w.dim(1);
  std::vector<T> out = detail::new_buffer_t<T>(static_cast<std::size_t>(n * m));
  fwd::linear_fwd(a.data_as<T>().data(), w.data_as<T>().data(),
                  bias.data_as<T>().data(), out.data(), n, k, m);
  return out;
}

/// Backward of the fused linear family given the post-activation gradient
/// `gz` (already masked/scaled by the activation derivative).
template <typename T>
void linear_backward(const Tensor& a, const Tensor& w, const Tensor& bias,
                     const T* gz, std::int64_t n, std::int64_t k,
                     std::int64_t m) {
  if (wants_grad(a))
    kern::mm_abt_add(gz, w.data_as<T>().data(),
                     detail::grad_of<T>(*a.impl()).data(), n, k, m);
  if (wants_grad(w))
    kern::mm_atb_add(a.data_as<T>().data(), gz,
                     detail::grad_of<T>(*w.impl()).data(), n, k, m);
  if (wants_grad(bias))
    kern::col_sum_add(gz, detail::grad_of<T>(*bias.impl()).data(), n, m);
}

// ---- Elementwise arithmetic -------------------------------------------------

template <typename T>
Tensor add_impl(const Tensor& a, const Tensor& b) {
  const auto& av = a.data_as<T>();
  const auto& bv = b.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] + bv[i];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a, b}, [a, b](detail::TensorImpl& self) {
        const auto& sg = self.grad_as<T>();
        if (wants_grad(a)) {
          auto& ga = detail::grad_of<T>(*a.impl());
          for (std::size_t i = 0; i < sg.size(); ++i) ga[i] += sg[i];
        }
        if (wants_grad(b)) {
          auto& gb = detail::grad_of<T>(*b.impl());
          for (std::size_t i = 0; i < sg.size(); ++i) gb[i] += sg[i];
        }
      });
}

template <typename T>
Tensor sub_impl(const Tensor& a, const Tensor& b) {
  const auto& av = a.data_as<T>();
  const auto& bv = b.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] - bv[i];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a, b}, [a, b](detail::TensorImpl& self) {
        const auto& sg = self.grad_as<T>();
        if (wants_grad(a)) {
          auto& ga = detail::grad_of<T>(*a.impl());
          for (std::size_t i = 0; i < sg.size(); ++i) ga[i] += sg[i];
        }
        if (wants_grad(b)) {
          auto& gb = detail::grad_of<T>(*b.impl());
          for (std::size_t i = 0; i < sg.size(); ++i) gb[i] -= sg[i];
        }
      });
}

template <typename T>
Tensor mul_impl(const Tensor& a, const Tensor& b) {
  const auto& av = a.data_as<T>();
  const auto& bv = b.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] * bv[i];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a, b}, [a, b](detail::TensorImpl& self) {
        const auto& sg = self.grad_as<T>();
        if (wants_grad(a)) {
          auto& ga = detail::grad_of<T>(*a.impl());
          const auto& bd = b.data_as<T>();
          for (std::size_t i = 0; i < sg.size(); ++i) ga[i] += sg[i] * bd[i];
        }
        if (wants_grad(b)) {
          auto& gb = detail::grad_of<T>(*b.impl());
          const auto& ad = a.data_as<T>();
          for (std::size_t i = 0; i < sg.size(); ++i) gb[i] += sg[i] * ad[i];
        }
      });
}

template <typename T>
Tensor add_scalar_impl(const Tensor& a, double s) {
  const auto& av = a.data_as<T>();
  const T sv = static_cast<T>(s);
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] + sv;
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::size_t i = 0; i < sg.size(); ++i) ga[i] += sg[i];
      });
}

template <typename T>
Tensor mul_scalar_impl(const Tensor& a, double s) {
  const auto& av = a.data_as<T>();
  const T sv = static_cast<T>(s);
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] * sv;
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a, sv](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::size_t i = 0; i < sg.size(); ++i) ga[i] += sg[i] * sv;
      });
}

template <typename T>
Tensor add_rowvec_impl(const Tensor& a, const Tensor& bias) {
  const std::int64_t n = a.dim(0), m = a.dim(1);
  const auto& av = a.data_as<T>();
  const auto& bv = bias.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < m; ++c) out[r * m + c] = av[r * m + c] + bv[c];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a, bias},
      [a, bias, n, m](detail::TensorImpl& self) {
        const auto& sg = self.grad_as<T>();
        if (wants_grad(a)) {
          auto& ga = detail::grad_of<T>(*a.impl());
          for (std::size_t i = 0; i < sg.size(); ++i) ga[i] += sg[i];
        }
        if (wants_grad(bias))
          kern::col_sum_add(sg.data(), detail::grad_of<T>(*bias.impl()).data(),
                            n, m);
      });
}

// ---- Linear algebra ---------------------------------------------------------

template <typename T>
Tensor matmul_impl(const Tensor& a, const Tensor& b) {
  const std::int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  std::vector<T> out = detail::new_zeroed_t<T>(static_cast<std::size_t>(n * m));
  kern::mm_add(a.data_as<T>().data(), b.data_as<T>().data(), out.data(), n, k,
               m);
  return Tensor::make_op_result(
      {n, m}, std::move(out), {a, b},
      [a, b, n, k, m](detail::TensorImpl& self) {
        // dA = dOut · Bᵀ; dB = Aᵀ · dOut — same blocked kernels as forward.
        const auto& sg = self.grad_as<T>();
        if (wants_grad(a))
          kern::mm_abt_add(sg.data(), b.data_as<T>().data(),
                           detail::grad_of<T>(*a.impl()).data(), n, k, m);
        if (wants_grad(b))
          kern::mm_atb_add(a.data_as<T>().data(), sg.data(),
                           detail::grad_of<T>(*b.impl()).data(), n, k, m);
      });
}

template <typename T>
Tensor addmm_impl(const Tensor& a, const Tensor& w, const Tensor& bias) {
  const std::int64_t n = a.dim(0), k = a.dim(1), m = w.dim(1);
  return Tensor::make_op_result(
      {n, m}, linear_forward<T>(a, w, bias), {a, w, bias},
      [a, w, bias, n, k, m](detail::TensorImpl& self) {
        linear_backward<T>(a, w, bias, self.grad_as<T>().data(), n, k, m);
      });
}

template <typename T>
Tensor linear_relu_impl(const Tensor& a, const Tensor& w, const Tensor& bias) {
  const std::int64_t n = a.dim(0), k = a.dim(1), m = w.dim(1);
  std::vector<T> out = linear_forward<T>(a, w, bias);
  for (auto& v : out) v = v > T(0) ? v : T(0);
  return Tensor::make_op_result(
      {n, m}, std::move(out), {a, w, bias},
      [a, w, bias, n, k, m](detail::TensorImpl& self) {
        // Mask the upstream gradient by the activation before the shared
        // matmul backward; the temporary comes from (and returns to) the pool.
        const auto& sg = self.grad_as<T>();
        const auto& sd = self.data_as<T>();
        std::vector<T> gz = detail::new_buffer_t<T>(sg.size());
        for (std::size_t i = 0; i < gz.size(); ++i)
          gz[i] = sd[i] > T(0) ? sg[i] : T(0);
        linear_backward<T>(a, w, bias, gz.data(), n, k, m);
        detail::pool_of<T>().release(std::move(gz));
      });
}

template <typename T>
Tensor linear_tanh_impl(const Tensor& a, const Tensor& w, const Tensor& bias) {
  const std::int64_t n = a.dim(0), k = a.dim(1), m = w.dim(1);
  std::vector<T> out = linear_forward<T>(a, w, bias);
  for (auto& v : out) v = std::tanh(v);
  return Tensor::make_op_result(
      {n, m}, std::move(out), {a, w, bias},
      [a, w, bias, n, k, m](detail::TensorImpl& self) {
        const auto& sg = self.grad_as<T>();
        const auto& sd = self.data_as<T>();
        std::vector<T> gz = detail::new_buffer_t<T>(sg.size());
        for (std::size_t i = 0; i < gz.size(); ++i) {
          const T y = sd[i];
          gz[i] = sg[i] * (T(1) - y * y);
        }
        linear_backward<T>(a, w, bias, gz.data(), n, k, m);
        detail::pool_of<T>().release(std::move(gz));
      });
}

template <typename T>
Tensor transpose_impl(const Tensor& a) {
  const std::int64_t n = a.dim(0), m = a.dim(1);
  const auto& av = a.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < m; ++c) out[c * n + r] = av[r * m + c];
  return Tensor::make_op_result(
      {m, n}, std::move(out), {a}, [a, n, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::int64_t r = 0; r < n; ++r)
          for (std::int64_t c = 0; c < m; ++c)
            ga[r * m + c] += sg[c * n + r];
      });
}

// ---- Shape manipulation -----------------------------------------------------

template <typename T>
Tensor reshape_impl(const Tensor& a, Shape new_shape) {
  const auto& av = a.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  std::copy(av.begin(), av.end(), out.begin());
  return Tensor::make_op_result(
      std::move(new_shape), std::move(out), {a},
      [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::size_t i = 0; i < sg.size(); ++i) ga[i] += sg[i];
      });
}

template <typename T>
Tensor concat_cols_impl(const std::vector<Tensor>& parts) {
  const std::int64_t n = parts[0].dim(0);
  std::int64_t total_cols = 0;
  for (const auto& p : parts) total_cols += p.dim(1);
  std::vector<T> out =
      detail::new_buffer_t<T>(static_cast<std::size_t>(n * total_cols));
  std::int64_t col_off = 0;
  for (const auto& p : parts) {
    const std::int64_t m = p.dim(1);
    const auto& pd = p.data_as<T>();
    for (std::int64_t r = 0; r < n; ++r)
      for (std::int64_t c = 0; c < m; ++c)
        out[r * total_cols + col_off + c] = pd[r * m + c];
    col_off += m;
  }
  auto parts_copy = parts;
  return Tensor::make_op_result(
      {n, total_cols}, std::move(out), parts,
      [parts_copy, n, total_cols](detail::TensorImpl& self) {
        const auto& sg = self.grad_as<T>();
        std::int64_t off = 0;
        for (const auto& p : parts_copy) {
          const std::int64_t m = p.dim(1);
          if (wants_grad(p)) {
            auto& gp = detail::grad_of<T>(*p.impl());
            for (std::int64_t r = 0; r < n; ++r)
              for (std::int64_t c = 0; c < m; ++c)
                gp[r * m + c] += sg[r * total_cols + off + c];
          }
          off += m;
        }
      });
}

template <typename T>
Tensor concat_rows_impl(const std::vector<Tensor>& parts) {
  const std::int64_t m = parts[0].dim(1);
  std::int64_t total_rows = 0;
  for (const auto& p : parts) total_rows += p.dim(0);
  std::vector<T> out =
      detail::new_buffer_t<T>(static_cast<std::size_t>(total_rows * m));
  std::size_t off = 0;
  for (const auto& p : parts) {
    const auto& pd = p.data_as<T>();
    std::copy(pd.begin(), pd.end(), out.begin() + off);
    off += pd.size();
  }
  auto parts_copy = parts;
  return Tensor::make_op_result(
      {total_rows, m}, std::move(out), parts,
      [parts_copy](detail::TensorImpl& self) {
        const auto& sg = self.grad_as<T>();
        std::size_t off = 0;
        for (const auto& p : parts_copy) {
          const std::size_t sz = p.data_as<T>().size();
          if (wants_grad(p)) {
            auto& gp = detail::grad_of<T>(*p.impl());
            for (std::size_t i = 0; i < sz; ++i) gp[i] += sg[off + i];
          }
          off += sz;
        }
      });
}

template <typename T>
Tensor slice_rows_impl(const Tensor& a, std::int64_t start, std::int64_t len) {
  const std::int64_t m = a.dim(1);
  std::vector<T> out = detail::new_buffer_t<T>(static_cast<std::size_t>(len * m));
  std::copy_n(a.data_as<T>().begin() + start * m, len * m, out.begin());
  return Tensor::make_op_result(
      {len, m}, std::move(out), {a},
      [a, start, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::size_t i = 0; i < sg.size(); ++i)
          ga[static_cast<std::size_t>(start * m) + i] += sg[i];
      });
}

template <typename T>
Tensor gather_rows_impl(const Tensor& a,
                        const std::vector<std::int64_t>& index) {
  const std::int64_t m = a.dim(1);
  const auto e = static_cast<std::int64_t>(index.size());
  const auto& av = a.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(static_cast<std::size_t>(e * m));
  for (std::int64_t r = 0; r < e; ++r)
    std::copy_n(av.begin() + index[r] * m, m, out.begin() + r * m);
  return Tensor::make_op_result(
      {e, m}, std::move(out), {a},
      [a, index, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::size_t r = 0; r < index.size(); ++r)
          for (std::int64_t c = 0; c < m; ++c)
            ga[index[r] * m + c] += sg[r * m + c];
      });
}

template <typename T>
Tensor scale_rows_impl(const Tensor& a, const std::vector<double>& scale) {
  const std::int64_t n = a.dim(0), m = a.dim(1);
  const auto& av = a.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::int64_t r = 0; r < n; ++r) {
    const T s = static_cast<T>(scale[r]);
    for (std::int64_t c = 0; c < m; ++c) out[r * m + c] = av[r * m + c] * s;
  }
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a},
      [a, scale, n, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::int64_t r = 0; r < n; ++r) {
          const T s = static_cast<T>(scale[r]);
          for (std::int64_t c = 0; c < m; ++c)
            ga[r * m + c] += sg[r * m + c] * s;
        }
      });
}

// ---- Activations ------------------------------------------------------------

template <typename T>
Tensor relu_impl(const Tensor& a) {
  const auto& av = a.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = av[i] > T(0) ? av[i] : T(0);
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        const auto& ad = a.data_as<T>();
        for (std::size_t i = 0; i < sg.size(); ++i)
          if (ad[i] > T(0)) ga[i] += sg[i];
      });
}

template <typename T>
Tensor leaky_relu_impl(const Tensor& a, double negative_slope) {
  const auto& av = a.data_as<T>();
  const T slope = static_cast<T>(negative_slope);
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = av[i] > T(0) ? av[i] : slope * av[i];
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a},
      [a, slope](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        const auto& ad = a.data_as<T>();
        for (std::size_t i = 0; i < sg.size(); ++i)
          ga[i] += sg[i] * (ad[i] > T(0) ? T(1) : slope);
      });
}

template <typename T>
Tensor tanh_act_impl(const Tensor& a) {
  const auto& av = a.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(av[i]);
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        const auto& sd = self.data_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::size_t i = 0; i < sg.size(); ++i) {
          const T y = sd[i];
          ga[i] += sg[i] * (T(1) - y * y);
        }
      });
}

template <typename T>
Tensor sigmoid_impl(const Tensor& a) {
  const auto& av = a.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = T(1) / (T(1) + std::exp(-av[i]));
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        const auto& sd = self.data_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::size_t i = 0; i < sg.size(); ++i) {
          const T y = sd[i];
          ga[i] += sg[i] * y * (T(1) - y);
        }
      });
}

// ---- Reductions / losses ----------------------------------------------------

template <typename T>
Tensor sum_impl(const Tensor& a) {
  // f64 accumulation regardless of storage dtype (dtype policy).
  double total = 0.0;
  for (T v : a.data_as<T>()) total += static_cast<double>(v);
  std::vector<T> out(1, static_cast<T>(total));
  return Tensor::make_op_result(
      {1}, std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const T g = self.grad_as<T>()[0];
        auto& ga = detail::grad_of<T>(*a.impl());
        for (auto& gv : ga) gv += g;
      });
}

template <typename T>
Tensor mean_impl(const Tensor& a) {
  double total = 0.0;
  for (T v : a.data_as<T>()) total += static_cast<double>(v);
  const double inv = 1.0 / static_cast<double>(a.numel());
  std::vector<T> out(1, static_cast<T>(total * inv));
  return Tensor::make_op_result(
      {1}, std::move(out), {a}, [a, inv](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const T g = static_cast<T>(self.grad_as<T>()[0] * inv);
        auto& ga = detail::grad_of<T>(*a.impl());
        for (auto& gv : ga) gv += g;
      });
}

template <typename T>
Tensor softmax_rows_impl(const Tensor& a) {
  const std::int64_t n = a.dim(0), m = a.dim(1);
  const auto& av = a.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  // Shared forward (f64 normaliser per the dtype policy) — fwd_kernels.h.
  fwd::softmax_rows_fwd(av.data(), out.data(), n, m);
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a, n, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        const auto& sd = self.data_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::int64_t r = 0; r < n; ++r) {
          double dot = 0.0;
          for (std::int64_t c = 0; c < m; ++c)
            dot += static_cast<double>(sg[r * m + c]) *
                   static_cast<double>(sd[r * m + c]);
          for (std::int64_t c = 0; c < m; ++c)
            ga[r * m + c] += static_cast<T>(
                static_cast<double>(sd[r * m + c]) *
                (static_cast<double>(sg[r * m + c]) - dot));
        }
      });
}

template <typename T>
Tensor log_softmax_rows_impl(const Tensor& a) {
  const std::int64_t n = a.dim(0), m = a.dim(1);
  const auto& av = a.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::int64_t r = 0; r < n; ++r) {
    double mx = -std::numeric_limits<double>::infinity();
    for (std::int64_t c = 0; c < m; ++c)
      mx = std::max(mx, static_cast<double>(av[r * m + c]));
    double z = 0.0;
    for (std::int64_t c = 0; c < m; ++c)
      z += std::exp(static_cast<double>(av[r * m + c]) - mx);
    const double logz = mx + std::log(z);
    for (std::int64_t c = 0; c < m; ++c)
      out[r * m + c] = static_cast<T>(static_cast<double>(av[r * m + c]) - logz);
  }
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a, n, m](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        const auto& sd = self.data_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::int64_t r = 0; r < n; ++r) {
          double gsum = 0.0;
          for (std::int64_t c = 0; c < m; ++c)
            gsum += static_cast<double>(sg[r * m + c]);
          for (std::int64_t c = 0; c < m; ++c)
            ga[r * m + c] += static_cast<T>(
                static_cast<double>(sg[r * m + c]) -
                std::exp(static_cast<double>(sd[r * m + c])) * gsum);
        }
      });
}

template <typename T>
Tensor nll_loss_impl(const Tensor& logp,
                     const std::vector<std::int64_t>& targets) {
  const std::int64_t n = logp.dim(0), m = logp.dim(1);
  double loss = 0.0;
  const auto& lp = logp.data_as<T>();
  for (std::int64_t r = 0; r < n; ++r) {
    check(targets[r] >= 0 && targets[r] < m,
          "nll_loss: target class out of range");
    loss -= static_cast<double>(lp[r * m + targets[r]]);
  }
  const double inv = 1.0 / static_cast<double>(n);
  std::vector<T> out(1, static_cast<T>(loss * inv));
  return Tensor::make_op_result(
      {1}, std::move(out), {logp},
      [logp, targets, m, inv](detail::TensorImpl& self) {
        if (!wants_grad(logp)) return;
        const T g = static_cast<T>(self.grad_as<T>()[0] * inv);
        auto& ga = detail::grad_of<T>(*logp.impl());
        for (std::size_t r = 0; r < targets.size(); ++r)
          ga[r * m + targets[r]] -= g;
      });
}

// ---- Regularisation ---------------------------------------------------------

template <typename T>
Tensor dropout_impl(const Tensor& a, double p, util::Rng& rng) {
  const double keep = 1.0 - p;
  const auto& av = a.data_as<T>();
  auto mask = std::make_shared<std::vector<T>>(av.size());
  std::vector<T> out = detail::new_buffer_t<T>(av.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    (*mask)[i] = rng.bernoulli(keep) ? static_cast<T>(1.0 / keep) : T(0);
    out[i] = av[i] * (*mask)[i];
  }
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a, mask](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<T>();
        auto& ga = detail::grad_of<T>(*a.impl());
        for (std::size_t i = 0; i < sg.size(); ++i)
          ga[i] += sg[i] * (*mask)[i];
      });
}

// ---- Multi-head attention helpers -------------------------------------------

template <typename T>
Tensor heads_dot_impl(const Tensor& x, const Tensor& a, std::int64_t heads) {
  const std::int64_t e = x.dim(0), hf = x.dim(1), f = hf / heads;
  const auto& xd = x.data_as<T>();
  const auto& ad = a.data_as<T>();
  std::vector<T> out =
      detail::new_buffer_t<T>(static_cast<std::size_t>(e * heads));
  // Shared lane-split f64 forward (fwd_kernels.h) — the frozen inference
  // path runs the same instantiation, which is what makes its logits
  // bit-identical to training.
  fwd::heads_dot_fwd(xd.data(), ad.data(), out.data(), e, hf, heads);
  return Tensor::make_op_result(
      {e, heads}, std::move(out), {x, a},
      [x, a, e, heads, f, hf](detail::TensorImpl& self) {
        // The per-head feature width f is small (8..32), so these inner
        // loops only pay off as straight SIMD: hoist __restrict__ row
        // pointers (grad buffers never alias data buffers) so the compiler
        // emits one or two vector ops per head instead of re-checking for
        // overlap on every tiny loop.
        const T* __restrict__ sgp = self.grad_as<T>().data();
        if (wants_grad(x)) {
          T* __restrict__ gxp = detail::grad_of<T>(*x.impl()).data();
          const T* __restrict__ adp = a.data_as<T>().data();
          for (std::int64_t r = 0; r < e; ++r) {
            T* grow = gxp + r * hf;
            const T* srow = sgp + r * heads;
            for (std::int64_t h = 0; h < heads; ++h) {
              const T go = srow[h];
              T* __restrict__ g = grow + h * f;
              const T* __restrict__ av = adp + h * f;
              for (std::int64_t c = 0; c < f; ++c) g[c] += go * av[c];
            }
          }
        }
        if (wants_grad(a)) {
          T* __restrict__ gap = detail::grad_of<T>(*a.impl()).data();
          const T* __restrict__ xdp = x.data_as<T>().data();
          for (std::int64_t r = 0; r < e; ++r) {
            const T* xrow = xdp + r * hf;
            const T* srow = sgp + r * heads;
            for (std::int64_t h = 0; h < heads; ++h) {
              const T go = srow[h];
              T* __restrict__ g = gap + h * f;
              const T* __restrict__ xv = xrow + h * f;
              for (std::int64_t c = 0; c < f; ++c) g[c] += go * xv[c];
            }
          }
        }
      });
}

template <typename T>
Tensor heads_scale_impl(const Tensor& x, const Tensor& alpha,
                        std::int64_t heads) {
  const std::int64_t e = x.dim(0), hf = x.dim(1), f = hf / heads;
  const auto& xd = x.data_as<T>();
  const auto& al = alpha.data_as<T>();
  std::vector<T> out = detail::new_buffer_t<T>(xd.size());
  fwd::heads_scale_fwd(xd.data(), al.data(), out.data(), e, hf, heads);
  return Tensor::make_op_result(
      x.shape(), std::move(out), {x, alpha},
      [x, alpha, e, heads, f, hf](detail::TensorImpl& self) {
        const auto& sg = self.grad_as<T>();
        if (wants_grad(x)) {
          // Hoisted __restrict__ row pointers for the same reason as the
          // heads_dot backward: the f-length loops are pure SIMD once the
          // compiler knows the grad buffer cannot alias sg/alpha data.
          T* __restrict__ gxp = detail::grad_of<T>(*x.impl()).data();
          const T* __restrict__ sgp = sg.data();
          const T* __restrict__ alp = alpha.data_as<T>().data();
          for (std::int64_t r = 0; r < e; ++r) {
            T* grow = gxp + r * hf;
            const T* srow = sgp + r * hf;
            const T* arow = alp + r * heads;
            for (std::int64_t h = 0; h < heads; ++h) {
              const T s = arow[h];
              T* __restrict__ g = grow + h * f;
              const T* __restrict__ sv = srow + h * f;
              for (std::int64_t c = 0; c < f; ++c) g[c] += sv[c] * s;
            }
          }
        }
        if (wants_grad(alpha)) {
          auto& gal = detail::grad_of<T>(*alpha.impl());
          const auto& xd = x.data_as<T>();
          for (std::int64_t r = 0; r < e; ++r)
            for (std::int64_t h = 0; h < heads; ++h) {
              // Lane-split f64 reduction, same rationale as heads_dot.
              constexpr int kLanes = 8;
              double lanes[kLanes] = {};
              const T* srow = sg.data() + r * hf + h * f;
              const T* xrow = xd.data() + r * hf + h * f;
              std::int64_t c = 0;
              for (; c + kLanes <= f; c += kLanes)
                for (int l = 0; l < kLanes; ++l)
                  lanes[l] += static_cast<double>(srow[c + l]) *
                              static_cast<double>(xrow[c + l]);
              double acc = 0.0;
              for (int l = 0; l < kLanes; ++l) acc += lanes[l];
              for (; c < f; ++c)
                acc += static_cast<double>(srow[c]) *
                       static_cast<double>(xrow[c]);
              gal[r * heads + h] += static_cast<T>(acc);
            }
        }
      });
}

}  // namespace

// ---- Public dispatchers -----------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  check_same_dtype(a, b, "add");
  return AG_DISPATCH(a.dtype(), add_impl, a, b);
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  check_same_dtype(a, b, "sub");
  return AG_DISPATCH(a.dtype(), sub_impl, a, b);
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  check_same_dtype(a, b, "mul");
  return AG_DISPATCH(a.dtype(), mul_impl, a, b);
}

Tensor add_scalar(const Tensor& a, double s) {
  return AG_DISPATCH(a.dtype(), add_scalar_impl, a, s);
}

Tensor mul_scalar(const Tensor& a, double s) {
  return AG_DISPATCH(a.dtype(), mul_scalar_impl, a, s);
}

Tensor add_rowvec(const Tensor& a, const Tensor& bias) {
  check_rank2(a, "add_rowvec");
  check_same_dtype(a, bias, "add_rowvec");
  if (bias.numel() != a.dim(1))
    fail("add_rowvec: bias length " + std::to_string(bias.numel()) +
         " vs columns " + std::to_string(a.dim(1)));
  return AG_DISPATCH(a.dtype(), add_rowvec_impl, a, bias);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  check_same_dtype(a, b, "matmul");
  if (a.dim(1) != b.dim(0))
    fail("matmul: inner dimensions differ, " + shape_str(a.shape()) + " x " +
         shape_str(b.shape()));
  return AG_DISPATCH(a.dtype(), matmul_impl, a, b);
}

Tensor addmm(const Tensor& a, const Tensor& w, const Tensor& bias) {
  check_linear_shapes(a, w, bias, "addmm");
  return AG_DISPATCH(a.dtype(), addmm_impl, a, w, bias);
}

Tensor linear_relu(const Tensor& a, const Tensor& w, const Tensor& bias) {
  check_linear_shapes(a, w, bias, "linear_relu");
  return AG_DISPATCH(a.dtype(), linear_relu_impl, a, w, bias);
}

Tensor linear_tanh(const Tensor& a, const Tensor& w, const Tensor& bias) {
  check_linear_shapes(a, w, bias, "linear_tanh");
  return AG_DISPATCH(a.dtype(), linear_tanh_impl, a, w, bias);
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  return AG_DISPATCH(a.dtype(), transpose_impl, a);
}

Tensor reshape(const Tensor& a, Shape new_shape) {
  if (ag::numel(new_shape) != a.numel())
    fail("reshape: numel mismatch " + shape_str(a.shape()) + " -> " +
         shape_str(new_shape));
  return AG_DISPATCH(a.dtype(), reshape_impl, a, std::move(new_shape));
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_cols: no inputs");
  const std::int64_t n = parts[0].dim(0);
  for (const auto& p : parts) {
    check_rank2(p, "concat_cols");
    check(p.dim(0) == n, "concat_cols: row count mismatch");
    check_same_dtype(parts[0], p, "concat_cols");
  }
  return AG_DISPATCH(parts[0].dtype(), concat_cols_impl, parts);
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_rows: no inputs");
  const std::int64_t m = parts[0].dim(1);
  for (const auto& p : parts) {
    check_rank2(p, "concat_rows");
    check(p.dim(1) == m, "concat_rows: column count mismatch");
    check_same_dtype(parts[0], p, "concat_rows");
  }
  return AG_DISPATCH(parts[0].dtype(), concat_rows_impl, parts);
}

Tensor slice_rows(const Tensor& a, std::int64_t start, std::int64_t len) {
  check_rank2(a, "slice_rows");
  check(start >= 0 && len >= 0 && start + len <= a.dim(0),
        "slice_rows: range out of bounds");
  return AG_DISPATCH(a.dtype(), slice_rows_impl, a, start, len);
}

Tensor gather_rows(const Tensor& a, const std::vector<std::int64_t>& index) {
  check_rank2(a, "gather_rows");
  const std::int64_t n = a.dim(0);
  for (auto i : index)
    check(i >= 0 && i < n, "gather_rows: index out of bounds");
  return AG_DISPATCH(a.dtype(), gather_rows_impl, a, index);
}

Tensor scale_rows(const Tensor& a, const std::vector<double>& scale) {
  check_rank2(a, "scale_rows");
  check(static_cast<std::int64_t>(scale.size()) == a.dim(0),
        "scale_rows: scale length mismatch");
  return AG_DISPATCH(a.dtype(), scale_rows_impl, a, scale);
}

Tensor relu(const Tensor& a) { return AG_DISPATCH(a.dtype(), relu_impl, a); }

Tensor leaky_relu(const Tensor& a, double negative_slope) {
  return AG_DISPATCH(a.dtype(), leaky_relu_impl, a, negative_slope);
}

Tensor tanh_act(const Tensor& a) {
  return AG_DISPATCH(a.dtype(), tanh_act_impl, a);
}

Tensor sigmoid(const Tensor& a) {
  return AG_DISPATCH(a.dtype(), sigmoid_impl, a);
}

Tensor sum(const Tensor& a) { return AG_DISPATCH(a.dtype(), sum_impl, a); }

Tensor mean(const Tensor& a) {
  check(a.numel() > 0, "mean of empty tensor");
  return AG_DISPATCH(a.dtype(), mean_impl, a);
}

Tensor softmax_rows(const Tensor& a) {
  check_rank2(a, "softmax_rows");
  check(a.dim(1) > 0, "softmax_rows: zero columns");
  return AG_DISPATCH(a.dtype(), softmax_rows_impl, a);
}

Tensor log_softmax_rows(const Tensor& a) {
  check_rank2(a, "log_softmax_rows");
  check(a.dim(1) > 0, "log_softmax_rows: zero columns");
  return AG_DISPATCH(a.dtype(), log_softmax_rows_impl, a);
}

Tensor nll_loss(const Tensor& logp, const std::vector<std::int64_t>& targets) {
  check_rank2(logp, "nll_loss");
  check(static_cast<std::int64_t>(targets.size()) == logp.dim(0),
        "nll_loss: target count mismatch");
  return AG_DISPATCH(logp.dtype(), nll_loss_impl, logp, targets);
}

Tensor cross_entropy(const Tensor& logits,
                     const std::vector<std::int64_t>& targets) {
  return nll_loss(log_softmax_rows(logits), targets);
}

Tensor dropout(const Tensor& a, double p, bool training, util::Rng& rng) {
  check(p >= 0.0 && p < 1.0, "dropout: p must be in [0, 1)");
  if (!training || p == 0.0) {
    // Identity pass-through that still participates in the tape.
    return mul_scalar(a, 1.0);
  }
  return AG_DISPATCH(a.dtype(), dropout_impl, a, p, rng);
}

Tensor heads_dot(const Tensor& x, const Tensor& a, std::int64_t heads) {
  check_rank2(x, "heads_dot");
  check_same_dtype(x, a, "heads_dot");
  check(heads > 0 && x.dim(1) % heads == 0,
        "heads_dot: columns not divisible by heads");
  check(a.numel() == x.dim(1), "heads_dot: parameter length mismatch");
  return AG_DISPATCH(x.dtype(), heads_dot_impl, x, a, heads);
}

Tensor heads_scale(const Tensor& x, const Tensor& alpha, std::int64_t heads) {
  check_rank2(x, "heads_scale");
  check_rank2(alpha, "heads_scale");
  check_same_dtype(x, alpha, "heads_scale");
  check(heads > 0 && x.dim(1) % heads == 0,
        "heads_scale: columns not divisible by heads");
  check(alpha.dim(0) == x.dim(0) && alpha.dim(1) == heads,
        "heads_scale: alpha shape mismatch");
  return AG_DISPATCH(x.dtype(), heads_scale_impl, x, alpha, heads);
}

// ---- Dtype conversion -------------------------------------------------------

Tensor cast(const Tensor& a, Dtype dtype) {
  check(a.defined(), "cast: undefined tensor");
  if (a.dtype() == dtype) return a;  // no-op: share the same node
  if (dtype == Dtype::f32) {
    const auto& av = a.data_as<double>();
    std::vector<float> out = detail::new_buffer_t<float>(av.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = static_cast<float>(av[i]);
    return Tensor::make_op_result(
        a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
          if (!wants_grad(a)) return;
          const auto& sg = self.grad_as<float>();
          auto& ga = detail::grad_of<double>(*a.impl());
          for (std::size_t i = 0; i < sg.size(); ++i)
            ga[i] += static_cast<double>(sg[i]);
        });
  }
  const auto& av = a.data_as<float>();
  std::vector<double> out = detail::new_buffer(av.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<double>(av[i]);
  return Tensor::make_op_result(
      a.shape(), std::move(out), {a}, [a](detail::TensorImpl& self) {
        if (!wants_grad(a)) return;
        const auto& sg = self.grad_as<double>();
        auto& ga = detail::grad_of<float>(*a.impl());
        for (std::size_t i = 0; i < sg.size(); ++i)
          ga[i] += static_cast<float>(sg[i]);
      });
}

#undef AG_DISPATCH

}  // namespace amdgcnn::ag::ops
