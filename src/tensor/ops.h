// Dense differentiable operations on ag::Tensor.
//
// Every op returns a new tensor wired into the tape; backward passes compute
// exact gradients (verified against central differences in
// tests/test_tensor_grad.cpp).  Index/selection arguments (row indices,
// segment ids) are plain integer vectors — they are not differentiated.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace amdgcnn::ag::ops {

// ---- Elementwise arithmetic -------------------------------------------------

/// a + b, identical shapes.
Tensor add(const Tensor& a, const Tensor& b);
/// a - b, identical shapes.
Tensor sub(const Tensor& a, const Tensor& b);
/// Hadamard product, identical shapes.
Tensor mul(const Tensor& a, const Tensor& b);
/// a + s (scalar broadcast).
Tensor add_scalar(const Tensor& a, double s);
/// a * s (scalar broadcast).
Tensor mul_scalar(const Tensor& a, double s);
/// [n, m] + [m] row-vector broadcast (bias add).
Tensor add_rowvec(const Tensor& a, const Tensor& bias);

// ---- Linear algebra ---------------------------------------------------------

/// [n, k] x [k, m] -> [n, m].
Tensor matmul(const Tensor& a, const Tensor& b);
/// Fused linear layer: a[n, k] · w[k, m] + bias[m] (row broadcast).
/// One kernel and one tape node instead of matmul + add_rowvec.
Tensor addmm(const Tensor& a, const Tensor& w, const Tensor& bias);
/// relu(addmm(a, w, bias)) fused into a single tape node; the backward pass
/// masks the upstream gradient in-place before the shared matmul backward.
Tensor linear_relu(const Tensor& a, const Tensor& w, const Tensor& bias);
/// tanh(addmm(a, w, bias)) fused into a single tape node.
Tensor linear_tanh(const Tensor& a, const Tensor& w, const Tensor& bias);
/// [n, m] -> [m, n].
Tensor transpose(const Tensor& a);

// ---- Shape manipulation -----------------------------------------------------

/// View with a new shape of equal numel (data copied; gradient flows).
Tensor reshape(const Tensor& a, Shape new_shape);
/// Concatenate rank-2 tensors along columns (same row count).
Tensor concat_cols(const std::vector<Tensor>& parts);
/// Concatenate rank-2 tensors along rows (same column count).
Tensor concat_rows(const std::vector<Tensor>& parts);
/// Rows [start, start+len) of a rank-2 tensor.
Tensor slice_rows(const Tensor& a, std::int64_t start, std::int64_t len);
/// out[i, :] = a[index[i], :]; duplicate indices allowed (grads accumulate).
Tensor gather_rows(const Tensor& a, const std::vector<std::int64_t>& index);
/// out[i, :] = a[i, :] * scale[i] with a constant (non-learned) scale vector.
Tensor scale_rows(const Tensor& a, const std::vector<double>& scale);

// ---- Activations ------------------------------------------------------------

Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, double negative_slope = 0.2);
Tensor tanh_act(const Tensor& a);
Tensor sigmoid(const Tensor& a);

// ---- Reductions / losses ------------------------------------------------------

/// Sum of all elements -> scalar [1].
Tensor sum(const Tensor& a);
/// Mean of all elements -> scalar [1].
Tensor mean(const Tensor& a);
/// Row-wise softmax of a rank-2 tensor (numerically stabilised).
Tensor softmax_rows(const Tensor& a);
/// Row-wise log-softmax of a rank-2 tensor.
Tensor log_softmax_rows(const Tensor& a);
/// Mean negative log-likelihood of log-probabilities at the target classes.
/// `logp` is [n, C]; `targets` holds n class ids in [0, C).
Tensor nll_loss(const Tensor& logp, const std::vector<std::int64_t>& targets);
/// Softmax cross-entropy from raw logits (mean over rows).
Tensor cross_entropy(const Tensor& logits,
                     const std::vector<std::int64_t>& targets);

// ---- Regularisation -----------------------------------------------------------

/// Inverted dropout: in training mode zeroes entries w.p. p and scales the
/// rest by 1/(1-p); identity in eval mode.
Tensor dropout(const Tensor& a, double p, bool training, util::Rng& rng);

// ---- Multi-head attention helpers (used by GATConv) ---------------------------

/// Per-head dot product against a parameter vector.
/// x: [E, H*F], a: [1, H*F] -> out[e, h] = sum_f x[e, h*F+f] * a[0, h*F+f].
Tensor heads_dot(const Tensor& x, const Tensor& a, std::int64_t heads);
/// Per-head row scaling. x: [E, H*F], alpha: [E, H]
/// -> out[e, h*F+f] = x[e, h*F+f] * alpha[e, h].
Tensor heads_scale(const Tensor& x, const Tensor& alpha, std::int64_t heads);

// ---- Dtype conversion ---------------------------------------------------------

/// Differentiable precision change.  Returns `a` unchanged (same tape node)
/// when the dtype already matches; otherwise the forward narrows/widens the
/// values and the backward casts the gradient back.  Bridges f64 dataset
/// tensors into f32 models and vice versa.
Tensor cast(const Tensor& a, Dtype dtype);

}  // namespace amdgcnn::ag::ops
