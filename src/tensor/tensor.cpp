#include "tensor/tensor.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace amdgcnn::ag {

void check(bool cond, const std::string& message) {
  if (!cond) throw std::invalid_argument(message);
}

std::int64_t numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    check(d >= 0, "negative dimension in shape " + shape_str(shape));
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

namespace detail {
void TensorImpl::ensure_grad() {
  if (grad.size() != data.size()) grad.assign(data.size(), 0.0);
}
}  // namespace detail

// ---- Constructors ----------------------------------------------------------

Tensor Tensor::zeros(Shape shape) {
  auto impl = std::make_shared<detail::TensorImpl>();
  impl->data.assign(static_cast<std::size_t>(ag::numel(shape)), 0.0);
  impl->shape = std::move(shape);
  return Tensor(std::move(impl));
}

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0); }

Tensor Tensor::full(Shape shape, double value) {
  auto impl = std::make_shared<detail::TensorImpl>();
  impl->data.assign(static_cast<std::size_t>(ag::numel(shape)), value);
  impl->shape = std::move(shape);
  return Tensor(std::move(impl));
}

Tensor Tensor::from_data(Shape shape, std::vector<double> data) {
  check(static_cast<std::int64_t>(data.size()) == ag::numel(shape),
        "from_data: " + std::to_string(data.size()) +
            " values for shape " + shape_str(shape));
  auto impl = std::make_shared<detail::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  return Tensor(std::move(impl));
}

Tensor Tensor::randn(Shape shape, util::Rng& rng) {
  Tensor t = zeros(std::move(shape));
  for (auto& v : t.data()) v = rng.normal();
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, double lo, double hi,
                            util::Rng& rng) {
  Tensor t = zeros(std::move(shape));
  for (auto& v : t.data()) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::xavier(std::int64_t fan_in, std::int64_t fan_out,
                      util::Rng& rng) {
  check(fan_in > 0 && fan_out > 0, "xavier: fans must be positive");
  double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return rand_uniform({fan_in, fan_out}, -bound, bound, rng);
}

// ---- Introspection ---------------------------------------------------------

const Shape& Tensor::shape() const {
  check(defined(), "shape() on undefined tensor");
  return impl_->shape;
}

std::int64_t Tensor::dim(std::size_t i) const {
  check(defined() && i < impl_->shape.size(), "dim(): index out of range");
  return impl_->shape[i];
}

std::int64_t Tensor::rank() const {
  check(defined(), "rank() on undefined tensor");
  return static_cast<std::int64_t>(impl_->shape.size());
}

std::int64_t Tensor::numel() const {
  check(defined(), "numel() on undefined tensor");
  return static_cast<std::int64_t>(impl_->data.size());
}

const std::vector<double>& Tensor::data() const {
  check(defined(), "data() on undefined tensor");
  return impl_->data;
}

std::vector<double>& Tensor::data() {
  check(defined(), "data() on undefined tensor");
  return impl_->data;
}

double Tensor::at(std::int64_t r, std::int64_t c) const {
  check(rank() == 2, "at(r, c) requires a rank-2 tensor");
  check(r >= 0 && r < dim(0) && c >= 0 && c < dim(1),
        "at(): index out of bounds");
  return impl_->data[static_cast<std::size_t>(r * dim(1) + c)];
}

double& Tensor::at(std::int64_t r, std::int64_t c) {
  check(rank() == 2, "at(r, c) requires a rank-2 tensor");
  check(r >= 0 && r < dim(0) && c >= 0 && c < dim(1),
        "at(): index out of bounds");
  return impl_->data[static_cast<std::size_t>(r * dim(1) + c)];
}

double Tensor::item(std::int64_t i) const {
  check(defined() && i >= 0 && i < numel(), "item(): index out of bounds");
  return impl_->data[static_cast<std::size_t>(i)];
}

// ---- Autograd --------------------------------------------------------------

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

Tensor& Tensor::requires_grad(bool value) {
  check(defined(), "requires_grad() on undefined tensor");
  impl_->requires_grad = value;
  if (value) impl_->ensure_grad();
  return *this;
}

const std::vector<double>& Tensor::grad() const {
  check(requires_grad(), "grad() on tensor without requires_grad");
  impl_->ensure_grad();
  return impl_->grad;
}

std::vector<double>& Tensor::grad() {
  check(requires_grad(), "grad() on tensor without requires_grad");
  impl_->ensure_grad();
  return impl_->grad;
}

void Tensor::zero_grad() {
  check(defined(), "zero_grad() on undefined tensor");
  impl_->grad.assign(impl_->data.size(), 0.0);
}

void Tensor::backward() {
  check(defined(), "backward() on undefined tensor");
  check(numel() == 1, "backward() requires a scalar loss, got shape " +
                          shape_str(impl_->shape));
  check(requires_grad(), "backward() on tensor that does not require grad");

  // Topological order of the subgraph reachable from the loss (iterative DFS
  // to survive deep tapes).
  std::vector<detail::TensorImpl*> order;
  std::unordered_set<detail::TensorImpl*> visited;
  struct Frame {
    detail::TensorImpl* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      detail::TensorImpl* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  impl_->ensure_grad();
  impl_->grad[0] += 1.0;

  // `order` is post-order (parents before children), so iterate in reverse to
  // propagate from the loss toward the leaves.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::TensorImpl* node = *it;
    if (node->backward_fn) {
      node->ensure_grad();
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::detach() const {
  check(defined(), "detach() on undefined tensor");
  return from_data(impl_->shape, impl_->data);
}

Tensor Tensor::make_op_result(Shape shape, std::vector<double> data,
                              std::vector<Tensor> parents,
                              std::function<void(detail::TensorImpl&)> bwd) {
  Tensor out = from_data(std::move(shape), std::move(data));
  bool needs_grad = false;
  for (const auto& p : parents) needs_grad = needs_grad || p.requires_grad();
  if (needs_grad) {
    out.impl_->requires_grad = true;
    out.impl_->ensure_grad();
    out.impl_->parents.reserve(parents.size());
    for (auto& p : parents) out.impl_->parents.push_back(p.impl());
    out.impl_->backward_fn = std::move(bwd);
  }
  return out;
}

}  // namespace amdgcnn::ag
