#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace amdgcnn::ag {

void fail(const char* message) { throw std::invalid_argument(message); }
void fail(const std::string& message) { throw std::invalid_argument(message); }

void check(bool cond, const std::string& message) {
  if (!cond) fail(message);
}

std::int64_t numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    check(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

// ---- Buffer pool -----------------------------------------------------------

namespace detail {

BufferPool& buffer_pool() {
  // Leaked on purpose: tensors destroyed during thread/static teardown can
  // still release into a live pool.
  thread_local BufferPool* pool = new BufferPool();
  return *pool;
}

BasicBufferPool<std::int32_t>& i32_buffer_pool() {
  thread_local BasicBufferPool<std::int32_t>* pool =
      new BasicBufferPool<std::int32_t>();
  return *pool;
}

BasicBufferPool<float>& f32_buffer_pool() {
  thread_local BasicBufferPool<float>* pool = new BasicBufferPool<float>();
  return *pool;
}

thread_local GradSink* tls_grad_sink = nullptr;

}  // namespace detail

PoolStats pool_stats() { return detail::buffer_pool().stats(); }
void reset_pool_stats() {
  detail::buffer_pool().reset_stats();
  detail::f32_buffer_pool().reset_stats();
}
void clear_buffer_pool() {
  detail::buffer_pool().clear();
  detail::i32_buffer_pool().clear();
  detail::f32_buffer_pool().clear();
}

GradSinkScope::GradSinkScope(
    const std::unordered_map<const detail::TensorImpl*, std::size_t>& slot_of,
    std::vector<std::vector<double>>& buffers)
    : prev_(detail::tls_grad_sink) {
  sink_.slot_of = &slot_of;
  sink_.buffers = &buffers;
  detail::tls_grad_sink = &sink_;
}

GradSinkScope::GradSinkScope(
    const std::unordered_map<const detail::TensorImpl*, std::size_t>& slot_of,
    std::vector<std::vector<float>>& buffers)
    : prev_(detail::tls_grad_sink) {
  sink_.slot_of = &slot_of;
  sink_.buffers_f32 = &buffers;
  detail::tls_grad_sink = &sink_;
}

GradSinkScope::~GradSinkScope() { detail::tls_grad_sink = prev_; }

// ---- Constructors ----------------------------------------------------------

namespace {
// f16 is a storage-only tag for checkpoints and frozen inference weights
// (DESIGN.md §2.7); no Tensor ever carries it, which keeps every
// f32-or-else-f64 dispatch in the ops layer exhaustive.  All dtype-taking
// constructors funnel through zeros() or full(), so two checks cover them.
inline void check_tensor_dtype(Dtype d) {
  check(d != Dtype::f16,
        "Tensor: f16 is a storage-only dtype (checkpoints / frozen "
        "inference weights); tensors compute at f32 or f64");
}
}  // namespace

Tensor Tensor::zeros(Shape shape, Dtype dtype) {
  check_tensor_dtype(dtype);
  auto impl = std::make_shared<detail::TensorImpl>();
  const auto n = static_cast<std::size_t>(ag::numel(shape));
  impl->dtype = dtype;
  if (dtype == Dtype::f32)
    impl->data_f = detail::new_zeroed_t<float>(n);
  else
    impl->data = detail::new_zeroed(n);
  impl->shape = std::move(shape);
  return Tensor(std::move(impl));
}

Tensor Tensor::ones(Shape shape, Dtype dtype) {
  return full(std::move(shape), 1.0, dtype);
}

Tensor Tensor::full(Shape shape, double value, Dtype dtype) {
  check_tensor_dtype(dtype);
  auto impl = std::make_shared<detail::TensorImpl>();
  const auto n = static_cast<std::size_t>(ag::numel(shape));
  impl->dtype = dtype;
  if (dtype == Dtype::f32) {
    impl->data_f = detail::new_buffer_t<float>(n);
    std::fill(impl->data_f.begin(), impl->data_f.end(),
              static_cast<float>(value));
  } else {
    impl->data = detail::new_buffer(n);
    std::fill(impl->data.begin(), impl->data.end(), value);
  }
  impl->shape = std::move(shape);
  return Tensor(std::move(impl));
}

Tensor Tensor::from_data(Shape shape, std::vector<double> data) {
  if (static_cast<std::int64_t>(data.size()) != ag::numel(shape))
    fail("from_data: " + std::to_string(data.size()) + " values for shape " +
         shape_str(shape));
  auto impl = std::make_shared<detail::TensorImpl>();
  impl->shape = std::move(shape);
  impl->dtype = Dtype::f64;
  impl->data = std::move(data);
  return Tensor(std::move(impl));
}

Tensor Tensor::from_data(Shape shape, std::vector<float> data) {
  if (static_cast<std::int64_t>(data.size()) != ag::numel(shape))
    fail("from_data: " + std::to_string(data.size()) + " values for shape " +
         shape_str(shape));
  auto impl = std::make_shared<detail::TensorImpl>();
  impl->shape = std::move(shape);
  impl->dtype = Dtype::f32;
  impl->data_f = std::move(data);
  return Tensor(std::move(impl));
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, Dtype dtype) {
  Tensor t = zeros(std::move(shape), dtype);
  // Draw in f64 for both dtypes so an f32 model consumes the identical RNG
  // stream as its f64 twin (same seed -> same underlying weights).
  if (dtype == Dtype::f32)
    for (auto& v : t.data_f32()) v = static_cast<float>(rng.normal());
  else
    for (auto& v : t.data()) v = rng.normal();
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, double lo, double hi, util::Rng& rng,
                            Dtype dtype) {
  Tensor t = zeros(std::move(shape), dtype);
  if (dtype == Dtype::f32)
    for (auto& v : t.data_f32()) v = static_cast<float>(rng.uniform(lo, hi));
  else
    for (auto& v : t.data()) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::xavier(std::int64_t fan_in, std::int64_t fan_out,
                      util::Rng& rng, Dtype dtype) {
  check(fan_in > 0 && fan_out > 0, "xavier: fans must be positive");
  double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return rand_uniform({fan_in, fan_out}, -bound, bound, rng, dtype);
}

std::vector<double> Tensor::to_vec64() const {
  check(defined(), "to_vec64() on undefined tensor");
  if (impl_->dtype == Dtype::f32)
    return std::vector<double>(impl_->data_f.begin(), impl_->data_f.end());
  return impl_->data;
}

// ---- Autograd --------------------------------------------------------------

Tensor& Tensor::requires_grad(bool value) {
  check(defined(), "requires_grad() on undefined tensor");
  impl_->requires_grad = value;
  if (value) impl_->ensure_grad();
  return *this;
}

void Tensor::zero_grad() {
  check(defined(), "zero_grad() on undefined tensor");
  impl_->ensure_grad();
  if (impl_->dtype == Dtype::f32)
    std::fill(impl_->grad_f.begin(), impl_->grad_f.end(), 0.0f);
  else
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0);
}

void Tensor::backward() {
  check(defined(), "backward() on undefined tensor");
  check(numel() == 1, "backward() requires a scalar loss");
  check(requires_grad(), "backward() on tensor that does not require grad");

  // Topological order of the subgraph reachable from the loss (iterative DFS
  // to survive deep tapes).  Scratch containers are thread-local so the
  // per-sample backward pass allocates nothing in steady state.
  struct Frame {
    detail::TensorImpl* node;
    std::size_t next_parent;
  };
  thread_local std::vector<detail::TensorImpl*> order;
  thread_local std::unordered_set<detail::TensorImpl*> visited;
  thread_local std::vector<Frame> stack;
  order.clear();
  visited.clear();
  stack.clear();

  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      detail::TensorImpl* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  impl_->ensure_grad();
  if (impl_->dtype == Dtype::f32)
    impl_->grad_f[0] += 1.0f;
  else
    impl_->grad[0] += 1.0;

  // `order` is post-order (parents before children), so iterate in reverse to
  // propagate from the loss toward the leaves.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::TensorImpl* node = *it;
    if (node->backward_fn) {
      node->ensure_grad();
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::detach() const {
  check(defined(), "detach() on undefined tensor");
  if (impl_->dtype == Dtype::f32) {
    std::vector<float> copy = detail::new_buffer_t<float>(impl_->data_f.size());
    std::copy(impl_->data_f.begin(), impl_->data_f.end(), copy.begin());
    return from_data(impl_->shape, std::move(copy));
  }
  std::vector<double> copy = detail::new_buffer(impl_->data.size());
  std::copy(impl_->data.begin(), impl_->data.end(), copy.begin());
  return from_data(impl_->shape, std::move(copy));
}

namespace {

Tensor wire_op_result(Tensor out, std::vector<Tensor>& parents,
                      std::function<void(detail::TensorImpl&)>& bwd) {
  bool needs_grad = false;
  for (const auto& p : parents) needs_grad = needs_grad || p.requires_grad();
  if (needs_grad) {
    detail::TensorImpl& impl = *out.impl();
    impl.requires_grad = true;
    impl.ensure_grad();
    impl.parents.reserve(parents.size());
    for (auto& p : parents) impl.parents.push_back(p.impl());
    impl.backward_fn = std::move(bwd);
  }
  return out;
}

}  // namespace

Tensor Tensor::make_op_result(Shape shape, std::vector<double> data,
                              std::vector<Tensor> parents,
                              std::function<void(detail::TensorImpl&)> bwd) {
  return wire_op_result(from_data(std::move(shape), std::move(data)), parents,
                        bwd);
}

Tensor Tensor::make_op_result(Shape shape, std::vector<float> data,
                              std::vector<Tensor> parents,
                              std::function<void(detail::TensorImpl&)> bwd) {
  return wire_op_result(from_data(std::move(shape), std::move(data)), parents,
                        bwd);
}

void release_graph(const Tensor& root) {
  if (!root.defined()) return;
  // Hold shared_ptr refs while severing links so no destructor chain can
  // recurse; duplicates are harmless (second visit sees cleared parents).
  std::vector<std::shared_ptr<detail::TensorImpl>> nodes;
  nodes.push_back(root.impl());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    detail::TensorImpl& n = *nodes[i];
    for (auto& p : n.parents)
      if (!p->parents.empty() || p->backward_fn) nodes.push_back(p);
    n.parents.clear();
    n.backward_fn = nullptr;
  }
}

}  // namespace amdgcnn::ag
