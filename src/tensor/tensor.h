// Reverse-mode automatic differentiation tensor.
//
// This is the from-scratch replacement for the PyTorch tensors the paper's
// reference implementation relies on (see DESIGN.md §2).  It is deliberately
// small: dense row-major storage in a selectable scalar width (f32 or f64,
// see Dtype), shapes up to rank 3 (the models only need matrices plus
// [channels, length] sequences), and a dynamic tape.
//
// Usage pattern:
//   Tensor w = Tensor::randn({4, 8}, rng).requires_grad(true);
//   Tensor y = ops::matmul(x, w);
//   Tensor loss = ops::mean(y);
//   loss.backward();
//   w.grad();   // d loss / d w
//
// A `Tensor` is a cheap shared handle; copying shares storage and tape node.
// Gradients accumulate (+=) into `grad()` until `zero_grad()` — exactly the
// PyTorch contract, which the Trainer's gradient-accumulation minibatching
// depends on.
//
// Storage management (DESIGN.md §2.1): every data/grad buffer is recycled
// through a thread-local BufferPool when its tape node dies, so steady-state
// training performs almost no heap allocation.  Training code can optionally
// redirect leaf-gradient accumulation into private per-sample buffers via
// GradSinkScope, which is what makes the Trainer's OpenMP data-parallel
// batch accumulation deterministic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace amdgcnn::ag {

using Shape = std::vector<std::int64_t>;

/// Storage precision of a tensor (DESIGN.md §2.3).  Data and gradients are
/// stored at this width; reductions, softmax normalisers and optimizer
/// moments always accumulate in f64 regardless, so switching to f32 halves
/// memory bandwidth on the matmul-bound hot path without giving up the
/// bit-determinism contract (any fixed dtype is deterministic for any
/// worker count — the contract is per-dtype, not across dtypes).
///
/// f16 is a STORAGE-ONLY tag (DESIGN.md §2.7): checkpoints and frozen
/// inference weights may hold bit-cast half-precision values (tensor/half.h
/// decodes them through a 65536-entry f32 table), but no Tensor ever
/// carries f16 storage — Tensor construction rejects the tag, so the many
/// two-way f32/f64 dispatch sites in the ops layer stay exhaustive.
enum class Dtype : std::uint8_t { f32 = 0, f64 = 1, f16 = 2 };

inline constexpr std::size_t dtype_size(Dtype d) {
  return d == Dtype::f16 ? 2
                         : (d == Dtype::f32 ? sizeof(float) : sizeof(double));
}

inline constexpr const char* dtype_name(Dtype d) {
  return d == Dtype::f16 ? "f16" : (d == Dtype::f32 ? "f32" : "f64");
}

/// Dtype tag of a C++ scalar type (only float and double participate).
template <typename T>
inline constexpr Dtype dtype_of_v =
    std::is_same_v<T, float> ? Dtype::f32 : Dtype::f64;

/// Number of elements of a shape (product of dims; empty shape -> 1 scalar).
std::int64_t numel(const Shape& shape);

/// Human-readable "[2, 3]" rendering for error messages.
std::string shape_str(const Shape& shape);

/// Throws std::invalid_argument. Out of line so the hot-path checks below
/// compile to a test + cold call.
[[noreturn]] void fail(const char* message);
[[noreturn]] void fail(const std::string& message);

/// Cheap check: the message is a literal, nothing is allocated unless the
/// check fires.  Call sites that need a formatted message should test the
/// condition themselves and call fail(...) on the error path, so the string
/// is only built when the check actually fails.
inline void check(bool cond, const char* message) {
  if (!cond) [[unlikely]] fail(message);
}
void check(bool cond, const std::string& message);

class Tensor;

// ---- Buffer pool ------------------------------------------------------------

/// Counters of the calling thread's buffer pool (see pool_stats()).
struct PoolStats {
  std::size_t pooled_bytes = 0;       ///< bytes currently parked in free lists
  std::size_t peak_pooled_bytes = 0;  ///< high-water mark of pooled_bytes
  std::size_t in_use_bytes = 0;       ///< bytes handed out and not yet back
  std::size_t peak_in_use_bytes = 0;  ///< high-water mark of in_use_bytes
  std::uint64_t hits = 0;             ///< acquires served from the pool
  std::uint64_t misses = 0;           ///< acquires that fell back to malloc
};

namespace detail {

/// Smallest bucket the pool bothers tracking, in elements.
inline constexpr std::size_t kMinPoolClass = 16;

/// Round a requested element count up to its power-of-two size class.
/// Near-duplicate subgraph shapes (variable node counts) then share one
/// bucket instead of each parking its own buffer, which cuts the peak pooled
/// footprint sharply (ROADMAP: ~96 MB of near-duplicate buckets).
inline std::size_t pool_size_class(std::size_t n) {
  std::size_t c = kMinPoolClass;
  while (c < n) c <<= 1;
  return c;
}

/// Thread-local recycler for tensor and scratch storage.  Buffers are
/// bucketed by power-of-two size class (capacity); a request is served by
/// any parked buffer of its class, so shapes that differ by a few elements
/// recycle the same storage.  Model shapes repeat every sample, so the hit
/// rate is ~100% after the first minibatch.  No locks: each thread owns its
/// pool, and a buffer released on a different thread than it was acquired on
/// simply migrates pools.
template <typename T>
class BasicBufferPool {
 public:
  /// A buffer with exactly n elements; contents are unspecified.
  std::vector<T> acquire(std::size_t n) {
    if (n == 0) return {};
    const std::size_t cls = pool_size_class(n);
    auto it = buckets_.find(cls);
    if (it != buckets_.end() && !it->second.empty()) {
      std::vector<T> buf = std::move(it->second.back());
      it->second.pop_back();
      stats_.pooled_bytes -= buf.capacity() * sizeof(T);
      buf.resize(n);  // capacity >= cls >= n: never reallocates
      ++stats_.hits;
      note_in_use(buf.capacity());
      return buf;
    }
    ++stats_.misses;
    std::vector<T> buf;
    buf.reserve(cls);  // allocate the full class so the buffer is reusable
    buf.resize(n);
    note_in_use(buf.capacity());
    return buf;
  }

  /// A buffer with exactly n elements, all zero.
  std::vector<T> acquire_zeroed(std::size_t n) {
    std::vector<T> buf = acquire(n);
    std::fill(buf.begin(), buf.end(), T{});
    return buf;
  }

  /// Park `buf` for reuse (frees it instead once the pool caps are hit).
  /// The bucket is the largest size class the buffer's capacity covers, so
  /// externally allocated buffers (odd capacities) are parked conservatively.
  void release(std::vector<T>&& buf) noexcept {
    if (buf.size() == 0) return;
    const std::size_t cap = buf.capacity();
    // In-use accounting is by capacity on both ends: the caller may have
    // resized the buffer (BFS queues shrink) but never reallocated it, so
    // capacity is the one quantity that round-trips acquire -> release.
    stats_.in_use_bytes -= std::min(stats_.in_use_bytes, cap * sizeof(T));
    if (cap < kMinPoolClass) return;  // frees buf
    std::size_t cls = kMinPoolClass;
    while (cls * 2 <= cap) cls <<= 1;
    const std::size_t bytes = cap * sizeof(T);
    if (stats_.pooled_bytes + bytes > kMaxPooledBytes) return;  // frees buf
    auto& bucket = buckets_[cls];
    if (bucket.size() >= kMaxBucketBuffers) return;
    bucket.push_back(std::move(buf));
    stats_.pooled_bytes += bytes;
    stats_.peak_pooled_bytes =
        std::max(stats_.peak_pooled_bytes, stats_.pooled_bytes);
  }

  const PoolStats& stats() const { return stats_; }
  /// Zero the hit/miss counters and rebase the peaks; the byte accounting of
  /// parked and outstanding buffers must survive a reset, or the caps in
  /// release() would compare against a corrupted (underflowed) total.
  void reset_stats() {
    stats_.hits = 0;
    stats_.misses = 0;
    stats_.peak_pooled_bytes = stats_.pooled_bytes;
    stats_.peak_in_use_bytes = stats_.in_use_bytes;
  }
  /// Drop all parked buffers (used by tests and the sanitizer build).
  void clear() {
    buckets_.clear();
    stats_.pooled_bytes = 0;
  }

 private:
  void note_in_use(std::size_t n) {
    stats_.in_use_bytes += n * sizeof(T);
    stats_.peak_in_use_bytes =
        std::max(stats_.peak_in_use_bytes, stats_.in_use_bytes);
  }

  // Caps keep a pathological workload from hoarding memory; training-sized
  // graphs stay far below them.
  static constexpr std::size_t kMaxBucketBuffers = 256;
  static constexpr std::size_t kMaxPooledBytes = std::size_t{1} << 28;

  std::unordered_map<std::size_t, std::vector<std::vector<T>>> buckets_;
  PoolStats stats_;
};

using BufferPool = BasicBufferPool<double>;

/// The calling thread's pool.  Never destroyed (leaked on purpose) so tensor
/// destructors can run safely during static/thread teardown.
BufferPool& buffer_pool();

/// The calling thread's int32 scratch pool — BFS distance maps and frontier
/// queues of the parallel dataset build borrow from it (graph/traversal.cpp),
/// so per-link extraction is allocation-free in steady state.
BasicBufferPool<std::int32_t>& i32_buffer_pool();

/// The calling thread's float pool — storage of f32 tensors.  Kept separate
/// from the double pool so the two dtypes never alias each other's buckets.
BasicBufferPool<float>& f32_buffer_pool();

/// The pool that owns buffers of scalar type T on the calling thread.
template <typename T>
inline BasicBufferPool<T>& pool_of() {
  static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                "pool_of: only f32/f64 tensor storage is pooled here");
  if constexpr (std::is_same_v<T, float>)
    return f32_buffer_pool();
  else
    return buffer_pool();
}

inline std::vector<double> new_buffer(std::size_t n) {
  return buffer_pool().acquire(n);
}
inline std::vector<double> new_zeroed(std::size_t n) {
  return buffer_pool().acquire_zeroed(n);
}
template <typename T>
inline std::vector<T> new_buffer_t(std::size_t n) {
  return pool_of<T>().acquire(n);
}
template <typename T>
inline std::vector<T> new_zeroed_t(std::size_t n) {
  return pool_of<T>().acquire_zeroed(n);
}

/// One tape node: storage plus (optionally) the recipe for back-propagation.
///
/// Storage is dtype-tagged: exactly one of (data, grad) / (data_f, grad_f)
/// is active, selected by `dtype`.  The inactive pair stays empty, so the
/// per-node overhead of carrying both is two empty vectors.  Kernels and
/// backward lambdas access storage through data_as<T>() / grad_as<T>() with
/// T matching the tag — the ops layer dispatches once per op.
struct TensorImpl {
  Shape shape;
  Dtype dtype = Dtype::f64;
  std::vector<double> data;    // active when dtype == f64
  std::vector<double> grad;    // allocated lazily, same size as data
  std::vector<float> data_f;   // active when dtype == f32
  std::vector<float> grad_f;   // allocated lazily, same size as data_f
  bool requires_grad = false;

  // Autograd graph: parents this value was computed from, and a backward
  // function that reads this node's grad and accumulates into parents' grads.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;

  TensorImpl() = default;
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;
  ~TensorImpl() {
    buffer_pool().release(std::move(data));
    buffer_pool().release(std::move(grad));
    f32_buffer_pool().release(std::move(data_f));
    f32_buffer_pool().release(std::move(grad_f));
  }

  template <typename T>
  std::vector<T>& data_as() {
    if constexpr (std::is_same_v<T, float>)
      return data_f;
    else
      return data;
  }
  template <typename T>
  const std::vector<T>& data_as() const {
    if constexpr (std::is_same_v<T, float>)
      return data_f;
    else
      return data;
  }
  template <typename T>
  std::vector<T>& grad_as() {
    if constexpr (std::is_same_v<T, float>)
      return grad_f;
    else
      return grad;
  }

  /// Element count of the active storage.
  std::size_t size() const {
    return dtype == Dtype::f32 ? data_f.size() : data.size();
  }

  void ensure_grad() {
    if (dtype == Dtype::f32) {
      if (grad_f.size() != data_f.size()) {
        f32_buffer_pool().release(std::move(grad_f));
        grad_f = new_zeroed_t<float>(data_f.size());
      }
    } else {
      if (grad.size() != data.size()) {
        buffer_pool().release(std::move(grad));
        grad = new_zeroed(data.size());
      }
    }
  }
};

/// Active gradient redirection for this thread (see GradSinkScope); null
/// outside a scope.  `slot_of` maps leaf nodes (parameters) to an index into
/// the buffer list matching the parameters' dtype (exactly one of `buffers`
/// and `buffers_f32` is set); leaves not in the map, and all interior nodes,
/// accumulate into their own impl as usual.
struct GradSink {
  const std::unordered_map<const TensorImpl*, std::size_t>* slot_of = nullptr;
  std::vector<std::vector<double>>* buffers = nullptr;
  std::vector<std::vector<float>>* buffers_f32 = nullptr;
};

extern thread_local GradSink* tls_grad_sink;

/// The buffer a backward function must accumulate `impl`'s gradient into:
/// the thread's sink slot when one is active, the impl's own grad storage
/// otherwise.  All backward lambdas route leaf writes through this; T must
/// match the impl's dtype (the ops layer guarantees it by dispatching).
template <typename T>
inline std::vector<T>& grad_of(TensorImpl& impl) {
  if (tls_grad_sink != nullptr) [[unlikely]] {
    const auto& slots = *tls_grad_sink->slot_of;
    auto it = slots.find(&impl);
    if (it != slots.end()) {
      if constexpr (std::is_same_v<T, float>) {
        check(tls_grad_sink->buffers_f32 != nullptr,
              "grad sink holds no f32 buffers for an f32 parameter");
        return (*tls_grad_sink->buffers_f32)[it->second];
      } else {
        check(tls_grad_sink->buffers != nullptr,
              "grad sink holds no f64 buffers for an f64 parameter");
        return (*tls_grad_sink->buffers)[it->second];
      }
    }
  }
  return impl.grad_as<T>();
}

/// Legacy spelling for f64-only call sites.
inline std::vector<double>& grad_of(TensorImpl& impl) {
  return grad_of<double>(impl);
}

}  // namespace detail

/// Current thread's buffer-pool counters.
PoolStats pool_stats();
/// Reset the current thread's counters (bytes in free lists are kept).
void reset_pool_stats();
/// Free every parked buffer of the current thread's pool.
void clear_buffer_pool();

/// RAII redirection of leaf-gradient accumulation on the current thread.
/// While alive, backward passes write the gradients of the mapped leaves
/// into `buffers[slot]` instead of the shared parameter storage — each
/// worker of a data-parallel batch gets its own accumulation buffers, which
/// are then reduced in deterministic sample order (models::Trainer).
/// Scopes nest; each buffer must be pre-sized to the leaf's numel.
class GradSinkScope {
 public:
  GradSinkScope(
      const std::unordered_map<const detail::TensorImpl*, std::size_t>& slot_of,
      std::vector<std::vector<double>>& buffers);
  /// f32 variant for models whose parameters are stored in single precision.
  GradSinkScope(
      const std::unordered_map<const detail::TensorImpl*, std::size_t>& slot_of,
      std::vector<std::vector<float>>& buffers);
  ~GradSinkScope();
  GradSinkScope(const GradSinkScope&) = delete;
  GradSinkScope& operator=(const GradSinkScope&) = delete;

 private:
  detail::GradSink sink_;
  detail::GradSink* prev_;
};

class Tensor {
 public:
  /// Empty (null) tensor; most ops reject it.
  Tensor() = default;

  // ---- Constructors -------------------------------------------------------

  static Tensor zeros(Shape shape, Dtype dtype = Dtype::f64);
  static Tensor ones(Shape shape, Dtype dtype = Dtype::f64);
  static Tensor full(Shape shape, double value, Dtype dtype = Dtype::f64);
  /// From explicit row-major values; data.size() must equal numel(shape).
  /// The vector's scalar type selects the dtype (double -> f64, float -> f32).
  static Tensor from_data(Shape shape, std::vector<double> data);
  static Tensor from_data(Shape shape, std::vector<float> data);
  /// Brace-literal convenience (`from_data({2}, {1.0, 2.0})` stays f64); an
  /// initializer_list parameter outranks both vector conversions, keeping the
  /// call unambiguous now that a float overload exists.
  static Tensor from_data(Shape shape, std::initializer_list<double> data) {
    return from_data(std::move(shape),
                     std::vector<double>(data.begin(), data.end()));
  }
  /// I.i.d. N(0, 1) entries (drawn in f64, then stored at `dtype`).
  static Tensor randn(Shape shape, util::Rng& rng, Dtype dtype = Dtype::f64);
  /// I.i.d. U(lo, hi) entries.
  static Tensor rand_uniform(Shape shape, double lo, double hi, util::Rng& rng,
                             Dtype dtype = Dtype::f64);
  /// Xavier/Glorot uniform init for a [fan_in, fan_out] weight matrix.
  static Tensor xavier(std::int64_t fan_in, std::int64_t fan_out,
                       util::Rng& rng, Dtype dtype = Dtype::f64);

  // ---- Introspection ------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }

  Dtype dtype() const {
    check(defined(), "dtype() on undefined tensor");
    return impl_->dtype;
  }

  const Shape& shape() const {
    check(defined(), "shape() on undefined tensor");
    return impl_->shape;
  }

  std::int64_t dim(std::size_t i) const {
    check(defined() && i < impl_->shape.size(), "dim(): index out of range");
    return impl_->shape[i];
  }

  std::int64_t rank() const {
    check(defined(), "rank() on undefined tensor");
    return static_cast<std::int64_t>(impl_->shape.size());
  }

  std::int64_t numel() const {
    check(defined(), "numel() on undefined tensor");
    return static_cast<std::int64_t>(impl_->size());
  }

  /// f64 storage accessors.  These are the historical API; they reject f32
  /// tensors loudly instead of silently reinterpreting — generic code should
  /// use data_as<T>() or the read-only to_vec64().
  const std::vector<double>& data() const {
    check(defined(), "data() on undefined tensor");
    check(impl_->dtype == Dtype::f64, "data(): tensor stores f32, not f64");
    return impl_->data;
  }

  std::vector<double>& data() {
    check(defined(), "data() on undefined tensor");
    check(impl_->dtype == Dtype::f64, "data(): tensor stores f32, not f64");
    return impl_->data;
  }

  const std::vector<float>& data_f32() const {
    check(defined(), "data_f32() on undefined tensor");
    check(impl_->dtype == Dtype::f32, "data_f32(): tensor stores f64");
    return impl_->data_f;
  }

  std::vector<float>& data_f32() {
    check(defined(), "data_f32() on undefined tensor");
    check(impl_->dtype == Dtype::f32, "data_f32(): tensor stores f64");
    return impl_->data_f;
  }

  /// Dtype-generic storage accessor; T must match dtype().
  template <typename T>
  const std::vector<T>& data_as() const {
    check(defined(), "data_as() on undefined tensor");
    check(impl_->dtype == dtype_of_v<T>, "data_as(): scalar type mismatch");
    return impl_->template data_as<T>();
  }
  template <typename T>
  std::vector<T>& data_as() {
    check(defined(), "data_as() on undefined tensor");
    check(impl_->dtype == dtype_of_v<T>, "data_as(): scalar type mismatch");
    return impl_->template data_as<T>();
  }

  /// Copy of the values widened to f64, regardless of storage dtype (for
  /// metrics, serialization and tests — not a hot path).
  std::vector<double> to_vec64() const;

  /// 2-D element accessors (bounds-checked).  Reads work for either dtype
  /// (f32 values are widened); the mutable reference is f64-only.
  double at(std::int64_t r, std::int64_t c) const {
    check_at(r, c);
    const auto i = static_cast<std::size_t>(r * impl_->shape[1] + c);
    return impl_->dtype == Dtype::f32
               ? static_cast<double>(impl_->data_f[i])
               : impl_->data[i];
  }
  double& at(std::int64_t r, std::int64_t c) {
    check_at(r, c);
    check(impl_->dtype == Dtype::f64, "mutable at() requires an f64 tensor");
    return impl_->data[static_cast<std::size_t>(r * impl_->shape[1] + c)];
  }

  /// Flat accessor (reads either dtype; f32 values are widened to double).
  double item(std::int64_t i = 0) const {
    check(defined() && i >= 0 && i < numel(), "item(): index out of bounds");
    const auto idx = static_cast<std::size_t>(i);
    return impl_->dtype == Dtype::f32
               ? static_cast<double>(impl_->data_f[idx])
               : impl_->data[idx];
  }

  // ---- Autograd -----------------------------------------------------------

  bool requires_grad() const { return defined() && impl_->requires_grad; }

  /// Fluent toggle: returns *this for chaining after construction.
  Tensor& requires_grad(bool value);

  /// Gradient buffer; only meaningful after backward(). Throws if grads were
  /// never enabled for this tensor, or (like data()) if the tensor is f32.
  const std::vector<double>& grad() const {
    check(requires_grad(), "grad() on tensor without requires_grad");
    check(impl_->dtype == Dtype::f64, "grad(): tensor stores f32, not f64");
    impl_->ensure_grad();
    return impl_->grad;
  }
  std::vector<double>& grad() {
    check(requires_grad(), "grad() on tensor without requires_grad");
    check(impl_->dtype == Dtype::f64, "grad(): tensor stores f32, not f64");
    impl_->ensure_grad();
    return impl_->grad;
  }

  const std::vector<float>& grad_f32() const {
    check(requires_grad(), "grad_f32() on tensor without requires_grad");
    check(impl_->dtype == Dtype::f32, "grad_f32(): tensor stores f64");
    impl_->ensure_grad();
    return impl_->grad_f;
  }
  std::vector<float>& grad_f32() {
    check(requires_grad(), "grad_f32() on tensor without requires_grad");
    check(impl_->dtype == Dtype::f32, "grad_f32(): tensor stores f64");
    impl_->ensure_grad();
    return impl_->grad_f;
  }

  /// Dtype-generic gradient accessor; T must match dtype().
  template <typename T>
  std::vector<T>& grad_as() {
    check(requires_grad(), "grad_as() on tensor without requires_grad");
    check(impl_->dtype == dtype_of_v<T>, "grad_as(): scalar type mismatch");
    impl_->ensure_grad();
    return impl_->template grad_as<T>();
  }

  void zero_grad();

  /// Run reverse-mode accumulation from this (scalar) tensor. Seeds d(self)
  /// with 1.  Throws when called on a non-scalar.
  void backward();

  /// Detached copy sharing no tape history (data is copied).
  Tensor detach() const;

  /// Identity of the underlying node — used by the optimizers' param lists.
  detail::TensorImpl* unsafe_impl() const { return impl_.get(); }

  // ---- Op-construction helpers (used by ops, not by end users) ------------

  /// Create a result tensor wired into the tape. `parents` are recorded only
  /// if at least one of them requires grad.  The storage vector's scalar
  /// type selects the result dtype.
  static Tensor make_op_result(Shape shape, std::vector<double> data,
                               std::vector<Tensor> parents,
                               std::function<void(detail::TensorImpl&)> bwd);
  static Tensor make_op_result(Shape shape, std::vector<float> data,
                               std::vector<Tensor> parents,
                               std::function<void(detail::TensorImpl&)> bwd);

  std::shared_ptr<detail::TensorImpl> impl() const { return impl_; }

 private:
  explicit Tensor(std::shared_ptr<detail::TensorImpl> impl)
      : impl_(std::move(impl)) {}

  void check_at(std::int64_t r, std::int64_t c) const {
    check(defined() && impl_->shape.size() == 2,
          "at(r, c) requires a rank-2 tensor");
    check(r >= 0 && r < impl_->shape[0] && c >= 0 && c < impl_->shape[1],
          "at(): index out of bounds");
  }

  std::shared_ptr<detail::TensorImpl> impl_;
};

/// Iteratively severs the tape below `root` (clears parent links and
/// backward functions) so interior nodes return their buffers to the pool
/// as soon as the last user handle dies, without recursing through deep
/// shared_ptr chains.  Leaf storage — parameters, dataset tensors — is
/// untouched.  The Trainer calls this on each sample's loss once its
/// gradients have been accumulated.
void release_graph(const Tensor& root);

}  // namespace amdgcnn::ag
