// Reverse-mode automatic differentiation tensor.
//
// This is the from-scratch replacement for the PyTorch tensors the paper's
// reference implementation relies on (see DESIGN.md §2).  It is deliberately
// small: dense row-major `double` storage, shapes up to rank 3 (the models
// only need matrices plus [channels, length] sequences), and a dynamic tape.
//
// Usage pattern:
//   Tensor w = Tensor::randn({4, 8}, rng).requires_grad(true);
//   Tensor y = ops::matmul(x, w);
//   Tensor loss = ops::mean(y);
//   loss.backward();
//   w.grad();   // d loss / d w
//
// A `Tensor` is a cheap shared handle; copying shares storage and tape node.
// Gradients accumulate (+=) into `grad()` until `zero_grad()` — exactly the
// PyTorch contract, which the Trainer's gradient-accumulation minibatching
// depends on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace amdgcnn::ag {

using Shape = std::vector<std::int64_t>;

/// Number of elements of a shape (product of dims; empty shape -> 1 scalar).
std::int64_t numel(const Shape& shape);

/// Human-readable "[2, 3]" rendering for error messages.
std::string shape_str(const Shape& shape);

class Tensor;

namespace detail {

/// One tape node: storage plus (optionally) the recipe for back-propagation.
struct TensorImpl {
  Shape shape;
  std::vector<double> data;
  std::vector<double> grad;  // allocated lazily, same size as data
  bool requires_grad = false;

  // Autograd graph: parents this value was computed from, and a backward
  // function that reads this node's grad and accumulates into parents' grads.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;

  void ensure_grad();
};

}  // namespace detail

class Tensor {
 public:
  /// Empty (null) tensor; most ops reject it.
  Tensor() = default;

  // ---- Constructors -------------------------------------------------------

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, double value);
  /// From explicit row-major values; data.size() must equal numel(shape).
  static Tensor from_data(Shape shape, std::vector<double> data);
  /// I.i.d. N(0, 1) entries.
  static Tensor randn(Shape shape, util::Rng& rng);
  /// I.i.d. U(lo, hi) entries.
  static Tensor rand_uniform(Shape shape, double lo, double hi,
                             util::Rng& rng);
  /// Xavier/Glorot uniform init for a [fan_in, fan_out] weight matrix.
  static Tensor xavier(std::int64_t fan_in, std::int64_t fan_out,
                       util::Rng& rng);

  // ---- Introspection ------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  std::int64_t dim(std::size_t i) const;
  std::int64_t rank() const;
  std::int64_t numel() const;

  const std::vector<double>& data() const;
  std::vector<double>& data();

  /// 2-D element accessors (bounds-checked in debug, direct otherwise).
  double at(std::int64_t r, std::int64_t c) const;
  double& at(std::int64_t r, std::int64_t c);
  /// Flat accessor.
  double item(std::int64_t i = 0) const;

  // ---- Autograd -----------------------------------------------------------

  bool requires_grad() const;
  /// Fluent toggle: returns *this for chaining after construction.
  Tensor& requires_grad(bool value);

  /// Gradient buffer; only meaningful after backward(). Throws if grads were
  /// never enabled for this tensor.
  const std::vector<double>& grad() const;
  std::vector<double>& grad();

  void zero_grad();

  /// Run reverse-mode accumulation from this (scalar) tensor. Seeds d(self)
  /// with 1.  Throws when called on a non-scalar.
  void backward();

  /// Detached copy sharing no tape history (data is copied).
  Tensor detach() const;

  /// Identity of the underlying node — used by the optimizers' param lists.
  detail::TensorImpl* unsafe_impl() const { return impl_.get(); }

  // ---- Op-construction helpers (used by ops, not by end users) ------------

  /// Create a result tensor wired into the tape. `parents` are recorded only
  /// if at least one of them requires grad.
  static Tensor make_op_result(Shape shape, std::vector<double> data,
                               std::vector<Tensor> parents,
                               std::function<void(detail::TensorImpl&)> bwd);

  std::shared_ptr<detail::TensorImpl> impl() const { return impl_; }

 private:
  explicit Tensor(std::shared_ptr<detail::TensorImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<detail::TensorImpl> impl_;
};

/// Throws std::invalid_argument with a formatted message when `cond` is false.
void check(bool cond, const std::string& message);

}  // namespace amdgcnn::ag
