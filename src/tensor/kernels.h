// Register-blocked dense kernels shared by the forward and backward passes
// of matmul-family ops (ops.cpp).
//
// All kernels ACCUMULATE into the output (C += ...), matching autograd's
// gradient-accumulation contract; forward passes hand them a zeroed buffer.
// Using the same three kernels for Y = A·B, dA = G·Bᵀ and dB = Aᵀ·G gives
// forward and backward identical cache behaviour and an input-independent
// FLOP count — there is deliberately no zero-skipping (a sparsity
// short-circuit makes throughput depend on whether the features are DRNL
// one-hots or dense embeddings, and turns 0·inf into a silent skip).
//
// Blocking factors target the model's shapes (tens of rows, 16..128
// columns): 4 rows of A/C share one streamed row of B (mm_add, mm_atb_add);
// mm_abt_add transposes B into an L1-resident scratch first so its
// accumulation runs over unit-stride rows too, instead of horizontal dot
// products (an FP reduction is a serial dependency chain the compiler may
// not reassociate, so the dot-product form never vectorises).  The
// unit-stride inner loops vectorise under -O3 -march=native.
//
// Kernels are templated on the scalar type (float or double) and accumulate
// at native width: a matmul is bandwidth-bound at these shapes, so f32
// keeps sgemm-style f32 accumulators — the dtype policy reserves f64
// accumulation for the order-sensitive reductions (sum/softmax/loss), not
// the register-blocked dot products.
//
// All pointer arguments are __restrict__: every caller hands distinct
// buffers (outputs are freshly pooled or are gradient buffers, which never
// alias data buffers), and without the qualifier the compiler must assume
// the `C += v * B[j]` stores could feed back into B, which blocks
// vectorisation of the inner loops entirely (~2x on f64, ~4x on f32 at the
// model's shapes).
#pragma once

#include <cstdint>
#include <vector>

namespace amdgcnn::ag::kern {

/// C[n,m] += A[n,k] · B[k,m]   (row-major, unit-stride inner loop over m).
///
/// Register-tiled: full-width column tiles keep a 4×JT block of C in
/// registers across the whole k loop, so C is loaded/stored once per tile
/// instead of once per k step (the dominant traffic of the streaming form).
/// Each C[i,j] is still a single accumulator updated by the same
/// `acc += a·b` expression for k ascending, so every element's rounding
/// sequence — FMA-contracted or not, the expression shape is unchanged — is
/// bitwise identical to the streaming form; tile width and loop nesting only
/// regroup independent accumulator chains.
template <typename T>
inline void mm_add(const T* __restrict__ A, const T* __restrict__ B,
                   T* __restrict__ C, std::int64_t n, std::int64_t k,
                   std::int64_t m) {
  constexpr std::int64_t JT = 128 / static_cast<std::int64_t>(sizeof(T));
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const T* a0 = A + (i + 0) * k;
    const T* a1 = A + (i + 1) * k;
    const T* a2 = A + (i + 2) * k;
    const T* a3 = A + (i + 3) * k;
    T* c0 = C + (i + 0) * m;
    T* c1 = C + (i + 1) * m;
    T* c2 = C + (i + 2) * m;
    T* c3 = C + (i + 3) * m;
    std::int64_t j = 0;
    for (; j + JT <= m; j += JT) {
      T t0[JT], t1[JT], t2[JT], t3[JT];
      for (std::int64_t x = 0; x < JT; ++x) {
        t0[x] = c0[j + x];
        t1[x] = c1[j + x];
        t2[x] = c2[j + x];
        t3[x] = c3[j + x];
      }
      for (std::int64_t p = 0; p < k; ++p) {
        const T* b = B + p * m + j;
        const T v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        for (std::int64_t x = 0; x < JT; ++x) {
          const T bx = b[x];
          t0[x] += v0 * bx;
          t1[x] += v1 * bx;
          t2[x] += v2 * bx;
          t3[x] += v3 * bx;
        }
      }
      for (std::int64_t x = 0; x < JT; ++x) {
        c0[j + x] = t0[x];
        c1[j + x] = t1[x];
        c2[j + x] = t2[x];
        c3[j + x] = t3[x];
      }
    }
    // Column tail: the streaming form — per (i,j) the same ascending-k
    // accumulator chain, so mixing the forms stays bit-exact.
    if (j < m) {
      for (std::int64_t p = 0; p < k; ++p) {
        const T* b = B + p * m;
        const T v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        for (std::int64_t jj = j; jj < m; ++jj) {
          const T bj = b[jj];
          c0[jj] += v0 * bj;
          c1[jj] += v1 * bj;
          c2[jj] += v2 * bj;
          c3[jj] += v3 * bj;
        }
      }
    }
  }
  // Row tail (also the whole of a [1,k]·[k,m] product, e.g. the dense
  // head): same register tiling, one row at a time.
  for (; i < n; ++i) {
    const T* a = A + i * k;
    T* c = C + i * m;
    std::int64_t j = 0;
    for (; j + JT <= m; j += JT) {
      T t0[JT];
      for (std::int64_t x = 0; x < JT; ++x) t0[x] = c[j + x];
      for (std::int64_t p = 0; p < k; ++p) {
        const T* b = B + p * m + j;
        const T v = a[p];
        for (std::int64_t x = 0; x < JT; ++x) t0[x] += v * b[x];
      }
      for (std::int64_t x = 0; x < JT; ++x) c[j + x] = t0[x];
    }
    if (j < m) {
      for (std::int64_t p = 0; p < k; ++p) {
        const T* b = B + p * m;
        const T v = a[p];
        for (std::int64_t jj = j; jj < m; ++jj) c[jj] += v * b[jj];
      }
    }
  }
}

/// dA[n,k] += G[n,m] · Bᵀ  with B stored as [k,m].  B is transposed into a
/// thread-local scratch ([m,k], L1-resident at model shapes — a few KB) so
/// the accumulation becomes the same unit-stride outer-product loop as
/// mm_add: dA[i,:] += G[i,j] · Bt[j,:].  The dot-product formulation this
/// replaces could not vectorise (serial FP reduction chains) and dominated
/// the backward pass.  thread_local keeps the scratch safe under the OpenMP
/// trainer without touching the tensor buffer pool from a header.
template <typename T>
inline void mm_abt_add(const T* __restrict__ G, const T* __restrict__ B,
                       T* __restrict__ dA, std::int64_t n, std::int64_t k,
                       std::int64_t m) {
  thread_local std::vector<T> bt_buf;
  bt_buf.resize(static_cast<std::size_t>(k * m));
  T* __restrict__ Bt = bt_buf.data();
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t j = 0; j < m; ++j) Bt[j * k + p] = B[p * m + j];
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const T* g0 = G + (i + 0) * m;
    const T* g1 = G + (i + 1) * m;
    const T* g2 = G + (i + 2) * m;
    const T* g3 = G + (i + 3) * m;
    T* d0 = dA + (i + 0) * k;
    T* d1 = dA + (i + 1) * k;
    T* d2 = dA + (i + 2) * k;
    T* d3 = dA + (i + 3) * k;
    for (std::int64_t j = 0; j < m; ++j) {
      const T* bt = Bt + j * k;
      const T v0 = g0[j], v1 = g1[j], v2 = g2[j], v3 = g3[j];
      for (std::int64_t p = 0; p < k; ++p) {
        const T btp = bt[p];
        d0[p] += v0 * btp;
        d1[p] += v1 * btp;
        d2[p] += v2 * btp;
        d3[p] += v3 * btp;
      }
    }
  }
  for (; i < n; ++i) {
    const T* g = G + i * m;
    T* d = dA + i * k;
    for (std::int64_t j = 0; j < m; ++j) {
      const T* bt = Bt + j * k;
      const T v = g[j];
      for (std::int64_t p = 0; p < k; ++p) d[p] += v * bt[p];
    }
  }
}

/// dB[k,m] += Aᵀ · G  with A stored as [n,k], G as [n,m]  (4 samples of A/G
/// combine per pass over the dB rows).
template <typename T>
inline void mm_atb_add(const T* __restrict__ A, const T* __restrict__ G,
                       T* __restrict__ dB, std::int64_t n, std::int64_t k,
                       std::int64_t m) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const T* a0 = A + (i + 0) * k;
    const T* a1 = A + (i + 1) * k;
    const T* a2 = A + (i + 2) * k;
    const T* a3 = A + (i + 3) * k;
    const T* g0 = G + (i + 0) * m;
    const T* g1 = G + (i + 1) * m;
    const T* g2 = G + (i + 2) * m;
    const T* g3 = G + (i + 3) * m;
    for (std::int64_t p = 0; p < k; ++p) {
      T* b = dB + p * m;
      const T v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      for (std::int64_t j = 0; j < m; ++j)
        b[j] += v0 * g0[j] + v1 * g1[j] + v2 * g2[j] + v3 * g3[j];
    }
  }
  for (; i < n; ++i) {
    const T* a = A + i * k;
    const T* g = G + i * m;
    for (std::int64_t p = 0; p < k; ++p) {
      T* b = dB + p * m;
      const T v = a[p];
      for (std::int64_t j = 0; j < m; ++j) b[j] += v * g[j];
    }
  }
}

/// out[m] += column sums of G[n,m]  (bias gradient).
template <typename T>
inline void col_sum_add(const T* __restrict__ G, T* __restrict__ out,
                        std::int64_t n, std::int64_t m) {
  for (std::int64_t i = 0; i < n; ++i) {
    const T* g = G + i * m;
    for (std::int64_t j = 0; j < m; ++j) out[j] += g[j];
  }
}

}  // namespace amdgcnn::ag::kern
