// Register-blocked dense kernels shared by the forward and backward passes
// of matmul-family ops (ops.cpp).
//
// All kernels ACCUMULATE into the output (C += ...), matching autograd's
// gradient-accumulation contract; forward passes hand them a zeroed buffer.
// Using the same three kernels for Y = A·B, dA = G·Bᵀ and dB = Aᵀ·G gives
// forward and backward identical cache behaviour and an input-independent
// FLOP count — there is deliberately no zero-skipping (a sparsity
// short-circuit makes throughput depend on whether the features are DRNL
// one-hots or dense embeddings, and turns 0·inf into a silent skip).
//
// Blocking factors target the model's shapes (tens of rows, 16..128
// columns): 4 rows of A/C share one streamed row of B (mm_add, mm_atb_add);
// 2x2 output tiles share loaded dot-product operands (mm_abt_add).  The
// unit-stride inner loops vectorise under -O3 -march=native.
#pragma once

#include <cstdint>

namespace amdgcnn::ag::kern {

/// C[n,m] += A[n,k] · B[k,m]   (row-major, unit-stride inner loop over m).
inline void mm_add(const double* A, const double* B, double* C,
                   std::int64_t n, std::int64_t k, std::int64_t m) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = A + (i + 0) * k;
    const double* a1 = A + (i + 1) * k;
    const double* a2 = A + (i + 2) * k;
    const double* a3 = A + (i + 3) * k;
    double* c0 = C + (i + 0) * m;
    double* c1 = C + (i + 1) * m;
    double* c2 = C + (i + 2) * m;
    double* c3 = C + (i + 3) * m;
    for (std::int64_t p = 0; p < k; ++p) {
      const double* b = B + p * m;
      const double v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      for (std::int64_t j = 0; j < m; ++j) {
        const double bj = b[j];
        c0[j] += v0 * bj;
        c1[j] += v1 * bj;
        c2[j] += v2 * bj;
        c3[j] += v3 * bj;
      }
    }
  }
  for (; i < n; ++i) {
    const double* a = A + i * k;
    double* c = C + i * m;
    for (std::int64_t p = 0; p < k; ++p) {
      const double* b = B + p * m;
      const double v = a[p];
      for (std::int64_t j = 0; j < m; ++j) c[j] += v * b[j];
    }
  }
}

/// dA[n,k] += G[n,m] · Bᵀ  with B stored as [k,m]  (rows of dA are dot
/// products along m; 2x2 tiles reuse each loaded G/B row twice).
inline void mm_abt_add(const double* G, const double* B, double* dA,
                       std::int64_t n, std::int64_t k, std::int64_t m) {
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double* g0 = G + (i + 0) * m;
    const double* g1 = G + (i + 1) * m;
    double* d0 = dA + (i + 0) * k;
    double* d1 = dA + (i + 1) * k;
    std::int64_t p = 0;
    for (; p + 2 <= k; p += 2) {
      const double* b0 = B + (p + 0) * m;
      const double* b1 = B + (p + 1) * m;
      double s00 = 0.0, s01 = 0.0, s10 = 0.0, s11 = 0.0;
      for (std::int64_t j = 0; j < m; ++j) {
        const double x0 = g0[j], x1 = g1[j], y0 = b0[j], y1 = b1[j];
        s00 += x0 * y0;
        s01 += x0 * y1;
        s10 += x1 * y0;
        s11 += x1 * y1;
      }
      d0[p] += s00;
      d0[p + 1] += s01;
      d1[p] += s10;
      d1[p + 1] += s11;
    }
    for (; p < k; ++p) {
      const double* b = B + p * m;
      double s0 = 0.0, s1 = 0.0;
      for (std::int64_t j = 0; j < m; ++j) {
        s0 += g0[j] * b[j];
        s1 += g1[j] * b[j];
      }
      d0[p] += s0;
      d1[p] += s1;
    }
  }
  for (; i < n; ++i) {
    const double* g = G + i * m;
    double* d = dA + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const double* b = B + p * m;
      double s = 0.0;
      for (std::int64_t j = 0; j < m; ++j) s += g[j] * b[j];
      d[p] += s;
    }
  }
}

/// dB[k,m] += Aᵀ · G  with A stored as [n,k], G as [n,m]  (4 samples of A/G
/// combine per pass over the dB rows).
inline void mm_atb_add(const double* A, const double* G, double* dB,
                       std::int64_t n, std::int64_t k, std::int64_t m) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = A + (i + 0) * k;
    const double* a1 = A + (i + 1) * k;
    const double* a2 = A + (i + 2) * k;
    const double* a3 = A + (i + 3) * k;
    const double* g0 = G + (i + 0) * m;
    const double* g1 = G + (i + 1) * m;
    const double* g2 = G + (i + 2) * m;
    const double* g3 = G + (i + 3) * m;
    for (std::int64_t p = 0; p < k; ++p) {
      double* b = dB + p * m;
      const double v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      for (std::int64_t j = 0; j < m; ++j)
        b[j] += v0 * g0[j] + v1 * g1[j] + v2 * g2[j] + v3 * g3[j];
    }
  }
  for (; i < n; ++i) {
    const double* a = A + i * k;
    const double* g = G + i * m;
    for (std::int64_t p = 0; p < k; ++p) {
      double* b = dB + p * m;
      const double v = a[p];
      for (std::int64_t j = 0; j < m; ++j) b[j] += v * g[j];
    }
  }
}

/// out[m] += column sums of G[n,m]  (bias gradient).
inline void col_sum_add(const double* G, double* out, std::int64_t n,
                        std::int64_t m) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double* g = G + i * m;
    for (std::int64_t j = 0; j < m; ++j) out[j] += g[j];
  }
}

}  // namespace amdgcnn::ag::kern
