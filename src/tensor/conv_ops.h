// DGCNN "read-out head" operations: SortPooling, 1-D convolution and
// max-pooling over the pooled node-embedding sequence (Zhang et al., AAAI'18).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace amdgcnn::ag::ops {

/// SortPooling (Zhang et al. 2018): sort the rows of the node-embedding
/// matrix x [n, C] in DESCENDING order of the LAST column (ties broken by
/// earlier columns, then by original row id for determinism), keep the first
/// k rows, zero-pad when n < k.  Output is [k, C].
///
/// Gradient flows to the selected rows only (padding rows receive none);
/// the sort permutation is treated as constant, matching the reference
/// implementation.
Tensor sort_pool(const Tensor& x, std::int64_t k);

/// 1-D convolution over a [C_in, L] signal.
/// weight is [C_out, C_in * K] (kernel K laid out innermost), bias is
/// [C_out] (pass an undefined Tensor for no bias).  Output [C_out, L_out]
/// with L_out = (L - K) / stride + 1; requires L >= K.
Tensor conv1d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              std::int64_t kernel, std::int64_t stride);

/// Non-overlapping-by-default 1-D max pooling over [C, L]:
/// out[c, j] = max over the window [j*stride, j*stride+size).
Tensor max_pool1d(const Tensor& x, std::int64_t size, std::int64_t stride);

}  // namespace amdgcnn::ag::ops
