// First-order optimisers over ag::Tensor parameter lists.
//
// Both optimisers update parameter data in place from accumulated gradients;
// call zero_grad() between steps (the Trainer does).  Gradient clipping is
// global-norm based, as in the reference implementation.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace amdgcnn::ag {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  /// Apply one update from the currently accumulated gradients.
  virtual void step() = 0;

  /// Reset accumulated gradients of all parameters to zero.
  void zero_grad();

  /// Scale gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum and L2 weight decay.
class SGD final : public Optimizer {
 public:
  SGD(std::vector<Tensor> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void step() override;

  double lr;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction and L2 weight decay.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void step() override;

  double lr;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

}  // namespace amdgcnn::ag
