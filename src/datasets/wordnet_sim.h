// wordnet_sim — synthetic stand-in for WordNet-18 (WN18).
//
// Paper task (§IV): classify links into 18 relation classes on a graph with
// a HOMOGENEOUS node topology (one node type, no node features) — the
// ablation that isolates edge-attribute processing.  "The vanilla DGCNN
// should not be able to learn much meaningful information from the WordNet"
// and indeed scores 0.52 AUC (random) in Table III.
//
// Planted mechanism: each word node carries a hidden lexical role
// r(v) in {0..5}.  The relation type of an edge is a symmetric table lookup
// T[r(u)][r(v)] (18 distinct relation ids over the 21 unordered role pairs)
// with noise; the target link class uses the SAME table.  Crucially the
// WIRING is role-independent (uniform random partners), so topology carries
// no class signal whatsoever — the edge-blind baseline is reduced to chance,
// while an edge-aware model can read r(a), r(b) off the incident relation
// histograms.
#pragma once

#include <cstdint>

#include "datasets/kg_generator.h"

namespace amdgcnn::datasets {

struct WordNetSimOptions {
  std::uint64_t seed = 13;
  std::int64_t num_nodes = 4000;   // paper: 40,943 (10x down)
  double mean_degree = 7.0;        // paper: ~7.3 (150k edges / 41k nodes)
  std::int64_t num_train = 1300;   // paper: 13,000
  std::int64_t num_test = 400;     // paper: 4,000
  double edge_type_fidelity = 0.95;  // P(relation encodes an endpoint role)
  double label_noise = 0.06;
};

inline constexpr std::int32_t kWordNetEdgeTypes = 18;
inline constexpr std::int64_t kWordNetNumClasses = 18;
inline constexpr std::int32_t kWordNetRoles = 6;

/// The symmetric role-pair -> relation table (exposed for tests).
std::int32_t wordnet_relation_table(std::int32_t role_u, std::int32_t role_v);

LinkDataset make_wordnet_sim(const WordNetSimOptions& options = {});

}  // namespace amdgcnn::datasets
