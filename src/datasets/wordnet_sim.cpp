#include "datasets/wordnet_sim.h"

#include <stdexcept>

namespace amdgcnn::datasets {

std::int32_t wordnet_relation_table(std::int32_t role_u, std::int32_t role_v) {
  if (role_u < 0 || role_u >= kWordNetRoles || role_v < 0 ||
      role_v >= kWordNetRoles)
    throw std::invalid_argument("wordnet_relation_table: role out of range");
  const std::int32_t lo = std::min(role_u, role_v);
  const std::int32_t hi = std::max(role_u, role_v);
  // Enumerate unordered pairs (lo <= hi) row by row; 21 pairs map onto 18
  // relation ids (the last three wrap), so a few role pairs share a relation
  // — mirroring WN18's semantically overlapping relations.
  std::int32_t index = 0;
  for (std::int32_t i = 0; i < kWordNetRoles; ++i)
    for (std::int32_t j = i; j < kWordNetRoles; ++j) {
      if (i == lo && j == hi) return index % kWordNetEdgeTypes;
      ++index;
    }
  throw std::logic_error("wordnet_relation_table: unreachable");
}

LinkDataset make_wordnet_sim(const WordNetSimOptions& options) {
  if (options.num_nodes < 10)
    throw std::invalid_argument("make_wordnet_sim: too few nodes");
  util::Rng rng(options.seed);
  // One node type; the 18-dim edge attribute is the relation one-hot.
  graph::KnowledgeGraph g(/*num_node_types=*/1, kWordNetEdgeTypes,
                          /*edge_attr_dim=*/kWordNetEdgeTypes);
  GraphBuilder edges(g);

  std::vector<std::int8_t> role(static_cast<std::size_t>(options.num_nodes));
  std::vector<graph::NodeId> nodes;
  nodes.reserve(role.size());
  for (std::int64_t i = 0; i < options.num_nodes; ++i) {
    nodes.push_back(g.add_node(0));
    role[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kWordNetRoles)));
  }

  for (std::int32_t t = 0; t < kWordNetEdgeTypes; ++t) {
    std::vector<double> attr(kWordNetEdgeTypes, 0.0);
    attr[static_cast<std::size_t>(t)] = 1.0;
    g.set_edge_type_attr(t, attr);
  }

  // Background relation of an edge: with probability edge_type_fidelity the
  // type encodes the lexical role of ONE endpoint (relation block
  // 3*role + subtype, covering all 18 types = 6 roles x 3 subtypes),
  // otherwise uniform noise.  A node's incident relation histogram therefore
  // peaks in its own role block — the signal an edge-aware GNN reads and an
  // edge-blind one cannot.
  auto relation = [&](graph::NodeId u, graph::NodeId v) -> std::int32_t {
    if (rng.bernoulli(options.edge_type_fidelity)) {
      const auto endpoint = rng.bernoulli(0.5) ? u : v;
      const auto subtype = static_cast<std::int32_t>(rng.uniform_int(3ULL));
      return 3 * role[static_cast<std::size_t>(endpoint)] + subtype;
    }
    return static_cast<std::int32_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kWordNetEdgeTypes)));
  };

  // Role-INDEPENDENT uniform wiring: topology is pure noise w.r.t. class.
  const auto edges_wanted = static_cast<std::int64_t>(
      options.mean_degree * static_cast<double>(options.num_nodes) / 2.0);
  std::int64_t guard = 0;
  while (edges.num_edges_added() < edges_wanted) {
    if (++guard > 100 * edges_wanted)
      throw std::runtime_error("make_wordnet_sim: could not place edges");
    const auto u = pick(nodes, rng);
    const auto v = pick(nodes, rng);
    if (u == v) continue;
    edges.add_edge_unique(u, v, relation(u, v));
  }

  // ---- Target links ---------------------------------------------------------
  const std::int64_t wanted = options.num_train + options.num_test;
  std::vector<seal::LinkExample> links;
  links.reserve(static_cast<std::size_t>(wanted));
  std::unordered_set<std::uint64_t> used_pairs;
  guard = 0;
  while (static_cast<std::int64_t>(links.size()) < wanted) {
    if (++guard > 100 * wanted)
      throw std::runtime_error("make_wordnet_sim: could not place links");
    auto a = pick(nodes, rng);
    auto c = pick(nodes, rng);
    if (a == c) continue;
    if (a > c) std::swap(a, c);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(c);
    if (!used_pairs.insert(key).second) continue;
    const std::int32_t base = wordnet_relation_table(
        role[static_cast<std::size_t>(a)], role[static_cast<std::size_t>(c)]);
    links.push_back({a, c,
                     noisy_label(base, kWordNetNumClasses,
                                 options.label_noise, rng)});
  }

  g.finalize();

  LinkDataset ds;
  ds.name = "wordnet_sim";
  ds.graph = std::move(g);
  ds.num_classes = kWordNetNumClasses;
  for (std::int32_t t = 0; t < kWordNetEdgeTypes; ++t)
    ds.class_names.push_back("rel-" + std::to_string(t));
  ds.neighborhood_mode = graph::NeighborhoodMode::kUnion;
  split_links(std::move(links), options.num_train, options.num_test, rng, ds);
  return ds;
}

}  // namespace amdgcnn::datasets
