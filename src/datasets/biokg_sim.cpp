#include "datasets/biokg_sim.h"

#include <array>
#include <stdexcept>

namespace amdgcnn::datasets {

namespace {

constexpr std::int32_t kNumGroups = 17;
constexpr std::int32_t kNumLevels = 3;

/// Unordered (q_a, q_b) combination -> class id in [0, 6).
std::int32_t combo_class(int qa, int qb) {
  const int lo = std::min(qa, qb), hi = std::max(qa, qb);
  // (0,0)=0 (0,1)=1 (0,2)=2 (1,1)=3 (1,2)=4 (2,2)=5
  static constexpr int table[3][3] = {{0, 1, 2}, {1, 3, 4}, {2, 4, 5}};
  return table[lo][hi];
}

struct Builder {
  const BioKGSimOptions& opt;
  util::Rng rng;
  graph::KnowledgeGraph g;
  GraphBuilder edges;
  std::vector<std::int8_t> level;  // q(v) in {0,1,2}
  std::array<std::vector<graph::NodeId>, kBioKGNodeTypes> pool;

  explicit Builder(const BioKGSimOptions& options)
      : opt(options),
        rng(options.seed),
        g(kBioKGNodeTypes, kBioKGEdgeTypes, /*edge_attr_dim=*/kNumLevels),
        edges(g) {}

  void add_nodes(std::int32_t type, double base_count) {
    const auto n = static_cast<std::int64_t>(base_count * opt.scale);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto v = g.add_node(type);
      pool[static_cast<std::size_t>(type)].push_back(v);
      level.push_back(static_cast<std::int8_t>(rng.uniform_int(3ULL)));
    }
  }

  std::int32_t relation(graph::NodeId u, graph::NodeId v,
                        std::int32_t group) {
    std::int32_t l;
    if (rng.bernoulli(opt.level_fidelity)) {
      const auto endpoint = rng.bernoulli(0.5) ? u : v;
      l = level[static_cast<std::size_t>(endpoint)];
    } else {
      l = static_cast<std::int32_t>(rng.uniform_int(3ULL));
    }
    return group * kNumLevels + l;
  }

  void wire(std::int32_t from_type, std::int32_t to_type, double mean_degree,
            std::int32_t group_lo, std::int32_t group_hi) {
    wire_bipartite(edges, pool[static_cast<std::size_t>(from_type)],
                   pool[static_cast<std::size_t>(to_type)], mean_degree, rng,
                   [&](graph::NodeId u, graph::NodeId v) {
                     const auto group = static_cast<std::int32_t>(
                         rng.uniform_int(group_lo, group_hi));
                     return relation(u, v, group);
                   });
  }
};

}  // namespace

LinkDataset make_biokg_sim(const BioKGSimOptions& options) {
  if (options.scale <= 0.0)
    throw std::invalid_argument("make_biokg_sim: scale must be positive");
  Builder b(options);

  b.add_nodes(kProtein, 1600);
  b.add_nodes(kBioDrug, 250);
  b.add_nodes(kBioDisease, 250);
  b.add_nodes(kSideEffect, 150);
  b.add_nodes(kFunction, 300);

  // Edge-type attributes: one-hot of the interaction level (type % 3).
  for (std::int32_t t = 0; t < kBioKGEdgeTypes; ++t) {
    double attr[kNumLevels] = {0.0, 0.0, 0.0};
    attr[t % kNumLevels] = 1.0;
    b.g.set_edge_type_attr(t, attr);
  }

  // Background wiring; relation groups partitioned by type pair.
  b.wire(kProtein, kProtein, 5.0, 0, 2);
  b.wire(kBioDrug, kProtein, 5.0, 3, 5);
  b.wire(kBioDisease, kProtein, 5.0, 6, 8);
  b.wire(kProtein, kFunction, 1.0, 9, 10);
  b.wire(kBioDrug, kBioDisease, 2.0, 11, 12);
  b.wire(kBioDrug, kSideEffect, 2.0, 13, 14);
  b.wire(kBioDisease, kSideEffect, 1.0, 15, 16);

  // ---- Target protein-protein links ----------------------------------------
  const std::int64_t wanted = options.num_train + options.num_test;
  std::vector<seal::LinkExample> links;
  links.reserve(static_cast<std::size_t>(wanted));
  std::unordered_set<std::uint64_t> used_pairs;
  const auto& proteins = b.pool[kProtein];
  std::int64_t guard = 0;
  while (static_cast<std::int64_t>(links.size()) < wanted) {
    if (++guard > 100 * wanted)
      throw std::runtime_error("make_biokg_sim: could not place links");
    auto a = pick(proteins, b.rng);
    auto c = pick(proteins, b.rng);
    if (a == c) continue;
    if (a > c) std::swap(a, c);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(c);
    if (!used_pairs.insert(key).second) continue;

    const int qa = b.level[static_cast<std::size_t>(a)];
    const int qc = b.level[static_cast<std::size_t>(c)];
    std::int32_t label = combo_class(qa, qc);
    if (b.rng.bernoulli(options.other_class_rate))
      label = 6;  // catch-all relation
    label = noisy_label(label, kBioKGNumClasses, options.label_noise, b.rng);

    // Weak topological plant: same-level pairs (classes 0, 3, 5) get extra
    // shared neighborhood — the only signal the edge-blind baseline can
    // read, worth ~0.6-0.66 AUC as in the paper.
    std::int64_t shared = 1;
    if (qa == qc)
      shared += 1 + (b.rng.bernoulli(0.7) ? 1 : 0) +
                (b.rng.bernoulli(0.7) ? 1 : 0);
    for (std::int64_t s = 0; s < shared; ++s) {
      const auto m = pick(proteins, b.rng);
      if (m == a || m == c) continue;
      const auto group = static_cast<std::int32_t>(b.rng.uniform_int(0, 2));
      b.edges.add_edge_unique(a, m, b.relation(a, m, group));
      b.edges.add_edge_unique(c, m, b.relation(c, m, group));
    }
    links.push_back({a, c, label});
  }

  b.g.finalize();

  LinkDataset ds;
  ds.name = "biokg_sim";
  ds.graph = std::move(b.g);
  ds.num_classes = kBioKGNumClasses;
  ds.class_names = {"ppi-00", "ppi-01", "ppi-02", "ppi-11",
                    "ppi-12", "ppi-22", "other"};
  ds.neighborhood_mode = graph::NeighborhoodMode::kUnion;
  split_links(std::move(links), options.num_train, options.num_test, b.rng,
              ds);
  return ds;
}

}  // namespace amdgcnn::datasets
