#include "datasets/cora_sim.h"

#include <cmath>
#include <stdexcept>

namespace amdgcnn::datasets {

LinkDataset make_cora_sim(const CoraSimOptions& options) {
  if (options.num_nodes < 20)
    throw std::invalid_argument("make_cora_sim: too few nodes");
  if (options.num_pos_links * 2 > options.num_edges)
    throw std::invalid_argument(
        "make_cora_sim: num_pos_links too large for edge budget");
  util::Rng rng(options.seed);
  // 7 "node types" model the communities (also exposed as explicit noisy
  // one-hot features, like Cora's class-correlated words); one edge type,
  // NO edge attributes.
  graph::KnowledgeGraph g(kCoraCommunities, /*num_edge_types=*/1,
                          /*edge_attr_dim=*/0,
                          /*node_feat_dim=*/kCoraCommunities);
  GraphBuilder edges(g);

  std::vector<std::int32_t> community(
      static_cast<std::size_t>(options.num_nodes));
  std::vector<std::vector<graph::NodeId>> members(kCoraCommunities);
  std::vector<graph::NodeId> nodes;
  nodes.reserve(community.size());
  for (std::int64_t i = 0; i < options.num_nodes; ++i) {
    const auto c = static_cast<std::int32_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kCoraCommunities)));
    const auto v = g.add_node(c);
    nodes.push_back(v);
    community[static_cast<std::size_t>(i)] = c;
    members[static_cast<std::size_t>(c)].push_back(v);

    // Noisy one-hot community feature.
    std::vector<double> feat(kCoraCommunities, 0.0);
    std::int32_t observed = c;
    if (rng.bernoulli(options.feature_noise))
      observed = static_cast<std::int32_t>(
          rng.uniform_int(static_cast<std::uint64_t>(kCoraCommunities)));
    feat[static_cast<std::size_t>(observed)] = 1.0;
    g.set_node_features(v, feat);
  }

  // Degree-corrected SBM wiring: hub weights ~ Zipf-ish.
  std::vector<double> weight(nodes.size());
  for (auto& w : weight) w = std::exp(rng.normal(0.0, 0.6));
  std::vector<std::vector<double>> member_weight(kCoraCommunities);
  for (std::int32_t c = 0; c < kCoraCommunities; ++c) {
    member_weight[c].reserve(members[c].size());
    for (auto v : members[c]) member_weight[c].push_back(weight[v]);
  }
  std::vector<double> all_weight(weight);

  // Wiring: homophilous DC-SBM edges plus triadic-closure edges (connect
  // two nodes that already share a neighbor), tracked in a local adjacency
  // so closures can be sampled cheaply.
  std::vector<std::vector<graph::NodeId>> adj(nodes.size());
  auto place = [&](graph::NodeId u, graph::NodeId v) {
    if (u == v || !edges.add_edge_unique(u, v, 0)) return false;
    adj[static_cast<std::size_t>(u)].push_back(v);
    adj[static_cast<std::size_t>(v)].push_back(u);
    return true;
  };
  std::int64_t guard = 0;
  while (edges.num_edges_added() < options.num_edges) {
    if (++guard > 200 * options.num_edges)
      throw std::runtime_error("make_cora_sim: could not place edges");
    if (edges.num_edges_added() > 50 &&
        rng.bernoulli(options.triadic_closure)) {
      // Close a wedge u - v - w.
      const auto v = nodes[rng.categorical(all_weight)];
      const auto& nv = adj[static_cast<std::size_t>(v)];
      if (nv.size() < 2) continue;
      const auto u = nv[rng.uniform_int(nv.size())];
      const auto w = nv[rng.uniform_int(nv.size())];
      place(u, w);
      continue;
    }
    graph::NodeId u, v;
    if (rng.bernoulli(options.within_community)) {
      const auto c = static_cast<std::int32_t>(
          rng.uniform_int(static_cast<std::uint64_t>(kCoraCommunities)));
      if (members[c].size() < 2) continue;
      u = members[c][rng.categorical(member_weight[c])];
      v = members[c][rng.categorical(member_weight[c])];
    } else {
      u = nodes[rng.categorical(all_weight)];
      v = nodes[rng.categorical(all_weight)];
    }
    place(u, v);
  }

  g.finalize();

  // ---- Target links: existing edges vs sampled non-edges -------------------
  // Positive examples are a random subset of graph edges (SEAL masks the
  // target edge during extraction, so the label is not leaked).
  std::vector<seal::LinkExample> links;
  links.reserve(static_cast<std::size_t>(2 * options.num_pos_links));
  auto edge_ids = rng.sample_without_replacement(
      static_cast<std::size_t>(g.num_edges()),
      static_cast<std::size_t>(options.num_pos_links));
  for (auto eid : edge_ids) {
    const auto& e = g.edge(static_cast<graph::EdgeId>(eid));
    links.push_back({e.src, e.dst, 1});
  }
  auto negatives =
      seal::sample_negative_links(g, options.num_pos_links, /*label=*/0, rng);
  links.insert(links.end(), negatives.begin(), negatives.end());

  LinkDataset ds;
  ds.name = "cora_sim";
  ds.graph = std::move(g);
  ds.num_classes = kCoraNumClasses;
  ds.class_names = {"non-edge", "edge"};
  ds.neighborhood_mode = graph::NeighborhoodMode::kUnion;
  const auto total = static_cast<std::int64_t>(links.size());
  const auto num_test =
      static_cast<std::int64_t>(options.test_fraction * total + 0.5);
  split_links(std::move(links), total - num_test, num_test, rng, ds);
  return ds;
}

}  // namespace amdgcnn::datasets
