#include "datasets/primekg_sim.h"

#include <array>
#include <stdexcept>

namespace amdgcnn::datasets {

namespace {

/// 15 semantic relation groups; the final relation id is
/// group + 15 * (negative ? 1 : 0), matching "30 relationships encoding
/// positive and negative interactions".
enum RelationGroup : std::int32_t {
  kDrugGene = 0,
  kDiseaseGene,
  kGeneGene,
  kGenePathway,
  kDiseasePhenotype,
  kDrugPhenotype,
  kGeneBioProcess,
  kGeneMolFunction,
  kGeneCellComponent,
  kDiseaseAnatomy,
  kExposureGene,
  kExposureDisease,
  kPathwayBioProcess,
  kDrugDrug,
  kDiseaseDisease,
};
constexpr std::int32_t kNumGroups = 15;

struct Builder {
  const PrimeKGSimOptions& opt;
  util::Rng rng;
  graph::KnowledgeGraph g;
  GraphBuilder edges;
  std::vector<std::int8_t> polarity;  // p(v) in {0,1}
  std::array<std::vector<graph::NodeId>, kPrimeKGNodeTypes> pool;

  explicit Builder(const PrimeKGSimOptions& options)
      : opt(options),
        rng(options.seed),
        g(kPrimeKGNodeTypes, kPrimeKGEdgeTypes, /*edge_attr_dim=*/2),
        edges(g) {}

  void add_nodes(std::int32_t type, double base_count) {
    const auto n = static_cast<std::int64_t>(base_count * opt.scale);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto v = g.add_node(type);
      pool[static_cast<std::size_t>(type)].push_back(v);
      polarity.push_back(static_cast<std::int8_t>(rng.bernoulli(0.5) ? 1 : 0));
    }
  }

  /// Relation id for an edge (u, v) in `group`: polarity follows the latent
  /// rule with probability edge_polarity_fidelity.
  std::int32_t relation(graph::NodeId u, graph::NodeId v,
                        std::int32_t group) {
    const int psum = polarity[static_cast<std::size_t>(u)] +
                     polarity[static_cast<std::size_t>(v)];
    const double p_positive = psum == 2   ? opt.edge_polarity_fidelity
                              : psum == 1 ? 0.5
                                          : 1.0 - opt.edge_polarity_fidelity;
    const bool positive = rng.bernoulli(p_positive);
    return group + (positive ? 0 : kNumGroups);
  }

  void wire(std::int32_t from_type, std::int32_t to_type, double mean_degree,
            std::int32_t group) {
    wire_bipartite(edges, pool[static_cast<std::size_t>(from_type)],
                   pool[static_cast<std::size_t>(to_type)], mean_degree, rng,
                   [&](graph::NodeId u, graph::NodeId v) {
                     return relation(u, v, group);
                   });
  }
};

}  // namespace

LinkDataset make_primekg_sim(const PrimeKGSimOptions& options) {
  if (options.scale <= 0.0)
    throw std::invalid_argument("make_primekg_sim: scale must be positive");
  Builder b(options);

  // ---- Nodes (10 biological scales, counts roughly proportional to
  // PrimeKG's type distribution) -------------------------------------------
  b.add_nodes(kDrug, 350);
  b.add_nodes(kDisease, 450);
  b.add_nodes(kGene, 1400);
  b.add_nodes(kPhenotype, 500);
  b.add_nodes(kPathway, 250);
  b.add_nodes(kBioProcess, 350);
  b.add_nodes(kMolFunction, 250);
  b.add_nodes(kCellComponent, 200);
  b.add_nodes(kAnatomy, 300);
  b.add_nodes(kExposure, 120);

  // ---- Edge-type attribute table: positive / negative one-hot -------------
  for (std::int32_t t = 0; t < kPrimeKGEdgeTypes; ++t) {
    const double attr[2] = {t < kNumGroups ? 1.0 : 0.0,
                            t < kNumGroups ? 0.0 : 1.0};
    b.g.set_edge_type_attr(t, attr);
  }

  // ---- Background wiring ---------------------------------------------------
  b.wire(kDrug, kGene, 6.0, kDrugGene);
  b.wire(kDisease, kGene, 6.0, kDiseaseGene);
  b.wire(kGene, kGene, 1.5, kGeneGene);
  b.wire(kGene, kPathway, 1.0, kGenePathway);
  b.wire(kDisease, kPhenotype, 3.0, kDiseasePhenotype);
  b.wire(kDrug, kPhenotype, 2.0, kDrugPhenotype);
  b.wire(kGene, kBioProcess, 1.0, kGeneBioProcess);
  b.wire(kGene, kMolFunction, 0.8, kGeneMolFunction);
  b.wire(kGene, kCellComponent, 0.6, kGeneCellComponent);
  b.wire(kDisease, kAnatomy, 2.0, kDiseaseAnatomy);
  b.wire(kExposure, kGene, 2.0, kExposureGene);
  b.wire(kExposure, kDisease, 1.5, kExposureDisease);
  b.wire(kPathway, kBioProcess, 1.0, kPathwayBioProcess);
  b.wire(kDrug, kDrug, 1.0, kDrugDrug);
  b.wire(kDisease, kDisease, 1.0, kDiseaseDisease);

  // ---- Target drug-disease links ------------------------------------------
  const std::int64_t wanted = options.num_train + options.num_test;
  std::vector<seal::LinkExample> links;
  links.reserve(static_cast<std::size_t>(wanted));
  std::unordered_set<std::uint64_t> used_pairs;
  const auto& drugs = b.pool[kDrug];
  const auto& diseases = b.pool[kDisease];
  const auto& genes = b.pool[kGene];
  std::int64_t guard = 0;
  while (static_cast<std::int64_t>(links.size()) < wanted) {
    if (++guard > 100 * wanted)
      throw std::runtime_error("make_primekg_sim: could not place links");
    const auto a = pick(drugs, b.rng);
    const auto d = pick(diseases, b.rng);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(d);
    if (!used_pairs.insert(key).second) continue;

    // Class from the latent polarities: (0,0) -> Indication,
    // mixed -> Off-label, (1,1) -> Contra-indication.
    const int psum = b.polarity[static_cast<std::size_t>(a)] +
                     b.polarity[static_cast<std::size_t>(d)];
    const std::int32_t base = psum == 0 ? 0 : (psum == 1 ? 1 : 2);
    const std::int32_t label = noisy_label(
        base, kPrimeKGNumClasses, options.label_noise, b.rng);

    // Planted shared genes.  Two pieces of signal live here:
    //  * the COUNT is (weakly) class-correlated with heavy overlap — the
    //    only signal the edge-blind baseline can read off the intersection
    //    subgraph (paper: vanilla DGCNN ~0.75 AUC);
    //  * the POLARITY pattern of the two incident relations encodes the
    //    class almost deterministically — Indication plants positive
    //    drug-gene / disease-gene pairs, Contra-indication negative pairs,
    //    Off-label one of each.  Shared neighbors are exactly what an
    //    intersection enclosing subgraph retains, so this is the signal an
    //    edge-aware model can exploit (paper: AM-DGCNN 0.99 AUC).
    const double f = options.edge_polarity_fidelity;
    const double q = base == 0 ? 0.75 : (base == 1 ? 0.4 : 0.05);
    std::int64_t shared = 2;
    for (int t = 0; t < 3; ++t) shared += b.rng.bernoulli(q) ? 1 : 0;
    auto polar_relation = [&](std::int32_t group, bool positive) {
      if (!b.rng.bernoulli(f)) positive = !positive;
      return group + (positive ? 0 : kNumGroups);
    };
    for (std::int64_t s = 0; s < shared; ++s) {
      const auto gshared = pick(genes, b.rng);
      bool drug_positive, disease_positive;
      if (base == 0) {
        drug_positive = disease_positive = true;
      } else if (base == 2) {
        drug_positive = disease_positive = false;
      } else {
        drug_positive = b.rng.bernoulli(0.5);
        disease_positive = !drug_positive;
      }
      b.edges.add_edge_unique(a, gshared,
                              polar_relation(kDrugGene, drug_positive));
      b.edges.add_edge_unique(d, gshared,
                              polar_relation(kDiseaseGene, disease_positive));
    }
    links.push_back({a, d, label});
  }

  b.g.finalize();

  LinkDataset ds;
  ds.name = "primekg_sim";
  ds.graph = std::move(b.g);
  ds.num_classes = kPrimeKGNumClasses;
  ds.class_names = {"Indication", "Off-label use", "Contra-indication"};
  // Paper §III-A: intersection neighborhoods for PrimeKG.
  ds.neighborhood_mode = graph::NeighborhoodMode::kIntersection;
  split_links(std::move(links), options.num_train, options.num_test, b.rng,
              ds);
  return ds;
}

}  // namespace amdgcnn::datasets
