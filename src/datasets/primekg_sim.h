// primekg_sim — synthetic stand-in for PrimeKG (Chandak et al. 2023).
//
// Paper task (§IV): classify drug-disease links into three classes —
// "Indication" (positive), "Off-label use" (positive support) and
// "Contra-indication" (negative).  PrimeKG has 10 node types and 30
// relation types compressed into a 2-dimensional ±polarity edge attribute.
//
// Planted mechanism (DESIGN.md §2): every node carries a hidden polarity
// p(v) in {0,1}.  Background relation polarity is drawn from p(u)+p(v)
// (both 1 -> mostly positive, both 0 -> mostly negative, mixed -> coin
// flip), so the positive-edge fraction around a node estimates p(v).  The
// drug-disease class is a noisy function of (p(drug), p(disease)); the
// number of planted common-neighbor genes is class-correlated with heavy
// overlap, giving the edge-blind baseline a partial (≈0.75 AUC) topological
// signal, as in the paper's Table III.
#pragma once

#include <cstdint>

#include "datasets/kg_generator.h"

namespace amdgcnn::datasets {

struct PrimeKGSimOptions {
  std::uint64_t seed = 7;
  /// Node-count multiplier (1.0 ≈ 4.2k nodes — paper's 129k scaled ~30x
  /// down; see DESIGN.md §4).
  double scale = 1.0;
  std::int64_t num_train = 1200;  // paper: 6000
  std::int64_t num_test = 400;    // paper: 2000
  /// P(edge polarity agrees with the latent rule).
  double edge_polarity_fidelity = 0.97;
  /// P(target label replaced by a random other class).
  double label_noise = 0.02;
};

inline constexpr std::int32_t kPrimeKGNodeTypes = 10;
inline constexpr std::int32_t kPrimeKGEdgeTypes = 30;  // 15 relations x {+,-}
inline constexpr std::int64_t kPrimeKGNumClasses = 3;

enum PrimeKGNodeType : std::int32_t {
  kDrug = 0,
  kDisease,
  kGene,
  kPhenotype,
  kPathway,
  kBioProcess,
  kMolFunction,
  kCellComponent,
  kAnatomy,
  kExposure,
};

LinkDataset make_primekg_sim(const PrimeKGSimOptions& options = {});

}  // namespace amdgcnn::datasets
