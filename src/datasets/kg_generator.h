// Shared machinery for the synthetic knowledge-graph generators.
//
// The real datasets (PrimeKG, OGBL-BioKG, WordNet-18, Cora) are not available
// offline; DESIGN.md §2 documents the substitution.  Every generator follows
// the same latent-variable recipe:
//
//   1. sample nodes with a type and a hidden latent (polarity / level / role
//      / community);
//   2. wire background edges whose RELATION TYPE (and hence attribute
//      vector) is a noisy function of the endpoint latents — so edge
//      attributes around a node reveal its latent to an edge-aware model;
//   3. emit target links whose CLASS is a noisy function of the two target
//      latents (plus, where the paper's baseline performs above chance, a
//      planted topological signal such as extra common neighbors).
//
// An edge-attribute-aware GNN (AM-DGCNN) can read the latents off the
// enclosing subgraph; an edge-blind GNN (vanilla DGCNN) sees only the
// topological part.  This reproduces the paper's headline contrast without
// the proprietary data.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/knowledge_graph.h"
#include "graph/subgraph.h"
#include "seal/sampling.h"
#include "util/rng.h"

namespace amdgcnn::datasets {

/// A fully assembled link-classification benchmark: the observed knowledge
/// graph plus labeled target links split into train and test.
struct LinkDataset {
  std::string name;
  graph::KnowledgeGraph graph;
  std::vector<seal::LinkExample> train_links;
  std::vector<seal::LinkExample> test_links;
  std::int64_t num_classes = 0;
  std::vector<std::string> class_names;
  /// Enclosing-subgraph rule the paper prescribes for this dataset
  /// (intersection for PrimeKG, union elsewhere).
  graph::NeighborhoodMode neighborhood_mode = graph::NeighborhoodMode::kUnion;
};

/// Duplicate-free edge insertion on top of KnowledgeGraph.
class GraphBuilder {
 public:
  explicit GraphBuilder(graph::KnowledgeGraph& g) : g_(&g) {}

  /// Add the undirected edge if absent; returns true when inserted.
  bool add_edge_unique(graph::NodeId u, graph::NodeId v, std::int32_t type);

  bool has_edge(graph::NodeId u, graph::NodeId v) const;

  std::int64_t num_edges_added() const { return added_; }

 private:
  static std::uint64_t key(graph::NodeId u, graph::NodeId v);
  graph::KnowledgeGraph* g_;
  std::unordered_set<std::uint64_t> seen_;
  std::int64_t added_ = 0;
};

/// Draw one element uniformly from a non-empty pool.
graph::NodeId pick(const std::vector<graph::NodeId>& pool, util::Rng& rng);

/// For each node in `from`, add ~`mean_degree` unique edges to random
/// partners in `to`, relation type chosen by `type_fn(u, v)`.
template <typename TypeFn>
void wire_bipartite(GraphBuilder& b, const std::vector<graph::NodeId>& from,
                    const std::vector<graph::NodeId>& to, double mean_degree,
                    util::Rng& rng, TypeFn&& type_fn) {
  for (auto u : from) {
    const auto edges = static_cast<std::int64_t>(mean_degree) +
                       (rng.uniform() < (mean_degree -
                                         static_cast<std::int64_t>(mean_degree))
                            ? 1
                            : 0);
    for (std::int64_t i = 0; i < edges; ++i) {
      const auto v = pick(to, rng);
      if (u == v) continue;
      b.add_edge_unique(u, v, type_fn(u, v));
    }
  }
}

/// Label-noise helper: with probability `noise`, replace `label` with a
/// uniformly random other class.
std::int32_t noisy_label(std::int32_t label, std::int64_t num_classes,
                         double noise, util::Rng& rng);

/// Knobs for `make_random_kg` — an unstructured Erdős–Rényi-style KG used
/// by the property/determinism tests, where the planted-latent recipe of
/// the named generators would only slow things down.
struct RandomKGOptions {
  std::int64_t num_nodes = 60;
  std::int64_t num_edges = 150;  ///< target; dedup may land slightly under
  std::int32_t num_node_types = 3;
  std::int32_t num_edge_types = 4;
  std::uint64_t seed = 1;
};

/// A finalized random KG: uniform node/edge types, one-hot edge-type
/// attributes (edge_attr_dim == num_edge_types), no node features.
/// Deterministic in `options.seed`.
graph::KnowledgeGraph make_random_kg(const RandomKGOptions& options);

/// Split a labeled link list into train/test with exact sizes (shuffled).
void split_links(std::vector<seal::LinkExample> links, std::int64_t num_train,
                 std::int64_t num_test, util::Rng& rng, LinkDataset& out);

/// Knobs for `make_scale_kg` — the 10^5..10^6-node scale tier (DESIGN.md
/// §2.6).  Unlike the planted-latent generators above, edges stream straight
/// into KnowledgeGraph::add_edge with NO duplicate-tracking set: a dedup
/// table at a million nodes costs more memory than the graph itself, and
/// SEAL extraction is indifferent to the occasional parallel edge.
struct ScaleKGOptions {
  std::int64_t num_nodes = 100'000;
  /// Average undirected edges per node (edge count = num_nodes * this / 2).
  double mean_degree = 8.0;
  /// Endpoint-skew exponent: one endpoint of every edge is
  /// floor(num_nodes * u^degree_skew) for uniform u, so 1.0 is uniform and
  /// larger values concentrate edges on low-id hub nodes — the heavy-tailed
  /// degree shape that makes extraction cost realistic.
  double degree_skew = 2.0;
  std::int32_t num_node_types = 8;
  std::int32_t num_edge_types = 6;
  std::uint64_t seed = 1;
};

/// A finalized scale-tier KG: uniform node types, one-hot edge-type
/// attributes (edge_attr_dim == num_edge_types), edge type a noisy function
/// of the endpoint node types.  O(V + E) time and memory (streaming; no
/// intermediate edge list), deterministic in `options.seed`.
graph::KnowledgeGraph make_scale_kg(const ScaleKGOptions& options);

/// Labeled link batch for the scale bench: alternating existing edges
/// (label 1) and uniformly random pairs (label 0; not checked against the
/// graph — at scale the collision probability is negligible and the bench
/// measures extraction, not classification).  Deterministic in `seed`.
std::vector<seal::LinkExample> sample_scale_links(
    const graph::KnowledgeGraph& g, std::int64_t count, std::uint64_t seed);

}  // namespace amdgcnn::datasets
