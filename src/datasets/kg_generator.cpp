#include "datasets/kg_generator.h"

#include <stdexcept>

namespace amdgcnn::datasets {

std::uint64_t GraphBuilder::key(graph::NodeId u, graph::NodeId v) {
  const auto lo = static_cast<std::uint64_t>(std::min(u, v));
  const auto hi = static_cast<std::uint64_t>(std::max(u, v));
  return (hi << 32) | lo;
}

bool GraphBuilder::add_edge_unique(graph::NodeId u, graph::NodeId v,
                                   std::int32_t type) {
  if (u == v) return false;
  if (!seen_.insert(key(u, v)).second) return false;
  g_->add_edge(u, v, type);
  ++added_;
  return true;
}

bool GraphBuilder::has_edge(graph::NodeId u, graph::NodeId v) const {
  return seen_.count(key(u, v)) > 0;
}

graph::NodeId pick(const std::vector<graph::NodeId>& pool, util::Rng& rng) {
  if (pool.empty()) throw std::invalid_argument("pick: empty pool");
  return pool[rng.uniform_int(static_cast<std::uint64_t>(pool.size()))];
}

std::int32_t noisy_label(std::int32_t label, std::int64_t num_classes,
                         double noise, util::Rng& rng) {
  if (!rng.bernoulli(noise)) return label;
  // uniform over the other classes
  auto other = static_cast<std::int32_t>(
      rng.uniform_int(static_cast<std::uint64_t>(num_classes - 1)));
  return other >= label ? other + 1 : other;
}

graph::KnowledgeGraph make_random_kg(const RandomKGOptions& options) {
  if (options.num_nodes < 2)
    throw std::invalid_argument("make_random_kg: need at least 2 nodes");
  graph::KnowledgeGraph g(options.num_node_types, options.num_edge_types,
                          /*edge_attr_dim=*/options.num_edge_types);
  util::Rng rng(options.seed);
  for (std::int64_t i = 0; i < options.num_nodes; ++i)
    g.add_node(static_cast<std::int32_t>(rng.uniform_int(
        static_cast<std::uint64_t>(options.num_node_types))));
  for (std::int32_t t = 0; t < options.num_edge_types; ++t) {
    std::vector<double> attr(
        static_cast<std::size_t>(options.num_edge_types), 0.0);
    attr[static_cast<std::size_t>(t)] = 1.0;
    g.set_edge_type_attr(t, attr);
  }
  GraphBuilder b(g);
  // Bounded attempts: dense requests (num_edges near the complete-graph
  // limit) terminate instead of spinning on duplicate draws.
  const std::int64_t max_attempts = options.num_edges * 20;
  for (std::int64_t a = 0;
       a < max_attempts && b.num_edges_added() < options.num_edges; ++a) {
    const auto u = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(options.num_nodes)));
    const auto v = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(options.num_nodes)));
    if (u == v) continue;
    b.add_edge_unique(u, v,
                      static_cast<std::int32_t>(rng.uniform_int(
                          static_cast<std::uint64_t>(options.num_edge_types))));
  }
  g.finalize();
  return g;
}

void split_links(std::vector<seal::LinkExample> links, std::int64_t num_train,
                 std::int64_t num_test, util::Rng& rng, LinkDataset& out) {
  if (num_train + num_test > static_cast<std::int64_t>(links.size()))
    throw std::invalid_argument("split_links: not enough links generated");
  rng.shuffle(links);
  out.train_links.assign(links.begin(), links.begin() + num_train);
  out.test_links.assign(links.begin() + num_train,
                        links.begin() + num_train + num_test);
}

}  // namespace amdgcnn::datasets
