#include "datasets/kg_generator.h"

#include <cmath>
#include <stdexcept>

namespace amdgcnn::datasets {

std::uint64_t GraphBuilder::key(graph::NodeId u, graph::NodeId v) {
  const auto lo = static_cast<std::uint64_t>(std::min(u, v));
  const auto hi = static_cast<std::uint64_t>(std::max(u, v));
  return (hi << 32) | lo;
}

bool GraphBuilder::add_edge_unique(graph::NodeId u, graph::NodeId v,
                                   std::int32_t type) {
  if (u == v) return false;
  if (!seen_.insert(key(u, v)).second) return false;
  g_->add_edge(u, v, type);
  ++added_;
  return true;
}

bool GraphBuilder::has_edge(graph::NodeId u, graph::NodeId v) const {
  return seen_.count(key(u, v)) > 0;
}

graph::NodeId pick(const std::vector<graph::NodeId>& pool, util::Rng& rng) {
  if (pool.empty()) throw std::invalid_argument("pick: empty pool");
  return pool[rng.uniform_int(static_cast<std::uint64_t>(pool.size()))];
}

std::int32_t noisy_label(std::int32_t label, std::int64_t num_classes,
                         double noise, util::Rng& rng) {
  if (!rng.bernoulli(noise)) return label;
  // uniform over the other classes
  auto other = static_cast<std::int32_t>(
      rng.uniform_int(static_cast<std::uint64_t>(num_classes - 1)));
  return other >= label ? other + 1 : other;
}

graph::KnowledgeGraph make_random_kg(const RandomKGOptions& options) {
  if (options.num_nodes < 2)
    throw std::invalid_argument("make_random_kg: need at least 2 nodes");
  graph::KnowledgeGraph g(options.num_node_types, options.num_edge_types,
                          /*edge_attr_dim=*/options.num_edge_types);
  util::Rng rng(options.seed);
  for (std::int64_t i = 0; i < options.num_nodes; ++i)
    g.add_node(static_cast<std::int32_t>(rng.uniform_int(
        static_cast<std::uint64_t>(options.num_node_types))));
  for (std::int32_t t = 0; t < options.num_edge_types; ++t) {
    std::vector<double> attr(
        static_cast<std::size_t>(options.num_edge_types), 0.0);
    attr[static_cast<std::size_t>(t)] = 1.0;
    g.set_edge_type_attr(t, attr);
  }
  GraphBuilder b(g);
  // Bounded attempts: dense requests (num_edges near the complete-graph
  // limit) terminate instead of spinning on duplicate draws.
  const std::int64_t max_attempts = options.num_edges * 20;
  for (std::int64_t a = 0;
       a < max_attempts && b.num_edges_added() < options.num_edges; ++a) {
    const auto u = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(options.num_nodes)));
    const auto v = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(options.num_nodes)));
    if (u == v) continue;
    b.add_edge_unique(u, v,
                      static_cast<std::int32_t>(rng.uniform_int(
                          static_cast<std::uint64_t>(options.num_edge_types))));
  }
  g.finalize();
  return g;
}

graph::KnowledgeGraph make_scale_kg(const ScaleKGOptions& options) {
  if (options.num_nodes < 2)
    throw std::invalid_argument("make_scale_kg: need at least 2 nodes");
  if (options.mean_degree <= 0.0 || options.degree_skew <= 0.0)
    throw std::invalid_argument(
        "make_scale_kg: mean_degree and degree_skew must be positive");
  graph::KnowledgeGraph g(options.num_node_types, options.num_edge_types,
                          /*edge_attr_dim=*/options.num_edge_types);
  util::Rng rng(options.seed);
  // Node types kept in a side vector: node_type() queries open only after
  // finalize(), and the edge-type function below needs them while streaming.
  std::vector<std::int32_t> types;
  types.reserve(static_cast<std::size_t>(options.num_nodes));
  for (std::int64_t i = 0; i < options.num_nodes; ++i) {
    types.push_back(static_cast<std::int32_t>(rng.uniform_int(
        static_cast<std::uint64_t>(options.num_node_types))));
    g.add_node(types.back());
  }
  for (std::int32_t t = 0; t < options.num_edge_types; ++t) {
    std::vector<double> attr(
        static_cast<std::size_t>(options.num_edge_types), 0.0);
    attr[static_cast<std::size_t>(t)] = 1.0;
    g.set_edge_type_attr(t, attr);
  }

  const auto n = options.num_nodes;
  const auto target_edges = static_cast<std::int64_t>(
      static_cast<double>(n) * options.mean_degree / 2.0);
  auto skewed_node = [&]() {
    const double u = std::pow(rng.uniform(), options.degree_skew);
    return static_cast<graph::NodeId>(std::min(
        static_cast<std::int64_t>(u * static_cast<double>(n)), n - 1));
  };
  for (std::int64_t e = 0; e < target_edges; ++e) {
    const graph::NodeId u = skewed_node();
    auto v = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(n)));
    if (u == v) v = static_cast<graph::NodeId>((v + 1) % n);
    // Relation type reveals the endpoint types (the attribute-aware-model
    // recipe of the named generators) with a 10% uniform-noise floor.
    auto t = static_cast<std::int32_t>(
        (types[static_cast<std::size_t>(u)] +
         types[static_cast<std::size_t>(v)]) %
        options.num_edge_types);
    if (rng.bernoulli(0.1))
      t = static_cast<std::int32_t>(rng.uniform_int(
          static_cast<std::uint64_t>(options.num_edge_types)));
    g.add_edge(u, v, t);
  }
  g.finalize();
  return g;
}

std::vector<seal::LinkExample> sample_scale_links(
    const graph::KnowledgeGraph& g, std::int64_t count, std::uint64_t seed) {
  if (count < 0)
    throw std::invalid_argument("sample_scale_links: negative count");
  if (g.num_nodes() < 2 || g.num_live_edges() == 0)
    throw std::invalid_argument("sample_scale_links: graph too small");
  util::Rng rng(seed);
  const auto n = static_cast<std::uint64_t>(g.num_nodes());
  std::vector<seal::LinkExample> out;
  out.reserve(static_cast<std::size_t>(count));
  while (static_cast<std::int64_t>(out.size()) < count) {
    if (out.size() % 2 == 0) {
      const auto e = static_cast<graph::EdgeId>(
          rng.uniform_int(static_cast<std::uint64_t>(g.num_edges())));
      if (g.edge_removed(e)) continue;  // overlay tombstone: redraw
      const auto& rec = g.edge(e);
      out.push_back({rec.src, rec.dst, 1});
    } else {
      const auto u = static_cast<graph::NodeId>(rng.uniform_int(n));
      auto v = static_cast<graph::NodeId>(rng.uniform_int(n));
      if (u == v)
        v = static_cast<graph::NodeId>((v + 1) % static_cast<std::int64_t>(n));
      out.push_back({u, v, 0});
    }
  }
  return out;
}

void split_links(std::vector<seal::LinkExample> links, std::int64_t num_train,
                 std::int64_t num_test, util::Rng& rng, LinkDataset& out) {
  if (num_train + num_test > static_cast<std::int64_t>(links.size()))
    throw std::invalid_argument("split_links: not enough links generated");
  rng.shuffle(links);
  out.train_links.assign(links.begin(), links.begin() + num_train);
  out.test_links.assign(links.begin() + num_train,
                        links.begin() + num_train + num_test);
}

}  // namespace amdgcnn::datasets
