// cora_sim — synthetic stand-in for Cora (Planetoid).
//
// Paper task (§IV): binary link prediction (edge existence) on a citation
// network with 7 node classes, ONE edge type and NO edge attributes — the
// control benchmark where AM-DGCNN's edge machinery is idle and the
// comparison reduces to GAT-vs-GCN node message passing (paper: 0.91 vs
// 0.84 AUC).
//
// Generator: degree-corrected stochastic block model over 7 communities
// (within-community edges dominate, matching citation homophily); explicit
// node features are a noisy community one-hot, the proxy for Cora's
// class-correlated bag-of-words.  Positives are observed edges (the target
// edge is masked during subgraph extraction, per SEAL), negatives are
// uniform non-edges; 80/20 split as in the paper.
#pragma once

#include <cstdint>

#include "datasets/kg_generator.h"

namespace amdgcnn::datasets {

struct CoraSimOptions {
  std::uint64_t seed = 5;
  std::int64_t num_nodes = 2708;   // faithful to Cora
  std::int64_t num_edges = 5429;   // faithful to Cora
  double within_community = 0.8;   // fraction of homophilous edges
  double triadic_closure = 0.35;   // fraction of edges closing a wedge
                                   // (citation graphs are highly clustered —
                                   // this is what gives SEAL its common-
                                   // neighbor signal on real Cora)
  double feature_noise = 0.08;     // P(one-hot feature flipped)
  /// Number of positive target links (equal negatives are sampled);
  /// 80/20 train/test split is applied to the union.
  std::int64_t num_pos_links = 800;
  double test_fraction = 0.2;
};

inline constexpr std::int32_t kCoraCommunities = 7;
inline constexpr std::int64_t kCoraNumClasses = 2;  // non-edge / edge

LinkDataset make_cora_sim(const CoraSimOptions& options = {});

}  // namespace amdgcnn::datasets
