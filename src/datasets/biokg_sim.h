// biokg_sim — synthetic stand-in for OGBL-BioKG (Hu et al. 2020).
//
// Paper task (§IV): classify protein-protein links into 7 relation classes.
// OGBL-BioKG has 5 node types and 51 relation types; the paper stresses that
// "the bottleneck of the graph's performance is the limited number of data
// samples in the target category" (1300 train / 200 test).
//
// Planted mechanism: each node carries a hidden interaction level
// q(v) in {0,1,2}.  Background relation ids are group*3 + level where the
// level copies a random endpoint's q with probability level_fidelity, so the
// 3-dimensional level one-hot attribute around a node is a noisy estimate of
// q(v).  The protein-protein class is the unordered combination of
// (q(a), q(b)) — 6 classes — plus a catch-all 7th class, with label noise.
// A weak class-correlated common-neighbor plant gives the baseline its
// above-chance (≈0.66 AUC) showing.
#pragma once

#include <cstdint>

#include "datasets/kg_generator.h"

namespace amdgcnn::datasets {

struct BioKGSimOptions {
  std::uint64_t seed = 11;
  double scale = 1.0;             // 1.0 ≈ 2.9k nodes
  std::int64_t num_train = 650;   // paper: 1300
  std::int64_t num_test = 200;    // paper: 200
  double level_fidelity = 0.92;   // P(edge level copies an endpoint's q)
  double label_noise = 0.05;
  double other_class_rate = 0.08; // P(label replaced by the catch-all class)
};

inline constexpr std::int32_t kBioKGNodeTypes = 5;
inline constexpr std::int32_t kBioKGEdgeTypes = 51;  // 17 groups x 3 levels
inline constexpr std::int64_t kBioKGNumClasses = 7;

enum BioKGNodeType : std::int32_t {
  kProtein = 0,
  kBioDrug,
  kBioDisease,
  kSideEffect,
  kFunction,
};

LinkDataset make_biokg_sim(const BioKGSimOptions& options = {});

}  // namespace amdgcnn::datasets
