#include "graph/knowledge_graph.h"

#include <algorithm>
#include <stdexcept>

namespace amdgcnn::graph {

KnowledgeGraph::KnowledgeGraph(std::int32_t num_node_types,
                               std::int32_t num_edge_types,
                               std::int64_t edge_attr_dim,
                               std::int64_t node_feat_dim)
    : num_node_types_(num_node_types),
      num_edge_types_(num_edge_types),
      edge_attr_dim_(edge_attr_dim),
      node_feat_dim_(node_feat_dim) {
  if (num_node_types <= 0 || num_edge_types <= 0)
    throw std::invalid_argument("KnowledgeGraph: type counts must be > 0");
  if (edge_attr_dim < 0 || node_feat_dim < 0)
    throw std::invalid_argument("KnowledgeGraph: negative attribute dim");
  edge_type_attr_.assign(
      static_cast<std::size_t>(num_edge_types) * edge_attr_dim, 0.0);
}

void KnowledgeGraph::require_finalized(const char* what) const {
  if (!finalized_)
    throw std::logic_error(std::string(what) + ": graph not finalized");
}

void KnowledgeGraph::require_not_finalized(const char* what) const {
  if (finalized_)
    throw std::logic_error(std::string(what) + ": graph already finalized");
}

NodeId KnowledgeGraph::add_node(std::int32_t type) {
  require_not_finalized("add_node");
  if (type < 0 || type >= num_node_types_)
    throw std::invalid_argument("add_node: type out of range");
  node_type_.push_back(type);
  if (node_feat_dim_ > 0)
    node_feat_.resize(node_feat_.size() + node_feat_dim_, 0.0);
  return static_cast<NodeId>(node_type_.size() - 1);
}

EdgeId KnowledgeGraph::add_edge(NodeId u, NodeId v, std::int32_t type) {
  require_not_finalized("add_edge");
  const auto n = static_cast<NodeId>(node_type_.size());
  if (u < 0 || u >= n || v < 0 || v >= n)
    throw std::invalid_argument("add_edge: endpoint out of range");
  if (u == v) throw std::invalid_argument("add_edge: self-loop rejected");
  if (type < 0 || type >= num_edge_types_)
    throw std::invalid_argument("add_edge: type out of range");
  edges_.push_back({u, v, type});
  return static_cast<EdgeId>(edges_.size() - 1);
}

void KnowledgeGraph::set_node_features(NodeId v, std::span<const double> feat) {
  if (node_feat_dim_ == 0)
    throw std::logic_error("set_node_features: node_feat_dim is 0");
  if (v < 0 || v >= static_cast<NodeId>(node_type_.size()))
    throw std::invalid_argument("set_node_features: node out of range");
  if (static_cast<std::int64_t>(feat.size()) != node_feat_dim_)
    throw std::invalid_argument("set_node_features: wrong feature length");
  std::copy(feat.begin(), feat.end(),
            node_feat_.begin() + static_cast<std::size_t>(v) * node_feat_dim_);
}

void KnowledgeGraph::set_edge_type_attr(std::int32_t type,
                                        std::span<const double> attr) {
  if (edge_attr_dim_ == 0)
    throw std::logic_error("set_edge_type_attr: edge_attr_dim is 0");
  if (type < 0 || type >= num_edge_types_)
    throw std::invalid_argument("set_edge_type_attr: type out of range");
  if (static_cast<std::int64_t>(attr.size()) != edge_attr_dim_)
    throw std::invalid_argument("set_edge_type_attr: wrong attr length");
  std::copy(attr.begin(), attr.end(),
            edge_type_attr_.begin() +
                static_cast<std::size_t>(type) * edge_attr_dim_);
}

void KnowledgeGraph::finalize() {
  require_not_finalized("finalize");
  const std::int64_t n = num_nodes();
  std::vector<std::int64_t> deg(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : edges_) {
    ++deg[static_cast<std::size_t>(e.src) + 1];
    ++deg[static_cast<std::size_t>(e.dst) + 1];
  }
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t i = 0; i < n; ++i)
    offsets_[i + 1] = offsets_[i] + deg[i + 1];
  adjacency_.resize(static_cast<std::size_t>(offsets_[n]));
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
    const auto& e = edges_[eid];
    adjacency_[cursor[e.src]++] = {e.dst, static_cast<EdgeId>(eid)};
    adjacency_[cursor[e.dst]++] = {e.src, static_cast<EdgeId>(eid)};
  }
  finalized_ = true;
}

std::int32_t KnowledgeGraph::node_type(NodeId v) const {
  if (v < 0 || v >= static_cast<NodeId>(node_type_.size()))
    throw std::invalid_argument("node_type: node out of range");
  return node_type_[v];
}

const EdgeRecord& KnowledgeGraph::edge(EdgeId e) const {
  if (e < 0 || e >= static_cast<EdgeId>(edges_.size()))
    throw std::invalid_argument("edge: id out of range");
  return edges_[e];
}

std::span<const double> KnowledgeGraph::edge_attr(EdgeId e) const {
  return edge_type_attr(edge(e).type);
}

std::span<const double> KnowledgeGraph::edge_type_attr(
    std::int32_t type) const {
  if (type < 0 || type >= num_edge_types_)
    throw std::invalid_argument("edge_type_attr: type out of range");
  if (edge_attr_dim_ == 0) return {};
  return {edge_type_attr_.data() +
              static_cast<std::size_t>(type) * edge_attr_dim_,
          static_cast<std::size_t>(edge_attr_dim_)};
}

std::span<const double> KnowledgeGraph::node_features(NodeId v) const {
  if (v < 0 || v >= static_cast<NodeId>(node_type_.size()))
    throw std::invalid_argument("node_features: node out of range");
  if (node_feat_dim_ == 0) return {};
  return {node_feat_.data() + static_cast<std::size_t>(v) * node_feat_dim_,
          static_cast<std::size_t>(node_feat_dim_)};
}

std::span<const Adjacent> KnowledgeGraph::neighbors(NodeId v) const {
  require_finalized("neighbors");
  if (v < 0 || v >= static_cast<NodeId>(node_type_.size()))
    throw std::invalid_argument("neighbors: node out of range");
  return {adjacency_.data() + offsets_[v],
          static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
}

std::int64_t KnowledgeGraph::degree(NodeId v) const {
  require_finalized("degree");
  if (v < 0 || v >= static_cast<NodeId>(node_type_.size()))
    throw std::invalid_argument("degree: node out of range");
  return offsets_[v + 1] - offsets_[v];
}

EdgeId KnowledgeGraph::find_edge(NodeId u, NodeId v) const {
  require_finalized("find_edge");
  if (u < 0 || u >= static_cast<NodeId>(node_type_.size()) || v < 0 ||
      v >= static_cast<NodeId>(node_type_.size()))
    throw std::invalid_argument("find_edge: node out of range");
  const NodeId from = degree(u) <= degree(v) ? u : v;
  const NodeId to = from == u ? v : u;
  for (const auto& a : neighbors(from))
    if (a.node == to) return a.edge;
  return -1;
}

std::vector<std::int64_t> KnowledgeGraph::node_type_counts() const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_node_types_),
                                   0);
  for (auto t : node_type_) ++counts[static_cast<std::size_t>(t)];
  return counts;
}

std::vector<std::int64_t> KnowledgeGraph::edge_type_counts() const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_edge_types_),
                                   0);
  for (const auto& e : edges_) ++counts[static_cast<std::size_t>(e.type)];
  return counts;
}

}  // namespace amdgcnn::graph
