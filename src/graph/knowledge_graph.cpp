#include "graph/knowledge_graph.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

namespace amdgcnn::graph {

namespace {
std::int64_t g_id_capacity_override = 0;  // 0 = the real 2^31-1 limit
}  // namespace

std::uint64_t KnowledgeGraph::next_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::int64_t KnowledgeGraph::id_capacity() {
  return g_id_capacity_override > 0
             ? g_id_capacity_override
             : static_cast<std::int64_t>(
                   std::numeric_limits<NodeId>::max());
}

void KnowledgeGraph::set_id_capacity_for_testing(std::int64_t cap) {
  if (cap < 0 ||
      cap > static_cast<std::int64_t>(std::numeric_limits<NodeId>::max()))
    throw std::invalid_argument("set_id_capacity_for_testing: bad capacity");
  g_id_capacity_override = cap;
}

KnowledgeGraph::KnowledgeGraph(std::int32_t num_node_types,
                               std::int32_t num_edge_types,
                               std::int64_t edge_attr_dim,
                               std::int64_t node_feat_dim)
    : num_node_types_(num_node_types),
      num_edge_types_(num_edge_types),
      edge_attr_dim_(edge_attr_dim),
      node_feat_dim_(node_feat_dim) {
  if (num_node_types <= 0 || num_edge_types <= 0)
    throw std::invalid_argument("KnowledgeGraph: type counts must be > 0");
  if (edge_attr_dim < 0 || node_feat_dim < 0)
    throw std::invalid_argument("KnowledgeGraph: negative attribute dim");
  edge_type_attr_.assign(
      static_cast<std::size_t>(num_edge_types) * edge_attr_dim, 0.0);
}

void KnowledgeGraph::require_finalized(const char* what) const {
  if (!finalized_)
    throw std::logic_error(std::string(what) + ": graph not finalized");
}

void KnowledgeGraph::require_not_finalized(const char* what) const {
  if (finalized_)
    throw std::logic_error(std::string(what) + ": graph already finalized");
}

NodeId KnowledgeGraph::add_node(std::int32_t type) {
  require_not_finalized("add_node");
  if (type < 0 || type >= num_node_types_)
    throw std::invalid_argument("add_node: type out of range");
  if (num_nodes() >= id_capacity())
    throw std::invalid_argument(
        "add_node: node count would overflow NodeId (2^31-1)");
  node_type_.push_back(type);
  if (node_feat_dim_ > 0)
    node_feat_.resize(node_feat_.size() + node_feat_dim_, 0.0);
  return static_cast<NodeId>(node_type_.size() - 1);
}

EdgeId KnowledgeGraph::add_edge(NodeId u, NodeId v, std::int32_t type) {
  require_not_finalized("add_edge");
  const auto n = static_cast<NodeId>(node_type_.size());
  if (u < 0 || u >= n || v < 0 || v >= n)
    throw std::invalid_argument("add_edge: endpoint out of range");
  if (u == v) throw std::invalid_argument("add_edge: self-loop rejected");
  if (type < 0 || type >= num_edge_types_)
    throw std::invalid_argument("add_edge: type out of range");
  if (num_edges() >= id_capacity())
    throw std::invalid_argument(
        "add_edge: edge count would overflow EdgeId (2^31-1)");
  edges_.push_back({u, v, type});
  return static_cast<EdgeId>(edges_.size() - 1);
}

void KnowledgeGraph::set_node_features(NodeId v, std::span<const double> feat) {
  if (node_feat_dim_ == 0)
    throw std::logic_error("set_node_features: node_feat_dim is 0");
  if (snap_)
    throw std::logic_error(
        "set_node_features: snapshot-backed features are read-only "
        "(compact() first)");
  if (v < 0 || v >= static_cast<NodeId>(node_type_.size()))
    throw std::invalid_argument("set_node_features: node out of range");
  if (static_cast<std::int64_t>(feat.size()) != node_feat_dim_)
    throw std::invalid_argument("set_node_features: wrong feature length");
  std::copy(feat.begin(), feat.end(),
            node_feat_.begin() + static_cast<std::size_t>(v) * node_feat_dim_);
}

void KnowledgeGraph::set_edge_type_attr(std::int32_t type,
                                        std::span<const double> attr) {
  if (edge_attr_dim_ == 0)
    throw std::logic_error("set_edge_type_attr: edge_attr_dim is 0");
  if (type < 0 || type >= num_edge_types_)
    throw std::invalid_argument("set_edge_type_attr: type out of range");
  if (static_cast<std::int64_t>(attr.size()) != edge_attr_dim_)
    throw std::invalid_argument("set_edge_type_attr: wrong attr length");
  std::copy(attr.begin(), attr.end(),
            edge_type_attr_.begin() +
                static_cast<std::size_t>(type) * edge_attr_dim_);
}

void KnowledgeGraph::build_csr() {
  const std::int64_t n = num_nodes();
  std::vector<std::int64_t> deg(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : edges_) {
    ++deg[static_cast<std::size_t>(e.src) + 1];
    ++deg[static_cast<std::size_t>(e.dst) + 1];
  }
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t i = 0; i < n; ++i)
    offsets_[i + 1] = offsets_[i] + deg[i + 1];
  adjacency_.resize(static_cast<std::size_t>(offsets_[n]));
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
    const auto& e = edges_[eid];
    adjacency_[cursor[e.src]++] = {e.dst, static_cast<EdgeId>(eid)};
    adjacency_[cursor[e.dst]++] = {e.src, static_cast<EdgeId>(eid)};
  }
}

void KnowledgeGraph::finalize() {
  require_not_finalized("finalize");
  if (num_nodes() > id_capacity() || num_edges() > id_capacity())
    throw std::invalid_argument(
        "finalize: node/edge count overflows the 32-bit id range");
  build_csr();
  finalized_ = true;
}

void KnowledgeGraph::check_update_endpoints(const char* what, NodeId u,
                                            NodeId v) const {
  using Kind = GraphUpdateError::Kind;
  if (!finalized_)
    throw GraphUpdateError(Kind::kNotFinalized,
                           std::string(what) + ": graph not finalized "
                                               "(use add_edge before finalize)");
  const auto n = static_cast<NodeId>(num_nodes());
  if (u < 0 || u >= n || v < 0 || v >= n)
    throw GraphUpdateError(Kind::kNodeOutOfRange,
                           std::string(what) + ": endpoint out of range");
  if (u == v)
    throw GraphUpdateError(Kind::kSelfLoop,
                           std::string(what) + ": self-loop rejected");
}

EdgeId KnowledgeGraph::insert_edge(NodeId u, NodeId v, std::int32_t type) {
  using Kind = GraphUpdateError::Kind;
  check_update_endpoints("insert_edge", u, v);
  if (type < 0 || type >= num_edge_types_)
    throw GraphUpdateError(Kind::kTypeOutOfRange,
                           "insert_edge: type out of range");
  if (find_edge(u, v) >= 0)
    throw GraphUpdateError(Kind::kDuplicateEdge,
                           "insert_edge: edge already present");
  if (num_edges() >= id_capacity())
    throw GraphUpdateError(
        Kind::kIdOverflow,
        "insert_edge: edge count would overflow EdgeId (2^31-1)");
  edges_.push_back({u, v, type});
  const auto id = static_cast<EdgeId>(num_edges() - 1);
  overlay_.materialize(u, base_neighbors(u)).push_back({v, id});
  overlay_.materialize(v, base_neighbors(v)).push_back({u, id});
  overlay_.note_insert();
  overlay_.touch(u, v);
  return id;
}

EdgeId KnowledgeGraph::insert_edge(NodeId u, NodeId v, std::int32_t type,
                                   std::span<const double> attr) {
  using Kind = GraphUpdateError::Kind;
  if (static_cast<std::int64_t>(attr.size()) != edge_attr_dim_)
    throw GraphUpdateError(Kind::kAttrDimMismatch,
                           "insert_edge: attribute length does not match "
                           "edge_attr_dim");
  const auto id = insert_edge(u, v, type);
  if (edge_attr_dim_ > 0)
    std::copy(attr.begin(), attr.end(),
              edge_type_attr_.begin() +
                  static_cast<std::size_t>(type) * edge_attr_dim_);
  return id;
}

EdgeId KnowledgeGraph::delete_edge(NodeId u, NodeId v) {
  using Kind = GraphUpdateError::Kind;
  check_update_endpoints("delete_edge", u, v);
  const EdgeId e = find_edge(u, v);
  if (e < 0)
    throw GraphUpdateError(Kind::kMissingEdge,
                           "delete_edge: no edge between the endpoints");
  overlay_.mark_removed(e);
  auto erase_entry = [&](NodeId from, NodeId to) {
    auto& adj = overlay_.materialize(from, base_neighbors(from));
    for (auto it = adj.begin(); it != adj.end(); ++it)
      if (it->edge == e && it->node == to) {
        adj.erase(it);  // order-preserving: later entries keep their rank
        return;
      }
  };
  erase_entry(u, v);
  erase_entry(v, u);
  overlay_.touch(u, v);
  return e;
}

void KnowledgeGraph::detach_snapshot() {
  if (!snap_) return;
  // Owned copies of the mapped base arrays.  Edge records: base first, then
  // the post-load inserts already in edges_ — preserving every id.
  std::vector<EdgeRecord> all_edges;
  all_edges.reserve(static_cast<std::size_t>(num_edges()));
  all_edges.insert(all_edges.end(), snap_edges_,
                   snap_edges_ + snap_num_edges_);
  all_edges.insert(all_edges.end(), edges_.begin(), edges_.end());
  edges_ = std::move(all_edges);
  node_type_.assign(snap_node_type_, snap_node_type_ + snap_num_nodes_);
  if (node_feat_dim_ > 0)
    node_feat_.assign(snap_node_feat_,
                      snap_node_feat_ + snap_num_nodes_ * node_feat_dim_);
  // The CSR arrays are rebuilt by the caller (compact); no need to copy.
  snap_.reset();
  snap_node_type_ = nullptr;
  snap_edges_ = nullptr;
  snap_offsets_ = nullptr;
  snap_adjacency_ = nullptr;
  snap_node_feat_ = nullptr;
  snap_num_nodes_ = 0;
  snap_num_edges_ = 0;
}

void KnowledgeGraph::compact() {
  if (!finalized_)
    throw GraphUpdateError(GraphUpdateError::Kind::kNotFinalized,
                           "compact: graph not finalized");
  if (overlay_.empty() && !snap_) return;
  detach_snapshot();
  // Drop tombstones, keeping the relative order of survivors: a node's
  // rebuilt CSR slice then equals its patched overlay list byte for byte
  // (base survivors in base order, then overlay inserts in insertion
  // order), so compaction is invisible to every adjacency consumer.
  std::vector<EdgeRecord> live;
  live.reserve(edges_.size());
  for (std::size_t eid = 0; eid < edges_.size(); ++eid)
    if (!overlay_.removed(static_cast<EdgeId>(eid))) live.push_back(edges_[eid]);
  edges_ = std::move(live);
  overlay_.clear_structural();
  build_csr();
}

bool KnowledgeGraph::edge_removed(EdgeId e) const {
  if (e < 0 || e >= static_cast<EdgeId>(num_edges()))
    throw std::invalid_argument("edge_removed: id out of range");
  return overlay_.removed(e);
}

std::int32_t KnowledgeGraph::node_type(NodeId v) const {
  if (v < 0 || v >= static_cast<NodeId>(num_nodes()))
    throw std::invalid_argument("node_type: node out of range");
  return node_type_data()[v];
}

const EdgeRecord& KnowledgeGraph::edge(EdgeId e) const {
  if (e < 0 || e >= static_cast<EdgeId>(num_edges()))
    throw std::invalid_argument("edge: id out of range");
  return edge_rec(e);
}

std::span<const double> KnowledgeGraph::edge_attr(EdgeId e) const {
  return edge_type_attr(edge(e).type);
}

std::span<const double> KnowledgeGraph::edge_type_attr(
    std::int32_t type) const {
  if (type < 0 || type >= num_edge_types_)
    throw std::invalid_argument("edge_type_attr: type out of range");
  if (edge_attr_dim_ == 0) return {};
  return {edge_type_attr_.data() +
              static_cast<std::size_t>(type) * edge_attr_dim_,
          static_cast<std::size_t>(edge_attr_dim_)};
}

std::span<const double> KnowledgeGraph::node_features(NodeId v) const {
  if (v < 0 || v >= static_cast<NodeId>(num_nodes()))
    throw std::invalid_argument("node_features: node out of range");
  if (node_feat_dim_ == 0) return {};
  return {node_feat_data() + static_cast<std::size_t>(v) * node_feat_dim_,
          static_cast<std::size_t>(node_feat_dim_)};
}

std::span<const Adjacent> KnowledgeGraph::neighbors(NodeId v) const {
  require_finalized("neighbors");
  if (v < 0 || v >= static_cast<NodeId>(num_nodes()))
    throw std::invalid_argument("neighbors: node out of range");
  if (const auto* patched = overlay_.find(v))
    return {patched->data(), patched->size()};
  return base_neighbors(v);
}

std::int64_t KnowledgeGraph::degree(NodeId v) const {
  require_finalized("degree");
  if (v < 0 || v >= static_cast<NodeId>(num_nodes()))
    throw std::invalid_argument("degree: node out of range");
  if (const auto* patched = overlay_.find(v))
    return static_cast<std::int64_t>(patched->size());
  const std::int64_t* off = offsets_data();
  return off[v + 1] - off[v];
}

EdgeId KnowledgeGraph::find_edge(NodeId u, NodeId v) const {
  require_finalized("find_edge");
  if (u < 0 || u >= static_cast<NodeId>(num_nodes()) || v < 0 ||
      v >= static_cast<NodeId>(num_nodes()))
    throw std::invalid_argument("find_edge: node out of range");
  const NodeId from = degree(u) <= degree(v) ? u : v;
  const NodeId to = from == u ? v : u;
  for (const auto& a : neighbors(from))
    if (a.node == to) return a.edge;
  return -1;
}

std::vector<std::int64_t> KnowledgeGraph::node_type_counts() const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_node_types_),
                                   0);
  const std::int32_t* types = node_type_data();
  const std::int64_t n = num_nodes();
  for (std::int64_t v = 0; v < n; ++v)
    ++counts[static_cast<std::size_t>(types[v])];
  return counts;
}

std::vector<std::int64_t> KnowledgeGraph::edge_type_counts() const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_edge_types_),
                                   0);
  const std::int64_t m = num_edges();
  for (std::int64_t eid = 0; eid < m; ++eid)
    if (!overlay_.removed(static_cast<EdgeId>(eid)))
      ++counts[static_cast<std::size_t>(
          edge_rec(static_cast<EdgeId>(eid)).type)];
  return counts;
}

}  // namespace amdgcnn::graph
