// Core graph value types shared by KnowledgeGraph and the dynamic-update
// layer (DeltaOverlay), split out so the overlay header does not depend on
// the full container.  Also home of GraphUpdateError, the typed error every
// post-finalize mutation failure raises: callers of the streaming API can
// catch mutation misuse (duplicate insert, missing edge, bad ids) without
// also catching the construction-time std::logic_error family.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace amdgcnn::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

struct EdgeRecord {
  NodeId src = -1;
  NodeId dst = -1;
  std::int32_t type = 0;
};

/// One (neighbor, via-edge) adjacency entry.
struct Adjacent {
  NodeId node;
  EdgeId edge;
};

/// Typed failure of a post-finalize graph mutation (insert_edge /
/// delete_edge).  `kind()` identifies the violated precondition so tests and
/// serving code can branch without parsing the message.
class GraphUpdateError : public std::runtime_error {
 public:
  enum class Kind {
    kDuplicateEdge,   ///< insert of a (u, v) pair that already has an edge
    kMissingEdge,     ///< delete of a (u, v) pair with no edge
    kNodeOutOfRange,  ///< endpoint id outside [0, num_nodes)
    kSelfLoop,        ///< u == v
    kTypeOutOfRange,  ///< relation type outside [0, num_edge_types)
    kAttrDimMismatch, ///< attribute vector length != edge_attr_dim
    kNotFinalized,    ///< mutation attempted before finalize()
    kIdOverflow,      ///< node/edge count would overflow NodeId/EdgeId
  };

  GraphUpdateError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

}  // namespace amdgcnn::graph
