// Binary CSR snapshot format for KnowledgeGraph (DESIGN.md §2.6).
//
// A snapshot is one file: a fixed 120-byte header followed by six raw,
// 8-byte-aligned array sections (node types, edge records, 64-bit CSR
// offsets, adjacency, edge-type attributes, node features), each written
// exactly as the in-memory representation.  That makes loading trivial in
// both modes:
//
//   * kCopy  — stream the sections into owned vectors (portable), and
//   * kMap   — mmap the file read-only and point the graph's base-array
//     views straight into the mapping: build the graph once, snapshot it,
//     and every later process start is an O(1) map instead of an O(V + E)
//     generator + finalize() run (the scale bench gates this at ≥ 20×).
//
// The mapping is owned by a SnapshotMapping handle held via shared_ptr by
// the loaded graph; it stays alive until compact() detaches (copying the
// mapped arrays into owned storage) or the graph is destroyed.  The
// DeltaOverlay mutation layer coexists with a live mapping: patched
// adjacency lists are seeded by COPYING the mapped base spans, and inserted
// edge records land in an owned side vector, so the mapped pages are never
// written (MAP_PRIVATE read-only).
//
// Format stability: the header carries a magic, a version and an endianness
// probe; any mismatch (truncation, foreign byte order, future version)
// raises std::runtime_error at load instead of serving garbage views.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace amdgcnn::graph {

/// Fixed-layout snapshot header (all fields little-endian on disk; the
/// endian probe rejects foreign byte orders at load).
struct SnapshotHeader {
  char magic[8];           // "AMKGCSR\0"
  std::uint32_t version;   // kSnapshotVersion
  std::uint32_t endian;    // kEndianProbe as written by the saving host
  std::int64_t num_nodes;
  std::int64_t num_edges;  // live edge records (overlay must be empty)
  std::int32_t num_node_types;
  std::int32_t num_edge_types;
  std::int64_t edge_attr_dim;
  std::int64_t node_feat_dim;
  std::int64_t adjacency_count;  // == 2 * num_edges
  // Byte offsets of the array sections, each 8-byte aligned.
  std::uint64_t off_node_type;
  std::uint64_t off_edges;
  std::uint64_t off_offsets;
  std::uint64_t off_adjacency;
  std::uint64_t off_edge_type_attr;
  std::uint64_t off_node_feat;
  std::uint64_t file_size;  // total bytes; rejects truncated files
};
static_assert(sizeof(SnapshotHeader) == 120,
              "snapshot header layout must be stable");

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kEndianProbe = 0x01020304u;
inline constexpr char kSnapshotMagic[8] = {'A', 'M', 'K', 'G',
                                           'C', 'S', 'R', '\0'};

/// Owns one snapshot file mapped (or, where mmap is unavailable, read)
/// into memory.  Read-only; shared by every view the loaded graph holds.
class SnapshotMapping {
 public:
  /// Map `path` read-only.  Throws std::runtime_error on open/map failure
  /// or if the file is smaller than a snapshot header.
  static std::shared_ptr<const SnapshotMapping> open(const std::string& path);

  SnapshotMapping(const SnapshotMapping&) = delete;
  SnapshotMapping& operator=(const SnapshotMapping&) = delete;
  ~SnapshotMapping();

  const std::byte* data() const {
    return static_cast<const std::byte*>(data_);
  }
  std::size_t size() const { return size_; }
  /// True when the pages are a real mmap (false: heap fallback).
  bool memory_mapped() const { return mmapped_; }

 private:
  SnapshotMapping() = default;
  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mmapped_ = false;
};

}  // namespace amdgcnn::graph
