// Enclosing-subgraph extraction (SEAL, §III-A of the paper).
//
// Given a target node pair (a, b), collect the k-hop neighborhoods of both
// targets and induce the subgraph on their UNION (default, SEAL's original
// rule) or INTERSECTION (the paper's choice for PrimeKG, to bound subgraph
// size around high-degree drug/disease nodes).  The target link itself, when
// present, is always masked so the model cannot read the answer off the
// graph.  Per-node distances to each target are computed with the *other*
// target removed (the DRNL convention of Zhang & Chen 2018).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"

namespace amdgcnn::graph {

enum class NeighborhoodMode {
  kUnion,
  kIntersection,
};

struct LocalEdge {
  std::int32_t src;  // local node id
  std::int32_t dst;  // local node id
  EdgeId orig;       // edge id in the full graph (for attribute lookup)
};

/// An induced enclosing subgraph with local (0-based, dense) node ids.
/// Local id 0 is target a and local id 1 is target b, always.
struct EnclosingSubgraph {
  std::vector<NodeId> nodes;          // local id -> original id
  std::vector<LocalEdge> edges;       // induced edges, target link excluded
  std::vector<std::int32_t> dist_a;   // per local node; kUnreachable = -1
  std::vector<std::int32_t> dist_b;
  /// Original ids of EVERY node within num_hops of either target (the union
  /// hull, before the intersection rule or the size cap prunes it), plus the
  /// two targets.  Only filled when ExtractOptions::collect_hull is set.
  /// Any graph mutation that can change this subgraph must touch a hull
  /// node, so caches key their invalidation on hull generations
  /// (core::LinkPredictor, DESIGN.md §2.5).
  std::vector<NodeId> hull;

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(nodes.size());
  }
  static constexpr std::int32_t kTargetA = 0;
  static constexpr std::int32_t kTargetB = 1;
};

struct ExtractOptions {
  std::int32_t num_hops = 2;                          // paper: k = 2
  NeighborhoodMode mode = NeighborhoodMode::kUnion;   // intersection: PrimeKG
  /// Hard cap on subgraph size; nodes closest to the targets are kept.
  /// 0 disables the cap.
  std::int64_t max_nodes = 0;
  /// Also record the uncapped union hull in EnclosingSubgraph::hull (cache
  /// invalidation support); off by default — the extraction bytes are
  /// unchanged either way.
  bool collect_hull = false;
  /// Use the legacy extraction kernel that clears O(num_nodes) scratch
  /// (distance maps, candidate scan, local-id map) for every link.  The
  /// default kernel instead stamps visits with a per-thread epoch counter
  /// (DESIGN.md §2.6), so a link costs O(|subgraph|) regardless of graph
  /// size — the difference is gated at >= 5x at a million nodes by
  /// bench_extraction_throughput.  Both kernels are bit-identical in output;
  /// this flag exists as the bench baseline and a determinism cross-check.
  bool clear_per_link = false;
  /// Reuse hop-bounded BFS frontiers across links sharing an endpoint via a
  /// small per-thread cache keyed on (graph uid, generation, source, masked
  /// edge, depth) — the shape of predict_links candidate batches, where
  /// every link shares the source node and no masked edge.  Affects speed
  /// only, never bytes.  Ignored by the clear_per_link kernel.
  bool reuse_frontiers = false;
};

/// Extract the enclosing subgraph of (a, b).  Requires a != b.  The returned
/// subgraph always contains both targets, even if they fall outside each
/// other's k-hop neighborhood (they then appear isolated, DRNL gives
/// unreachable nodes label 0 downstream).
EnclosingSubgraph extract_enclosing_subgraph(const KnowledgeGraph& g, NodeId a,
                                             NodeId b,
                                             const ExtractOptions& options);

// ---- Frontier-cache hooks (serving runtime, DESIGN.md §2.8) -----------------
//
// The per-thread frontier cache behind ExtractOptions::reuse_frontiers keeps
// only eight slots — enough for one candidate batch fanned out from a shared
// source, but not for endpoints recurring across requests.  The serving
// layer maintains a larger cross-query LRU (serve::Server) and moves entries
// in and out of the calling thread's cache through these two hooks.  Both
// sides of the transfer carry the exact BFS bytes (node list in discovery
// order plus parallel distances), so a seeded hit replays the same subgraph
// a fresh traversal would produce, bit for bit.

/// Copy this thread's cached hop-bounded frontier for (source, masked_edge,
/// depth) on `g` (current generation) into `nodes`/`dist`.  Returns false —
/// leaving the outputs untouched — when the slot is absent or stale.  Does
/// not count toward FrontierCacheStats (it is an export, not a query).
bool export_cached_frontier(const KnowledgeGraph& g, NodeId source,
                            EdgeId masked_edge, std::int32_t depth,
                            std::vector<NodeId>& nodes,
                            std::vector<std::int32_t>& dist);

/// Install a frontier into this thread's cache (evicting LRU) so the next
/// extraction of a link touching `source` replays it instead of traversing.
/// `nodes`/`dist` must be a frontier previously produced for the same
/// (graph uid, generation, source, masked_edge, depth) key — the hook trusts
/// the caller, exactly like a cache slot trusts its own fill.
void seed_frontier_cache(const KnowledgeGraph& g, NodeId source,
                         EdgeId masked_edge, std::int32_t depth,
                         const std::vector<NodeId>& nodes,
                         const std::vector<std::int32_t>& dist);

/// Process-wide frontier-cache counters (relaxed atomics summed over every
/// thread's cache; reset with reset_frontier_cache_stats).  `evictions`
/// counts filled slots that were overwritten, seeds included.
struct FrontierCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
};
FrontierCacheStats frontier_cache_stats();
void reset_frontier_cache_stats();

/// Materialise an enclosing subgraph as a standalone KnowledgeGraph with
/// local node ids (types, relation types and attribute tables preserved).
/// Used by the γ-decay reproduction (bench_gamma_decay) to evaluate
/// heuristics *within* the subgraph, and handy for debugging extractions.
KnowledgeGraph materialize_subgraph(const KnowledgeGraph& g,
                                    const EnclosingSubgraph& sub);

}  // namespace amdgcnn::graph
