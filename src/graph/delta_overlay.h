// Dynamic-update state layered over the immutable CSR of KnowledgeGraph
// (DESIGN.md §2.5).
//
// The base CSR stays frozen; the overlay records the difference as
//   * a tombstone bitmap over edge ids (deleted edges), and
//   * a per-node PATCHED adjacency list for every node an update touched,
//     seeded from the node's base CSR entries (minus tombstones) the first
//     time the node goes dirty, then edited in place.
// Reads stay span-shaped: KnowledgeGraph::neighbors(v) returns the patched
// vector for dirty nodes and the base CSR slice for clean ones, so BFS,
// SEAL extraction, the heuristics and the serving pipeline all see the
// updated graph without a single call-site change.
//
// Ordering discipline (what makes compaction a byte-level no-op): a patched
// list is always [surviving base entries in base-CSR order] + [overlay
// inserts in insertion order].  Overlay edges get ids appended after the
// base edges, so when compact() drops tombstones and rebuilds the CSR by
// edge id, every node's neighbor sequence is reproduced exactly — the
// invariant the compaction-identity property tests pin down.
//
// Generation counters: `generation()` bumps on every successful mutation
// and `node_generation(v)` records the generation of the last mutation
// touching v.  A consumer that cached anything derived from the
// k-hop neighborhood of (a, b) can revalidate by comparing the generation
// of every hull node against its fill-time snapshot — only subgraphs whose
// hull actually went dirty re-extract (core::LinkPredictor's score cache).
// compact() changes no adjacency, so it preserves all counters and never
// invalidates a cache.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph_types.h"

namespace amdgcnn::graph {

class DeltaOverlay {
 public:
  /// Patched adjacency of v, or nullptr when v is clean (read path; used by
  /// KnowledgeGraph::neighbors).
  const std::vector<Adjacent>* find(NodeId v) const {
    if (patched_.empty()) return nullptr;  // fast path: no overlay at all
    const auto it = patched_.find(v);
    return it == patched_.end() ? nullptr : &it->second;
  }

  /// Mutable patched adjacency of v, materialised from the node's base CSR
  /// slice on first touch.  `base` must be v's CLEAN base adjacency; any
  /// previously tombstoned edge of v already has a patch, so the seed copy
  /// never needs filtering.
  std::vector<Adjacent>& materialize(NodeId v, std::span<const Adjacent> base);

  bool removed(EdgeId e) const {
    return static_cast<std::size_t>(e) < removed_.size() &&
           removed_[static_cast<std::size_t>(e)] != 0;
  }
  void mark_removed(EdgeId e);

  /// Record one successful mutation touching u and v: bumps the global
  /// generation and stamps both endpoints with it.
  void touch(NodeId u, NodeId v);

  std::uint64_t generation() const { return generation_; }
  std::uint64_t node_generation(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return i < node_generation_.size() ? node_generation_[i] : 0;
  }

  std::int64_t num_inserts() const { return inserts_; }
  std::int64_t num_tombstones() const { return tombstones_; }
  /// Pending structural delta (inserts + tombstones since the last compact);
  /// the bench's compaction-cadence knob triggers on this.
  std::int64_t depth() const { return inserts_ + tombstones_; }
  bool empty() const { return patched_.empty(); }

  /// Drop the structural delta after the owner folded it into a fresh CSR.
  /// Generation counters survive: compaction does not change the logical
  /// graph, so nothing a consumer cached becomes stale.
  void clear_structural() {
    patched_.clear();
    removed_.clear();
    inserts_ = 0;
    tombstones_ = 0;
  }

  void note_insert() { ++inserts_; }

 private:
  std::unordered_map<NodeId, std::vector<Adjacent>> patched_;
  std::vector<std::uint8_t> removed_;           // indexed by EdgeId
  std::vector<std::uint64_t> node_generation_;  // grown on demand, 0 = clean
  std::uint64_t generation_ = 0;
  std::int64_t inserts_ = 0;
  std::int64_t tombstones_ = 0;
};

}  // namespace amdgcnn::graph
