#include "graph/snapshot.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "graph/knowledge_graph.h"

#if defined(__unix__) || defined(__APPLE__)
#define AMDGCNN_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace amdgcnn::graph {

// The array sections are written/read as raw memory, so their element
// layouts must be exactly what the header arithmetic assumes.
static_assert(sizeof(EdgeRecord) == 12 && alignof(EdgeRecord) == 4,
              "EdgeRecord must be three packed int32s");
static_assert(sizeof(Adjacent) == 8 && alignof(Adjacent) == 4,
              "Adjacent must be two packed int32s");

namespace {

constexpr std::uint64_t align8(std::uint64_t x) { return (x + 7) & ~7ull; }

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("snapshot: " + what);
}

}  // namespace

// ---- SnapshotMapping --------------------------------------------------------

std::shared_ptr<const SnapshotMapping> SnapshotMapping::open(
    const std::string& path) {
  auto mapping = std::shared_ptr<SnapshotMapping>(new SnapshotMapping());
#ifdef AMDGCNN_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(SnapshotHeader)) {
    ::close(fd);
    fail(path + " is smaller than a snapshot header");
  }
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the pages
  if (p == MAP_FAILED) fail("mmap failed for " + path);
  mapping->data_ = p;
  mapping->size_ = size;
  mapping->mmapped_ = true;
#else
  // Heap fallback: same views, the pages just are not demand-paged.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  if (size < sizeof(SnapshotHeader))
    fail(path + " is smaller than a snapshot header");
  in.seekg(0);
  auto* buf = static_cast<char*>(::operator new(size, std::align_val_t{8}));
  if (!in.read(buf, static_cast<std::streamsize>(size))) {
    ::operator delete(buf, std::align_val_t{8});
    fail("short read from " + path);
  }
  mapping->data_ = buf;
  mapping->size_ = size;
  mapping->mmapped_ = false;
#endif
  return mapping;
}

SnapshotMapping::~SnapshotMapping() {
  if (data_ == nullptr) return;
#ifdef AMDGCNN_HAVE_MMAP
  if (mmapped_) {
    ::munmap(data_, size_);
    return;
  }
#endif
  ::operator delete(data_, std::align_val_t{8});
}

// ---- save ------------------------------------------------------------------

void KnowledgeGraph::save_snapshot(const std::string& path) const {
  require_finalized("save_snapshot");
  if (overlay_depth() != 0)
    throw std::logic_error(
        "save_snapshot: overlay has pending updates; call compact() first so "
        "the snapshot is the logical graph");

  SnapshotHeader h{};
  std::memcpy(h.magic, kSnapshotMagic, sizeof(h.magic));
  h.version = kSnapshotVersion;
  h.endian = kEndianProbe;
  h.num_nodes = num_nodes();
  h.num_edges = num_edges();
  h.num_node_types = num_node_types_;
  h.num_edge_types = num_edge_types_;
  h.edge_attr_dim = edge_attr_dim_;
  h.node_feat_dim = node_feat_dim_;
  h.adjacency_count = offsets_data()[h.num_nodes];

  const auto n = static_cast<std::uint64_t>(h.num_nodes);
  const auto m = static_cast<std::uint64_t>(h.num_edges);
  std::uint64_t at = sizeof(SnapshotHeader);
  h.off_node_type = at;
  at = align8(at + n * sizeof(std::int32_t));
  h.off_edges = at;
  at = align8(at + m * sizeof(EdgeRecord));
  h.off_offsets = at;
  at = align8(at + (n + 1) * sizeof(std::int64_t));
  h.off_adjacency = at;
  at = align8(at + static_cast<std::uint64_t>(h.adjacency_count) *
                       sizeof(Adjacent));
  h.off_edge_type_attr = at;
  at = align8(at + static_cast<std::uint64_t>(num_edge_types_) *
                       static_cast<std::uint64_t>(edge_attr_dim_) *
                       sizeof(double));
  h.off_node_feat = at;
  at = align8(at + n * static_cast<std::uint64_t>(node_feat_dim_) *
                       sizeof(double));
  h.file_size = at;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open " + path + " for writing");
  std::uint64_t written = 0;
  auto put = [&](std::uint64_t section_off, const void* data,
                 std::uint64_t bytes) {
    // Zero padding up to the section start keeps every section 8-aligned.
    static const char zeros[8] = {};
    if (section_off < written) fail("internal: section overlap");
    out.write(zeros, static_cast<std::streamsize>(section_off - written));
    if (bytes > 0)
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(bytes));
    written = section_off + bytes;
  };
  put(0, &h, sizeof(h));
  put(h.off_node_type, node_type_data(), n * sizeof(std::int32_t));
  // Edge records may be split across the snapshot view and the owned side
  // vector (a re-saved mapped graph); write both halves contiguously.
  put(h.off_edges, snap_edges_,
      static_cast<std::uint64_t>(snap_num_edges_) * sizeof(EdgeRecord));
  if (!edges_.empty()) {
    out.write(
        reinterpret_cast<const char*>(edges_.data()),
        static_cast<std::streamsize>(edges_.size() * sizeof(EdgeRecord)));
    written += edges_.size() * sizeof(EdgeRecord);
  }
  put(h.off_offsets, offsets_data(), (n + 1) * sizeof(std::int64_t));
  put(h.off_adjacency, adjacency_data(),
      static_cast<std::uint64_t>(h.adjacency_count) * sizeof(Adjacent));
  put(h.off_edge_type_attr, edge_type_attr_.data(),
      edge_type_attr_.size() * sizeof(double));
  put(h.off_node_feat, node_feat_dim_ > 0 ? node_feat_data() : nullptr,
      n * static_cast<std::uint64_t>(node_feat_dim_) * sizeof(double));
  if (written < h.file_size) {
    static const char zeros[8] = {};
    out.write(zeros, static_cast<std::streamsize>(h.file_size - written));
  }
  if (!out) fail("write failed for " + path);
}

// ---- load ------------------------------------------------------------------

namespace {

/// Validate the header against the actual file size; returns it by value.
SnapshotHeader checked_header(const std::byte* data, std::size_t size,
                              const std::string& path) {
  SnapshotHeader h;
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kSnapshotMagic, sizeof(h.magic)) != 0)
    fail(path + ": bad magic (not a KnowledgeGraph snapshot)");
  if (h.version != kSnapshotVersion)
    fail(path + ": unsupported snapshot version " +
         std::to_string(h.version));
  if (h.endian != kEndianProbe)
    fail(path + ": snapshot written on a foreign-endian host");
  if (h.num_nodes < 0 || h.num_edges < 0 ||
      h.adjacency_count != 2 * h.num_edges || h.num_node_types <= 0 ||
      h.num_edge_types <= 0 || h.edge_attr_dim < 0 || h.node_feat_dim < 0)
    fail(path + ": corrupt header counts");
  if (h.file_size != size)
    fail(path + ": file size mismatch (truncated or trailing data)");
  auto section = [&](std::uint64_t off, std::uint64_t bytes,
                     const char* name) {
    if (off % 8 != 0 || off > size ||
        bytes > static_cast<std::uint64_t>(size) - off)
      fail(path + ": section " + name + " out of bounds");
  };
  const auto n = static_cast<std::uint64_t>(h.num_nodes);
  const auto m = static_cast<std::uint64_t>(h.num_edges);
  section(h.off_node_type, n * sizeof(std::int32_t), "node_type");
  section(h.off_edges, m * sizeof(EdgeRecord), "edges");
  section(h.off_offsets, (n + 1) * sizeof(std::int64_t), "offsets");
  section(h.off_adjacency,
          static_cast<std::uint64_t>(h.adjacency_count) * sizeof(Adjacent),
          "adjacency");
  section(h.off_edge_type_attr,
          static_cast<std::uint64_t>(h.num_edge_types) *
              static_cast<std::uint64_t>(h.edge_attr_dim) * sizeof(double),
          "edge_type_attr");
  section(h.off_node_feat,
          n * static_cast<std::uint64_t>(h.node_feat_dim) * sizeof(double),
          "node_feat");
  return h;
}

template <typename T>
const T* view(const std::byte* base, std::uint64_t off) {
  return reinterpret_cast<const T*>(base + off);
}

}  // namespace

KnowledgeGraph KnowledgeGraph::load_snapshot(const std::string& path,
                                             SnapshotLoadMode mode) {
  auto mapping = SnapshotMapping::open(path);
  const std::byte* base = mapping->data();
  const SnapshotHeader h = checked_header(base, mapping->size(), path);

  KnowledgeGraph g(h.num_node_types, h.num_edge_types, h.edge_attr_dim,
                   h.node_feat_dim);
  const auto* offsets = view<std::int64_t>(base, h.off_offsets);
  if (offsets[0] != 0 || offsets[h.num_nodes] != h.adjacency_count)
    fail(path + ": CSR offsets inconsistent with the header");
  // Edge-type attributes are always owned: insert_edge(attr) may redefine
  // them after load, and the table is tiny (types x attr_dim).
  const auto* attr = view<double>(base, h.off_edge_type_attr);
  g.edge_type_attr_.assign(
      attr, attr + static_cast<std::size_t>(h.num_edge_types) *
                       static_cast<std::size_t>(h.edge_attr_dim));

  if (mode == SnapshotLoadMode::kMap) {
    g.snap_ = mapping;
    g.snap_node_type_ = view<std::int32_t>(base, h.off_node_type);
    g.snap_edges_ = view<EdgeRecord>(base, h.off_edges);
    g.snap_offsets_ = offsets;
    g.snap_adjacency_ = view<Adjacent>(base, h.off_adjacency);
    g.snap_node_feat_ =
        h.node_feat_dim > 0 ? view<double>(base, h.off_node_feat) : nullptr;
    g.snap_num_nodes_ = h.num_nodes;
    g.snap_num_edges_ = h.num_edges;
  } else {
    const auto n = static_cast<std::size_t>(h.num_nodes);
    const auto m = static_cast<std::size_t>(h.num_edges);
    const auto* nt = view<std::int32_t>(base, h.off_node_type);
    g.node_type_.assign(nt, nt + n);
    const auto* er = view<EdgeRecord>(base, h.off_edges);
    g.edges_.assign(er, er + m);
    g.offsets_.assign(offsets, offsets + n + 1);
    const auto* adj = view<Adjacent>(base, h.off_adjacency);
    g.adjacency_.assign(adj,
                        adj + static_cast<std::size_t>(h.adjacency_count));
    if (h.node_feat_dim > 0) {
      const auto* nf = view<double>(base, h.off_node_feat);
      g.node_feat_.assign(
          nf, nf + n * static_cast<std::size_t>(h.node_feat_dim));
    }
    // mapping released here: kCopy holds no views into it
  }
  g.finalized_ = true;
  return g;
}

}  // namespace amdgcnn::graph
