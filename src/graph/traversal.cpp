#include "graph/traversal.h"

#include <stdexcept>

namespace amdgcnn::graph {

void bfs_distances_into(const KnowledgeGraph& g, NodeId source,
                        const BfsOptions& options,
                        std::vector<std::int32_t>& dist,
                        std::vector<NodeId>& queue) {
  if (source < 0 || source >= g.num_nodes())
    throw std::invalid_argument("bfs_distances: source out of range");
  dist.assign(static_cast<std::size_t>(g.num_nodes()), kUnreachable);
  queue.clear();
  if (source == options.masked_node) return;
  dist[source] = 0;
  queue.push_back(source);
  // Flat frontier with a read cursor instead of a deque: the vector is
  // reusable scratch and never deallocates between calls.
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const std::int32_t du = dist[u];
    if (options.max_depth >= 0 && du >= options.max_depth) continue;
    for (const auto& a : g.neighbors(u)) {
      if (a.edge == options.masked_edge) continue;
      if (a.node == options.masked_node) continue;
      if (dist[a.node] != kUnreachable) continue;
      dist[a.node] = du + 1;
      queue.push_back(a.node);
    }
  }
}

void VisitEpochMap::begin(std::int64_t num_nodes) {
  const auto n = static_cast<std::size_t>(num_nodes);
  if (stamp_.size() < n) {
    stamp_.resize(n, 0u);
    dist_.resize(n);
  }
  if (++epoch_ == 0) {
    // 32-bit wraparound after ~4e9 traversals: one full clear, then epochs
    // restart at 1 (stamp 0 can never alias a live epoch).
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
}

void bfs_distances_epoch(const KnowledgeGraph& g, NodeId source,
                         const BfsOptions& options, VisitEpochMap& visit,
                         std::vector<NodeId>& visited_out) {
  if (source < 0 || source >= g.num_nodes())
    throw std::invalid_argument("bfs_distances: source out of range");
  visited_out.clear();
  if (source == options.masked_node) return;
  visit.set(source, 0);
  visited_out.push_back(source);
  // The visited list doubles as the flat frontier queue: discovery order IS
  // BFS order, and the caller gets the reached set for free.
  for (std::size_t head = 0; head < visited_out.size(); ++head) {
    const NodeId u = visited_out[head];
    const std::int32_t du = visit.distance(u);
    if (options.max_depth >= 0 && du >= options.max_depth) continue;
    for (const auto& a : g.neighbors(u)) {
      if (a.edge == options.masked_edge) continue;
      if (a.node == options.masked_node) continue;
      if (visit.visited(a.node)) continue;
      visit.set(a.node, du + 1);
      visited_out.push_back(a.node);
    }
  }
}

std::vector<std::int32_t> bfs_distances(const KnowledgeGraph& g, NodeId source,
                                        const BfsOptions& options) {
  std::vector<std::int32_t> dist;
  std::vector<NodeId> queue;
  bfs_distances_into(g, source, options, dist, queue);
  return dist;
}

std::vector<NodeId> k_hop_nodes(const KnowledgeGraph& g, NodeId source,
                                std::int32_t k, const BfsOptions& options) {
  BfsOptions opts = options;
  opts.max_depth = k;
  auto dist = bfs_distances(g, source, opts);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < static_cast<NodeId>(g.num_nodes()); ++v)
    if (dist[v] != kUnreachable) out.push_back(v);
  return out;
}

std::int32_t shortest_path_length(const KnowledgeGraph& g, NodeId from,
                                  NodeId to, const BfsOptions& options) {
  if (to < 0 || to >= g.num_nodes())
    throw std::invalid_argument("shortest_path_length: target out of range");
  auto dist = bfs_distances(g, from, options);
  return dist[to];
}

}  // namespace amdgcnn::graph
