#include "graph/traversal.h"

#include <deque>
#include <stdexcept>

namespace amdgcnn::graph {

std::vector<std::int32_t> bfs_distances(const KnowledgeGraph& g, NodeId source,
                                        const BfsOptions& options) {
  if (source < 0 || source >= g.num_nodes())
    throw std::invalid_argument("bfs_distances: source out of range");
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()),
                                 kUnreachable);
  if (source == options.masked_node) return dist;
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const std::int32_t du = dist[u];
    if (options.max_depth >= 0 && du >= options.max_depth) continue;
    for (const auto& a : g.neighbors(u)) {
      if (a.edge == options.masked_edge) continue;
      if (a.node == options.masked_node) continue;
      if (dist[a.node] != kUnreachable) continue;
      dist[a.node] = du + 1;
      queue.push_back(a.node);
    }
  }
  return dist;
}

std::vector<NodeId> k_hop_nodes(const KnowledgeGraph& g, NodeId source,
                                std::int32_t k, const BfsOptions& options) {
  BfsOptions opts = options;
  opts.max_depth = k;
  auto dist = bfs_distances(g, source, opts);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < static_cast<NodeId>(g.num_nodes()); ++v)
    if (dist[v] != kUnreachable) out.push_back(v);
  return out;
}

std::int32_t shortest_path_length(const KnowledgeGraph& g, NodeId from,
                                  NodeId to, const BfsOptions& options) {
  if (to < 0 || to >= g.num_nodes())
    throw std::invalid_argument("shortest_path_length: target out of range");
  auto dist = bfs_distances(g, from, options);
  return dist[to];
}

}  // namespace amdgcnn::graph
