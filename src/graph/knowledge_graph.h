// Typed, attributed knowledge-graph container.
//
// Nodes carry a type id (paper: 10 types in PrimeKG, 5 in OGBL-BioKG, 1 in
// WordNet-18) and optionally an explicit feature vector.  Edges are
// undirected (SEAL treats knowledge graphs as undirected for enclosing-
// subgraph extraction), carry a relation-type id, and an attribute vector
// (paper §III-B: e.g. PrimeKG's 30 relations compressed to a 2-d ±polarity
// one-hot).  Adjacency is CSR over both endpoint directions, built once by
// finalize().
//
// After finalize() the graph is no longer frozen: insert_edge / delete_edge
// record incremental updates in a DeltaOverlay (tombstone bitmap + per-node
// patched adjacency) so the serving path can mutate the graph in O(degree)
// instead of rebuilding the CSR, and compact() folds the overlay back into
// a fresh CSR whose neighbor order is byte-identical to the overlay view
// (DESIGN.md §2.5).  neighbors()/degree()/find_edge() transparently read
// through the overlay, so every consumer (BFS, SEAL extraction, heuristics)
// sees the updated graph unchanged.  Mutations are NOT thread-safe against
// concurrent reads; reads of an unchanging graph (overlay or not) are.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/delta_overlay.h"
#include "graph/graph_types.h"

namespace amdgcnn::graph {

class KnowledgeGraph {
 public:
  KnowledgeGraph(std::int32_t num_node_types, std::int32_t num_edge_types,
                 std::int64_t edge_attr_dim = 0,
                 std::int64_t node_feat_dim = 0);

  /// Default: empty untyped graph (1 node type, 1 edge type, no attributes);
  /// exists so containers holding graphs are default-constructible.
  KnowledgeGraph() : KnowledgeGraph(1, 1, 0, 0) {}

  // ---- Construction (before finalize) ------------------------------------

  /// Append a node of the given type; returns its id.
  NodeId add_node(std::int32_t type);

  /// Append an undirected edge; returns its id.  Self-loops and duplicate
  /// edges are rejected in finalize() only if `strict` was requested there.
  EdgeId add_edge(NodeId u, NodeId v, std::int32_t type);

  /// Set explicit features for one node (requires node_feat_dim > 0).
  void set_node_features(NodeId v, std::span<const double> feat);

  /// Define the attribute vector for one relation type (requires
  /// edge_attr_dim > 0).  Every edge of that type shares the vector —
  /// exactly how the paper derives edge attributes from relation ids.
  void set_edge_type_attr(std::int32_t type, std::span<const double> attr);

  /// Build the CSR adjacency.  Must be called exactly once; afterwards the
  /// construction API above is closed and the incremental-update API below
  /// opens.
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- Incremental updates (after finalize; DESIGN.md §2.5) ---------------
  //
  // All failures raise GraphUpdateError (typed; never UB): duplicate
  // inserts, self-loops, out-of-range node/type ids, deleting a missing
  // edge, attribute-dim mismatch.

  /// Insert an undirected edge through the delta overlay; returns its id
  /// (stable until the next compact()).  O(degree) on first touch of each
  /// endpoint, O(1) amortised afterwards.
  EdgeId insert_edge(NodeId u, NodeId v, std::int32_t type);

  /// As above, also (re)defining the attribute vector of `type`.  The
  /// attribute length must equal edge_attr_dim() exactly.
  EdgeId insert_edge(NodeId u, NodeId v, std::int32_t type,
                     std::span<const double> attr);

  /// Delete the edge between u and v (base edges become tombstones, overlay
  /// edges are dropped at the next compact()).  Returns the removed id.
  EdgeId delete_edge(NodeId u, NodeId v);

  /// Fold the overlay into a fresh CSR: tombstoned edges vanish, overlay
  /// edges become base edges, and edge ids are renumbered (surviving edges
  /// keep their relative order, so every node's neighbor sequence — and
  /// hence any extraction, DRNL labeling or BFS — is byte-identical before
  /// and after).  Generation counters survive: no cache goes stale.
  void compact();

  /// Monotone counter, bumped by every successful insert/delete (compact()
  /// does not bump it — the logical graph is unchanged).
  std::uint64_t generation() const { return overlay_.generation(); }
  /// Generation of the last mutation touching v (0 = never touched).
  std::uint64_t node_generation(NodeId v) const {
    return overlay_.node_generation(v);
  }
  /// Pending overlay depth (inserts + tombstones since the last compact).
  std::int64_t overlay_depth() const { return overlay_.depth(); }
  /// True when an edge id refers to a tombstoned (deleted, not yet
  /// compacted) edge; its record stays readable until compact().
  bool edge_removed(EdgeId e) const;

  // ---- Topology queries (after finalize) ----------------------------------

  std::int64_t num_nodes() const { return static_cast<std::int64_t>(node_type_.size()); }
  /// Count of edge RECORDS (valid id range), including tombstones awaiting
  /// compaction; see num_live_edges() for the logical edge count.
  std::int64_t num_edges() const { return static_cast<std::int64_t>(edges_.size()); }
  /// Edges actually present in the graph (records minus tombstones).
  std::int64_t num_live_edges() const {
    return static_cast<std::int64_t>(edges_.size()) -
           overlay_.num_tombstones();
  }
  std::int32_t num_node_types() const { return num_node_types_; }
  std::int32_t num_edge_types() const { return num_edge_types_; }
  std::int64_t edge_attr_dim() const { return edge_attr_dim_; }
  std::int64_t node_feat_dim() const { return node_feat_dim_; }

  std::int32_t node_type(NodeId v) const;
  const EdgeRecord& edge(EdgeId e) const;

  /// Attribute vector of one edge (via its relation type); empty when
  /// edge_attr_dim == 0.
  std::span<const double> edge_attr(EdgeId e) const;
  std::span<const double> edge_type_attr(std::int32_t type) const;
  std::span<const double> node_features(NodeId v) const;

  /// All (neighbor, edge) pairs of v.
  std::span<const Adjacent> neighbors(NodeId v) const;
  std::int64_t degree(NodeId v) const;

  /// Edge id connecting u and v, or -1.  O(min-degree).
  EdgeId find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const { return find_edge(u, v) >= 0; }

  /// Count of nodes per type (for dataset-summary tables).
  std::vector<std::int64_t> node_type_counts() const;
  /// Count of edges per type.
  std::vector<std::int64_t> edge_type_counts() const;

 private:
  void require_finalized(const char* what) const;
  void require_not_finalized(const char* what) const;
  /// (Re)build offsets_/adjacency_ from edges_ (counting sort by edge id).
  void build_csr();
  /// Base CSR slice of v, ignoring the overlay (patch seeding).
  std::span<const Adjacent> base_neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }
  /// Shared endpoint/type validation for insert_edge/delete_edge.
  void check_update_endpoints(const char* what, NodeId u, NodeId v) const;

  std::int32_t num_node_types_;
  std::int32_t num_edge_types_;
  std::int64_t edge_attr_dim_;
  std::int64_t node_feat_dim_;

  std::vector<std::int32_t> node_type_;
  std::vector<EdgeRecord> edges_;
  std::vector<double> node_feat_;       // num_nodes x node_feat_dim
  std::vector<double> edge_type_attr_;  // num_edge_types x edge_attr_dim

  // CSR over both directions.
  std::vector<std::int64_t> offsets_;
  std::vector<Adjacent> adjacency_;
  // Post-finalize updates: tombstones, patched adjacency, generations.
  DeltaOverlay overlay_;
  bool finalized_ = false;
};

}  // namespace amdgcnn::graph
