// Typed, attributed knowledge-graph container.
//
// Nodes carry a type id (paper: 10 types in PrimeKG, 5 in OGBL-BioKG, 1 in
// WordNet-18) and optionally an explicit feature vector.  Edges are
// undirected (SEAL treats knowledge graphs as undirected for enclosing-
// subgraph extraction), carry a relation-type id, and an attribute vector
// (paper §III-B: e.g. PrimeKG's 30 relations compressed to a 2-d ±polarity
// one-hot).  Adjacency is CSR over both endpoint directions, built once by
// finalize().
//
// After finalize() the graph is no longer frozen: insert_edge / delete_edge
// record incremental updates in a DeltaOverlay (tombstone bitmap + per-node
// patched adjacency) so the serving path can mutate the graph in O(degree)
// instead of rebuilding the CSR, and compact() folds the overlay back into
// a fresh CSR whose neighbor order is byte-identical to the overlay view
// (DESIGN.md §2.5).  neighbors()/degree()/find_edge() transparently read
// through the overlay, so every consumer (BFS, SEAL extraction, heuristics)
// sees the updated graph unchanged.  Mutations are NOT thread-safe against
// concurrent reads; reads of an unchanging graph (overlay or not) are.
//
// Million-node tier (DESIGN.md §2.6): a finalized graph serialises to a
// compact binary CSR snapshot (save_snapshot) and loads back either by
// copying (kCopy) or zero-copy via mmap (kMap).  A mapped graph keeps its
// big immutable arrays (node types, edge records, 64-bit CSR offsets,
// adjacency, node features) as read-only views into the mapping; the
// DeltaOverlay mutation API works unchanged on top (patched adjacency lists
// are seeded by copying the mapped base spans), and compact() detaches —
// it folds overlay + mapped arrays into owned storage and releases the
// mapping.  All id arithmetic is guarded: growing past 2^31-1 nodes or edge
// records raises a typed error instead of silently wrapping NodeId/EdgeId.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/delta_overlay.h"
#include "graph/graph_types.h"

namespace amdgcnn::graph {

class SnapshotMapping;  // graph/snapshot.h: owns one mmap'd snapshot file

/// How load_snapshot materialises the on-disk arrays.
enum class SnapshotLoadMode : int {
  kMap,   ///< zero-copy: arrays stay in the mmap'd file (read-only views)
  kCopy,  ///< read into owned vectors (portable fallback; same bytes)
};

class KnowledgeGraph {
 public:
  KnowledgeGraph(std::int32_t num_node_types, std::int32_t num_edge_types,
                 std::int64_t edge_attr_dim = 0,
                 std::int64_t node_feat_dim = 0);

  /// Default: empty untyped graph (1 node type, 1 edge type, no attributes);
  /// exists so containers holding graphs are default-constructible.
  KnowledgeGraph() : KnowledgeGraph(1, 1, 0, 0) {}

  // ---- Construction (before finalize) ------------------------------------

  /// Append a node of the given type; returns its id.
  NodeId add_node(std::int32_t type);

  /// Append an undirected edge; returns its id.  Self-loops and duplicate
  /// edges are rejected in finalize() only if `strict` was requested there.
  EdgeId add_edge(NodeId u, NodeId v, std::int32_t type);

  /// Set explicit features for one node (requires node_feat_dim > 0).
  void set_node_features(NodeId v, std::span<const double> feat);

  /// Define the attribute vector for one relation type (requires
  /// edge_attr_dim > 0).  Every edge of that type shares the vector —
  /// exactly how the paper derives edge attributes from relation ids.
  void set_edge_type_attr(std::int32_t type, std::span<const double> attr);

  /// Build the CSR adjacency.  Must be called exactly once; afterwards the
  /// construction API above is closed and the incremental-update API below
  /// opens.
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- Snapshot persistence (after finalize; DESIGN.md §2.6) ---------------

  /// Write the graph as a versioned binary CSR snapshot (64-bit offsets,
  /// 8-byte-aligned sections, mmap-ready).  Requires a finalized graph with
  /// an EMPTY overlay — call compact() first so the snapshot is the logical
  /// graph (throws GraphUpdateError otherwise).
  void save_snapshot(const std::string& path) const;

  /// Load a snapshot written by save_snapshot.  kMap keeps the big arrays
  /// as read-only views into the mapped file (zero copy; the mapping lives
  /// until compact() detaches or the graph is destroyed); kCopy reads them
  /// into owned vectors.  Both modes produce byte-identical adjacency,
  /// attributes and SEAL datasets.
  static KnowledgeGraph load_snapshot(
      const std::string& path, SnapshotLoadMode mode = SnapshotLoadMode::kMap);

  /// True when the base arrays are views into an mmap'd snapshot.
  bool snapshot_backed() const { return snap_ != nullptr; }

  // ---- Incremental updates (after finalize; DESIGN.md §2.5) ---------------
  //
  // All failures raise GraphUpdateError (typed; never UB): duplicate
  // inserts, self-loops, out-of-range node/type ids, deleting a missing
  // edge, attribute-dim mismatch, id overflow.

  /// Insert an undirected edge through the delta overlay; returns its id
  /// (stable until the next compact()).  O(degree) on first touch of each
  /// endpoint, O(1) amortised afterwards.
  EdgeId insert_edge(NodeId u, NodeId v, std::int32_t type);

  /// As above, also (re)defining the attribute vector of `type`.  The
  /// attribute length must equal edge_attr_dim() exactly.
  EdgeId insert_edge(NodeId u, NodeId v, std::int32_t type,
                     std::span<const double> attr);

  /// Delete the edge between u and v (base edges become tombstones, overlay
  /// edges are dropped at the next compact()).  Returns the removed id.
  EdgeId delete_edge(NodeId u, NodeId v);

  /// Fold the overlay into a fresh CSR: tombstoned edges vanish, overlay
  /// edges become base edges, and edge ids are renumbered (surviving edges
  /// keep their relative order, so every node's neighbor sequence — and
  /// hence any extraction, DRNL labeling or BFS — is byte-identical before
  /// and after).  Generation counters survive: no cache goes stale.  On a
  /// snapshot-backed graph this also detaches the mapping (mapped arrays
  /// are copied into owned storage first).
  void compact();

  /// Monotone counter, bumped by every successful insert/delete (compact()
  /// does not bump it — the logical graph is unchanged).
  std::uint64_t generation() const { return overlay_.generation(); }
  /// Generation of the last mutation touching v (0 = never touched).
  std::uint64_t node_generation(NodeId v) const {
    return overlay_.node_generation(v);
  }
  /// Pending overlay depth (inserts + tombstones since the last compact).
  std::int64_t overlay_depth() const { return overlay_.depth(); }
  /// Process-unique instance id, assigned at construction (copies share the
  /// source's id — a copy is content-identical at equal generation, which is
  /// exactly the invariant the extraction frontier cache keys on).
  std::uint64_t uid() const { return uid_; }
  /// True when an edge id refers to a tombstoned (deleted, not yet
  /// compacted) edge; its record stays readable until compact().
  bool edge_removed(EdgeId e) const;

  // ---- Topology queries (after finalize) ----------------------------------

  std::int64_t num_nodes() const {
    return snap_ ? snap_num_nodes_
                 : static_cast<std::int64_t>(node_type_.size());
  }
  /// Count of edge RECORDS (valid id range), including tombstones awaiting
  /// compaction; see num_live_edges() for the logical edge count.
  std::int64_t num_edges() const {
    return snap_num_edges_ + static_cast<std::int64_t>(edges_.size());
  }
  /// Edges actually present in the graph (records minus tombstones).
  std::int64_t num_live_edges() const {
    return num_edges() - overlay_.num_tombstones();
  }
  std::int32_t num_node_types() const { return num_node_types_; }
  std::int32_t num_edge_types() const { return num_edge_types_; }
  std::int64_t edge_attr_dim() const { return edge_attr_dim_; }
  std::int64_t node_feat_dim() const { return node_feat_dim_; }

  std::int32_t node_type(NodeId v) const;
  const EdgeRecord& edge(EdgeId e) const;

  /// Attribute vector of one edge (via its relation type); empty when
  /// edge_attr_dim == 0.
  std::span<const double> edge_attr(EdgeId e) const;
  std::span<const double> edge_type_attr(std::int32_t type) const;
  std::span<const double> node_features(NodeId v) const;

  /// All (neighbor, edge) pairs of v.
  std::span<const Adjacent> neighbors(NodeId v) const;
  std::int64_t degree(NodeId v) const;

  /// Edge id connecting u and v, or -1.  O(min-degree).
  EdgeId find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const { return find_edge(u, v) >= 0; }

  /// Count of nodes per type (for dataset-summary tables).
  std::vector<std::int64_t> node_type_counts() const;
  /// Count of edges per type.
  std::vector<std::int64_t> edge_type_counts() const;

  // ---- Id-capacity guard (32-bit NodeId/EdgeId; DESIGN.md §2.6) -----------

  /// Maximum number of node or edge-record ids a graph may hold: 2^31 - 1
  /// unless lowered for testing.  Growing past it raises invalid_argument
  /// (construction API) or GraphUpdateError::kIdOverflow (update API)
  /// instead of silently wrapping the 32-bit ids.
  static std::int64_t id_capacity();
  /// Test-only: lower the capacity so overflow guards are exercisable
  /// without allocating 2^31 records.  0 restores the real limit.  Not
  /// thread-safe; never call outside tests.
  static void set_id_capacity_for_testing(std::int64_t cap);

 private:
  friend class SnapshotMapping;  // load_snapshot wiring (graph/snapshot.cpp)

  void require_finalized(const char* what) const;
  void require_not_finalized(const char* what) const;
  /// (Re)build offsets_/adjacency_ from edges_ (counting sort by edge id).
  /// Requires fully-owned storage (never runs while snapshot-backed).
  void build_csr();

  // Base-array views: owned vectors or (when snapshot-backed) read-only
  // pointers into the mapping.  Edge records are split: ids below
  // snap_num_edges_ live in the snapshot, later ids (post-load inserts) in
  // the owned edges_ vector — so O(degree) mutation never copies the base.
  const std::int32_t* node_type_data() const {
    return snap_ ? snap_node_type_ : node_type_.data();
  }
  const EdgeRecord& edge_rec(EdgeId e) const {
    return e < snap_num_edges_
               ? snap_edges_[e]
               : edges_[static_cast<std::size_t>(e - snap_num_edges_)];
  }
  const std::int64_t* offsets_data() const {
    return snap_ ? snap_offsets_ : offsets_.data();
  }
  const Adjacent* adjacency_data() const {
    return snap_ ? snap_adjacency_ : adjacency_.data();
  }
  const double* node_feat_data() const {
    return snap_ ? snap_node_feat_ : node_feat_.data();
  }

  /// Base CSR slice of v, ignoring the overlay (patch seeding).
  std::span<const Adjacent> base_neighbors(NodeId v) const {
    const std::int64_t* off = offsets_data();
    return {adjacency_data() + off[v],
            static_cast<std::size_t>(off[v + 1] - off[v])};
  }
  /// Shared endpoint/type validation for insert_edge/delete_edge.
  void check_update_endpoints(const char* what, NodeId u, NodeId v) const;
  /// Copy every mapped base array into owned storage and release the
  /// mapping (compact()'s first step on a snapshot-backed graph).
  void detach_snapshot();

  std::int32_t num_node_types_;
  std::int32_t num_edge_types_;
  std::int64_t edge_attr_dim_;
  std::int64_t node_feat_dim_;

  std::vector<std::int32_t> node_type_;
  std::vector<EdgeRecord> edges_;
  std::vector<double> node_feat_;       // num_nodes x node_feat_dim
  std::vector<double> edge_type_attr_;  // num_edge_types x edge_attr_dim
                                        // (always owned: insert_edge writes)

  // CSR over both directions (64-bit offsets: directed adjacency entry
  // counts may exceed 2^31 even while ids stay 32-bit).
  std::vector<std::int64_t> offsets_;
  std::vector<Adjacent> adjacency_;

  // Snapshot backing (null/0 when the graph owns its arrays).
  std::shared_ptr<const SnapshotMapping> snap_;
  const std::int32_t* snap_node_type_ = nullptr;
  const EdgeRecord* snap_edges_ = nullptr;
  const std::int64_t* snap_offsets_ = nullptr;
  const Adjacent* snap_adjacency_ = nullptr;
  const double* snap_node_feat_ = nullptr;
  std::int64_t snap_num_nodes_ = 0;
  std::int64_t snap_num_edges_ = 0;

  // Post-finalize updates: tombstones, patched adjacency, generations.
  DeltaOverlay overlay_;
  bool finalized_ = false;

  static std::uint64_t next_uid();  // atomic counter, starts at 1
  std::uint64_t uid_ = next_uid();
};

}  // namespace amdgcnn::graph
