// Typed, attributed knowledge-graph container.
//
// Nodes carry a type id (paper: 10 types in PrimeKG, 5 in OGBL-BioKG, 1 in
// WordNet-18) and optionally an explicit feature vector.  Edges are
// undirected (SEAL treats knowledge graphs as undirected for enclosing-
// subgraph extraction), carry a relation-type id, and an attribute vector
// (paper §III-B: e.g. PrimeKG's 30 relations compressed to a 2-d ±polarity
// one-hot).  Adjacency is CSR over both endpoint directions, built once by
// finalize() and immutable afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace amdgcnn::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

struct EdgeRecord {
  NodeId src = -1;
  NodeId dst = -1;
  std::int32_t type = 0;
};

/// One (neighbor, via-edge) adjacency entry.
struct Adjacent {
  NodeId node;
  EdgeId edge;
};

class KnowledgeGraph {
 public:
  KnowledgeGraph(std::int32_t num_node_types, std::int32_t num_edge_types,
                 std::int64_t edge_attr_dim = 0,
                 std::int64_t node_feat_dim = 0);

  /// Default: empty untyped graph (1 node type, 1 edge type, no attributes);
  /// exists so containers holding graphs are default-constructible.
  KnowledgeGraph() : KnowledgeGraph(1, 1, 0, 0) {}

  // ---- Construction (before finalize) ------------------------------------

  /// Append a node of the given type; returns its id.
  NodeId add_node(std::int32_t type);

  /// Append an undirected edge; returns its id.  Self-loops and duplicate
  /// edges are rejected in finalize() only if `strict` was requested there.
  EdgeId add_edge(NodeId u, NodeId v, std::int32_t type);

  /// Set explicit features for one node (requires node_feat_dim > 0).
  void set_node_features(NodeId v, std::span<const double> feat);

  /// Define the attribute vector for one relation type (requires
  /// edge_attr_dim > 0).  Every edge of that type shares the vector —
  /// exactly how the paper derives edge attributes from relation ids.
  void set_edge_type_attr(std::int32_t type, std::span<const double> attr);

  /// Build the CSR adjacency.  Must be called exactly once, after which the
  /// graph is immutable.
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- Topology queries (after finalize) ----------------------------------

  std::int64_t num_nodes() const { return static_cast<std::int64_t>(node_type_.size()); }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(edges_.size()); }
  std::int32_t num_node_types() const { return num_node_types_; }
  std::int32_t num_edge_types() const { return num_edge_types_; }
  std::int64_t edge_attr_dim() const { return edge_attr_dim_; }
  std::int64_t node_feat_dim() const { return node_feat_dim_; }

  std::int32_t node_type(NodeId v) const;
  const EdgeRecord& edge(EdgeId e) const;

  /// Attribute vector of one edge (via its relation type); empty when
  /// edge_attr_dim == 0.
  std::span<const double> edge_attr(EdgeId e) const;
  std::span<const double> edge_type_attr(std::int32_t type) const;
  std::span<const double> node_features(NodeId v) const;

  /// All (neighbor, edge) pairs of v.
  std::span<const Adjacent> neighbors(NodeId v) const;
  std::int64_t degree(NodeId v) const;

  /// Edge id connecting u and v, or -1.  O(min-degree).
  EdgeId find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const { return find_edge(u, v) >= 0; }

  /// Count of nodes per type (for dataset-summary tables).
  std::vector<std::int64_t> node_type_counts() const;
  /// Count of edges per type.
  std::vector<std::int64_t> edge_type_counts() const;

 private:
  void require_finalized(const char* what) const;
  void require_not_finalized(const char* what) const;

  std::int32_t num_node_types_;
  std::int32_t num_edge_types_;
  std::int64_t edge_attr_dim_;
  std::int64_t node_feat_dim_;

  std::vector<std::int32_t> node_type_;
  std::vector<EdgeRecord> edges_;
  std::vector<double> node_feat_;       // num_nodes x node_feat_dim
  std::vector<double> edge_type_attr_;  // num_edge_types x edge_attr_dim

  // CSR over both directions.
  std::vector<std::int64_t> offsets_;
  std::vector<Adjacent> adjacency_;
  bool finalized_ = false;
};

}  // namespace amdgcnn::graph
