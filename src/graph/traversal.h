// Breadth-first traversal utilities on KnowledgeGraph: bounded-depth BFS
// distances (used by DRNL and k-hop neighborhood collection) with optional
// masking of one edge (the target link must be hidden from the model — SEAL)
// and of one node (DRNL computes d(i, a) on the graph with b removed).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"

namespace amdgcnn::graph {

inline constexpr std::int32_t kUnreachable = -1;

struct BfsOptions {
  /// Stop expanding beyond this depth (-1 = unbounded).
  std::int32_t max_depth = -1;
  /// Edge id to ignore during traversal (-1 = none).
  EdgeId masked_edge = -1;
  /// Node id to treat as removed (-1 = none).
  NodeId masked_node = -1;
};

/// Distances from `source` to every node (kUnreachable when not reached
/// within max_depth / reachable at all).
std::vector<std::int32_t> bfs_distances(const KnowledgeGraph& g, NodeId source,
                                        const BfsOptions& options = {});

/// Allocation-free variant for hot loops: fills `dist` (resized to
/// g.num_nodes()) and uses `queue` as the BFS frontier.  Both vectors are
/// caller-provided scratch — the parallel dataset build hands each worker
/// buffers borrowed from its thread-local pool (ag::detail::i32_buffer_pool),
/// so per-link traversals allocate nothing in steady state.
void bfs_distances_into(const KnowledgeGraph& g, NodeId source,
                        const BfsOptions& options,
                        std::vector<std::int32_t>& dist,
                        std::vector<NodeId>& queue);

/// The set of nodes within `k` hops of `source` (including `source`),
/// in BFS discovery order.
std::vector<NodeId> k_hop_nodes(const KnowledgeGraph& g, NodeId source,
                                std::int32_t k,
                                const BfsOptions& options = {});

/// Shortest-path distance between two nodes, or kUnreachable.
std::int32_t shortest_path_length(const KnowledgeGraph& g, NodeId from,
                                  NodeId to, const BfsOptions& options = {});

}  // namespace amdgcnn::graph
