// Breadth-first traversal utilities on KnowledgeGraph: bounded-depth BFS
// distances (used by DRNL and k-hop neighborhood collection) with optional
// masking of one edge (the target link must be hidden from the model — SEAL)
// and of one node (DRNL computes d(i, a) on the graph with b removed).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"

namespace amdgcnn::graph {

inline constexpr std::int32_t kUnreachable = -1;

struct BfsOptions {
  /// Stop expanding beyond this depth (-1 = unbounded).
  std::int32_t max_depth = -1;
  /// Edge id to ignore during traversal (-1 = none).
  EdgeId masked_edge = -1;
  /// Node id to treat as removed (-1 = none).
  NodeId masked_node = -1;
};

/// Distances from `source` to every node (kUnreachable when not reached
/// within max_depth / reachable at all).
std::vector<std::int32_t> bfs_distances(const KnowledgeGraph& g, NodeId source,
                                        const BfsOptions& options = {});

/// Allocation-free variant for hot loops: fills `dist` (resized to
/// g.num_nodes()) and uses `queue` as the BFS frontier.  Both vectors are
/// caller-provided scratch — the parallel dataset build hands each worker
/// buffers borrowed from its thread-local pool (ag::detail::i32_buffer_pool),
/// so per-link traversals allocate nothing in steady state.
void bfs_distances_into(const KnowledgeGraph& g, NodeId source,
                        const BfsOptions& options,
                        std::vector<std::int32_t>& dist,
                        std::vector<NodeId>& queue);

/// Epoch-stamped visited/distance map (DESIGN.md §2.6): resetting for a new
/// traversal bumps a 32-bit epoch counter instead of clearing the O(N)
/// distance array, so a bounded BFS on a million-node graph costs only the
/// nodes it actually reaches.  A slot is valid iff its stamp equals the
/// current epoch; stale slots from earlier traversals are never read.
class VisitEpochMap {
 public:
  /// Start a new epoch over a graph of `num_nodes` nodes.  Grows the
  /// backing arrays on first use / graph growth (amortised; steady-state
  /// O(1)).  Handles 32-bit epoch wraparound by a one-off full clear.
  void begin(std::int64_t num_nodes);

  bool visited(NodeId v) const {
    return stamp_[static_cast<std::size_t>(v)] == epoch_;
  }
  /// Distance of v in the current epoch, or kUnreachable if unvisited.
  std::int32_t distance(NodeId v) const {
    return visited(v) ? dist_[static_cast<std::size_t>(v)] : kUnreachable;
  }
  void set(NodeId v, std::int32_t d) {
    stamp_[static_cast<std::size_t>(v)] = epoch_;
    dist_[static_cast<std::size_t>(v)] = d;
  }

 private:
  std::vector<std::int32_t> dist_;
  std::vector<std::uint32_t> stamp_;  // slot valid iff == epoch_
  std::uint32_t epoch_ = 0;           // 0 = no epoch started yet
};

/// Bounded BFS into an epoch map: `visit` must be begin()-ed for this graph
/// by the caller; visited nodes (the hop-bounded frontier, source first, in
/// discovery order) are appended to `visited_out` (cleared first), which
/// doubles as the frontier queue.  Produces exactly the distances of
/// bfs_distances_into — only the clearing cost differs.
void bfs_distances_epoch(const KnowledgeGraph& g, NodeId source,
                         const BfsOptions& options, VisitEpochMap& visit,
                         std::vector<NodeId>& visited_out);

/// The set of nodes within `k` hops of `source` (including `source`),
/// in BFS discovery order.
std::vector<NodeId> k_hop_nodes(const KnowledgeGraph& g, NodeId source,
                                std::int32_t k,
                                const BfsOptions& options = {});

/// Shortest-path distance between two nodes, or kUnreachable.
std::int32_t shortest_path_length(const KnowledgeGraph& g, NodeId from,
                                  NodeId to, const BfsOptions& options = {});

}  // namespace amdgcnn::graph
