#include "graph/delta_overlay.h"

namespace amdgcnn::graph {

std::vector<Adjacent>& DeltaOverlay::materialize(NodeId v,
                                                 std::span<const Adjacent> base) {
  auto [it, inserted] = patched_.try_emplace(v);
  if (inserted) it->second.assign(base.begin(), base.end());
  return it->second;
}

void DeltaOverlay::mark_removed(EdgeId e) {
  const auto i = static_cast<std::size_t>(e);
  if (i >= removed_.size()) removed_.resize(i + 1, 0);
  removed_[i] = 1;
  ++tombstones_;
}

void DeltaOverlay::touch(NodeId u, NodeId v) {
  ++generation_;
  const auto hi = static_cast<std::size_t>(u > v ? u : v);
  if (hi >= node_generation_.size()) node_generation_.resize(hi + 1, 0);
  node_generation_[static_cast<std::size_t>(u)] = generation_;
  node_generation_[static_cast<std::size_t>(v)] = generation_;
}

}  // namespace amdgcnn::graph
