#include "graph/subgraph.h"

#include <algorithm>
#include <stdexcept>

#include "graph/traversal.h"
#include "tensor/tensor.h"

namespace amdgcnn::graph {

namespace {

/// Scratch buffer borrowed from the calling thread's int32 pool and returned
/// on destruction.  Each worker of the parallel dataset build recycles the
/// same distance maps / frontier queues / CSR scratch across its links, so
/// steady-state extraction performs no heap allocation (DESIGN.md §2.2).
struct PooledI32 {
  std::vector<std::int32_t> v;
  explicit PooledI32(std::size_t n)
      : v(ag::detail::i32_buffer_pool().acquire(n)) {}
  ~PooledI32() { ag::detail::i32_buffer_pool().release(std::move(v)); }
  PooledI32(const PooledI32&) = delete;
  PooledI32& operator=(const PooledI32&) = delete;
};

/// BFS distances within the local subgraph from `source`, with one local
/// node masked (removed).  Adjacency is flat CSR (off has m + 1 entries);
/// `queue` is reusable frontier scratch, `dist` escapes to the caller.
void local_bfs_csr(const std::int32_t* off, const std::int32_t* adj,
                   std::int32_t m, std::int32_t source, std::int32_t masked,
                   std::vector<std::int32_t>& dist,
                   std::vector<std::int32_t>& queue) {
  dist.assign(static_cast<std::size_t>(m), kUnreachable);
  queue.clear();
  if (source == masked) return;
  dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::int32_t u = queue[head];
    for (std::int32_t i = off[u]; i < off[u + 1]; ++i) {
      const std::int32_t v = adj[i];
      if (v == masked || dist[v] != kUnreachable) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
}

}  // namespace

EnclosingSubgraph extract_enclosing_subgraph(const KnowledgeGraph& g, NodeId a,
                                             NodeId b,
                                             const ExtractOptions& options) {
  if (a == b)
    throw std::invalid_argument("extract_enclosing_subgraph: a == b");
  if (options.num_hops < 1)
    throw std::invalid_argument("extract_enclosing_subgraph: num_hops < 1");

  // Hide the target link (if it exists) from all traversals.
  const EdgeId masked_edge = g.find_edge(a, b);

  BfsOptions bfs_opts;
  bfs_opts.max_depth = options.num_hops;
  bfs_opts.masked_edge = masked_edge;
  const std::size_t total_nodes = static_cast<std::size_t>(g.num_nodes());
  PooledI32 da(total_nodes), db(total_nodes), queue(total_nodes);
  bfs_distances_into(g, a, bfs_opts, da.v, queue.v);
  bfs_distances_into(g, b, bfs_opts, db.v, queue.v);

  // Collect candidate nodes per the union / intersection rule.
  EnclosingSubgraph sub;
  std::vector<NodeId> candidates;
  if (options.collect_hull) {
    sub.hull.push_back(a);
    sub.hull.push_back(b);
  }
  for (NodeId v = 0; v < static_cast<NodeId>(g.num_nodes()); ++v) {
    if (v == a || v == b) continue;
    const bool in_a = da.v[v] != kUnreachable;
    const bool in_b = db.v[v] != kUnreachable;
    if (options.collect_hull && (in_a || in_b)) sub.hull.push_back(v);
    const bool keep = options.mode == NeighborhoodMode::kUnion
                          ? (in_a || in_b)
                          : (in_a && in_b);
    if (keep) candidates.push_back(v);
  }

  // Apply the size cap: order by closeness to the target pair.
  if (options.max_nodes > 0 &&
      static_cast<std::int64_t>(candidates.size()) + 2 > options.max_nodes) {
    auto closeness = [&](NodeId v) {
      // Unreachable distances count as a large constant so reachable-from-
      // both nodes sort first.
      const std::int32_t large = 4 * options.num_hops + 4;
      const std::int32_t xa = da.v[v] == kUnreachable ? large : da.v[v];
      const std::int32_t xb = db.v[v] == kUnreachable ? large : db.v[v];
      return std::make_tuple(xa + xb, std::min(xa, xb), v);
    };
    std::sort(candidates.begin(), candidates.end(),
              [&](NodeId x, NodeId y) { return closeness(x) < closeness(y); });
    candidates.resize(static_cast<std::size_t>(options.max_nodes - 2));
  }

  sub.nodes.reserve(candidates.size() + 2);
  sub.nodes.push_back(a);
  sub.nodes.push_back(b);
  sub.nodes.insert(sub.nodes.end(), candidates.begin(), candidates.end());

  // Original-id -> local-id lookup as a full-size array (pooled scratch):
  // the O(num_nodes) fill is already paid by the BFS dist maps, and the
  // per-neighbor probes in the induction loop become branch + load.
  PooledI32 local_of(total_nodes);
  std::fill(local_of.v.begin(), local_of.v.end(), std::int32_t{-1});
  for (std::size_t i = 0; i < sub.nodes.size(); ++i)
    local_of.v[sub.nodes[i]] = static_cast<std::int32_t>(i);

  // Induce edges: both endpoints inside, target link excluded.  Each
  // undirected edge is visited from both endpoints; keep it once.
  for (std::size_t i = 0; i < sub.nodes.size(); ++i) {
    const NodeId u = sub.nodes[i];
    for (const auto& adj : g.neighbors(u)) {
      if (adj.edge == masked_edge) continue;
      const std::int32_t lv = local_of.v[adj.node];
      if (lv < 0) continue;
      const std::int32_t lu = static_cast<std::int32_t>(i);
      if (lu < lv) sub.edges.push_back({lu, lv, adj.edge});
    }
  }

  // DRNL distances on the induced subgraph, each with the other target
  // removed (Zhang & Chen 2018 convention).  Local adjacency as flat CSR
  // in pooled scratch (counting sort over the edge list).
  const auto m = static_cast<std::int32_t>(sub.nodes.size());
  PooledI32 off(static_cast<std::size_t>(m) + 1),
      ladj(2 * sub.edges.size());
  std::fill(off.v.begin(), off.v.end(), std::int32_t{0});
  for (const auto& e : sub.edges) {
    ++off.v[e.src + 1];
    ++off.v[e.dst + 1];
  }
  for (std::int32_t i = 0; i < m; ++i) off.v[i + 1] += off.v[i];
  {
    PooledI32 cursor(static_cast<std::size_t>(m));
    std::copy(off.v.begin(), off.v.end() - 1, cursor.v.begin());
    for (const auto& e : sub.edges) {
      ladj.v[cursor.v[e.src]++] = e.dst;
      ladj.v[cursor.v[e.dst]++] = e.src;
    }
  }
  local_bfs_csr(off.v.data(), ladj.v.data(), m, EnclosingSubgraph::kTargetA,
                EnclosingSubgraph::kTargetB, sub.dist_a, queue.v);
  local_bfs_csr(off.v.data(), ladj.v.data(), m, EnclosingSubgraph::kTargetB,
                EnclosingSubgraph::kTargetA, sub.dist_b, queue.v);
  // The targets know their own distances regardless of masking.
  sub.dist_a[EnclosingSubgraph::kTargetA] = 0;
  sub.dist_b[EnclosingSubgraph::kTargetB] = 0;
  return sub;
}

KnowledgeGraph materialize_subgraph(const KnowledgeGraph& g,
                                    const EnclosingSubgraph& sub) {
  KnowledgeGraph local(g.num_node_types(), g.num_edge_types(),
                       g.edge_attr_dim(), g.node_feat_dim());
  for (std::int32_t t = 0; t < g.num_edge_types(); ++t)
    if (g.edge_attr_dim() > 0) local.set_edge_type_attr(t, g.edge_type_attr(t));
  for (std::size_t i = 0; i < sub.nodes.size(); ++i) {
    const auto v = local.add_node(g.node_type(sub.nodes[i]));
    if (g.node_feat_dim() > 0)
      local.set_node_features(v, g.node_features(sub.nodes[i]));
  }
  for (const auto& e : sub.edges)
    local.add_edge(e.src, e.dst, g.edge(e.orig).type);
  local.finalize();
  return local;
}

}  // namespace amdgcnn::graph
