#include "graph/subgraph.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "graph/traversal.h"

namespace amdgcnn::graph {

namespace {

/// BFS distances within the local subgraph from `source`, with one local
/// node masked (removed).  Adjacency given as CSR-ish vector of vectors.
std::vector<std::int32_t> local_bfs(
    const std::vector<std::vector<std::int32_t>>& adj, std::int32_t source,
    std::int32_t masked_node) {
  std::vector<std::int32_t> dist(adj.size(), kUnreachable);
  if (source == masked_node) return dist;
  std::deque<std::int32_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const std::int32_t u = queue.front();
    queue.pop_front();
    for (std::int32_t v : adj[u]) {
      if (v == masked_node || dist[v] != kUnreachable) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
  return dist;
}

}  // namespace

EnclosingSubgraph extract_enclosing_subgraph(const KnowledgeGraph& g, NodeId a,
                                             NodeId b,
                                             const ExtractOptions& options) {
  if (a == b)
    throw std::invalid_argument("extract_enclosing_subgraph: a == b");
  if (options.num_hops < 1)
    throw std::invalid_argument("extract_enclosing_subgraph: num_hops < 1");

  // Hide the target link (if it exists) from all traversals.
  const EdgeId masked_edge = g.find_edge(a, b);

  BfsOptions bfs_opts;
  bfs_opts.max_depth = options.num_hops;
  bfs_opts.masked_edge = masked_edge;
  const auto da = bfs_distances(g, a, bfs_opts);
  const auto db = bfs_distances(g, b, bfs_opts);

  // Collect candidate nodes per the union / intersection rule.
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < static_cast<NodeId>(g.num_nodes()); ++v) {
    if (v == a || v == b) continue;
    const bool in_a = da[v] != kUnreachable;
    const bool in_b = db[v] != kUnreachable;
    const bool keep = options.mode == NeighborhoodMode::kUnion
                          ? (in_a || in_b)
                          : (in_a && in_b);
    if (keep) candidates.push_back(v);
  }

  // Apply the size cap: order by closeness to the target pair.
  if (options.max_nodes > 0 &&
      static_cast<std::int64_t>(candidates.size()) + 2 > options.max_nodes) {
    auto closeness = [&](NodeId v) {
      // Unreachable distances count as a large constant so reachable-from-
      // both nodes sort first.
      const std::int32_t large = 4 * options.num_hops + 4;
      const std::int32_t xa = da[v] == kUnreachable ? large : da[v];
      const std::int32_t xb = db[v] == kUnreachable ? large : db[v];
      return std::make_tuple(xa + xb, std::min(xa, xb), v);
    };
    std::sort(candidates.begin(), candidates.end(),
              [&](NodeId x, NodeId y) { return closeness(x) < closeness(y); });
    candidates.resize(static_cast<std::size_t>(options.max_nodes - 2));
  }

  EnclosingSubgraph sub;
  sub.nodes.reserve(candidates.size() + 2);
  sub.nodes.push_back(a);
  sub.nodes.push_back(b);
  sub.nodes.insert(sub.nodes.end(), candidates.begin(), candidates.end());

  std::unordered_map<NodeId, std::int32_t> local_id;
  local_id.reserve(sub.nodes.size() * 2);
  for (std::size_t i = 0; i < sub.nodes.size(); ++i)
    local_id.emplace(sub.nodes[i], static_cast<std::int32_t>(i));

  // Induce edges: both endpoints inside, target link excluded.  Each
  // undirected edge is visited from both endpoints; keep it once.
  for (std::size_t i = 0; i < sub.nodes.size(); ++i) {
    const NodeId u = sub.nodes[i];
    for (const auto& adj : g.neighbors(u)) {
      if (adj.edge == masked_edge) continue;
      auto it = local_id.find(adj.node);
      if (it == local_id.end()) continue;
      const std::int32_t lu = static_cast<std::int32_t>(i);
      const std::int32_t lv = it->second;
      if (lu < lv) sub.edges.push_back({lu, lv, adj.edge});
    }
  }

  // DRNL distances on the induced subgraph, each with the other target
  // removed (Zhang & Chen 2018 convention).
  std::vector<std::vector<std::int32_t>> adj(sub.nodes.size());
  for (const auto& e : sub.edges) {
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  sub.dist_a = local_bfs(adj, EnclosingSubgraph::kTargetA,
                         EnclosingSubgraph::kTargetB);
  sub.dist_b = local_bfs(adj, EnclosingSubgraph::kTargetB,
                         EnclosingSubgraph::kTargetA);
  // The targets know their own distances regardless of masking.
  sub.dist_a[EnclosingSubgraph::kTargetA] = 0;
  sub.dist_b[EnclosingSubgraph::kTargetB] = 0;
  return sub;
}

KnowledgeGraph materialize_subgraph(const KnowledgeGraph& g,
                                    const EnclosingSubgraph& sub) {
  KnowledgeGraph local(g.num_node_types(), g.num_edge_types(),
                       g.edge_attr_dim(), g.node_feat_dim());
  for (std::int32_t t = 0; t < g.num_edge_types(); ++t)
    if (g.edge_attr_dim() > 0) local.set_edge_type_attr(t, g.edge_type_attr(t));
  for (std::size_t i = 0; i < sub.nodes.size(); ++i) {
    const auto v = local.add_node(g.node_type(sub.nodes[i]));
    if (g.node_feat_dim() > 0)
      local.set_node_features(v, g.node_features(sub.nodes[i]));
  }
  for (const auto& e : sub.edges)
    local.add_edge(e.src, e.dst, g.edge(e.orig).type);
  local.finalize();
  return local;
}

}  // namespace amdgcnn::graph
