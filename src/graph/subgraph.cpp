#include "graph/subgraph.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>
#include <stdexcept>

#include "graph/traversal.h"
#include "tensor/tensor.h"

namespace amdgcnn::graph {

namespace {

/// Scratch buffer borrowed from the calling thread's int32 pool and returned
/// on destruction.  Each worker of the parallel dataset build recycles the
/// same distance maps / frontier queues / CSR scratch across its links, so
/// steady-state extraction performs no heap allocation (DESIGN.md §2.2).
struct PooledI32 {
  std::vector<std::int32_t> v;
  explicit PooledI32(std::size_t n)
      : v(ag::detail::i32_buffer_pool().acquire(n)) {}
  ~PooledI32() { ag::detail::i32_buffer_pool().release(std::move(v)); }
  PooledI32(const PooledI32&) = delete;
  PooledI32& operator=(const PooledI32&) = delete;
};

/// BFS distances within the local subgraph from `source`, with one local
/// node masked (removed).  Adjacency is flat CSR (off has m + 1 entries);
/// `queue` is reusable frontier scratch, `dist` escapes to the caller.
void local_bfs_csr(const std::int32_t* off, const std::int32_t* adj,
                   std::int32_t m, std::int32_t source, std::int32_t masked,
                   std::vector<std::int32_t>& dist,
                   std::vector<std::int32_t>& queue) {
  dist.assign(static_cast<std::size_t>(m), kUnreachable);
  queue.clear();
  if (source == masked) return;
  dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::int32_t u = queue[head];
    for (std::int32_t i = off[u]; i < off[u + 1]; ++i) {
      const std::int32_t v = adj[i];
      if (v == masked || dist[v] != kUnreachable) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
}

// ---- Epoch-kernel per-thread state ------------------------------------------

/// Process-wide frontier-cache counters.  The caches themselves are
/// per-thread, so aggregate accounting lives here: two relaxed increments
/// per cached BFS are noise next to the traversal they replace, and every
/// consumer (LinkPredictor::stats, the serving runtime, the benches) wants
/// the cross-thread total anyway.
std::atomic<std::int64_t> g_frontier_hits{0};
std::atomic<std::int64_t> g_frontier_misses{0};
std::atomic<std::int64_t> g_frontier_evictions{0};

/// One cached hop-bounded BFS result: the reached nodes in discovery order
/// plus their distances.  Keyed on everything that determines the BFS bytes.
struct FrontierEntry {
  const KnowledgeGraph* g = nullptr;
  std::uint64_t uid = 0;         // instance id: guards address reuse
  std::uint64_t generation = 0;  // mutation counter: guards staleness
  NodeId source = -1;
  EdgeId masked_edge = -2;  // -2 = empty slot (-1 is a real "no mask" key)
  std::int32_t depth = -1;
  std::uint64_t last_use = 0;
  std::vector<NodeId> nodes;
  std::vector<std::int32_t> dist;  // parallel to nodes
};

/// Tiny per-thread LRU over frontier results.  Eight slots cover the serving
/// shape (one source node fanned out against a candidate batch) with room
/// for a couple of interleaved sources.
class FrontierCache {
 public:
  FrontierEntry* find(const KnowledgeGraph& g, NodeId source,
                      EdgeId masked_edge, std::int32_t depth) {
    for (auto& e : entries_) {
      if (e.g == &g && e.uid == g.uid() && e.generation == g.generation() &&
          e.source == source && e.masked_edge == masked_edge &&
          e.depth == depth) {
        e.last_use = ++tick_;
        return &e;
      }
    }
    return nullptr;
  }

  FrontierEntry& evict_lru() {
    FrontierEntry* victim = &entries_[0];
    for (auto& e : entries_)
      if (e.last_use < victim->last_use) victim = &e;
    if (victim->masked_edge != -2)  // a filled slot is being overwritten
      g_frontier_evictions.fetch_add(1, std::memory_order_relaxed);
    victim->last_use = ++tick_;
    return *victim;
  }

 private:
  std::array<FrontierEntry, 8> entries_{};
  std::uint64_t tick_ = 0;
};

/// Thread-local scratch for the epoch kernel: visited maps, frontier lists,
/// the stamped local-id map and local-CSR buffers all persist across links,
/// so per-link work is proportional to the subgraph actually touched.
struct ExtractScratch {
  VisitEpochMap da, db;
  std::vector<NodeId> va, vb;  // frontier node lists (discovery order)
  std::vector<NodeId> merged;  // sorted union minus the targets
  // Original-id -> local-id map, epoch-stamped like the visited maps.
  std::vector<std::int32_t> local_id;
  std::vector<std::uint32_t> local_stamp;
  std::uint32_t local_epoch = 0;
  // Local-CSR / DRNL scratch.
  std::vector<std::int32_t> off, ladj, cursor, queue;
  FrontierCache cache;
};

ExtractScratch& tls_scratch() {
  thread_local ExtractScratch s;
  return s;
}

/// Epoch-stamped sparse map NodeId -> local id (get returns -1 when unset
/// this epoch).  Same wrap discipline as VisitEpochMap.
struct EpochLocalMap {
  std::vector<std::int32_t>& id;
  std::vector<std::uint32_t>& stamp;
  std::uint32_t epoch;
  void set(NodeId v, std::int32_t lid) {
    stamp[static_cast<std::size_t>(v)] = epoch;
    id[static_cast<std::size_t>(v)] = lid;
  }
  std::int32_t get(NodeId v) const {
    return stamp[static_cast<std::size_t>(v)] == epoch
               ? id[static_cast<std::size_t>(v)]
               : -1;
  }
};

EpochLocalMap begin_local_epoch(ExtractScratch& s, std::int64_t num_nodes) {
  const auto n = static_cast<std::size_t>(num_nodes);
  if (s.local_stamp.size() < n) {
    s.local_stamp.resize(n, 0u);
    s.local_id.resize(n);
  }
  if (++s.local_epoch == 0) {
    std::fill(s.local_stamp.begin(), s.local_stamp.end(), 0u);
    s.local_epoch = 1;
  }
  return {s.local_id, s.local_stamp, s.local_epoch};
}

/// Dense local-id map over a pooled full-size array (the legacy kernel's
/// O(num_nodes) fill — part of the clear-per-link baseline cost).
struct DenseLocalMap {
  PooledI32 buf;
  explicit DenseLocalMap(std::size_t n) : buf(n) {
    std::fill(buf.v.begin(), buf.v.end(), std::int32_t{-1});
  }
  void set(NodeId v, std::int32_t lid) { buf.v[v] = lid; }
  std::int32_t get(NodeId v) const { return buf.v[v]; }
};

/// Shared tail of both kernels: size cap, node list, edge induction, local
/// CSR and DRNL distances.  `dist_of_a` / `dist_of_b` return the hop-bounded
/// BFS distance or kUnreachable; `local_of` maps original -> local ids.
/// This is the single definition of the extraction bytes past the BFS, so
/// the kernels cannot drift apart.
template <typename DistA, typename DistB, typename LocalOf>
void finish_subgraph(const KnowledgeGraph& g, NodeId a, NodeId b,
                     EdgeId masked_edge, const ExtractOptions& options,
                     std::vector<NodeId>& candidates, EnclosingSubgraph& sub,
                     DistA dist_of_a, DistB dist_of_b, LocalOf&& local_of,
                     std::vector<std::int32_t>& off,
                     std::vector<std::int32_t>& ladj,
                     std::vector<std::int32_t>& cursor,
                     std::vector<std::int32_t>& queue) {
  // Apply the size cap: order by closeness to the target pair.
  if (options.max_nodes > 0 &&
      static_cast<std::int64_t>(candidates.size()) + 2 > options.max_nodes) {
    auto closeness = [&](NodeId v) {
      // Unreachable distances count as a large constant so reachable-from-
      // both nodes sort first.
      const std::int32_t large = 4 * options.num_hops + 4;
      const std::int32_t ra = dist_of_a(v), rb = dist_of_b(v);
      const std::int32_t xa = ra == kUnreachable ? large : ra;
      const std::int32_t xb = rb == kUnreachable ? large : rb;
      return std::make_tuple(xa + xb, std::min(xa, xb), v);
    };
    std::sort(candidates.begin(), candidates.end(),
              [&](NodeId x, NodeId y) { return closeness(x) < closeness(y); });
    candidates.resize(static_cast<std::size_t>(options.max_nodes - 2));
  }

  sub.nodes.reserve(candidates.size() + 2);
  sub.nodes.push_back(a);
  sub.nodes.push_back(b);
  sub.nodes.insert(sub.nodes.end(), candidates.begin(), candidates.end());

  for (std::size_t i = 0; i < sub.nodes.size(); ++i)
    local_of.set(sub.nodes[i], static_cast<std::int32_t>(i));

  // Induce edges: both endpoints inside, target link excluded.  Each
  // undirected edge is visited from both endpoints; keep it once.
  for (std::size_t i = 0; i < sub.nodes.size(); ++i) {
    const NodeId u = sub.nodes[i];
    for (const auto& adj : g.neighbors(u)) {
      if (adj.edge == masked_edge) continue;
      const std::int32_t lv = local_of.get(adj.node);
      if (lv < 0) continue;
      const std::int32_t lu = static_cast<std::int32_t>(i);
      if (lu < lv) sub.edges.push_back({lu, lv, adj.edge});
    }
  }
  // The local CSR below indexes directed entries with int32.
  if (2 * sub.edges.size() >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()))
    throw std::length_error(
        "extract_enclosing_subgraph: induced subgraph exceeds the 32-bit "
        "local CSR (set ExtractOptions::max_nodes)");

  // DRNL distances on the induced subgraph, each with the other target
  // removed (Zhang & Chen 2018 convention).  Local adjacency as flat CSR
  // (counting sort over the edge list).
  const auto m = static_cast<std::int32_t>(sub.nodes.size());
  off.assign(static_cast<std::size_t>(m) + 1, 0);
  ladj.resize(2 * sub.edges.size());
  for (const auto& e : sub.edges) {
    ++off[e.src + 1];
    ++off[e.dst + 1];
  }
  for (std::int32_t i = 0; i < m; ++i) off[i + 1] += off[i];
  cursor.assign(off.begin(), off.end() - 1);
  for (const auto& e : sub.edges) {
    ladj[cursor[e.src]++] = e.dst;
    ladj[cursor[e.dst]++] = e.src;
  }
  local_bfs_csr(off.data(), ladj.data(), m, EnclosingSubgraph::kTargetA,
                EnclosingSubgraph::kTargetB, sub.dist_a, queue);
  local_bfs_csr(off.data(), ladj.data(), m, EnclosingSubgraph::kTargetB,
                EnclosingSubgraph::kTargetA, sub.dist_b, queue);
  // The targets know their own distances regardless of masking.
  sub.dist_a[EnclosingSubgraph::kTargetA] = 0;
  sub.dist_b[EnclosingSubgraph::kTargetB] = 0;
}

/// Legacy kernel: per-link O(num_nodes) distance maps, candidate scan and
/// local-id fill.  Kept as the scale-bench baseline and as a bit-exactness
/// cross-check for the epoch kernel.
EnclosingSubgraph extract_clear_per_link(const KnowledgeGraph& g, NodeId a,
                                         NodeId b,
                                         const ExtractOptions& options,
                                         EdgeId masked_edge) {
  BfsOptions bfs_opts;
  bfs_opts.max_depth = options.num_hops;
  bfs_opts.masked_edge = masked_edge;
  const std::size_t total_nodes = static_cast<std::size_t>(g.num_nodes());
  PooledI32 da(total_nodes), db(total_nodes), queue(total_nodes);
  bfs_distances_into(g, a, bfs_opts, da.v, queue.v);
  bfs_distances_into(g, b, bfs_opts, db.v, queue.v);

  // Collect candidate nodes per the union / intersection rule.
  EnclosingSubgraph sub;
  std::vector<NodeId> candidates;
  if (options.collect_hull) {
    sub.hull.push_back(a);
    sub.hull.push_back(b);
  }
  for (NodeId v = 0; v < static_cast<NodeId>(g.num_nodes()); ++v) {
    if (v == a || v == b) continue;
    const bool in_a = da.v[v] != kUnreachable;
    const bool in_b = db.v[v] != kUnreachable;
    if (options.collect_hull && (in_a || in_b)) sub.hull.push_back(v);
    const bool keep = options.mode == NeighborhoodMode::kUnion
                          ? (in_a || in_b)
                          : (in_a && in_b);
    if (keep) candidates.push_back(v);
  }

  DenseLocalMap local_of(total_nodes);
  PooledI32 off(1), ladj(1), cursor(1);
  finish_subgraph(
      g, a, b, masked_edge, options, candidates, sub,
      [&](NodeId v) { return da.v[v]; }, [&](NodeId v) { return db.v[v]; },
      local_of, off.v, ladj.v, cursor.v, queue.v);
  return sub;
}

/// Hop-bounded BFS through the per-thread frontier cache: a hit replays the
/// stored (node, dist) list into the epoch map — same bytes as running the
/// BFS, minus the traversal.
void bfs_frontier(const KnowledgeGraph& g, NodeId source, EdgeId masked_edge,
                  std::int32_t depth, bool use_cache, VisitEpochMap& visit,
                  std::vector<NodeId>& visited, FrontierCache& cache) {
  visit.begin(g.num_nodes());
  if (use_cache) {
    if (FrontierEntry* hit = cache.find(g, source, masked_edge, depth)) {
      g_frontier_hits.fetch_add(1, std::memory_order_relaxed);
      visited.assign(hit->nodes.begin(), hit->nodes.end());
      for (std::size_t i = 0; i < visited.size(); ++i)
        visit.set(visited[i], hit->dist[i]);
      return;
    }
    g_frontier_misses.fetch_add(1, std::memory_order_relaxed);
  }
  BfsOptions opts;
  opts.max_depth = depth;
  opts.masked_edge = masked_edge;
  bfs_distances_epoch(g, source, opts, visit, visited);
  if (use_cache) {
    FrontierEntry& slot = cache.evict_lru();
    slot.g = &g;
    slot.uid = g.uid();
    slot.generation = g.generation();
    slot.source = source;
    slot.masked_edge = masked_edge;
    slot.depth = depth;
    slot.nodes.assign(visited.begin(), visited.end());
    slot.dist.resize(visited.size());
    for (std::size_t i = 0; i < visited.size(); ++i)
      slot.dist[i] = visit.distance(visited[i]);
  }
}

/// Default kernel: epoch-stamped visited maps — per-link cost follows the
/// touched subgraph, not the graph (DESIGN.md §2.6).
EnclosingSubgraph extract_epoch(const KnowledgeGraph& g, NodeId a, NodeId b,
                                const ExtractOptions& options,
                                EdgeId masked_edge) {
  auto& s = tls_scratch();
  bfs_frontier(g, a, masked_edge, options.num_hops, options.reuse_frontiers,
               s.da, s.va, s.cache);
  bfs_frontier(g, b, masked_edge, options.num_hops, options.reuse_frontiers,
               s.db, s.vb, s.cache);

  // Sorted union of the two frontiers minus the targets: ascending node id
  // reproduces the legacy kernel's 0..N candidate scan byte-for-byte while
  // only touching the nodes actually reached.
  s.merged.clear();
  for (const NodeId v : s.va)
    if (v != a && v != b) s.merged.push_back(v);
  for (const NodeId v : s.vb)
    if (v != a && v != b && !s.da.visited(v)) s.merged.push_back(v);
  std::sort(s.merged.begin(), s.merged.end());

  EnclosingSubgraph sub;
  if (options.collect_hull) {
    sub.hull.reserve(s.merged.size() + 2);
    sub.hull.push_back(a);
    sub.hull.push_back(b);
    sub.hull.insert(sub.hull.end(), s.merged.begin(), s.merged.end());
  }
  std::vector<NodeId> candidates;
  if (options.mode == NeighborhoodMode::kUnion) {
    candidates.assign(s.merged.begin(), s.merged.end());
  } else {
    for (const NodeId v : s.merged)
      if (s.da.visited(v) && s.db.visited(v)) candidates.push_back(v);
  }

  EpochLocalMap local_of = begin_local_epoch(s, g.num_nodes());
  finish_subgraph(
      g, a, b, masked_edge, options, candidates, sub,
      [&](NodeId v) { return s.da.distance(v); },
      [&](NodeId v) { return s.db.distance(v); }, local_of, s.off, s.ladj,
      s.cursor, s.queue);
  return sub;
}

}  // namespace

EnclosingSubgraph extract_enclosing_subgraph(const KnowledgeGraph& g, NodeId a,
                                             NodeId b,
                                             const ExtractOptions& options) {
  if (a == b)
    throw std::invalid_argument("extract_enclosing_subgraph: a == b");
  if (options.num_hops < 1)
    throw std::invalid_argument("extract_enclosing_subgraph: num_hops < 1");

  // Hide the target link (if it exists) from all traversals.
  const EdgeId masked_edge = g.find_edge(a, b);
  return options.clear_per_link
             ? extract_clear_per_link(g, a, b, options, masked_edge)
             : extract_epoch(g, a, b, options, masked_edge);
}

bool export_cached_frontier(const KnowledgeGraph& g, NodeId source,
                            EdgeId masked_edge, std::int32_t depth,
                            std::vector<NodeId>& nodes,
                            std::vector<std::int32_t>& dist) {
  FrontierEntry* e = tls_scratch().cache.find(g, source, masked_edge, depth);
  if (e == nullptr) return false;
  nodes = e->nodes;
  dist = e->dist;
  return true;
}

void seed_frontier_cache(const KnowledgeGraph& g, NodeId source,
                         EdgeId masked_edge, std::int32_t depth,
                         const std::vector<NodeId>& nodes,
                         const std::vector<std::int32_t>& dist) {
  if (nodes.size() != dist.size())
    throw std::invalid_argument(
        "seed_frontier_cache: nodes/dist length mismatch");
  auto& cache = tls_scratch().cache;
  if (cache.find(g, source, masked_edge, depth) != nullptr)
    return;  // already resident (find refreshed its LRU stamp)
  FrontierEntry& slot = cache.evict_lru();
  slot.g = &g;
  slot.uid = g.uid();
  slot.generation = g.generation();
  slot.source = source;
  slot.masked_edge = masked_edge;
  slot.depth = depth;
  slot.nodes = nodes;
  slot.dist = dist;
}

FrontierCacheStats frontier_cache_stats() {
  FrontierCacheStats s;
  s.hits = g_frontier_hits.load(std::memory_order_relaxed);
  s.misses = g_frontier_misses.load(std::memory_order_relaxed);
  s.evictions = g_frontier_evictions.load(std::memory_order_relaxed);
  return s;
}

void reset_frontier_cache_stats() {
  g_frontier_hits.store(0, std::memory_order_relaxed);
  g_frontier_misses.store(0, std::memory_order_relaxed);
  g_frontier_evictions.store(0, std::memory_order_relaxed);
}

KnowledgeGraph materialize_subgraph(const KnowledgeGraph& g,
                                    const EnclosingSubgraph& sub) {
  KnowledgeGraph local(g.num_node_types(), g.num_edge_types(),
                       g.edge_attr_dim(), g.node_feat_dim());
  for (std::int32_t t = 0; t < g.num_edge_types(); ++t)
    if (g.edge_attr_dim() > 0) local.set_edge_type_attr(t, g.edge_type_attr(t));
  for (std::size_t i = 0; i < sub.nodes.size(); ++i) {
    const auto v = local.add_node(g.node_type(sub.nodes[i]));
    if (g.node_feat_dim() > 0)
      local.set_node_features(v, g.node_features(sub.nodes[i]));
  }
  for (const auto& e : sub.edges)
    local.add_edge(e.src, e.dst, g.edge(e.orig).type);
  local.finalize();
  return local;
}

}  // namespace amdgcnn::graph
