// Multinomial logistic regression (softmax regression) on dense feature
// vectors — the linear classifier of the related-work pipeline (paper
// §VI-A, Vasavada & Wang).  Built on the ag:: autograd stack: one Linear
// layer trained with Adam on cross-entropy.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/linear.h"
#include "tensor/optim.h"

namespace amdgcnn::baselines {

struct LogisticRegressionOptions {
  double learning_rate = 0.05;
  std::int64_t epochs = 200;
  double weight_decay = 1e-4;
  std::uint64_t seed = 3;
};

class LogisticRegression {
 public:
  LogisticRegression(std::int64_t num_features, std::int64_t num_classes,
                     const LogisticRegressionOptions& options = {});

  /// Full-batch training on a row-major [n, d] matrix with labels in
  /// [0, num_classes).  Returns the final mean training loss.
  double fit(const std::vector<double>& x,
             const std::vector<std::int32_t>& y);

  /// Row-major [n, num_classes] probabilities.
  std::vector<double> predict_proba(const std::vector<double>& x) const;
  std::vector<std::int32_t> predict(const std::vector<double>& x) const;

  std::int64_t num_features() const { return num_features_; }
  std::int64_t num_classes() const { return num_classes_; }

 private:
  ag::Tensor to_matrix(const std::vector<double>& x) const;

  std::int64_t num_features_, num_classes_;
  LogisticRegressionOptions options_;
  util::Rng rng_;
  nn::Linear linear_;
};

}  // namespace amdgcnn::baselines
