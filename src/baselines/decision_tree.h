// CART decision tree on dense feature vectors — the classifier Katragadda
// et al. pair with heuristic link features (paper §VI-A).  Gini-impurity
// splits, depth / min-samples regularisation, class-probability leaves.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace amdgcnn::baselines {

struct DecisionTreeOptions {
  std::int32_t max_depth = 6;
  std::int64_t min_samples_split = 8;
  std::int64_t min_samples_leaf = 3;
};

class DecisionTree {
 public:
  DecisionTree(std::int64_t num_features, std::int64_t num_classes,
               const DecisionTreeOptions& options = {});

  /// Fit on a row-major [n, d] matrix with labels in [0, num_classes).
  void fit(const std::vector<double>& x, const std::vector<std::int32_t>& y);

  /// Row-major [n, num_classes] leaf class frequencies.
  std::vector<double> predict_proba(const std::vector<double>& x) const;
  std::vector<std::int32_t> predict(const std::vector<double>& x) const;

  bool fitted() const { return root_ != nullptr; }
  /// Number of nodes in the fitted tree (tests / introspection).
  std::int64_t num_nodes() const;
  std::int32_t depth() const;

 private:
  struct Node {
    // Internal nodes:
    std::int32_t feature = -1;  // -1 marks a leaf
    double threshold = 0.0;     // go left when x[feature] <= threshold
    std::unique_ptr<Node> left, right;
    // Leaves:
    std::vector<double> probabilities;
  };

  std::unique_ptr<Node> build(std::vector<std::int64_t>& rows,
                              const std::vector<double>& x,
                              const std::vector<std::int32_t>& y,
                              std::int32_t depth) const;
  const Node* descend(const double* features) const;

  std::int64_t num_features_, num_classes_;
  DecisionTreeOptions options_;
  std::unique_ptr<Node> root_;
};

}  // namespace amdgcnn::baselines
