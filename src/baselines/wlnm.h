// Weisfeiler-Lehman Neural Machine (Zhang & Chen, KDD 2017) — the
// supervised heuristic-learning predecessor SEAL improved upon (paper
// §VI-B).  Pipeline:
//
//   1. extract the enclosing subgraph of the target pair;
//   2. order its vertices with palette-WL (iterative color refinement
//      seeded by distance to the targets);
//   3. truncate / zero-pad to exactly K vertices and flatten the upper
//      triangle of the reordered adjacency matrix;
//   4. classify the fixed-size vector with a fully-connected network.
//
// The paper lists its drawbacks (fixed-size truncation, implicit
// heuristics, no explicit node features) — this implementation exists so
// the benchmark suite can show SEAL-style models beating it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/subgraph.h"
#include "nn/mlp.h"
#include "seal/sampling.h"

namespace amdgcnn::baselines {

struct WlnmOptions {
  std::int32_t num_hops = 2;
  std::int64_t vertex_budget = 10;  // K: vertices kept per subgraph
  std::int32_t wl_iterations = 3;
  std::int64_t hidden_dim = 64;
  double learning_rate = 1e-3;
  std::int64_t epochs = 30;
  double dropout = 0.3;
  std::uint64_t seed = 31;
};

/// Palette-WL vertex order for an enclosing subgraph: vertices sorted by
/// final WL color (ascending; targets first by construction since their
/// seed color — distance sum — is smallest).  Exposed for tests.
std::vector<std::int32_t> palette_wl_order(
    const graph::EnclosingSubgraph& sub, std::int32_t iterations);

/// The flattened, WL-ordered, K-truncated upper-triangle adjacency encoding
/// (length K*(K-1)/2; the entry for the target pair itself is zeroed, as in
/// the reference implementation).  Exposed for tests.
std::vector<double> wlnm_encode(const graph::EnclosingSubgraph& sub,
                                std::int64_t vertex_budget,
                                std::int32_t wl_iterations);

class Wlnm {
 public:
  Wlnm(std::int64_t num_classes, const WlnmOptions& options = {});

  /// Train on labeled links of a knowledge graph.
  void fit(const graph::KnowledgeGraph& g,
           const std::vector<seal::LinkExample>& train_links);

  /// Row-major [n, num_classes] probabilities.
  std::vector<double> predict_proba(
      const graph::KnowledgeGraph& g,
      const std::vector<seal::LinkExample>& links) const;

  /// Macro one-vs-rest AUC on labeled links.
  double evaluate_auc(const graph::KnowledgeGraph& g,
                      const std::vector<seal::LinkExample>& links) const;

 private:
  std::vector<double> encode_links(
      const graph::KnowledgeGraph& g,
      const std::vector<seal::LinkExample>& links) const;

  std::int64_t num_classes_;
  WlnmOptions options_;
  std::int64_t input_dim_;
  mutable util::Rng rng_;
  mutable nn::MLP mlp_;  // set_training toggles around const prediction
};

}  // namespace amdgcnn::baselines
