#include "baselines/decision_tree.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "metrics/classification.h"

namespace amdgcnn::baselines {

namespace {

/// Gini impurity of a class histogram.
double gini(const std::vector<std::int64_t>& counts, std::int64_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (auto c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

DecisionTree::DecisionTree(std::int64_t num_features,
                           std::int64_t num_classes,
                           const DecisionTreeOptions& options)
    : num_features_(num_features),
      num_classes_(num_classes),
      options_(options) {
  if (num_features < 1 || num_classes < 2)
    throw std::invalid_argument("DecisionTree: bad dimensions");
  if (options.max_depth < 1 || options.min_samples_leaf < 1)
    throw std::invalid_argument("DecisionTree: bad regularisation options");
}

void DecisionTree::fit(const std::vector<double>& x,
                       const std::vector<std::int32_t>& y) {
  if (y.empty() ||
      x.size() != y.size() * static_cast<std::size_t>(num_features_))
    throw std::invalid_argument("DecisionTree::fit: shape mismatch");
  for (auto label : y)
    if (label < 0 || label >= num_classes_)
      throw std::invalid_argument("DecisionTree::fit: label out of range");
  std::vector<std::int64_t> rows(y.size());
  std::iota(rows.begin(), rows.end(), std::int64_t{0});
  root_ = build(rows, x, y, 0);
}

std::unique_ptr<DecisionTree::Node> DecisionTree::build(
    std::vector<std::int64_t>& rows, const std::vector<double>& x,
    const std::vector<std::int32_t>& y, std::int32_t depth) const {
  auto node = std::make_unique<Node>();

  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (auto r : rows) ++counts[static_cast<std::size_t>(y[r])];
  const auto total = static_cast<std::int64_t>(rows.size());
  const double parent_impurity = gini(counts, total);

  auto make_leaf = [&] {
    node->probabilities.assign(static_cast<std::size_t>(num_classes_), 0.0);
    for (std::int64_t c = 0; c < num_classes_; ++c)
      node->probabilities[c] =
          static_cast<double>(counts[c]) / static_cast<double>(total);
    return std::move(node);
  };

  if (depth >= options_.max_depth || total < options_.min_samples_split ||
      parent_impurity == 0.0)
    return make_leaf();

  // Exhaustive best-split search over (feature, threshold) midpoints.
  double best_gain = 1e-12;
  std::int32_t best_feature = -1;
  double best_threshold = 0.0;
  std::vector<std::pair<double, std::int32_t>> column(rows.size());
  std::vector<std::int64_t> left_counts(
      static_cast<std::size_t>(num_classes_));
  for (std::int32_t f = 0; f < num_features_; ++f) {
    for (std::size_t i = 0; i < rows.size(); ++i)
      column[i] = {x[rows[i] * num_features_ + f], y[rows[i]]};
    std::sort(column.begin(), column.end());
    std::fill(left_counts.begin(), left_counts.end(), 0);
    for (std::size_t i = 0; i + 1 < column.size(); ++i) {
      ++left_counts[static_cast<std::size_t>(column[i].second)];
      if (column[i].first == column[i + 1].first) continue;
      const auto n_left = static_cast<std::int64_t>(i + 1);
      const auto n_right = total - n_left;
      if (n_left < options_.min_samples_leaf ||
          n_right < options_.min_samples_leaf)
        continue;
      std::vector<std::int64_t> right_counts(counts);
      for (std::int64_t c = 0; c < num_classes_; ++c)
        right_counts[c] -= left_counts[c];
      const double child_impurity =
          (static_cast<double>(n_left) * gini(left_counts, n_left) +
           static_cast<double>(n_right) * gini(right_counts, n_right)) /
          static_cast<double>(total);
      const double gain = parent_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }
  if (best_feature < 0) return make_leaf();

  std::vector<std::int64_t> left_rows, right_rows;
  for (auto r : rows) {
    if (x[r * num_features_ + best_feature] <= best_threshold)
      left_rows.push_back(r);
    else
      right_rows.push_back(r);
  }
  node->feature = best_feature;
  node->threshold = best_threshold;
  node->left = build(left_rows, x, y, depth + 1);
  node->right = build(right_rows, x, y, depth + 1);
  return node;
}

const DecisionTree::Node* DecisionTree::descend(
    const double* features) const {
  const Node* node = root_.get();
  while (node->feature >= 0) {
    node = features[node->feature] <= node->threshold ? node->left.get()
                                                      : node->right.get();
  }
  return node;
}

std::vector<double> DecisionTree::predict_proba(
    const std::vector<double>& x) const {
  if (!fitted()) throw std::logic_error("DecisionTree: predict before fit");
  if (x.size() % static_cast<std::size_t>(num_features_) != 0)
    throw std::invalid_argument("DecisionTree::predict: shape mismatch");
  const std::size_t n = x.size() / static_cast<std::size_t>(num_features_);
  std::vector<double> probs(n * static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < n; ++i) {
    const Node* leaf = descend(x.data() + i * num_features_);
    std::copy(leaf->probabilities.begin(), leaf->probabilities.end(),
              probs.begin() + i * static_cast<std::size_t>(num_classes_));
  }
  return probs;
}

std::vector<std::int32_t> DecisionTree::predict(
    const std::vector<double>& x) const {
  return metrics::argmax_rows(predict_proba(x), num_classes_);
}

std::int64_t DecisionTree::num_nodes() const {
  std::int64_t count = 0;
  std::vector<const Node*> stack;
  if (root_) stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    if (node->feature >= 0) {
      stack.push_back(node->left.get());
      stack.push_back(node->right.get());
    }
  }
  return count;
}

std::int32_t DecisionTree::depth() const {
  struct Frame {
    const Node* node;
    std::int32_t depth;
  };
  std::int32_t max_depth = 0;
  std::vector<Frame> stack;
  if (root_) stack.push_back({root_.get(), 0});
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (node->feature >= 0) {
      stack.push_back({node->left.get(), d + 1});
      stack.push_back({node->right.get(), d + 1});
    }
  }
  return max_depth;
}

}  // namespace amdgcnn::baselines
