#include "baselines/logistic_regression.h"

#include <stdexcept>

#include "metrics/classification.h"
#include "tensor/ops.h"

namespace amdgcnn::baselines {

LogisticRegression::LogisticRegression(
    std::int64_t num_features, std::int64_t num_classes,
    const LogisticRegressionOptions& options)
    : num_features_(num_features),
      num_classes_(num_classes),
      options_(options),
      rng_(options.seed),
      linear_(num_features, num_classes, /*bias=*/true, rng_) {
  if (num_classes < 2)
    throw std::invalid_argument("LogisticRegression: need >= 2 classes");
}

ag::Tensor LogisticRegression::to_matrix(const std::vector<double>& x) const {
  if (x.empty() || x.size() % static_cast<std::size_t>(num_features_) != 0)
    throw std::invalid_argument(
        "LogisticRegression: matrix width must equal num_features");
  const auto n = static_cast<std::int64_t>(x.size()) / num_features_;
  return ag::Tensor::from_data({n, num_features_}, x);
}

double LogisticRegression::fit(const std::vector<double>& x,
                               const std::vector<std::int32_t>& y) {
  auto xs = to_matrix(x);
  if (static_cast<std::int64_t>(y.size()) != xs.dim(0))
    throw std::invalid_argument("LogisticRegression: label count mismatch");
  std::vector<std::int64_t> targets(y.begin(), y.end());
  for (auto t : targets)
    if (t < 0 || t >= num_classes_)
      throw std::invalid_argument("LogisticRegression: label out of range");

  ag::Adam opt(linear_.parameters(), options_.learning_rate, 0.9, 0.999,
               1e-8, options_.weight_decay);
  double loss_value = 0.0;
  for (std::int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    opt.zero_grad();
    auto loss = ag::ops::cross_entropy(linear_.forward(xs), targets);
    loss_value = loss.item();
    loss.backward();
    opt.step();
  }
  return loss_value;
}

std::vector<double> LogisticRegression::predict_proba(
    const std::vector<double>& x) const {
  auto probs = ag::ops::softmax_rows(linear_.forward(to_matrix(x)));
  return probs.data();
}

std::vector<std::int32_t> LogisticRegression::predict(
    const std::vector<double>& x) const {
  return metrics::argmax_rows(predict_proba(x), num_classes_);
}

}  // namespace amdgcnn::baselines
