#include "baselines/wlnm.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "metrics/classification.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace amdgcnn::baselines {

std::vector<std::int32_t> palette_wl_order(
    const graph::EnclosingSubgraph& sub, std::int32_t iterations) {
  const auto n = static_cast<std::size_t>(sub.num_nodes());
  std::vector<std::vector<std::int32_t>> adj(n);
  for (const auto& e : sub.edges) {
    adj[static_cast<std::size_t>(e.src)].push_back(e.dst);
    adj[static_cast<std::size_t>(e.dst)].push_back(e.src);
  }

  // Seed colors: distance sum to the targets (unreachable counts large),
  // so the targets themselves start with the smallest color.
  std::vector<std::int64_t> color(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto da = sub.dist_a[i] < 0 ? 64 : sub.dist_a[i];
    const auto db = sub.dist_b[i] < 0 ? 64 : sub.dist_b[i];
    color[i] = da + db;
  }
  color[graph::EnclosingSubgraph::kTargetA] = 0;
  color[graph::EnclosingSubgraph::kTargetB] = 0;

  // WL refinement: signature = (own color, sorted neighbor colors),
  // recolored by sorted signature rank each round.
  for (std::int32_t it = 0; it < iterations; ++it) {
    std::vector<std::pair<std::vector<std::int64_t>, std::size_t>> sig(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::int64_t> s;
      s.reserve(adj[i].size() + 1);
      s.push_back(color[i]);
      std::vector<std::int64_t> nbr;
      nbr.reserve(adj[i].size());
      for (auto v : adj[i]) nbr.push_back(color[static_cast<std::size_t>(v)]);
      std::sort(nbr.begin(), nbr.end());
      s.insert(s.end(), nbr.begin(), nbr.end());
      sig[i] = {std::move(s), i};
    }
    std::map<std::vector<std::int64_t>, std::int64_t> rank;
    for (const auto& [s, i] : sig) rank.emplace(s, 0);
    std::int64_t next = 0;
    for (auto& [s, r] : rank) r = next++;
    for (const auto& [s, i] : sig) color[i] = rank[s];
  }

  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), std::int32_t{0});
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    // Targets always lead; then ascending final color; index breaks ties.
    const bool ta = a <= 1, tb = b <= 1;
    if (ta != tb) return ta;
    if (ta && tb) return a < b;
    if (color[static_cast<std::size_t>(a)] !=
        color[static_cast<std::size_t>(b)])
      return color[static_cast<std::size_t>(a)] <
             color[static_cast<std::size_t>(b)];
    return a < b;
  });
  return order;
}

std::vector<double> wlnm_encode(const graph::EnclosingSubgraph& sub,
                                std::int64_t vertex_budget,
                                std::int32_t wl_iterations) {
  if (vertex_budget < 2)
    throw std::invalid_argument("wlnm_encode: vertex budget must be >= 2");
  const auto order = palette_wl_order(sub, wl_iterations);
  const auto k = static_cast<std::size_t>(vertex_budget);
  const auto kept = std::min(order.size(), k);

  // Rank of each kept local vertex within the encoding.
  std::vector<std::int32_t> rank(sub.nodes.size(), -1);
  for (std::size_t i = 0; i < kept; ++i)
    rank[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);

  std::vector<double> enc(k * (k - 1) / 2, 0.0);
  auto upper_index = [&](std::int32_t i, std::int32_t j) {
    if (i > j) std::swap(i, j);
    // Row-major upper triangle without the diagonal.
    return static_cast<std::size_t>(i) * (2 * k - static_cast<std::size_t>(i) - 3) / 2 +
           static_cast<std::size_t>(j) - 1;
  };
  for (const auto& e : sub.edges) {
    const auto ri = rank[static_cast<std::size_t>(e.src)];
    const auto rj = rank[static_cast<std::size_t>(e.dst)];
    if (ri < 0 || rj < 0) continue;
    enc[upper_index(ri, rj)] = 1.0;
  }
  // Zero the target-pair entry (it is the label being predicted).
  enc[upper_index(0, 1)] = 0.0;
  return enc;
}

Wlnm::Wlnm(std::int64_t num_classes, const WlnmOptions& options)
    : num_classes_(num_classes),
      options_(options),
      input_dim_(options.vertex_budget * (options.vertex_budget - 1) / 2),
      rng_(options.seed),
      mlp_({input_dim_, options.hidden_dim, options.hidden_dim / 2,
            num_classes},
           options.dropout, rng_) {
  if (num_classes < 2)
    throw std::invalid_argument("Wlnm: need >= 2 classes");
}

std::vector<double> Wlnm::encode_links(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links) const {
  graph::ExtractOptions eo;
  eo.num_hops = options_.num_hops;
  eo.max_nodes = 4 * options_.vertex_budget;  // WL sees a little context
  std::vector<double> x(links.size() * static_cast<std::size_t>(input_dim_));
#pragma omp parallel for schedule(dynamic)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(links.size()); ++i) {
    const auto sub =
        graph::extract_enclosing_subgraph(g, links[i].a, links[i].b, eo);
    const auto enc = wlnm_encode(sub, options_.vertex_budget,
                                 options_.wl_iterations);
    std::copy(enc.begin(), enc.end(), x.begin() + i * input_dim_);
  }
  return x;
}

void Wlnm::fit(const graph::KnowledgeGraph& g,
               const std::vector<seal::LinkExample>& train_links) {
  if (train_links.empty())
    throw std::invalid_argument("Wlnm::fit: no training links");
  const auto x = encode_links(g, train_links);
  const auto n = static_cast<std::int64_t>(train_links.size());
  auto xs = ag::Tensor::from_data({n, input_dim_}, x);
  std::vector<std::int64_t> targets(train_links.size());
  for (std::size_t i = 0; i < train_links.size(); ++i)
    targets[i] = train_links[i].label;

  ag::Adam opt(mlp_.parameters(), options_.learning_rate);
  mlp_.set_training(true);
  for (std::int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    opt.zero_grad();
    auto loss = ag::ops::cross_entropy(mlp_.forward(xs, rng_), targets);
    loss.backward();
    opt.step();
  }
}

std::vector<double> Wlnm::predict_proba(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links) const {
  const auto x = encode_links(g, links);
  auto xs = ag::Tensor::from_data(
      {static_cast<std::int64_t>(links.size()), input_dim_}, x);
  mlp_.set_training(false);
  auto probs = ag::ops::softmax_rows(mlp_.forward(xs, rng_));
  mlp_.set_training(true);
  return probs.data();
}

double Wlnm::evaluate_auc(const graph::KnowledgeGraph& g,
                          const std::vector<seal::LinkExample>& links) const {
  const auto probs = predict_proba(g, links);
  std::vector<std::int32_t> labels(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) labels[i] = links[i].label;
  return metrics::evaluate_multiclass(probs, num_classes_, labels).macro_auc;
}

}  // namespace amdgcnn::baselines
