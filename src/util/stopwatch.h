// Wall-clock stopwatch for coarse experiment timing (training epochs,
// subgraph-extraction phases).  Micro-benchmarks use google-benchmark instead.
#pragma once

#include <chrono>

namespace amdgcnn::util {

class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset();

  /// Seconds elapsed since construction / last reset.
  double seconds() const;

  /// Milliseconds elapsed since construction / last reset.
  double millis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace amdgcnn::util
