// Deterministic exception funnel for OpenMP worker loops.
//
// C++ exceptions cannot cross an `#pragma omp parallel for` region, so every
// parallel stage (dataset build, batched inference, training batches) wraps
// its body in try/catch and rethrows after the join.  A bare
// `if (!error) error = current_exception()` keeps whichever worker LOST the
// race — a different exception per run when several items fail.  The
// collector instead keeps the exception of the lowest failing iteration
// index and rethrows it wrapped with stage context, so a failing batch
// reports the same item and message on every run and any worker count.
#pragma once

#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>

namespace amdgcnn::util {

/// What a joined parallel stage throws when a worker failed: the message
/// carries the stage name, the failing item index and the original what();
/// the original exception itself is nested (std::rethrow_if_nested).
class WorkerError : public std::runtime_error {
 public:
  WorkerError(const std::string& what, std::int64_t item)
      : std::runtime_error(what), item_(item) {}
  /// Index of the first (lowest) failing loop iteration.
  std::int64_t item() const { return item_; }

 private:
  std::int64_t item_;
};

class WorkerErrorCollector {
 public:
  /// Record the in-flight exception for iteration `item`; call from a
  /// worker's catch block.  Thread-safe; keeps the lowest item.
  void capture(std::int64_t item) noexcept {
    const std::exception_ptr e = std::current_exception();
    const std::lock_guard<std::mutex> lock(mu_);
    if (!error_ || item < item_) {
      error_ = e;
      item_ = item;
    }
  }

  /// After the join: rethrow the first failure as a WorkerError
  /// ("<stage>: worker failed at item N: <what>") with the original
  /// exception nested.  No-op when no worker failed.
  void rethrow(const char* stage) const {
    if (!error_) return;
    const std::string prefix = std::string(stage) + ": worker failed at item " +
                               std::to_string(item_) + ": ";
    try {
      std::rethrow_exception(error_);
    } catch (const std::exception& e) {
      std::throw_with_nested(WorkerError(prefix + e.what(), item_));
    } catch (...) {
      std::throw_with_nested(WorkerError(prefix + "unknown exception", item_));
    }
  }

 private:
  mutable std::mutex mu_;  // guards capture races between workers
  std::exception_ptr error_;
  std::int64_t item_ = -1;
};

}  // namespace amdgcnn::util
