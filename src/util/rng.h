// Deterministic, fast pseudo-random number generation for the whole library.
//
// All stochastic components (weight init, dataset generation, negative
// sampling, dropout, random walks, hyperparameter search) draw from util::Rng
// so that every experiment is reproducible from a single seed.  The engine is
// xoshiro256** seeded via SplitMix64, the combination recommended by the
// xoshiro authors; it is far faster than std::mt19937_64 and has no observable
// bias at our scale.
#pragma once

#include <cstdint>
#include <vector>

namespace amdgcnn::util {

/// xoshiro256** engine with SplitMix64 seeding and convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  /// Raw 64-bit output (xoshiro256** next()).
  std::uint64_t next_u64();

  // Make the engine usable with <random> distributions if ever needed.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Sample an index from an (unnormalised, non-negative) weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_int(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (Floyd's algorithm for k << n,
  /// shuffle-prefix otherwise). Result order is unspecified.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child generator (for per-worker streams).
  Rng split();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace amdgcnn::util
