#include "util/rng.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace amdgcnn::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n must be > 0");
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0.0)) {
    throw std::invalid_argument("Rng::categorical: weights must sum > 0");
  }
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // numerical fallthrough
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    shuffle(all);
    all.resize(k);
    return all;
  }
  // Floyd's algorithm: k iterations, set membership via sorted insert into a
  // small vector is fine because k << n in this branch.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = uniform_int(j + 1);
    bool seen = false;
    for (std::size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

Rng Rng::split() {
  Rng child(0);
  child.state_[0] = next_u64();
  child.state_[1] = next_u64();
  child.state_[2] = next_u64();
  child.state_[3] = next_u64();
  // Guard against the (astronomically unlikely) all-zero state.
  if ((child.state_[0] | child.state_[1] | child.state_[2] |
       child.state_[3]) == 0) {
    child.reseed(0xDEADBEEFCAFEBABEULL);
  }
  return child;
}

}  // namespace amdgcnn::util
