// Lightweight result-table formatting used by the benchmark harness.
//
// Every bench binary prints the rows/series of the paper table or figure it
// reproduces, both as an aligned human-readable table and as CSV (so results
// can be piped straight into plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace amdgcnn::util {

/// A simple column-oriented table: header row + string cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double v, int precision = 4);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Aligned, boxed plain-text rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV rendering (fields with commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amdgcnn::util
