#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace amdgcnn::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto rule = [&] {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

}  // namespace amdgcnn::util
