// node2vec embeddings: biased random walks + skip-gram with negative
// sampling (SGNS).  Part (ii) of SEAL's node attribute vector; the paper
// found no accuracy gain on knowledge graphs and disables it ("we ignore it
// for faster training and inference") — our dataset presets do the same,
// and bench_ablation verifies the finding.
#pragma once

#include <vector>

#include "embed/random_walk.h"

namespace amdgcnn::embed {

struct Node2VecOptions {
  std::int64_t dimensions = 32;
  WalkOptions walk;
  std::int32_t window = 4;       // skip-gram context radius
  std::int32_t negatives = 3;    // negative samples per positive pair
  std::int32_t epochs = 2;       // passes over the walk corpus
  double learning_rate = 0.025;  // linearly decayed to 10% over training
  std::uint64_t seed = 23;
};

/// Train embeddings; returns row-major [num_nodes, dimensions].
/// Negative sampling follows the unigram^(3/4) distribution over walk
/// occurrences, as in word2vec.
std::vector<double> node2vec(const graph::KnowledgeGraph& g,
                             const Node2VecOptions& options = {});

/// Cosine similarity between two embedding rows (test / example helper).
double embedding_cosine(const std::vector<double>& embedding,
                        std::int64_t dimensions, graph::NodeId u,
                        graph::NodeId v);

}  // namespace amdgcnn::embed
