#include "embed/random_walk.h"

#include <stdexcept>

namespace amdgcnn::embed {

std::vector<graph::NodeId> random_walk(const graph::KnowledgeGraph& g,
                                       graph::NodeId start,
                                       const WalkOptions& options,
                                       util::Rng& rng) {
  if (options.p <= 0.0 || options.q <= 0.0)
    throw std::invalid_argument("random_walk: p and q must be positive");
  std::vector<graph::NodeId> walk;
  walk.reserve(static_cast<std::size_t>(options.walk_length));
  walk.push_back(start);
  graph::NodeId prev = -1;
  graph::NodeId cur = start;
  std::vector<double> weights;
  while (static_cast<std::int32_t>(walk.size()) < options.walk_length) {
    const auto nbrs = g.neighbors(cur);
    if (nbrs.empty()) break;
    graph::NodeId next;
    if (prev < 0) {
      next = nbrs[rng.uniform_int(static_cast<std::uint64_t>(nbrs.size()))]
                 .node;
    } else {
      weights.clear();
      weights.reserve(nbrs.size());
      for (const auto& a : nbrs) {
        double w;
        if (a.node == prev) w = 1.0 / options.p;
        else if (g.has_edge(a.node, prev)) w = 1.0;
        else w = 1.0 / options.q;
        weights.push_back(w);
      }
      next = nbrs[rng.categorical(weights)].node;
    }
    walk.push_back(next);
    prev = cur;
    cur = next;
  }
  return walk;
}

std::vector<std::vector<graph::NodeId>> generate_walks(
    const graph::KnowledgeGraph& g, const WalkOptions& options,
    util::Rng& rng) {
  std::vector<std::vector<graph::NodeId>> walks;
  walks.reserve(static_cast<std::size_t>(g.num_nodes()) *
                static_cast<std::size_t>(options.walks_per_node));
  for (std::int32_t w = 0; w < options.walks_per_node; ++w)
    for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.num_nodes());
         ++v)
      walks.push_back(random_walk(g, v, options, rng));
  return walks;
}

}  // namespace amdgcnn::embed
