// Biased second-order random walks (node2vec, Grover & Leskovec 2016).
//
// The return parameter p and in-out parameter q bias each step relative to
// the previous node: weight 1/p to return, 1 to a common neighbor of the
// previous node, 1/q to move outward.  p = q = 1 reduces to DeepWalk.
#pragma once

#include <vector>

#include "graph/knowledge_graph.h"
#include "util/rng.h"

namespace amdgcnn::embed {

struct WalkOptions {
  std::int32_t walks_per_node = 5;
  std::int32_t walk_length = 20;
  double p = 1.0;  // return parameter
  double q = 1.0;  // in-out parameter
};

/// One biased walk starting at `start` (length <= walk_length; shorter when
/// a dead end is reached).
std::vector<graph::NodeId> random_walk(const graph::KnowledgeGraph& g,
                                       graph::NodeId start,
                                       const WalkOptions& options,
                                       util::Rng& rng);

/// walks_per_node walks from every node, in node order.
std::vector<std::vector<graph::NodeId>> generate_walks(
    const graph::KnowledgeGraph& g, const WalkOptions& options,
    util::Rng& rng);

}  // namespace amdgcnn::embed
