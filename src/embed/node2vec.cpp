#include "embed/node2vec.h"

#include <cmath>
#include <stdexcept>

namespace amdgcnn::embed {

namespace {
double stable_sigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}
}  // namespace

std::vector<double> node2vec(const graph::KnowledgeGraph& g,
                             const Node2VecOptions& options) {
  if (options.dimensions <= 0)
    throw std::invalid_argument("node2vec: dimensions must be positive");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const auto dim = static_cast<std::size_t>(options.dimensions);
  util::Rng rng(options.seed);

  const auto walks = generate_walks(g, options.walk, rng);

  // Unigram^(3/4) negative-sampling table over walk occurrences.
  std::vector<double> freq(n, 0.0);
  std::size_t corpus = 0;
  for (const auto& walk : walks) {
    for (auto v : walk) freq[static_cast<std::size_t>(v)] += 1.0;
    corpus += walk.size();
  }
  std::vector<double> neg_weight(n);
  for (std::size_t v = 0; v < n; ++v)
    neg_weight[v] = std::pow(freq[v], 0.75);

  // Input (emb) and output (ctx) matrices, word2vec-style.
  std::vector<double> emb(n * dim), ctx(n * dim, 0.0);
  for (auto& e : emb)
    e = (rng.uniform() - 0.5) / static_cast<double>(dim);

  const std::int64_t total_steps =
      static_cast<std::int64_t>(options.epochs) *
      static_cast<std::int64_t>(corpus);
  std::int64_t step = 0;
  std::vector<double> grad_center(dim);

  auto update_pair = [&](std::size_t center, std::size_t context,
                         double label, double lr) {
    double* vc = emb.data() + center * dim;
    double* vo = ctx.data() + context * dim;
    double dot = 0.0;
    for (std::size_t k = 0; k < dim; ++k) dot += vc[k] * vo[k];
    const double gscale = lr * (label - stable_sigmoid(dot));
    for (std::size_t k = 0; k < dim; ++k) {
      grad_center[k] += gscale * vo[k];
      vo[k] += gscale * vc[k];
    }
  };

  for (std::int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (const auto& walk : walks) {
      for (std::size_t i = 0; i < walk.size(); ++i) {
        const double progress =
            static_cast<double>(step++) / static_cast<double>(total_steps);
        const double lr =
            options.learning_rate * std::max(0.1, 1.0 - progress);
        const auto center = static_cast<std::size_t>(walk[i]);
        const auto lo = i >= static_cast<std::size_t>(options.window)
                            ? i - static_cast<std::size_t>(options.window)
                            : 0;
        const auto hi = std::min(walk.size() - 1,
                                 i + static_cast<std::size_t>(options.window));
        for (std::size_t j = lo; j <= hi; ++j) {
          if (j == i) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0);
          update_pair(center, static_cast<std::size_t>(walk[j]), 1.0, lr);
          for (std::int32_t neg = 0; neg < options.negatives; ++neg) {
            const auto sample = rng.categorical(neg_weight);
            if (sample == center) continue;
            update_pair(center, sample, 0.0, lr);
          }
          double* vc = emb.data() + center * dim;
          for (std::size_t k = 0; k < dim; ++k) vc[k] += grad_center[k];
        }
      }
    }
  }
  return emb;
}

double embedding_cosine(const std::vector<double>& embedding,
                        std::int64_t dimensions, graph::NodeId u,
                        graph::NodeId v) {
  const auto dim = static_cast<std::size_t>(dimensions);
  const double* a = embedding.data() + static_cast<std::size_t>(u) * dim;
  const double* b = embedding.data() + static_cast<std::size_t>(v) * dim;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t k = 0; k < dim; ++k) {
    dot += a[k] * b[k];
    na += a[k] * a[k];
    nb += b[k] * b[k];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0.0 ? dot / denom : 0.0;
}

}  // namespace amdgcnn::embed
