#include "metrics/ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace amdgcnn::metrics {

namespace {
void check_inputs(const std::vector<double>& scores,
                  const std::vector<std::int32_t>& labels) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("ranking metric: size mismatch");
  if (scores.empty())
    throw std::invalid_argument("ranking metric: empty input");
  // NaN scores poison the rank ordering (every comparison is false), which
  // would yield an arbitrary but plausible-looking AUC — reject instead.
  for (std::size_t i = 0; i < scores.size(); ++i)
    if (!std::isfinite(scores[i]))
      throw std::invalid_argument("ranking metric: non-finite score at index " +
                                  std::to_string(i));
  for (auto l : labels)
    if (l != 0 && l != 1)
      throw std::invalid_argument("ranking metric: labels must be 0/1");
}
}  // namespace

bool has_both_classes(const std::vector<std::int32_t>& labels) {
  bool pos = false, neg = false;
  for (auto l : labels) (l ? pos : neg) = true;
  return pos && neg;
}

double binary_auc(const std::vector<double>& scores,
                  const std::vector<std::int32_t>& labels) {
  check_inputs(scores, labels);
  if (!has_both_classes(labels))
    throw std::invalid_argument("binary_auc: needs both classes present");

  // Midrank assignment: sort by score, average ranks over tie groups.
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  std::vector<double> rank(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;  // 1-based
    for (std::size_t t = i; t <= j; ++t) rank[order[t]] = mid;
    i = j + 1;
  }

  double rank_sum_pos = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (labels[t] == 1) {
      rank_sum_pos += rank[t];
      ++n_pos;
    }
  }
  const std::size_t n_neg = n - n_pos;
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double binary_average_precision(const std::vector<double>& scores,
                                const std::vector<std::int32_t>& labels) {
  check_inputs(scores, labels);
  std::size_t total_pos = 0;
  for (auto l : labels) total_pos += static_cast<std::size_t>(l);
  if (total_pos == 0)
    throw std::invalid_argument("average_precision: no positives");

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });

  // AP = sum over thresholds of (recall_i - recall_{i-1}) * precision_i,
  // processing score-tie groups atomically.
  double ap = 0.0;
  double prev_recall = 0.0;
  std::size_t tp = 0, seen = 0;
  std::size_t i = 0;
  const std::size_t n = order.size();
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    for (std::size_t t = i; t <= j; ++t) {
      tp += static_cast<std::size_t>(labels[order[t]]);
      ++seen;
    }
    const double recall = static_cast<double>(tp) / static_cast<double>(total_pos);
    const double precision = static_cast<double>(tp) / static_cast<double>(seen);
    ap += (recall - prev_recall) * precision;
    prev_recall = recall;
    i = j + 1;
  }
  return ap;
}

std::vector<std::pair<double, double>> roc_curve(
    const std::vector<double>& scores,
    const std::vector<std::int32_t>& labels) {
  check_inputs(scores, labels);
  std::size_t total_pos = 0;
  for (auto l : labels) total_pos += static_cast<std::size_t>(l);
  const std::size_t total_neg = labels.size() - total_pos;
  if (total_pos == 0 || total_neg == 0)
    throw std::invalid_argument("roc_curve: needs both classes");

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<std::pair<double, double>> pts;
  pts.emplace_back(0.0, 0.0);
  std::size_t tp = 0, fp = 0;
  std::size_t i = 0;
  const std::size_t n = order.size();
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    for (std::size_t t = i; t <= j; ++t) {
      if (labels[order[t]]) ++tp;
      else ++fp;
    }
    pts.emplace_back(static_cast<double>(fp) / static_cast<double>(total_neg),
                     static_cast<double>(tp) / static_cast<double>(total_pos));
    i = j + 1;
  }
  return pts;
}

}  // namespace amdgcnn::metrics
