// Ranking metrics: ROC-AUC and precision-recall AUC.
//
// The paper's headline metric is AUC; we compute it exactly via the
// Mann-Whitney U statistic (rank-sum with midrank tie handling), which equals
// the area under the empirically-interpolated ROC curve.
#pragma once

#include <cstdint>
#include <vector>

namespace amdgcnn::metrics {

/// Exact binary ROC-AUC.  `labels[i]` is 0/1, `scores[i]` the model's score
/// for the positive class.  Throws when either class is absent (AUC is
/// undefined then) — callers that sweep classes should guard with
/// has_both_classes().
double binary_auc(const std::vector<double>& scores,
                  const std::vector<std::int32_t>& labels);

bool has_both_classes(const std::vector<std::int32_t>& labels);

/// Area under the precision-recall curve (step-wise interpolation, the
/// sklearn "average_precision_score" definition).
double binary_average_precision(const std::vector<double>& scores,
                                const std::vector<std::int32_t>& labels);

/// ROC curve points (FPR, TPR) at every distinct threshold, including the
/// (0,0) and (1,1) endpoints — used by tests to cross-check binary_auc via
/// trapezoidal integration.
std::vector<std::pair<double, double>> roc_curve(
    const std::vector<double>& scores, const std::vector<std::int32_t>& labels);

}  // namespace amdgcnn::metrics
