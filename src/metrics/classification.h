// Multiclass classification metrics matching the paper's §V-A definitions:
//
//  * AUC — one class is treated as positive and the rest as negative; we
//    report both the paper's single-class variant and the macro average
//    across all classes present (the macro average is what the benches
//    print, it is the stabler estimate of the same quantity).
//  * AP — "the mean of precision values for all the classes", i.e. macro
//    precision of the argmax classifier.
#pragma once

#include <cstdint>
#include <vector>

namespace amdgcnn::metrics {

/// probs is row-major [n, C] with rows summing to ~1; labels holds n class
/// ids in [0, C).
struct MulticlassEval {
  double macro_auc = 0.0;       // mean over classes (present in labels) of
                                // one-vs-rest AUC
  double macro_precision = 0.0; // the paper's "AP"
  double macro_recall = 0.0;
  double macro_f1 = 0.0;
  double accuracy = 0.0;
  std::vector<double> per_class_auc;        // NaN where undefined
  std::vector<double> per_class_precision;  // NaN where class never predicted
  std::vector<std::int64_t> confusion;      // row-major [C, C], rows = truth
};

MulticlassEval evaluate_multiclass(const std::vector<double>& probs,
                                   std::int64_t num_classes,
                                   const std::vector<std::int32_t>& labels);

/// The paper's literal AUC protocol: "randomly choose one class from all the
/// classes as the positive class".  Exposed for completeness; `class_id`
/// selects the positive class.
double one_vs_rest_auc(const std::vector<double>& probs,
                       std::int64_t num_classes,
                       const std::vector<std::int32_t>& labels,
                       std::int32_t class_id);

/// Argmax of each probability row.
std::vector<std::int32_t> argmax_rows(const std::vector<double>& probs,
                                      std::int64_t num_classes);

}  // namespace amdgcnn::metrics
