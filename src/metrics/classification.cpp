#include "metrics/classification.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "metrics/ranking.h"

namespace amdgcnn::metrics {

namespace {
void check_inputs(const std::vector<double>& probs, std::int64_t num_classes,
                  const std::vector<std::int32_t>& labels) {
  if (num_classes < 2)
    throw std::invalid_argument("multiclass metrics: need >= 2 classes");
  if (labels.empty())
    throw std::invalid_argument("multiclass metrics: empty labels");
  if (probs.size() != labels.size() * static_cast<std::size_t>(num_classes))
    throw std::invalid_argument("multiclass metrics: probs size mismatch");
  for (auto l : labels)
    if (l < 0 || l >= num_classes)
      throw std::invalid_argument("multiclass metrics: label out of range");
}
}  // namespace

std::vector<std::int32_t> argmax_rows(const std::vector<double>& probs,
                                      std::int64_t num_classes) {
  if (num_classes <= 0 || probs.size() % static_cast<std::size_t>(num_classes))
    throw std::invalid_argument("argmax_rows: bad shape");
  const std::size_t n = probs.size() / static_cast<std::size_t>(num_classes);
  std::vector<std::int32_t> out(n);
  for (std::size_t r = 0; r < n; ++r) {
    // A NaN never wins a `>` comparison, so an all-NaN row would silently
    // come out as class 0 — reject non-finite scores instead of guessing.
    for (std::int64_t c = 0; c < num_classes; ++c)
      if (!std::isfinite(probs[r * num_classes + c]))
        throw std::invalid_argument("argmax_rows: non-finite score in row " +
                                    std::to_string(r));
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < num_classes; ++c)
      if (probs[r * num_classes + c] > probs[r * num_classes + best]) best = c;
    out[r] = static_cast<std::int32_t>(best);
  }
  return out;
}

double one_vs_rest_auc(const std::vector<double>& probs,
                       std::int64_t num_classes,
                       const std::vector<std::int32_t>& labels,
                       std::int32_t class_id) {
  check_inputs(probs, num_classes, labels);
  if (class_id < 0 || class_id >= num_classes)
    throw std::invalid_argument("one_vs_rest_auc: class out of range");
  std::vector<double> scores(labels.size());
  std::vector<std::int32_t> binary(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    scores[i] = probs[i * num_classes + class_id];
    binary[i] = labels[i] == class_id ? 1 : 0;
  }
  return binary_auc(scores, binary);
}

MulticlassEval evaluate_multiclass(const std::vector<double>& probs,
                                   std::int64_t num_classes,
                                   const std::vector<std::int32_t>& labels) {
  check_inputs(probs, num_classes, labels);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  MulticlassEval ev;
  ev.per_class_auc.assign(static_cast<std::size_t>(num_classes), nan);
  ev.per_class_precision.assign(static_cast<std::size_t>(num_classes), nan);
  ev.confusion.assign(static_cast<std::size_t>(num_classes * num_classes), 0);

  const auto pred = argmax_rows(probs, num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i)
    ++ev.confusion[static_cast<std::size_t>(labels[i]) * num_classes +
                   pred[i]];

  // Per-class AUC (one-vs-rest) averaged over classes that appear with both
  // polarities.
  double auc_sum = 0.0;
  std::int64_t auc_count = 0;
  for (std::int32_t c = 0; c < num_classes; ++c) {
    std::vector<std::int32_t> binary(labels.size());
    bool pos = false, neg = false;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      binary[i] = labels[i] == c ? 1 : 0;
      (binary[i] ? pos : neg) = true;
    }
    if (!pos || !neg) continue;
    std::vector<double> scores(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i)
      scores[i] = probs[i * num_classes + c];
    ev.per_class_auc[c] = binary_auc(scores, binary);
    auc_sum += ev.per_class_auc[c];
    ++auc_count;
  }
  if (auc_count == 0)
    throw std::invalid_argument(
        "evaluate_multiclass: AUC undefined (single-class labels)");
  ev.macro_auc = auc_sum / static_cast<double>(auc_count);

  // Macro precision / recall / F1 over classes present in the ground truth.
  double prec_sum = 0.0, rec_sum = 0.0, f1_sum = 0.0;
  std::int64_t class_count = 0, correct = 0;
  for (std::int32_t c = 0; c < num_classes; ++c) {
    std::int64_t tp = ev.confusion[static_cast<std::size_t>(c) * num_classes + c];
    std::int64_t truth = 0, predicted = 0;
    for (std::int32_t o = 0; o < num_classes; ++o) {
      truth += ev.confusion[static_cast<std::size_t>(c) * num_classes + o];
      predicted += ev.confusion[static_cast<std::size_t>(o) * num_classes + c];
    }
    correct += tp;
    if (truth == 0) continue;  // class absent from ground truth
    ++class_count;
    // Convention: precision of a never-predicted class counts as 0 toward
    // the macro mean (sklearn's zero_division=0).
    const double prec =
        predicted > 0 ? static_cast<double>(tp) / static_cast<double>(predicted)
                      : 0.0;
    if (predicted > 0)
      ev.per_class_precision[c] = prec;
    const double rec = static_cast<double>(tp) / static_cast<double>(truth);
    prec_sum += prec;
    rec_sum += rec;
    f1_sum += (prec + rec) > 0.0 ? 2.0 * prec * rec / (prec + rec) : 0.0;
  }
  ev.macro_precision = prec_sum / static_cast<double>(class_count);
  ev.macro_recall = rec_sum / static_cast<double>(class_count);
  ev.macro_f1 = f1_sum / static_cast<double>(class_count);
  ev.accuracy = static_cast<double>(correct) / static_cast<double>(labels.size());
  return ev;
}

}  // namespace amdgcnn::metrics
