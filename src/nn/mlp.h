// Dense classifier head: Linear -> ReLU -> Dropout -> ... -> Linear.
// The final layer produces raw logits (softmax is applied by the loss /
// evaluation code).
#pragma once

#include <memory>
#include <vector>

#include "nn/linear.h"

namespace amdgcnn::nn {

class MLP final : public Module {
 public:
  /// dims = {in, hidden..., out}; dropout applies after every hidden ReLU.
  MLP(const std::vector<std::int64_t>& dims, double dropout, util::Rng& rng,
      ag::Dtype dtype = ag::Dtype::f64);

  /// x: [n, in] -> [n, out].  `rng` drives dropout masks in training mode.
  ag::Tensor forward(const ag::Tensor& x, util::Rng& rng) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  double dropout_;
};

}  // namespace amdgcnn::nn
