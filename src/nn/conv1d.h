// Learnable 1-D convolution and max-pooling layers for the DGCNN read-out
// head (operate on [channels, length] signals).
#pragma once

#include "nn/module.h"
#include "tensor/conv_ops.h"

namespace amdgcnn::nn {

class Conv1d final : public Module {
 public:
  Conv1d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, util::Rng& rng,
         ag::Dtype dtype = ag::Dtype::f64);

  /// x: [in_channels, L] -> [out_channels, (L-kernel)/stride + 1].
  ag::Tensor forward(const ag::Tensor& x) const;

  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_;
  ag::Tensor weight_;  // [out_channels, in_channels * kernel]
  ag::Tensor bias_;    // [out_channels]
};

class MaxPool1d final : public Module {
 public:
  MaxPool1d(std::int64_t size, std::int64_t stride);

  ag::Tensor forward(const ag::Tensor& x) const;

 private:
  std::int64_t size_, stride_;
};

}  // namespace amdgcnn::nn
