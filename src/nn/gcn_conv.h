// Graph Convolution layer (Kipf & Welling 2017), the message-passing layer
// of the VANILLA DGCNN baseline.  Symmetric normalisation with self-loops:
//
//   H' = D^{-1/2} (A + I) D^{-1/2} X W,   D = diag(deg + 1)
//
// Note what is *absent*: edge attributes play no role — this is exactly the
// limitation the paper's AM-DGCNN addresses (§III-C).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"

namespace amdgcnn::nn {

class GCNConv final : public Module {
 public:
  GCNConv(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
          ag::Dtype dtype = ag::Dtype::f64);

  /// x: [n, in]; (src, dst) directed edges WITHOUT self-loops (the layer
  /// adds them).  Returns [n, out] (no activation; the model applies tanh).
  ag::Tensor forward(const ag::Tensor& x, const std::vector<std::int64_t>& src,
                     const std::vector<std::int64_t>& dst,
                     std::int64_t num_nodes) const;

  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_, out_;
  ag::Tensor weight_;  // [in, out]
  ag::Tensor bias_;    // [1, out]
};

}  // namespace amdgcnn::nn
