// SortPooling graph-aggregation layer (Zhang et al., AAAI 2018): turns a
// variable-size node-embedding matrix into a fixed [k, C] tensor by sorting
// nodes on their last embedding channel and keeping the top k (zero-padding
// small graphs).  Parameter-free; kept as a Module for architectural
// symmetry and to carry the tuned k (paper Table I: k in 5..150).
#pragma once

#include "nn/module.h"
#include "tensor/conv_ops.h"

namespace amdgcnn::nn {

class SortPooling final : public Module {
 public:
  explicit SortPooling(std::int64_t k);

  /// x: [n, C] -> [k, C].
  ag::Tensor forward(const ag::Tensor& x) const;

  std::int64_t k() const { return k_; }

 private:
  std::int64_t k_;
};

}  // namespace amdgcnn::nn
