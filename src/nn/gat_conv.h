// Graph Attention layer (Velickovic et al. 2018) extended with edge
// attributes — the message-passing layer of AM-DGCNN (paper §III-C).
//
// For a directed edge (j -> i) with attribute vector f_ji, per head h:
//
//   e_ji  = LeakyReLU( a_src^h . (W x_j)^h + a_dst^h . (W x_i)^h
//                      + a_edge^h . (W_e f_ji)^h )
//   alpha = softmax over incoming edges of i          (segment softmax)
//   out_i = sum_j alpha_ji * ( (W x_j)^h + (W_e f_ji)^h )   [heads concat]
//
// The edge projection W_e enters BOTH the attention logits and the message
// payload, so link information reaches the node embeddings — the paper's
// core claim about why GAT fixes DGCNN for knowledge graphs.  Self-loops are
// added with a zero attribute vector.  With edge_attr_dim == 0 the layer
// degenerates to standard multi-head GAT.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"

namespace amdgcnn::nn {

class GATConv final : public Module {
 public:
  /// Output width is heads * head_features (heads concatenated).
  GATConv(std::int64_t in_features, std::int64_t head_features,
          std::int64_t heads, std::int64_t edge_attr_dim, util::Rng& rng,
          double negative_slope = 0.2, ag::Dtype dtype = ag::Dtype::f64);

  /// x: [n, in]; (src, dst) directed edges WITHOUT self-loops; edge_attr is
  /// [E, edge_attr_dim] aligned with (src, dst) (undefined when the layer
  /// was built with edge_attr_dim == 0).  Returns [n, heads*head_features].
  ag::Tensor forward(const ag::Tensor& x, const std::vector<std::int64_t>& src,
                     const std::vector<std::int64_t>& dst,
                     const ag::Tensor& edge_attr,
                     std::int64_t num_nodes) const;

  std::int64_t out_features() const { return heads_ * head_features_; }
  std::int64_t heads() const { return heads_; }
  std::int64_t edge_attr_dim() const { return edge_dim_; }

 private:
  std::int64_t in_, head_features_, heads_, edge_dim_;
  double negative_slope_;
  ag::Dtype dtype_;  // storage precision of the parameters (and outputs)
  ag::Tensor weight_;   // [in, H*F]
  ag::Tensor a_src_;    // [1, H*F]
  ag::Tensor a_dst_;    // [1, H*F]
  ag::Tensor edge_weight_;  // [edge_dim, H*F] (undefined when edge_dim == 0)
  ag::Tensor a_edge_;       // [1, H*F]       (undefined when edge_dim == 0)
  ag::Tensor bias_;     // [1, H*F]
};

}  // namespace amdgcnn::nn
