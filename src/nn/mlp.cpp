#include "nn/mlp.h"

namespace amdgcnn::nn {

MLP::MLP(const std::vector<std::int64_t>& dims, double dropout,
         util::Rng& rng, ag::Dtype dtype)
    : dropout_(dropout) {
  ag::check(dims.size() >= 2, "MLP: need at least input and output dims");
  ag::check(dropout >= 0.0 && dropout < 1.0, "MLP: dropout out of range");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1],
                                               /*bias=*/true, rng, dtype));
    register_module(layers_.back().get());
  }
}

ag::Tensor MLP::forward(const ag::Tensor& x, util::Rng& rng) const {
  ag::Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i + 1 < layers_.size()) {
      h = layers_[i]->forward_relu(h);
      h = ag::ops::dropout(h, dropout_, training(), rng);
    } else {
      h = layers_[i]->forward(h);
    }
  }
  return h;
}

}  // namespace amdgcnn::nn
