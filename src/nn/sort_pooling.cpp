#include "nn/sort_pooling.h"

namespace amdgcnn::nn {

SortPooling::SortPooling(std::int64_t k) : k_(k) {
  ag::check(k > 0, "SortPooling: k must be positive");
}

ag::Tensor SortPooling::forward(const ag::Tensor& x) const {
  return ag::ops::sort_pool(x, k_);
}

}  // namespace amdgcnn::nn
