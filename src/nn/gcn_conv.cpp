#include "nn/gcn_conv.h"

#include <cmath>

namespace amdgcnn::nn {

GCNConv::GCNConv(std::int64_t in_features, std::int64_t out_features,
                 util::Rng& rng, ag::Dtype dtype)
    : in_(in_features), out_(out_features) {
  ag::check(in_features > 0 && out_features > 0,
            "GCNConv: feature sizes must be positive");
  weight_ = register_parameter(ag::Tensor::xavier(in_, out_, rng, dtype));
  bias_ = register_parameter(ag::Tensor::zeros({1, out_}, dtype));
}

ag::Tensor GCNConv::forward(const ag::Tensor& x,
                            const std::vector<std::int64_t>& src,
                            const std::vector<std::int64_t>& dst,
                            std::int64_t num_nodes) const {
  ag::check(x.rank() == 2 && x.dim(0) == num_nodes,
            "GCNConv: node feature shape mismatch");
  ag::check(src.size() == dst.size(), "GCNConv: edge array size mismatch");

  // Edge list with self-loops appended.
  std::vector<std::int64_t> s(src), d(dst);
  s.reserve(src.size() + static_cast<std::size_t>(num_nodes));
  d.reserve(dst.size() + static_cast<std::size_t>(num_nodes));
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    s.push_back(i);
    d.push_back(i);
  }

  // In-degree including the self-loop; (src,dst) lists both orientations of
  // each undirected edge so in-degree equals the undirected degree + 1.
  std::vector<double> deg(static_cast<std::size_t>(num_nodes), 0.0);
  for (auto v : d) deg[static_cast<std::size_t>(v)] += 1.0;

  std::vector<double> coef(s.size());
  for (std::size_t e = 0; e < s.size(); ++e)
    coef[e] = 1.0 / std::sqrt(deg[static_cast<std::size_t>(s[e])] *
                              deg[static_cast<std::size_t>(d[e])]);

  auto xw = ag::ops::matmul(x, weight_);
  auto msg = ag::ops::gather_rows(xw, s);
  msg = ag::ops::scale_rows(msg, coef);
  // Fused aggregate + bias: one pass over the node matrix instead of two.
  return ag::ops::scatter_add_bias(msg, d, num_nodes, bias_);
}

}  // namespace amdgcnn::nn
