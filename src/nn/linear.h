// Fully-connected layer: y = x W + b.
#pragma once

#include "nn/module.h"
#include "tensor/ops.h"

namespace amdgcnn::nn {

class Linear final : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
         util::Rng& rng, ag::Dtype dtype = ag::Dtype::f64);

  /// x: [n, in] -> [n, out].
  ag::Tensor forward(const ag::Tensor& x) const;

  /// relu(forward(x)) as a single fused tape node (see ops::linear_relu).
  ag::Tensor forward_relu(const ag::Tensor& x) const;

  /// tanh(forward(x)) as a single fused tape node (see ops::linear_tanh).
  ag::Tensor forward_tanh(const ag::Tensor& x) const;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_, out_;
  ag::Tensor weight_;  // [in, out]
  ag::Tensor bias_;    // [1, out] or undefined
};

}  // namespace amdgcnn::nn
