#include "nn/gat_conv.h"

namespace amdgcnn::nn {

GATConv::GATConv(std::int64_t in_features, std::int64_t head_features,
                 std::int64_t heads, std::int64_t edge_attr_dim,
                 util::Rng& rng, double negative_slope, ag::Dtype dtype)
    : in_(in_features),
      head_features_(head_features),
      heads_(heads),
      edge_dim_(edge_attr_dim),
      negative_slope_(negative_slope),
      dtype_(dtype) {
  ag::check(in_features > 0 && head_features > 0 && heads > 0,
            "GATConv: sizes must be positive");
  ag::check(edge_attr_dim >= 0, "GATConv: negative edge_attr_dim");
  const std::int64_t hf = heads_ * head_features_;
  weight_ = register_parameter(ag::Tensor::xavier(in_, hf, rng, dtype));
  a_src_ = register_parameter(ag::Tensor::xavier(1, hf, rng, dtype));
  a_dst_ = register_parameter(ag::Tensor::xavier(1, hf, rng, dtype));
  if (edge_dim_ > 0) {
    edge_weight_ =
        register_parameter(ag::Tensor::xavier(edge_dim_, hf, rng, dtype));
    a_edge_ = register_parameter(ag::Tensor::xavier(1, hf, rng, dtype));
  }
  bias_ = register_parameter(ag::Tensor::zeros({1, hf}, dtype));
}

ag::Tensor GATConv::forward(const ag::Tensor& x,
                            const std::vector<std::int64_t>& src,
                            const std::vector<std::int64_t>& dst,
                            const ag::Tensor& edge_attr,
                            std::int64_t num_nodes) const {
  namespace ops = ag::ops;
  ag::check(x.rank() == 2 && x.dim(0) == num_nodes,
            "GATConv: node feature shape mismatch");
  ag::check(src.size() == dst.size(), "GATConv: edge array size mismatch");
  const auto e_in = static_cast<std::int64_t>(src.size());
  if (edge_dim_ > 0) {
    ag::check(edge_attr.defined() && edge_attr.rank() == 2 &&
                  edge_attr.dim(0) == e_in && edge_attr.dim(1) == edge_dim_,
              "GATConv: edge attribute shape mismatch");
  }

  // Self-loops appended after the real edges (attribute = zero vector).
  std::vector<std::int64_t> s(src), d(dst);
  s.reserve(src.size() + static_cast<std::size_t>(num_nodes));
  d.reserve(dst.size() + static_cast<std::size_t>(num_nodes));
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    s.push_back(i);
    d.push_back(i);
  }
  const auto e_all = static_cast<std::int64_t>(s.size());

  auto xw = ops::matmul(x, weight_);           // [n, H*F]
  auto hs = ops::gather_rows(xw, s);           // [E, H*F] source payloads
  auto hd = ops::gather_rows(xw, d);           // [E, H*F]

  ag::Tensor payload = hs;
  auto scores = ops::add(ops::heads_dot(hs, a_src_, heads_),
                         ops::heads_dot(hd, a_dst_, heads_));  // [E, H]
  if (edge_dim_ > 0) {
    // Project real-edge attributes (cast to the layer dtype if the dataset
    // was built at the other precision); self-loop rows are zero.
    auto ea_real =
        ops::matmul(ops::cast(edge_attr, dtype_), edge_weight_);  // [e_in,H*F]
    auto ea = e_in == e_all
                  ? ea_real
                  : ops::concat_rows(
                        {ea_real,
                         ag::Tensor::zeros(
                             {e_all - e_in, heads_ * head_features_}, dtype_)});
    scores = ops::add(scores, ops::heads_dot(ea, a_edge_, heads_));
    payload = ops::add(payload, ea);
  }
  scores = ops::leaky_relu(scores, negative_slope_);
  auto alpha = ops::segment_softmax(scores, d, num_nodes);  // [E, H]
  auto msg = ops::heads_scale(payload, alpha, heads_);      // [E, H*F]
  return ops::scatter_add_bias(msg, d, num_nodes, bias_);   // [n, H*F] + bias
}

}  // namespace amdgcnn::nn
