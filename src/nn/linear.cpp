#include "nn/linear.h"

namespace amdgcnn::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
               util::Rng& rng, ag::Dtype dtype)
    : in_(in_features), out_(out_features) {
  ag::check(in_features > 0 && out_features > 0,
            "Linear: feature sizes must be positive");
  weight_ = register_parameter(ag::Tensor::xavier(in_, out_, rng, dtype));
  if (bias) bias_ = register_parameter(ag::Tensor::zeros({1, out_}, dtype));
}

ag::Tensor Linear::forward(const ag::Tensor& x) const {
  if (bias_.defined()) return ag::ops::addmm(x, weight_, bias_);
  return ag::ops::matmul(x, weight_);
}

ag::Tensor Linear::forward_relu(const ag::Tensor& x) const {
  if (bias_.defined()) return ag::ops::linear_relu(x, weight_, bias_);
  return ag::ops::relu(ag::ops::matmul(x, weight_));
}

ag::Tensor Linear::forward_tanh(const ag::Tensor& x) const {
  if (bias_.defined()) return ag::ops::linear_tanh(x, weight_, bias_);
  return ag::ops::tanh_act(ag::ops::matmul(x, weight_));
}

}  // namespace amdgcnn::nn
