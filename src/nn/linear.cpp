#include "nn/linear.h"

namespace amdgcnn::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
               util::Rng& rng)
    : in_(in_features), out_(out_features) {
  ag::check(in_features > 0 && out_features > 0,
            "Linear: feature sizes must be positive");
  weight_ = register_parameter(ag::Tensor::xavier(in_, out_, rng));
  if (bias) bias_ = register_parameter(ag::Tensor::zeros({1, out_}));
}

ag::Tensor Linear::forward(const ag::Tensor& x) const {
  auto y = ag::ops::matmul(x, weight_);
  if (bias_.defined()) y = ag::ops::add_rowvec(y, bias_);
  return y;
}

}  // namespace amdgcnn::nn
