#include "nn/conv1d.h"

namespace amdgcnn::nn {

Conv1d::Conv1d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, util::Rng& rng,
               ag::Dtype dtype)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride) {
  ag::check(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "Conv1d: sizes must be positive");
  weight_ = register_parameter(
      ag::Tensor::xavier(out_channels_, in_channels_ * kernel_, rng, dtype));
  bias_ = register_parameter(ag::Tensor::zeros({out_channels_}, dtype));
}

ag::Tensor Conv1d::forward(const ag::Tensor& x) const {
  return ag::ops::conv1d(x, weight_, bias_, kernel_, stride_);
}

MaxPool1d::MaxPool1d(std::int64_t size, std::int64_t stride)
    : size_(size), stride_(stride) {
  ag::check(size > 0 && stride > 0, "MaxPool1d: sizes must be positive");
}

ag::Tensor MaxPool1d::forward(const ag::Tensor& x) const {
  return ag::ops::max_pool1d(x, size_, stride_);
}

}  // namespace amdgcnn::nn
