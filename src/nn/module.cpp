#include "nn/module.h"

#include <stdexcept>

namespace amdgcnn::nn {

std::vector<ag::Tensor> Module::parameters() const {
  std::vector<ag::Tensor> out = params_;
  for (const Module* c : children_) {
    auto sub = c->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

void Module::set_training(bool training) {
  training_ = training;
  for (Module* c : children_) c->set_training(training);
}

ag::Tensor Module::register_parameter(ag::Tensor t) {
  if (!t.defined())
    throw std::invalid_argument("register_parameter: undefined tensor");
  t.requires_grad(true);
  params_.push_back(t);
  return t;
}

void Module::register_module(Module* child) {
  if (child == nullptr)
    throw std::invalid_argument("register_module: null child");
  children_.push_back(child);
}

}  // namespace amdgcnn::nn
