// Minimal Module abstraction: a tree of parameter owners, mirroring the
// torch.nn.Module contract the reference implementation is written against
// (parameters() feeds the optimizer; train/eval mode gates dropout).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace amdgcnn::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All learnable tensors of this module and its registered children.
  std::vector<ag::Tensor> parameters() const;

  /// Total scalar parameter count (for model-size reporting).
  std::int64_t num_parameters() const;

  /// Toggle training mode recursively (affects dropout).
  void set_training(bool training);
  bool training() const { return training_; }

 protected:
  /// Register a learnable tensor; flips requires_grad on and returns it.
  ag::Tensor register_parameter(ag::Tensor t);
  /// Register a child module (must outlive this module; typically a member).
  void register_module(Module* child);

 private:
  std::vector<ag::Tensor> params_;
  std::vector<Module*> children_;
  bool training_ = true;
};

}  // namespace amdgcnn::nn
