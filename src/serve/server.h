// Persistent serving runtime around the frozen inference engine
// (DESIGN.md §2.8).
//
// A Server binds one LinkPredictor to one serving graph and answers
// candidate-link batches through a pipeline built for the regime where
// SEAL's per-link subgraph cost dominates: requests flow through a bounded
// submission queue into a dispatcher thread, which plans each batch
// serially (dedup + score-cache probe + endpoint grouping), fans the cache
// misses out over a persistent WorkerPool — every worker owns a warm
// inference arena, its own node-row cache and the thread-local extraction
// scratch that survives across requests — and assembles results in input
// order.  Three cache layers amortise repeated work across queries:
//
//   1. score LRU    — (a, b) -> probability row, validated against the
//                     hop-hull node generations exactly like the PR 7
//                     predictor cache: a hit is bit-identical to recompute.
//   2. endpoint LRU — endpoint -> hop-bounded BFS frontier (nodes + dists),
//                     hull-validated the same way; hits are seeded into the
//                     claiming worker's per-thread frontier cache so the
//                     extraction replays the stored traversal.  Repeated
//                     endpoints across requests skip their BFS entirely.
//   3. node-row     — per-worker cache of the DRNL-independent feature-row
//                     tails (seal::NodeRowCache); nodes shared between the
//                     links of a group memcpy their rows.
//
// Every layer preserves bytes, so a batch scored through the Server is
// bit-identical to the serial cold predict_links path per quantization
// scheme, for any worker count — asserted by tests/test_serving.cpp and
// bench_serving_throughput.
//
// Concurrency contract: submit()/score_batch() may be called from any
// thread (they block when the queue is full — backpressure is the bounded
// queue with a caller-blocks policy).  Graph mutations (DeltaOverlay
// insert/delete) keep the single-writer rule: they must not overlap request
// processing — mutate only while no submitted request is outstanding.
// shutdown() stops admissions, drains queued and in-flight requests to
// their futures, then parks and joins the pool; it is idempotent, and
// submitting afterwards throws ServeError.  Failures inside a request
// surface on the future as util::WorkerError carrying the lowest failing
// input-link index, deterministically for any worker count.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "core/link_predictor.h"
#include "serve/worker_pool.h"

namespace amdgcnn::serve {

struct ServerOptions {
  /// Pool threads scoring cache misses.  Results are bit-identical for any
  /// value (the worker index only selects scratch).
  int num_workers = 1;
  /// Pending-request cap; submit() blocks once the queue is full.
  std::size_t queue_capacity = 16;
  /// Layer 1: cross-query (a, b) -> probability-row LRU.
  bool score_cache = true;
  std::size_t score_cache_capacity = 1 << 16;
  /// Layer 2: cross-query endpoint -> BFS-frontier LRU.
  bool endpoint_cache = true;
  std::size_t endpoint_cache_capacity = 4096;
  /// Layer 3: per-worker feature-row-tail reuse (seal::NodeRowCache).
  bool reuse_feature_rows = true;
};

/// Cumulative counters since construction; see the cache layering above.
/// `scored` counts frozen forwards actually run — the gap to `links` is
/// work the dedup and the score cache removed.
struct ServerStats {
  std::int64_t requests = 0;
  std::int64_t links = 0;             // links across all requests
  std::int64_t deduped = 0;           // in-batch duplicates of earlier links
  std::int64_t scored = 0;            // cold forwards actually executed
  std::int64_t score_hits = 0;
  std::int64_t score_misses = 0;
  std::int64_t score_invalidated = 0;  // dropped: hull node went dirty
  std::int64_t score_evictions = 0;    // dropped: LRU capacity
  std::int64_t endpoint_hits = 0;
  std::int64_t endpoint_misses = 0;
  std::int64_t endpoint_invalidated = 0;
  std::int64_t endpoint_evictions = 0;
  std::int64_t row_hits = 0;   // node-row tails served from worker caches
  std::int64_t row_misses = 0;
};

class Server {
 public:
  /// Binds `predictor` and `graph` (both borrowed; they must outlive the
  /// Server).  Each pool worker gets an arena pre-warmed to the predictor's
  /// warm_nodes/warm_edges hint so first queries never grow mid-pass.
  Server(const core::LinkPredictor& predictor,
         const graph::KnowledgeGraph& graph, ServerOptions options = {});
  ~Server();  // implies shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue one batch; blocks while the queue is full.  The future yields
  /// the predictions in input order, or rethrows the request's failure.
  std::future<core::LinkPredictions> submit(
      std::vector<seal::LinkExample> links);

  /// Synchronous convenience: submit() + get().
  core::LinkPredictions score_batch(
      const std::vector<seal::LinkExample>& links);

  /// Stop admissions, drain queued + in-flight requests, park the pool.
  void shutdown();
  bool closed() const;

  ServerStats stats() const;
  const ServerOptions& options() const { return options_; }
  int num_workers() const { return options_.num_workers; }

 private:
  struct Request {
    std::vector<seal::LinkExample> links;
    std::promise<core::LinkPredictions> promise;
  };
  struct Impl;  // caches + per-worker state (server.cpp)

  void dispatcher_loop();
  core::LinkPredictions process(const std::vector<seal::LinkExample>& links);

  const core::LinkPredictor& predictor_;
  const graph::KnowledgeGraph& graph_;
  ServerOptions options_;
  std::unique_ptr<Impl> impl_;
  std::unique_ptr<WorkerPool> pool_;

  mutable std::mutex queue_mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool shut_down_ = false;
  std::thread dispatcher_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace amdgcnn::serve
