#include "serve/worker_pool.h"

namespace amdgcnn::serve {

WorkerPool::WorkerPool(int num_workers) : num_workers_(num_workers) {
  if (num_workers < 1)
    throw ServeError("WorkerPool: num_workers must be >= 1");
  threads_.reserve(static_cast<std::size_t>(num_workers));
  for (int id = 0; id < num_workers; ++id)
    threads_.emplace_back([this, id] { worker_loop(id); });
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

void WorkerPool::run(const char* stage, std::int64_t n, const WorkFn& fn) {
  util::WorkerErrorCollector errors;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) throw ServeError("WorkerPool::run: pool is shut down");
    if (running_)
      throw ServeError("WorkerPool::run: a job is already in flight");
    if (n <= 0) return;
    ++job_seq_;
    job_n_ = n;
    job_fn_ = &fn;
    job_errors_ = &errors;
    next_.store(0, std::memory_order_relaxed);
    active_ = num_workers_;
    running_ = true;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    running_ = false;
    job_fn_ = nullptr;
    job_errors_ = nullptr;
  }
  done_cv_.notify_all();  // unblock a shutdown() waiting for the join
  errors.rethrow(stage);
}

void WorkerPool::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    // Let an in-flight run() complete first: the caller resets running_
    // after the last worker leaves the job, then notifies done_cv_.
    done_cv_.wait(lock, [&] { return !running_; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void WorkerPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    const WorkFn* fn;
    util::WorkerErrorCollector* errors;
    std::int64_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || job_seq_ != seen; });
      if (job_seq_ == seen) return;  // stop_ with no new job
      seen = job_seq_;
      fn = job_fn_;
      errors = job_errors_;
      n = job_n_;
    }
    for (;;) {
      const std::int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(i, id);
      } catch (...) {
        errors->capture(i);
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace amdgcnn::serve
