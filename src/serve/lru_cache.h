// Minimal intrusive LRU map for the serving caches (DESIGN.md §2.8).
//
// The PR 7 score cache wipes wholesale when full — deterministic and fine
// for one steady workload that re-fills it in a pass, but a serving process
// juggling many endpoints wants the hot set to survive admission of the
// cold tail.  This is the classic list + hash-map LRU: find() refreshes
// recency, insert() evicts from the cold end once past capacity.  Eviction
// order depends on access order and therefore on scheduling when several
// workers share a cache — that only ever costs a future miss, never bytes
// (every consumer validates entries against graph generations before use).
//
// Not thread-safe; callers hold their own lock (serve::Server).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

namespace amdgcnn::serve {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  /// `capacity` >= 1; insert() evicts the least-recently-used entry once
  /// size would exceed it.
  explicit LruCache(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Pointer to the value (refreshing its recency), or nullptr.  The pointer
  /// is valid until the next insert()/erase().
  V* find(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Insert or overwrite; the entry becomes most-recently-used.
  void insert(const K& key, V value) {
    if (auto* live = find(key)) {
      *live = std::move(value);
      return;
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
    while (map_.size() > capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// Remove one entry (for generation-invalidated hits); returns whether it
  /// existed.  Not counted as an eviction — callers track invalidations.
  bool erase(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.erase(it->second);
    map_.erase(it);
    return true;
  }

  void clear() {
    map_.clear();
    order_.clear();
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Entries dropped at the cold end by capacity pressure (cumulative).
  std::int64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      map_;
  std::int64_t evictions_ = 0;
};

}  // namespace amdgcnn::serve
