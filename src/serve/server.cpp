#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "graph/subgraph.h"
#include "infer/arena.h"
#include "metrics/classification.h"
#include "seal/feature_builder.h"
#include "serve/lru_cache.h"

namespace amdgcnn::serve {

namespace {

/// Ordered (a, b) packed into one word — the same keying as the PR 7 score
/// cache (extraction is direction-sensitive: local id 0 is always a).
std::uint64_t pair_key(graph::NodeId a, graph::NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}

std::uint64_t endpoint_key(graph::NodeId source, std::int32_t depth) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(depth));
}

/// A cached artifact is live iff no member node was touched after its fill
/// generation — any mutation that can change an enclosing subgraph or a
/// hop-bounded frontier stamps a node inside it (DESIGN.md §2.5/§2.8).
bool members_live(const graph::KnowledgeGraph& g,
                  const std::vector<graph::NodeId>& members,
                  std::uint64_t generation) {
  for (const auto v : members)
    if (g.node_generation(v) > generation) return false;
  return true;
}

}  // namespace

struct Server::Impl {
  struct ScoreEntry {
    std::vector<double> proba;           // one row, num_classes wide
    std::vector<graph::NodeId> hull;     // validation set
    std::uint64_t generation = 0;
  };
  struct FrontierEntry {
    std::uint64_t generation = 0;
    std::vector<graph::NodeId> nodes;    // BFS discovery order
    std::vector<std::int32_t> dist;      // parallel to nodes
  };
  struct Worker {
    infer::Arena arena;
    seal::NodeRowCache rows;
  };

  explicit Impl(const ServerOptions& o)
      : scores(o.score_cache_capacity), frontiers(o.endpoint_cache_capacity) {}

  // Layer 1 — dispatcher-only, no lock needed.
  LruCache<std::uint64_t, ScoreEntry> scores;

  // Layer 2 — shared between pool workers.
  std::mutex frontier_mu;
  LruCache<std::uint64_t, FrontierEntry> frontiers;
  std::int64_t endpoint_hits = 0;         // guarded by frontier_mu
  std::int64_t endpoint_misses = 0;
  std::int64_t endpoint_invalidated = 0;

  // Layer 3 — one per worker, touched only by its owner.
  std::vector<std::unique_ptr<Worker>> workers;
};

Server::Server(const core::LinkPredictor& predictor,
               const graph::KnowledgeGraph& graph, ServerOptions options)
    : predictor_(predictor),
      graph_(graph),
      options_(options),
      impl_(std::make_unique<Impl>(options_)),
      pool_(std::make_unique<WorkerPool>(options_.num_workers)) {
  if (options_.queue_capacity < 1)
    throw ServeError("Server: queue_capacity must be >= 1");
  const auto& po = predictor_.options();
  impl_->workers.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    auto state = std::make_unique<Impl::Worker>();
    if (po.warm_nodes > 0)
      predictor_.frozen().warm_up(state->arena, po.warm_nodes, po.warm_edges);
    impl_->workers.push_back(std::move(state));
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Server::~Server() { shutdown(); }

std::future<core::LinkPredictions> Server::submit(
    std::vector<seal::LinkExample> links) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  not_full_.wait(lock, [&] {
    return shut_down_ || queue_.size() < options_.queue_capacity;
  });
  if (shut_down_) throw ServeError("Server::submit: server is shut down");
  Request request;
  request.links = std::move(links);
  auto future = request.promise.get_future();
  queue_.push_back(std::move(request));
  lock.unlock();
  not_empty_.notify_one();
  return future;
}

core::LinkPredictions Server::score_batch(
    const std::vector<seal::LinkExample>& links) {
  return submit(links).get();
}

void Server::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Wake blocked submitters (they throw) and the dispatcher, which drains
  // every queued request to its future before exiting.
  not_full_.notify_all();
  not_empty_.notify_all();
  dispatcher_.join();
  pool_->shutdown();
}

bool Server::closed() const {
  const std::lock_guard<std::mutex> lock(queue_mu_);
  return shut_down_;
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Server::dispatcher_loop() {
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      not_empty_.wait(lock, [&] { return shut_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shut down and fully drained
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_all();
    try {
      request.promise.set_value(process(request.links));
    } catch (...) {
      request.promise.set_exception(std::current_exception());
    }
  }
}

core::LinkPredictions Server::process(
    const std::vector<seal::LinkExample>& links) {
  const std::int64_t c = predictor_.config().num_classes;
  const auto n = static_cast<std::int64_t>(links.size());
  core::LinkPredictions result;
  result.num_classes = c;
  result.proba.resize(static_cast<std::size_t>(n * c));

  // ---- Plan (serial): dedup, score-cache probe, endpoint grouping --------
  struct Distinct {
    seal::LinkExample link;
    std::int64_t first_input = 0;  // lowest input index (error reporting)
  };
  std::vector<Distinct> distinct;
  std::vector<std::int64_t> dup_of(static_cast<std::size_t>(n));
  std::int64_t deduped = 0;
  {
    std::unordered_map<std::uint64_t, std::int64_t> seen;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto key = pair_key(links[i].a, links[i].b);
      const auto [it, inserted] =
          seen.try_emplace(key, static_cast<std::int64_t>(distinct.size()));
      if (inserted)
        distinct.push_back({links[i], i});
      else
        ++deduped;
      dup_of[static_cast<std::size_t>(i)] = it->second;
    }
  }
  const auto d = static_cast<std::int64_t>(distinct.size());
  std::vector<double> rows(static_cast<std::size_t>(d * c));
  std::vector<std::vector<graph::NodeId>> hulls(distinct.size());

  std::int64_t score_hits = 0, score_misses = 0, score_invalidated = 0;
  std::vector<std::int64_t> miss;
  for (std::int64_t k = 0; k < d; ++k) {
    const auto key = pair_key(distinct[static_cast<std::size_t>(k)].link.a,
                              distinct[static_cast<std::size_t>(k)].link.b);
    if (options_.score_cache) {
      if (auto* entry = impl_->scores.find(key)) {
        if (members_live(graph_, entry->hull, entry->generation)) {
          std::copy(entry->proba.begin(), entry->proba.end(),
                    rows.begin() + k * c);
          ++score_hits;
          continue;
        }
        impl_->scores.erase(key);
        ++score_invalidated;
      }
      ++score_misses;
    }
    miss.push_back(k);
  }

  // Endpoint groups over the misses: all links fanning out of one source
  // node score back to back on one worker, so its per-thread frontier cache
  // runs the source BFS once per group (DESIGN.md §2.6) and its node-row
  // cache reuses feature tails across the overlapping subgraphs.
  std::vector<std::vector<std::int64_t>> groups;
  {
    std::unordered_map<graph::NodeId, std::size_t> group_of;
    for (const auto k : miss) {
      const auto source = distinct[static_cast<std::size_t>(k)].link.a;
      const auto [it, inserted] = group_of.try_emplace(source, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(k);
    }
  }

  // ---- Score the misses over the pool (parallel) -------------------------
  // Failures are collected by the lowest failing *input* index, not the
  // group index, so a bad batch reports the same link on every run and any
  // worker count.  A failure aborts its group; other groups complete.
  util::WorkerErrorCollector errors;
  if (!groups.empty()) {
    const auto& ds = predictor_.options().dataset;
    auto extract_opts = ds.extract;
    extract_opts.collect_hull = true;
    const std::int32_t depth = extract_opts.num_hops;

    // Move a hull-validated frontier from the shared LRU into the calling
    // worker's per-thread cache (a no-op miss otherwise)...
    const auto seed = [&](graph::NodeId source) {
      std::vector<graph::NodeId> nodes;
      std::vector<std::int32_t> dist;
      {
        const std::lock_guard<std::mutex> lock(impl_->frontier_mu);
        auto* entry = impl_->frontiers.find(endpoint_key(source, depth));
        if (entry == nullptr) {
          ++impl_->endpoint_misses;
          return;
        }
        if (!members_live(graph_, entry->nodes, entry->generation)) {
          impl_->frontiers.erase(endpoint_key(source, depth));
          ++impl_->endpoint_invalidated;
          ++impl_->endpoint_misses;
          return;
        }
        nodes = entry->nodes;
        dist = entry->dist;
        ++impl_->endpoint_hits;
      }
      graph::seed_frontier_cache(graph_, source, /*masked_edge=*/-1, depth,
                                 nodes, dist);
    };
    // ...and publish a freshly traversed frontier back to the shared LRU.
    const auto publish = [&](graph::NodeId source) {
      std::vector<graph::NodeId> nodes;
      std::vector<std::int32_t> dist;
      if (!graph::export_cached_frontier(graph_, source, /*masked_edge=*/-1,
                                         depth, nodes, dist))
        return;
      const std::lock_guard<std::mutex> lock(impl_->frontier_mu);
      const auto key = endpoint_key(source, depth);
      if (impl_->frontiers.find(key) != nullptr) return;
      Impl::FrontierEntry entry;
      entry.generation = graph_.generation();
      entry.nodes = std::move(nodes);
      entry.dist = std::move(dist);
      impl_->frontiers.insert(key, std::move(entry));
    };

    const WorkerPool::WorkFn fn = [&](std::int64_t gi, int w) {
      auto& worker = *impl_->workers[static_cast<std::size_t>(w)];
      seal::NodeRowCache* row_cache =
          options_.reuse_feature_rows ? &worker.rows : nullptr;
      const auto& group = groups[static_cast<std::size_t>(gi)];
      bool source_seeded = false;
      for (const auto k : group) {
        const auto& item = distinct[static_cast<std::size_t>(k)];
        try {
          const auto& link = item.link;
          if (link.a < 0 || link.a >= graph_.num_nodes() || link.b < 0 ||
              link.b >= graph_.num_nodes())
            throw std::invalid_argument(
                "serve::Server: link node id out of range");
          // The shared frontier layer only holds unmasked traversals; a
          // candidate that is an existing edge masks it out of both BFS
          // runs, so its frontiers are link-specific and bypass the cache.
          const bool unmasked = graph_.find_edge(link.a, link.b) < 0;
          if (options_.endpoint_cache && unmasked) {
            if (!source_seeded) {
              seed(link.a);
              source_seeded = true;
            }
            seed(link.b);
          }
          auto sub = graph::extract_enclosing_subgraph(graph_, link.a, link.b,
                                                       extract_opts);
          const auto sample = seal::build_sample(graph_, sub, link.label,
                                                 ds.features, row_cache);
          predictor_.frozen().predict_proba(sample, worker.arena,
                                            rows.data() + k * c);
          hulls[static_cast<std::size_t>(k)] = std::move(sub.hull);
          if (options_.endpoint_cache && unmasked) {
            publish(link.a);
            publish(link.b);
          }
        } catch (...) {
          errors.capture(item.first_input);
          return;  // abort this group; the request fails after the join
        }
      }
    };
    pool_->run("serve::score_batch", static_cast<std::int64_t>(groups.size()),
               fn);
  }
  errors.rethrow("serve::score_batch");

  // ---- Admit, fan out, count (serial; the pool has joined) ---------------
  if (options_.score_cache) {
    const std::uint64_t generation = graph_.generation();
    for (const auto k : miss) {
      Impl::ScoreEntry entry;
      entry.proba.assign(rows.begin() + k * c, rows.begin() + (k + 1) * c);
      entry.hull = std::move(hulls[static_cast<std::size_t>(k)]);
      entry.generation = generation;
      impl_->scores.insert(
          pair_key(distinct[static_cast<std::size_t>(k)].link.a,
                   distinct[static_cast<std::size_t>(k)].link.b),
          std::move(entry));
    }
  }
  for (std::int64_t i = 0; i < n; ++i) {
    const auto k = dup_of[static_cast<std::size_t>(i)];
    std::copy(rows.begin() + k * c, rows.begin() + (k + 1) * c,
              result.proba.begin() + i * c);
  }
  result.labels = metrics::argmax_rows(result.proba, c);

  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.requests += 1;
    stats_.links += n;
    stats_.deduped += deduped;
    stats_.scored += static_cast<std::int64_t>(miss.size());
    stats_.score_hits += score_hits;
    stats_.score_misses += score_misses;
    stats_.score_invalidated += score_invalidated;
    stats_.score_evictions = impl_->scores.evictions();
    {
      const std::lock_guard<std::mutex> frontier_lock(impl_->frontier_mu);
      stats_.endpoint_hits = impl_->endpoint_hits;
      stats_.endpoint_misses = impl_->endpoint_misses;
      stats_.endpoint_invalidated = impl_->endpoint_invalidated;
      stats_.endpoint_evictions = impl_->frontiers.evictions();
    }
    std::int64_t row_hits = 0, row_misses = 0;
    for (const auto& worker : impl_->workers) {
      row_hits += worker->rows.stats().hits;    // safe: the pool has joined
      row_misses += worker->rows.stats().misses;
    }
    stats_.row_hits = row_hits;
    stats_.row_misses = row_misses;
  }
  return result;
}

}  // namespace amdgcnn::serve
