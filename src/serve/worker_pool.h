// Persistent fork-join worker pool for the serving runtime (DESIGN.md §2.8).
//
// The OpenMP loops in predict_links spin a team up and down per call, which
// a request-at-a-time server pays on every query.  This pool keeps its
// threads alive for the process lifetime instead: workers park on a
// condition variable between jobs (ggml-threading style), so dispatching a
// request costs one notify instead of a team launch, and everything a worker
// owns — its inference arena, its extraction scratch, its thread-local
// frontier cache — stays warm from one request to the next.
//
// run() is a blocking fork-join over [0, n): items are claimed from a shared
// atomic counter (the same dynamic schedule as the OpenMP paths), each item
// writes only its own outputs, and failures funnel through
// util::WorkerErrorCollector — after the join the lowest failing item is
// rethrown as util::WorkerError with stage context, deterministically for
// any worker count.  One job runs at a time; the pool is a building block
// for serve::Server, whose dispatcher is the only run() caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel_error.h"

namespace amdgcnn::serve {

/// Misuse of the serving runtime itself (submit after shutdown, invalid
/// options) — distinct from util::WorkerError, which wraps failures raised
/// by the work *inside* a request.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class WorkerPool {
 public:
  /// Worker function: invoked once per item with the claiming worker's index
  /// in [0, num_workers).  The worker index selects per-worker scratch; it
  /// must never influence output bytes (that is what keeps results identical
  /// for any worker count).
  using WorkFn = std::function<void(std::int64_t item, int worker)>;

  /// Spawns `num_workers` (>= 1) threads, parked until the first run().
  explicit WorkerPool(int num_workers);
  ~WorkerPool();  // implies shutdown()

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Blocking fork-join: run fn(item, worker) for every item in [0, n).
  /// Exceptions thrown by fn are collected per item; after the join the
  /// failure with the LOWEST item index is rethrown as util::WorkerError
  /// ("<stage>: worker failed at item N: ...") with the original nested.
  /// Throws ServeError if the pool is shut down.  Not reentrant: one run()
  /// at a time (the serving dispatcher is the single caller).
  void run(const char* stage, std::int64_t n, const WorkFn& fn);

  /// Park the threads permanently and join them.  Waits for an in-flight
  /// run() to finish first (graceful); idempotent — a second call returns
  /// immediately.  After shutdown, run() throws ServeError.
  void shutdown();
  bool closed() const;

 private:
  void worker_loop(int id);

  const int num_workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new job available / stop
  std::condition_variable done_cv_;  // caller: all workers left the job
  std::vector<std::thread> threads_;

  // Current job, valid while active_ > 0.  Workers detect a new job by the
  // sequence number changing, claim items from next_, and the last one out
  // signals done_cv_.
  std::uint64_t job_seq_ = 0;
  std::int64_t job_n_ = 0;
  const WorkFn* job_fn_ = nullptr;
  util::WorkerErrorCollector* job_errors_ = nullptr;
  std::atomic<std::int64_t> next_{0};
  int active_ = 0;        // workers still inside the current job
  bool running_ = false;  // a run() is in flight
  bool stop_ = false;
};

}  // namespace amdgcnn::serve
