// Weight serialization for trained models.
//
// Format (little-endian, versioned):
//   magic "AMDG" | u32 version | u64 tensor-count |
//   per tensor: u32 rank | i64 dims... | f64 data...
//
// Weights are written in parameter-registration order, which is fully
// determined by the ModelConfig — loading requires a model built with the
// same configuration (shape mismatches are detected and rejected).
#pragma once

#include <string>

#include "nn/module.h"

namespace amdgcnn::models {

/// Write all parameters of `module` to `path`.  Throws std::runtime_error
/// on I/O failure.
void save_weights(const nn::Module& module, const std::string& path);

/// Load parameters saved by save_weights into `module` (in place).
/// Throws std::runtime_error on I/O failure, format error, or any
/// count/shape mismatch with the module's current parameters.
void load_weights(nn::Module& module, const std::string& path);

}  // namespace amdgcnn::models
