// Weight serialization for trained models.
//
// Format v2 (little-endian, versioned):
//   magic "AMDG" | u32 version | u64 tensor-count |
//   per tensor: u8 dtype (0 = f32, 1 = f64) | u32 rank | i64 dims... |
//               raw data at the dtype's width.
//
// Version 1 files (written before dtype-generic storage existed) carry no
// dtype byte and always store f64 data; they are still readable, into f64
// parameters only.  Loading never reinterprets bytes across dtypes: a
// checkpoint whose stored dtype differs from the model parameter's dtype is
// rejected with a descriptive error.
//
// Weights are written in parameter-registration order, which is fully
// determined by the ModelConfig — loading requires a model built with the
// same configuration (count/shape/dtype mismatches are detected and
// rejected, as is any trailing garbage after the last tensor).
#pragma once

#include <string>

#include "nn/module.h"

namespace amdgcnn::models {

/// Write all parameters of `module` to `path` in format v2.  Throws
/// std::runtime_error on I/O failure.
void save_weights(const nn::Module& module, const std::string& path);

/// Load parameters saved by save_weights into `module` (in place).  Accepts
/// v1 (implicit f64) and v2 files.  Throws std::runtime_error on I/O
/// failure, format error, trailing bytes after the last tensor, or any
/// count/shape/dtype mismatch with the module's current parameters.
/// Mismatch errors name the offending parameter index and state expected vs
/// found; `context` (e.g. the model name) prefixes every error so callers
/// loading several checkpoints can tell them apart.
void load_weights(nn::Module& module, const std::string& path,
                  const std::string& context);
void load_weights(nn::Module& module, const std::string& path);

}  // namespace amdgcnn::models
