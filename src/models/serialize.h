// Weight serialization for trained models.
//
// Format v2 (little-endian, versioned):
//   magic "AMDG" | u32 version | u64 tensor-count |
//   per tensor: u8 dtype (0 = f32, 1 = f64) | u32 rank | i64 dims... |
//               raw data at the dtype's width.
//
// Format v3 extends the per-tensor storage codes with quantized payloads
// (DESIGN.md §2.7); header and tensor framing are unchanged:
//   code 2 = f16: raw bit-cast u16 values.
//   code 3 = q8:  u32 block-size (must be 32) | u64 block-count |
//                 f32 scales[block-count] | i8 values[numel], each in
//                 [-127, 127] (-128 never occurs, so it doubles as a
//                 garbage detector on load).
// v3 loading DEQUANTIZES into f32 model parameters (loading a quantized
// checkpoint into an f64 model is rejected — quantization is a lossy f32
// transform, widening it would fake precision).  save_weights still writes
// v2 so exact checkpoints stay readable by older builds.
//
// Version 1 files (written before dtype-generic storage existed) carry no
// dtype byte and always store f64 data; they are still readable, into f64
// parameters only.  Loading never reinterprets bytes across dtypes: a
// checkpoint whose stored dtype differs from the model parameter's dtype is
// rejected with a descriptive error.
//
// Weights are written in parameter-registration order, which is fully
// determined by the ModelConfig — loading requires a model built with the
// same configuration (count/shape/dtype mismatches are detected and
// rejected, as is any trailing garbage after the last tensor).
#pragma once

#include <string>

#include "nn/module.h"
#include "tensor/quant.h"

namespace amdgcnn::models {

/// Write all parameters of `module` to `path` in format v2.  Throws
/// std::runtime_error on I/O failure.
void save_weights(const nn::Module& module, const std::string& path);

/// Write all parameters quantized under `scheme` (kF16 or kQ8; kNone is
/// rejected — use save_weights) to `path` in format v3.  Lossy: loading
/// reproduces the dequantized values exactly, not the original weights.
void save_weights_quantized(const nn::Module& module, const std::string& path,
                            ag::quant::Scheme scheme);

/// Load parameters saved by save_weights / save_weights_quantized into
/// `module` (in place).  Accepts v1 (implicit f64), v2 and v3 files;
/// quantized v3 tensors are dequantized into f32 parameters.  Throws
/// std::runtime_error on I/O failure, format error, trailing bytes after
/// the last tensor, or any count/shape/dtype mismatch with the module's
/// current parameters.  Mismatch errors name the offending parameter index
/// and state expected vs found; `context` (e.g. the model name) prefixes
/// every error so callers loading several checkpoints can tell them apart.
void load_weights(nn::Module& module, const std::string& path,
                  const std::string& context);
void load_weights(nn::Module& module, const std::string& path);

}  // namespace amdgcnn::models
