#include "models/dgcnn.h"

#include <algorithm>
#include <stdexcept>

namespace amdgcnn::models {

namespace {
/// Smallest SortPooling k the fixed conv head supports:
/// (k/2 - conv2_kernel + 1) >= 1  with pool size 2  =>  k >= 2*conv2_kernel.
std::int64_t min_sort_k(const ModelConfig& c) { return 2 * c.conv2_kernel; }
}  // namespace

DGCNN::DGCNN(const ModelConfig& config, util::Rng& rng) : config_(config) {
  ag::check(config_.node_feature_dim > 0, "DGCNN: node_feature_dim not set");
  ag::check(config_.num_classes >= 2, "DGCNN: need >= 2 classes");
  ag::check(config_.hidden_dim > 0 && config_.num_layers > 0,
            "DGCNN: bad architecture sizes");
  config_.sort_k = std::max(config_.sort_k, min_sort_k(config_));

  const bool attention = config_.kind == GnnKind::kAMDGCNN;
  const std::int64_t edge_dim =
      attention && config_.use_edge_attr ? config_.edge_attr_dim : 0;

  std::int64_t in = config_.node_feature_dim;
  if (attention) {
    ag::check(config_.heads > 0 && config_.hidden_dim % config_.heads == 0,
              "DGCNN: hidden_dim must be divisible by heads");
    for (std::int64_t l = 0; l < config_.num_layers; ++l) {
      gat_layers_.push_back(std::make_unique<nn::GATConv>(
          in, config_.hidden_dim / config_.heads, config_.heads, edge_dim, rng,
          /*negative_slope=*/0.2, config_.dtype));
      register_module(gat_layers_.back().get());
      in = config_.hidden_dim;
    }
    // Sort-channel layer: single head, single feature.
    gat_layers_.push_back(std::make_unique<nn::GATConv>(
        in, 1, 1, edge_dim, rng, /*negative_slope=*/0.2, config_.dtype));
    register_module(gat_layers_.back().get());
  } else {
    for (std::int64_t l = 0; l < config_.num_layers; ++l) {
      gcn_layers_.push_back(std::make_unique<nn::GCNConv>(
          in, config_.hidden_dim, rng, config_.dtype));
      register_module(gcn_layers_.back().get());
      in = config_.hidden_dim;
    }
    gcn_layers_.push_back(
        std::make_unique<nn::GCNConv>(in, 1, rng, config_.dtype));
    register_module(gcn_layers_.back().get());
  }

  total_channels_ = config_.num_layers * config_.hidden_dim + 1;
  sort_pool_ = std::make_unique<nn::SortPooling>(config_.sort_k);
  register_module(sort_pool_.get());

  conv1_ = std::make_unique<nn::Conv1d>(1, config_.conv1_channels,
                                        total_channels_, total_channels_, rng,
                                        config_.dtype);
  register_module(conv1_.get());
  pool_ = std::make_unique<nn::MaxPool1d>(2, 2);
  register_module(pool_.get());
  conv2_ = std::make_unique<nn::Conv1d>(config_.conv1_channels,
                                        config_.conv2_channels,
                                        config_.conv2_kernel, 1, rng,
                                        config_.dtype);
  register_module(conv2_.get());

  const std::int64_t conv_out_len =
      config_.sort_k / 2 - config_.conv2_kernel + 1;
  ag::check(conv_out_len >= 1, "DGCNN: sort_k too small for the conv head");
  classifier_ = std::make_unique<nn::MLP>(
      std::vector<std::int64_t>{config_.conv2_channels * conv_out_len,
                                config_.dense_dim, config_.num_classes},
      config_.dropout, rng, config_.dtype);
  register_module(classifier_.get());
}

ag::Tensor DGCNN::message_pass(std::size_t l, const ag::Tensor& h,
                               const seal::SubgraphSample& sample) const {
  if (config_.kind == GnnKind::kAMDGCNN) {
    return gat_layers_[l]->forward(h, sample.src, sample.dst,
                                   sample.edge_attr, sample.num_nodes);
  }
  return gcn_layers_[l]->forward(h, sample.src, sample.dst, sample.num_nodes);
}

ag::Tensor DGCNN::forward(const seal::SubgraphSample& sample,
                          util::Rng& rng) const {
  namespace ops = ag::ops;
  ag::check(sample.node_feat.defined() &&
                sample.node_feat.dim(1) == config_.node_feature_dim,
            "DGCNN::forward: sample feature width mismatch");

  const std::size_t num_mp =
      config_.kind == GnnKind::kAMDGCNN ? gat_layers_.size()
                                        : gcn_layers_.size();
  std::vector<ag::Tensor> layer_outputs;
  layer_outputs.reserve(num_mp);
  // Bridge the dataset precision into the model precision (no-op when they
  // already match; FeatureOptions::dtype builds them matched).
  ag::Tensor h = ag::ops::cast(sample.node_feat, config_.dtype);
  for (std::size_t l = 0; l < num_mp; ++l) {
    h = ops::tanh_act(message_pass(l, h, sample));
    layer_outputs.push_back(h);
  }

  auto z = ops::concat_cols(layer_outputs);   // [n, total_channels]
  auto pooled = sort_pool_->forward(z);       // [k, C]
  auto seq = ops::reshape(pooled, {1, config_.sort_k * total_channels_});
  auto c = ops::relu(conv1_->forward(seq));   // [16, k]
  c = pool_->forward(c);                      // [16, k/2]
  c = ops::relu(conv2_->forward(c));          // [32, k/2 - kernel + 1]
  auto flat = ops::reshape(c, {1, c.numel()});
  return classifier_->forward(flat, rng);     // [1, num_classes]
}

}  // namespace amdgcnn::models
