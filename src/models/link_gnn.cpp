#include "models/link_gnn.h"

#include <stdexcept>

#include "models/dgcnn.h"

namespace amdgcnn::models {

const char* gnn_kind_name(GnnKind kind) {
  switch (kind) {
    case GnnKind::kVanillaDGCNN:
      return "Vanilla-DGCNN";
    case GnnKind::kAMDGCNN:
      return "AM-DGCNN";
  }
  throw std::logic_error("gnn_kind_name: unknown kind");
}

std::unique_ptr<LinkGNN> make_link_gnn(const ModelConfig& config,
                                       util::Rng& rng) {
  return std::make_unique<DGCNN>(config, rng);
}

}  // namespace amdgcnn::models
