// The DGCNN architecture (Zhang et al. 2018) with pluggable message passing:
// GCN layers for the vanilla baseline, edge-attribute GAT layers for
// AM-DGCNN (paper Fig. 2).
//
// Forward pass per subgraph:
//   h_0 = X
//   h_l = tanh(MP_l(h_{l-1}))                 l = 1..num_layers (hidden_dim)
//   h_s = tanh(MP_last(h_L))                  1 channel, the sort channel
//   Z   = [h_1 | ... | h_L | h_s]             column concat
//   P   = SortPool_k(Z)                       [k, C]
//   v   = reshape(P, [1, kC])
//   c   = relu(Conv1d(1 -> 16, kernel=C, stride=C))       [16, k]
//   c   = MaxPool1d(2, 2)                                  [16, k/2]
//   c   = relu(Conv1d(16 -> 32, kernel=5, stride=1))       [32, k/2-4]
//   out = MLP([flatten, 128, num_classes]) with dropout
#pragma once

#include <memory>
#include <vector>

#include "models/link_gnn.h"
#include "nn/conv1d.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/mlp.h"
#include "nn/sort_pooling.h"

namespace amdgcnn::models {

class DGCNN final : public LinkGNN {
 public:
  DGCNN(const ModelConfig& config, util::Rng& rng);

  ag::Tensor forward(const seal::SubgraphSample& sample,
                     util::Rng& rng) const override;
  const ModelConfig& config() const override { return config_; }

  /// Total embedding channels entering SortPooling.
  std::int64_t total_channels() const { return total_channels_; }

 private:
  /// One message-passing step through layer `l` (dispatches on kind).
  ag::Tensor message_pass(std::size_t l, const ag::Tensor& h,
                          const seal::SubgraphSample& sample) const;

  ModelConfig config_;
  std::int64_t total_channels_ = 0;

  std::vector<std::unique_ptr<nn::GCNConv>> gcn_layers_;
  std::vector<std::unique_ptr<nn::GATConv>> gat_layers_;
  std::unique_ptr<nn::SortPooling> sort_pool_;
  std::unique_ptr<nn::Conv1d> conv1_;
  std::unique_ptr<nn::MaxPool1d> pool_;
  std::unique_ptr<nn::Conv1d> conv2_;
  std::unique_ptr<nn::MLP> classifier_;
};

}  // namespace amdgcnn::models
