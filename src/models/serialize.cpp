#include "models/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>

namespace amdgcnn::models {

namespace {
constexpr char kMagic[4] = {'A', 'M', 'D', 'G'};
constexpr std::uint32_t kVersion = 2;
// v1 files predate dtype-generic storage: no per-tensor dtype byte, data is
// always f64.  They remain loadable into f64 parameters.
constexpr std::uint32_t kVersionLegacyF64 = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_weights: truncated file");
  return value;
}

// On-disk dtype codes.  Deliberately decoupled from the ag::Dtype enum
// values so the in-memory enum can be reordered without silently changing
// the file format.
constexpr std::uint8_t kDtypeF32 = 0;
constexpr std::uint8_t kDtypeF64 = 1;

std::uint8_t dtype_code(ag::Dtype d) {
  return d == ag::Dtype::f32 ? kDtypeF32 : kDtypeF64;
}

ag::Dtype dtype_from_code(std::uint8_t code) {
  switch (code) {
    case kDtypeF32:
      return ag::Dtype::f32;
    case kDtypeF64:
      return ag::Dtype::f64;
    default:
      throw std::runtime_error("load_weights: unknown dtype code " +
                               std::to_string(static_cast<int>(code)));
  }
}
}  // namespace

void save_weights(const nn::Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  const auto params = module.parameters();
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    write_pod(out, dtype_code(p.dtype()));
    write_pod(out, static_cast<std::uint32_t>(p.shape().size()));
    for (auto d : p.shape()) write_pod(out, d);
    if (p.dtype() == ag::Dtype::f32) {
      const auto& data = p.data_as<float>();
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size() * sizeof(float)));
    } else {
      const auto& data = p.data_as<double>();
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size() * sizeof(double)));
    }
  }
  if (!out) throw std::runtime_error("save_weights: write failed to " + path);
}

void load_weights(nn::Module& module, const std::string& path,
                  const std::string& context) {
  // Every error leads with "load_weights[context]" so a caller juggling
  // several checkpoints (HPO sweeps, the serve driver) can tell which
  // model/config pair was at fault.
  const std::string who =
      context.empty() ? std::string("load_weights")
                      : "load_weights[" + context + "]";
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(who + ": cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error(who + ": bad magic in " + path);
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion && version != kVersionLegacyF64)
    throw std::runtime_error(who + ": unsupported version " +
                             std::to_string(version));
  const auto count = read_pod<std::uint64_t>(in);

  auto params = module.parameters();
  if (count != params.size())
    throw std::runtime_error(
        who + ": parameter count mismatch, file has " + std::to_string(count) +
        " tensors but the model expects " + std::to_string(params.size()) +
        " (was the checkpoint written with a different ModelConfig?)");
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i];
    const std::string where = " at parameter " + std::to_string(i) + " of " +
                              std::to_string(params.size());
    const ag::Dtype stored = version == kVersionLegacyF64
                                 ? ag::Dtype::f64
                                 : dtype_from_code(read_pod<std::uint8_t>(in));
    if (stored != p.dtype())
      throw std::runtime_error(
          who + ": dtype mismatch" + where + ", file stores " +
          ag::dtype_name(stored) + " but the model parameter is " +
          ag::dtype_name(p.dtype()) +
          " (re-save the checkpoint or rebuild the model with a matching "
          "ModelConfig::dtype)");
    const auto rank = read_pod<std::uint32_t>(in);
    ag::Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(in);
    if (shape != p.shape())
      throw std::runtime_error(who + ": shape mismatch" + where + ", file " +
                               ag::shape_str(shape) + " vs model " +
                               ag::shape_str(p.shape()) +
                               " (checkpoint written with different "
                               "architecture hyperparameters?)");
    if (stored == ag::Dtype::f32) {
      auto& data = p.data_as<float>();
      in.read(reinterpret_cast<char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
    } else {
      auto& data = p.data_as<double>();
      in.read(reinterpret_cast<char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(double)));
    }
    if (!in)
      throw std::runtime_error(who + ": truncated tensor data" + where);
  }
  // A well-formed checkpoint ends exactly after the last tensor; anything
  // further means the file does not match the model it is being loaded into.
  if (in.peek() != std::ifstream::traits_type::eof())
    throw std::runtime_error(who + ": trailing garbage after last tensor in " +
                             path);
}

void load_weights(nn::Module& module, const std::string& path) {
  load_weights(module, path, std::string());
}

}  // namespace amdgcnn::models
