#include "models/serialize.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>

namespace amdgcnn::models {

namespace {
constexpr char kMagic[4] = {'A', 'M', 'D', 'G'};
constexpr std::uint32_t kVersion = 2;
// v3 adds the quantized storage codes (f16, q8); save_weights keeps writing
// v2 so exact checkpoints stay readable by older builds, and only
// save_weights_quantized emits v3.
constexpr std::uint32_t kVersionQuant = 3;
// v1 files predate dtype-generic storage: no per-tensor dtype byte, data is
// always f64.  They remain loadable into f64 parameters.
constexpr std::uint32_t kVersionLegacyF64 = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_weights: truncated file");
  return value;
}

// On-disk storage codes.  Deliberately decoupled from the ag::Dtype enum
// values so the in-memory enum can be reordered without silently changing
// the file format.  Codes 2/3 are v3-only (quantized payloads).
constexpr std::uint8_t kDtypeF32 = 0;
constexpr std::uint8_t kDtypeF64 = 1;
constexpr std::uint8_t kStorageF16 = 2;
constexpr std::uint8_t kStorageQ8 = 3;

std::uint8_t dtype_code(ag::Dtype d) {
  return d == ag::Dtype::f32 ? kDtypeF32 : kDtypeF64;
}

ag::Dtype dtype_from_code(std::uint8_t code) {
  switch (code) {
    case kDtypeF32:
      return ag::Dtype::f32;
    case kDtypeF64:
      return ag::Dtype::f64;
    default:
      throw std::runtime_error("load_weights: unknown dtype code " +
                               std::to_string(static_cast<int>(code)));
  }
}
}  // namespace

void save_weights(const nn::Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  const auto params = module.parameters();
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    write_pod(out, dtype_code(p.dtype()));
    write_pod(out, static_cast<std::uint32_t>(p.shape().size()));
    for (auto d : p.shape()) write_pod(out, d);
    if (p.dtype() == ag::Dtype::f32) {
      const auto& data = p.data_as<float>();
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size() * sizeof(float)));
    } else {
      const auto& data = p.data_as<double>();
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size() * sizeof(double)));
    }
  }
  if (!out) throw std::runtime_error("save_weights: write failed to " + path);
}

void save_weights_quantized(const nn::Module& module, const std::string& path,
                            ag::quant::Scheme scheme) {
  namespace q = ag::quant;
  if (scheme == q::Scheme::kNone)
    throw std::runtime_error(
        "save_weights_quantized: scheme is 'none' (use save_weights for "
        "exact checkpoints)");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::runtime_error("save_weights_quantized: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersionQuant);
  const auto params = module.parameters();
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    const q::QuantizedTensor qt = q::quantize_tensor(p, scheme);
    write_pod(out, scheme == q::Scheme::kF16 ? kStorageF16 : kStorageQ8);
    write_pod(out, static_cast<std::uint32_t>(p.shape().size()));
    for (auto d : p.shape()) write_pod(out, d);
    if (scheme == q::Scheme::kF16) {
      out.write(reinterpret_cast<const char*>(qt.h.data()),
                static_cast<std::streamsize>(qt.h.size() * sizeof(ag::f16_t)));
    } else {
      write_pod(out, static_cast<std::uint32_t>(q::kQ8Block));
      write_pod(out, static_cast<std::uint64_t>(qt.scales.size()));
      out.write(reinterpret_cast<const char*>(qt.scales.data()),
                static_cast<std::streamsize>(qt.scales.size() * sizeof(float)));
      out.write(reinterpret_cast<const char*>(qt.q.data()),
                static_cast<std::streamsize>(qt.q.size()));
    }
  }
  if (!out)
    throw std::runtime_error("save_weights_quantized: write failed to " +
                             path);
}

void load_weights(nn::Module& module, const std::string& path,
                  const std::string& context) {
  // Every error leads with "load_weights[context]" so a caller juggling
  // several checkpoints (HPO sweeps, the serve driver) can tell which
  // model/config pair was at fault.
  const std::string who =
      context.empty() ? std::string("load_weights")
                      : "load_weights[" + context + "]";
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(who + ": cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error(who + ": bad magic in " + path);
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion && version != kVersionLegacyF64 &&
      version != kVersionQuant)
    throw std::runtime_error(who + ": unsupported version " +
                             std::to_string(version));
  const auto count = read_pod<std::uint64_t>(in);

  auto params = module.parameters();
  if (count != params.size())
    throw std::runtime_error(
        who + ": parameter count mismatch, file has " + std::to_string(count) +
        " tensors but the model expects " + std::to_string(params.size()) +
        " (was the checkpoint written with a different ModelConfig?)");
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i];
    const std::string where = " at parameter " + std::to_string(i) + " of " +
                              std::to_string(params.size());
    const std::uint8_t code = version == kVersionLegacyF64
                                  ? kDtypeF64
                                  : read_pod<std::uint8_t>(in);
    const bool quantized = code == kStorageF16 || code == kStorageQ8;
    if (quantized && version != kVersionQuant)
      throw std::runtime_error(
          who + ": storage code " + std::to_string(static_cast<int>(code)) +
          where + " requires a v3 checkpoint (file is v" +
          std::to_string(version) + ")");
    if (quantized) {
      // Quantized payloads dequantize into f32 parameters only: the encode
      // was a lossy f32 transform, widening to f64 would fake precision.
      if (p.dtype() != ag::Dtype::f32)
        throw std::runtime_error(
            who + ": quantized storage (" +
            (code == kStorageF16 ? "f16" : "q8") + ")" + where +
            " loads into f32 model parameters, but the model parameter is " +
            ag::dtype_name(p.dtype()) +
            " (rebuild the model with ModelConfig::dtype = f32)");
    } else {
      const ag::Dtype stored = dtype_from_code(code);
      if (stored != p.dtype())
        throw std::runtime_error(
            who + ": dtype mismatch" + where + ", file stores " +
            ag::dtype_name(stored) + " but the model parameter is " +
            ag::dtype_name(p.dtype()) +
            " (re-save the checkpoint or rebuild the model with a matching "
            "ModelConfig::dtype)");
    }
    const auto rank = read_pod<std::uint32_t>(in);
    ag::Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(in);
    if (shape != p.shape())
      throw std::runtime_error(who + ": shape mismatch" + where + ", file " +
                               ag::shape_str(shape) + " vs model " +
                               ag::shape_str(p.shape()) +
                               " (checkpoint written with different "
                               "architecture hyperparameters?)");
    if (code == kDtypeF32) {
      auto& data = p.data_as<float>();
      in.read(reinterpret_cast<char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
    } else if (code == kDtypeF64) {
      auto& data = p.data_as<double>();
      in.read(reinterpret_cast<char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(double)));
    } else if (code == kStorageF16) {
      auto& data = p.data_as<float>();
      std::vector<ag::f16_t> h(data.size());
      in.read(reinterpret_cast<char*>(h.data()),
              static_cast<std::streamsize>(h.size() * sizeof(ag::f16_t)));
      if (!in)
        throw std::runtime_error(who + ": truncated tensor data" + where);
      ag::f16_decode_row(h.data(), data.data(),
                         static_cast<std::int64_t>(data.size()));
    } else {  // kStorageQ8 — fail closed on every malformed field
      namespace q = ag::quant;
      auto& data = p.data_as<float>();
      const auto n = static_cast<std::int64_t>(data.size());
      const auto block = read_pod<std::uint32_t>(in);
      if (block != static_cast<std::uint32_t>(q::kQ8Block))
        throw std::runtime_error(
            who + ": unsupported q8 block size " + std::to_string(block) +
            where + " (this build reads block size " +
            std::to_string(q::kQ8Block) + ")");
      const auto nblocks = read_pod<std::uint64_t>(in);
      if (nblocks != static_cast<std::uint64_t>(q::q8_num_blocks(n)))
        throw std::runtime_error(
            who + ": q8 block count " + std::to_string(nblocks) + where +
            " does not cover " + std::to_string(n) + " elements of shape " +
            ag::shape_str(shape) + " (expected " +
            std::to_string(q::q8_num_blocks(n)) + ")");
      std::vector<float> scales(nblocks);
      in.read(reinterpret_cast<char*>(scales.data()),
              static_cast<std::streamsize>(scales.size() * sizeof(float)));
      std::vector<std::int8_t> qv(data.size());
      in.read(reinterpret_cast<char*>(qv.data()),
              static_cast<std::streamsize>(qv.size()));
      if (!in)
        throw std::runtime_error(who + ": truncated tensor data" + where);
      for (const float s : scales)
        if (!std::isfinite(s) || s < 0.0f)
          throw std::runtime_error(who + ": corrupt q8 scale" + where +
                                   " (non-finite or negative)");
      for (const std::int8_t v : qv)
        if (v == std::int8_t{-128})
          throw std::runtime_error(
              who + ": corrupt q8 value -128" + where +
              " (the encoder never produces it; file bytes are garbage)");
      q::q8_dequantize(qv.data(), scales.data(), data.data(), n);
    }
    if (!in)
      throw std::runtime_error(who + ": truncated tensor data" + where);
  }
  // A well-formed checkpoint ends exactly after the last tensor; anything
  // further means the file does not match the model it is being loaded into.
  if (in.peek() != std::ifstream::traits_type::eof())
    throw std::runtime_error(who + ": trailing garbage after last tensor in " +
                             path);
}

void load_weights(nn::Module& module, const std::string& path) {
  load_weights(module, path, std::string());
}

}  // namespace amdgcnn::models
