#include "models/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace amdgcnn::models {

namespace {
constexpr char kMagic[4] = {'A', 'M', 'D', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_weights: truncated file");
  return value;
}
}  // namespace

void save_weights(const nn::Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  const auto params = module.parameters();
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    write_pod(out, static_cast<std::uint32_t>(p.shape().size()));
    for (auto d : p.shape()) write_pod(out, d);
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(p.data().size() * sizeof(double)));
  }
  if (!out) throw std::runtime_error("save_weights: write failed to " + path);
}

void load_weights(nn::Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("load_weights: bad magic in " + path);
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion)
    throw std::runtime_error("load_weights: unsupported version");
  const auto count = read_pod<std::uint64_t>(in);

  auto params = module.parameters();
  if (count != params.size())
    throw std::runtime_error("load_weights: parameter count mismatch");
  for (auto& p : params) {
    const auto rank = read_pod<std::uint32_t>(in);
    ag::Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(in);
    if (shape != p.shape())
      throw std::runtime_error("load_weights: shape mismatch, file " +
                               ag::shape_str(shape) + " vs model " +
                               ag::shape_str(p.shape()));
    in.read(reinterpret_cast<char*>(p.data().data()),
            static_cast<std::streamsize>(p.data().size() * sizeof(double)));
    if (!in) throw std::runtime_error("load_weights: truncated tensor data");
  }
}

}  // namespace amdgcnn::models
