// Link-classification GNN interface and configuration.
//
// Both models under comparison share the DGCNN skeleton (message passing ->
// concat -> SortPooling -> 1-D conv head -> dense classifier); they differ
// only in the message-passing layer:
//
//   * kVanillaDGCNN — GCNConv (edge-attribute blind), the SEAL baseline.
//   * kAMDGCNN     — GATConv with edge-attribute-aware attention, the
//                     paper's contribution.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/module.h"
#include "seal/feature_builder.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace amdgcnn::models {

enum class GnnKind {
  kVanillaDGCNN,
  kAMDGCNN,
};

const char* gnn_kind_name(GnnKind kind);

struct ModelConfig {
  GnnKind kind = GnnKind::kAMDGCNN;
  std::int64_t node_feature_dim = 0;  // must match the dataset
  std::int64_t edge_attr_dim = 0;     // 0 = no edge attributes available
  std::int64_t num_classes = 2;

  /// Storage precision of every parameter and activation.  f32 halves the
  /// memory bandwidth of the matmul-bound hot path; f64 inputs (the default
  /// dataset precision) are cast at the model boundary.
  ag::Dtype dtype = ag::Dtype::f64;

  // Tunable hyperparameters (paper Table I).
  std::int64_t hidden_dim = 32;  // GNN layer width: {16, 32, 64, 128}
  std::int64_t sort_k = 30;      // SortPooling k: 5..150 (clamped to >= 10,
                                 // the smallest k the conv head supports)
  // Fixed architecture constants (DGCNN defaults from Zhang et al. 2018).
  std::int64_t num_layers = 3;   // hidden message-passing layers
  std::int64_t heads = 4;        // attention heads (AM-DGCNN only)
  double dropout = 0.5;
  std::int64_t conv1_channels = 16;
  std::int64_t conv2_channels = 32;
  std::int64_t conv2_kernel = 5;
  std::int64_t dense_dim = 128;

  /// AM-DGCNN ablation hook: ignore edge attributes even when present
  /// (reduces the model to plain multi-head GAT message passing).
  bool use_edge_attr = true;
};

class LinkGNN : public nn::Module {
 public:
  /// Logits [1, num_classes] for one subgraph sample.  `rng` drives dropout
  /// in training mode.
  virtual ag::Tensor forward(const seal::SubgraphSample& sample,
                             util::Rng& rng) const = 0;
  virtual const ModelConfig& config() const = 0;
};

/// Build a model from a configuration (weights initialised from `rng`).
std::unique_ptr<LinkGNN> make_link_gnn(const ModelConfig& config,
                                       util::Rng& rng);

}  // namespace amdgcnn::models
