#include "models/trainer.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/ops.h"
#include "util/parallel_error.h"
#include "util/stopwatch.h"

namespace amdgcnn::models {

namespace {

/// SplitMix64-style mix of (epoch seed, sample position) into an independent
/// per-sample RNG seed, so dropout draws do not depend on which worker runs
/// the sample.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Trainer::Trainer(LinkGNN& model, const TrainConfig& config)
    : model_(model), config_(config), rng_(config.seed) {
  if (config_.learning_rate <= 0.0)
    throw std::invalid_argument("Trainer: learning_rate must be positive");
  if (config_.batch_size <= 0)
    throw std::invalid_argument("Trainer: batch_size must be positive");
  if (config_.num_threads < 0)
    throw std::invalid_argument("Trainer: num_threads must be >= 0");
  params_ = model_.parameters();
  for (const auto& p : params_)
    if (p.dtype() != config_.dtype)
      throw std::invalid_argument(
          std::string("Trainer: model parameters are ") +
          ag::dtype_name(p.dtype()) + " but TrainConfig::dtype is " +
          ag::dtype_name(config_.dtype) +
          " (set ModelConfig::dtype to match)");
  for (std::size_t p = 0; p < params_.size(); ++p)
    slot_of_[params_[p].unsafe_impl()] = p;
  optimizer_ = std::make_unique<ag::Adam>(params_, config_.learning_rate);
}

double Trainer::train_epoch(const std::vector<seal::SubgraphSample>& samples) {
  if (samples.empty())
    throw std::invalid_argument("train_epoch: no samples");
  if (config_.num_threads <= 0) return train_epoch_serial(samples);
  return train_epoch_parallel(samples);
}

double Trainer::train_epoch_serial(
    const std::vector<seal::SubgraphSample>& samples) {
  model_.set_training(true);

  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng_.shuffle(order);

  double total_loss = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    const std::size_t batch_end =
        std::min(order.size(), i + static_cast<std::size_t>(config_.batch_size));
    const double inv_batch = 1.0 / static_cast<double>(batch_end - i);
    optimizer_->zero_grad();
    for (; i < batch_end; ++i) {
      const auto& sample = samples[order[i]];
      auto logits = model_.forward(sample, rng_);
      auto loss = ag::ops::cross_entropy(
          logits, {static_cast<std::int64_t>(sample.label)});
      total_loss += loss.item();
      // Scale so accumulated gradients average over the batch.
      auto scaled = ag::ops::mul_scalar(loss, inv_batch);
      scaled.backward();
      // Sever the sample's tape so interior buffers go back to the pool now
      // instead of through a deep recursive destructor chain later.
      ag::release_graph(scaled);
    }
    if (config_.grad_clip > 0.0) optimizer_->clip_grad_norm(config_.grad_clip);
    optimizer_->step();
  }
  return total_loss / static_cast<double>(samples.size());
}

double Trainer::train_epoch_parallel(
    const std::vector<seal::SubgraphSample>& samples) {
  if (config_.dtype == ag::Dtype::f32)
    return train_epoch_parallel_impl<float>(samples);
  return train_epoch_parallel_impl<double>(samples);
}

template <typename T>
double Trainer::train_epoch_parallel_impl(
    const std::vector<seal::SubgraphSample>& samples) {
  model_.set_training(true);

  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng_.shuffle(order);
  const std::uint64_t epoch_seed = rng_.next_u64();

  double total_loss = 0.0;
  std::size_t i = 0;
  [[maybe_unused]] const int nt = static_cast<int>(config_.num_threads);
  while (i < order.size()) {
    const std::size_t batch_end = std::min(
        order.size(), i + static_cast<std::size_t>(config_.batch_size));
    const std::size_t bs = batch_end - i;
    const double inv_batch = 1.0 / static_cast<double>(bs);
    optimizer_->zero_grad();

    // Per-sample private gradient buffers (one per parameter) at the
    // parameter width, acquired and released on this thread so the pool
    // recycles them across batches.
    std::vector<std::vector<std::vector<T>>> sinks(bs);
    for (auto& sink : sinks) {
      sink.reserve(params_.size());
      for (const auto& p : params_)
        sink.push_back(
            ag::detail::new_zeroed_t<T>(static_cast<std::size_t>(p.numel())));
    }
    std::vector<double> losses(bs, 0.0);
    util::WorkerErrorCollector error;

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(nt)
#endif
    for (std::int64_t b = 0; b < static_cast<std::int64_t>(bs); ++b) {
      try {
        const std::size_t k = i + static_cast<std::size_t>(b);
        // Leaf gradients of this sample's backward pass land in sinks[b];
        // interior nodes are sample-private, so workers never write shared
        // state.  The per-sample RNG depends only on the sample's position.
        ag::GradSinkScope scope(slot_of_, sinks[b]);
        util::Rng sample_rng(
            mix_seed(epoch_seed, static_cast<std::uint64_t>(k)));
        const auto& sample = samples[order[k]];
        auto logits = model_.forward(sample, sample_rng);
        auto loss = ag::ops::cross_entropy(
            logits, {static_cast<std::int64_t>(sample.label)});
        losses[b] = loss.item();
        auto scaled = ag::ops::mul_scalar(loss, inv_batch);
        scaled.backward();
        ag::release_graph(scaled);
      } catch (...) {
        error.capture(b);
      }
    }
    error.rethrow("train_epoch");

    // Reduce in sample order — deterministic for any worker count, since
    // each sink's contents depend only on its sample.
    for (std::size_t b = 0; b < bs; ++b) {
      for (std::size_t p = 0; p < params_.size(); ++p) {
        auto& g = params_[p].grad_as<T>();
        const auto& s = sinks[b][p];
        for (std::size_t j = 0; j < s.size(); ++j) g[j] += s[j];
        ag::detail::pool_of<T>().release(std::move(sinks[b][p]));
      }
      total_loss += losses[b];
    }
    if (config_.grad_clip > 0.0) optimizer_->clip_grad_norm(config_.grad_clip);
    optimizer_->step();
    i = batch_end;
  }
  return total_loss / static_cast<double>(samples.size());
}

std::vector<EpochRecord> Trainer::fit(
    const std::vector<seal::SubgraphSample>& train,
    const std::vector<seal::SubgraphSample>& test, std::int64_t eval_every) {
  std::vector<EpochRecord> records;
  util::Stopwatch watch;
  for (std::int64_t epoch = 1; epoch <= config_.epochs; ++epoch) {
    const double loss = train_epoch(train);
    if (eval_every > 0 && (epoch % eval_every == 0 || epoch == config_.epochs)) {
      EpochRecord rec;
      rec.epoch = epoch;
      rec.train_loss = loss;
      if (!test.empty()) {
        auto ev = evaluate(test);
        rec.test_auc = ev.metrics.macro_auc;
        rec.test_ap = ev.metrics.macro_precision;
      }
      rec.seconds = watch.seconds();
      records.push_back(rec);
    }
  }
  return records;
}

std::vector<double> Trainer::predict_proba(
    const std::vector<seal::SubgraphSample>& samples) const {
  model_.set_training(false);
  const std::int64_t c = model_.config().num_classes;
  std::vector<double> probs(samples.size() * static_cast<std::size_t>(c));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    auto logits = model_.forward(samples[i], rng_);
    auto p = ag::ops::softmax_rows(logits);
    for (std::int64_t j = 0; j < c; ++j)
      probs[i * static_cast<std::size_t>(c) + j] = p.item(j);
  }
  model_.set_training(true);
  return probs;
}

EvalResult Trainer::evaluate(
    const std::vector<seal::SubgraphSample>& samples) const {
  if (samples.empty()) throw std::invalid_argument("evaluate: no samples");
  model_.set_training(false);
  const std::int64_t c = model_.config().num_classes;
  std::vector<double> probs(samples.size() * static_cast<std::size_t>(c));
  std::vector<std::int32_t> labels(samples.size());
  double loss_sum = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    auto logits = model_.forward(samples[i], rng_);
    auto logp = ag::ops::log_softmax_rows(logits);
    loss_sum -= logp.item(samples[i].label);
    for (std::int64_t j = 0; j < c; ++j)
      probs[i * static_cast<std::size_t>(c) + j] = std::exp(logp.item(j));
    labels[i] = samples[i].label;
  }
  model_.set_training(true);
  EvalResult result;
  result.metrics = metrics::evaluate_multiclass(probs, c, labels);
  result.mean_loss = loss_sum / static_cast<double>(samples.size());
  return result;
}

}  // namespace amdgcnn::models
