#include "models/trainer.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/ops.h"
#include "util/stopwatch.h"

namespace amdgcnn::models {

Trainer::Trainer(LinkGNN& model, const TrainConfig& config)
    : model_(model), config_(config), rng_(config.seed) {
  if (config_.learning_rate <= 0.0)
    throw std::invalid_argument("Trainer: learning_rate must be positive");
  if (config_.batch_size <= 0)
    throw std::invalid_argument("Trainer: batch_size must be positive");
  optimizer_ =
      std::make_unique<ag::Adam>(model_.parameters(), config_.learning_rate);
}

double Trainer::train_epoch(
    const std::vector<seal::SubgraphSample>& samples) {
  if (samples.empty())
    throw std::invalid_argument("train_epoch: no samples");
  model_.set_training(true);

  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng_.shuffle(order);

  double total_loss = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    const std::size_t batch_end =
        std::min(order.size(), i + static_cast<std::size_t>(config_.batch_size));
    const double inv_batch = 1.0 / static_cast<double>(batch_end - i);
    optimizer_->zero_grad();
    for (; i < batch_end; ++i) {
      const auto& sample = samples[order[i]];
      auto logits = model_.forward(sample, rng_);
      auto loss = ag::ops::cross_entropy(
          logits, {static_cast<std::int64_t>(sample.label)});
      total_loss += loss.item();
      // Scale so accumulated gradients average over the batch.
      auto scaled = ag::ops::mul_scalar(loss, inv_batch);
      scaled.backward();
    }
    if (config_.grad_clip > 0.0) optimizer_->clip_grad_norm(config_.grad_clip);
    optimizer_->step();
  }
  return total_loss / static_cast<double>(samples.size());
}

std::vector<EpochRecord> Trainer::fit(
    const std::vector<seal::SubgraphSample>& train,
    const std::vector<seal::SubgraphSample>& test, std::int64_t eval_every) {
  std::vector<EpochRecord> records;
  util::Stopwatch watch;
  for (std::int64_t epoch = 1; epoch <= config_.epochs; ++epoch) {
    const double loss = train_epoch(train);
    if (eval_every > 0 && (epoch % eval_every == 0 || epoch == config_.epochs)) {
      EpochRecord rec;
      rec.epoch = epoch;
      rec.train_loss = loss;
      if (!test.empty()) {
        auto ev = evaluate(test);
        rec.test_auc = ev.metrics.macro_auc;
        rec.test_ap = ev.metrics.macro_precision;
      }
      rec.seconds = watch.seconds();
      records.push_back(rec);
    }
  }
  return records;
}

std::vector<double> Trainer::predict_proba(
    const std::vector<seal::SubgraphSample>& samples) const {
  model_.set_training(false);
  const std::int64_t c = model_.config().num_classes;
  std::vector<double> probs(samples.size() * static_cast<std::size_t>(c));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    auto logits = model_.forward(samples[i], rng_);
    auto p = ag::ops::softmax_rows(logits);
    for (std::int64_t j = 0; j < c; ++j)
      probs[i * static_cast<std::size_t>(c) + j] = p.item(j);
  }
  model_.set_training(true);
  return probs;
}

EvalResult Trainer::evaluate(
    const std::vector<seal::SubgraphSample>& samples) const {
  if (samples.empty()) throw std::invalid_argument("evaluate: no samples");
  model_.set_training(false);
  const std::int64_t c = model_.config().num_classes;
  std::vector<double> probs(samples.size() * static_cast<std::size_t>(c));
  std::vector<std::int32_t> labels(samples.size());
  double loss_sum = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    auto logits = model_.forward(samples[i], rng_);
    auto logp = ag::ops::log_softmax_rows(logits);
    loss_sum -= logp.item(samples[i].label);
    for (std::int64_t j = 0; j < c; ++j)
      probs[i * static_cast<std::size_t>(c) + j] = std::exp(logp.item(j));
    labels[i] = samples[i].label;
  }
  model_.set_training(true);
  EvalResult result;
  result.metrics = metrics::evaluate_multiclass(probs, c, labels);
  result.mean_loss = loss_sum / static_cast<double>(samples.size());
  return result;
}

}  // namespace amdgcnn::models
