// Training / evaluation loop for LinkGNN models.
//
// Mini-batching is implemented as gradient accumulation: each subgraph is a
// single-graph forward pass (subgraphs are tens of nodes, so per-sample
// passes are cheap and avoid padded batching entirely); gradients of
// `batch_size` samples are averaged before each Adam step.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "metrics/classification.h"
#include "models/link_gnn.h"
#include "tensor/optim.h"

namespace amdgcnn::models {

struct TrainConfig {
  double learning_rate = 1e-3;  // paper Table I: [1e-6, 1e-2]
  std::int64_t epochs = 10;     // paper §V-D: both models peak around 10
  std::int64_t batch_size = 32;
  double grad_clip = 5.0;       // 0 disables clipping
  std::uint64_t seed = 17;
  /// Storage precision the model must be built with (ModelConfig::dtype).
  /// The Trainer validates the parameters against this at construction and
  /// allocates its per-sample gradient sinks at the same width, so flipping
  /// both switches to f32 selects single precision end-to-end.  Either
  /// dtype keeps the bit-determinism contract across num_threads.
  ag::Dtype dtype = ag::Dtype::f64;
  /// Batch-accumulation workers.  0 = the legacy serial path (bit-identical
  /// to pre-threading builds, used by the seeded regression tests).  >= 1 =
  /// the data-parallel path: samples of a batch run concurrently on up to
  /// this many OpenMP threads, each accumulating into private per-sample
  /// gradient buffers that are reduced in sample order before the Adam step,
  /// so results are bit-identical for ANY worker count (1 == N).  Without
  /// OpenMP the parallel path runs serially and produces the same numbers.
  std::int64_t num_threads = 0;
};

struct EvalResult {
  metrics::MulticlassEval metrics;
  double mean_loss = 0.0;
};

/// Per-epoch progress record (feeds the Fig. 3-6 epoch-sweep benches).
struct EpochRecord {
  std::int64_t epoch = 0;
  double train_loss = 0.0;
  double test_auc = 0.0;
  double test_ap = 0.0;
  double seconds = 0.0;
};

class Trainer {
 public:
  Trainer(LinkGNN& model, const TrainConfig& config);

  /// One pass over `samples` (shuffled); returns mean training loss.
  double train_epoch(const std::vector<seal::SubgraphSample>& samples);

  /// Full training run; when `eval_every > 0`, evaluates on `test` after
  /// every `eval_every` epochs and records the trajectory.
  std::vector<EpochRecord> fit(
      const std::vector<seal::SubgraphSample>& train,
      const std::vector<seal::SubgraphSample>& test,
      std::int64_t eval_every = 0);

  /// Forward the whole set in eval mode; returns row-major [n, C]
  /// probabilities.
  std::vector<double> predict_proba(
      const std::vector<seal::SubgraphSample>& samples) const;

  EvalResult evaluate(const std::vector<seal::SubgraphSample>& samples) const;

  const TrainConfig& config() const { return config_; }

 private:
  double train_epoch_serial(const std::vector<seal::SubgraphSample>& samples);
  double train_epoch_parallel(
      const std::vector<seal::SubgraphSample>& samples);
  /// Body of the parallel path over the parameter scalar type (f32 or f64);
  /// the sinks, the reduction and the sink scope all run at width T.
  template <typename T>
  double train_epoch_parallel_impl(
      const std::vector<seal::SubgraphSample>& samples);

  LinkGNN& model_;
  TrainConfig config_;
  std::unique_ptr<ag::Adam> optimizer_;
  mutable util::Rng rng_;
  // Parameter handles and their slot indices for the grad-sink redirection
  // used by train_epoch_parallel.
  std::vector<ag::Tensor> params_;
  std::unordered_map<const ag::detail::TensorImpl*, std::size_t> slot_of_;
};

}  // namespace amdgcnn::models
