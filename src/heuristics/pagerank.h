// PageRank (global, power iteration) and personalized PageRank — the
// high-order heuristics the paper cites (Bianchini et al. 2005).  As a link
// scorer the standard construction uses personalized PageRank:
// score(u, v) = ppr_u(v) + ppr_v(u).
#pragma once

#include <vector>

#include "graph/knowledge_graph.h"

namespace amdgcnn::heuristics {

struct PageRankOptions {
  double damping = 0.85;
  std::int32_t max_iterations = 100;
  double tolerance = 1e-10;  // L1 change per iteration
};

/// Global PageRank vector (sums to 1).  Dangling nodes (degree 0)
/// redistribute uniformly.
std::vector<double> pagerank(const graph::KnowledgeGraph& g,
                             const PageRankOptions& options = {});

/// Personalized PageRank with restart at `source`.
std::vector<double> personalized_pagerank(const graph::KnowledgeGraph& g,
                                          graph::NodeId source,
                                          const PageRankOptions& options = {});

/// Symmetric PPR link score.
double ppr_link_score(const graph::KnowledgeGraph& g, graph::NodeId u,
                      graph::NodeId v, const PageRankOptions& options = {});

}  // namespace amdgcnn::heuristics
