#include "heuristics/scorer.h"

#include "heuristics/katz.h"
#include "heuristics/local_scores.h"
#include "metrics/ranking.h"

namespace amdgcnn::heuristics {

std::vector<LinkScorer> standard_scorers() {
  return {
      {"common-neighbors",
       [](const graph::KnowledgeGraph& g, graph::NodeId u, graph::NodeId v) {
         return common_neighbors(g, u, v);
       }},
      {"jaccard",
       [](const graph::KnowledgeGraph& g, graph::NodeId u, graph::NodeId v) {
         return jaccard(g, u, v);
       }},
      {"adamic-adar",
       [](const graph::KnowledgeGraph& g, graph::NodeId u, graph::NodeId v) {
         return adamic_adar(g, u, v);
       }},
      {"preferential-attachment",
       [](const graph::KnowledgeGraph& g, graph::NodeId u, graph::NodeId v) {
         return preferential_attachment(g, u, v);
       }},
      {"katz",
       [](const graph::KnowledgeGraph& g, graph::NodeId u, graph::NodeId v) {
         return katz_index(g, u, v);
       }},
  };
}

double scorer_auc(const LinkScorer& scorer, const graph::KnowledgeGraph& g,
                  const std::vector<seal::LinkExample>& links) {
  std::vector<double> scores;
  std::vector<std::int32_t> labels;
  scores.reserve(links.size());
  labels.reserve(links.size());
  for (const auto& l : links) {
    scores.push_back(scorer.score(g, l.a, l.b));
    labels.push_back(l.label > 0 ? 1 : 0);
  }
  return metrics::binary_auc(scores, labels);
}

}  // namespace amdgcnn::heuristics
