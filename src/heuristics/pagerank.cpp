#include "heuristics/pagerank.h"

#include <cmath>
#include <stdexcept>

namespace amdgcnn::heuristics {

namespace {

std::vector<double> power_iteration(const graph::KnowledgeGraph& g,
                                    const std::vector<double>& restart,
                                    const PageRankOptions& options) {
  if (options.damping <= 0.0 || options.damping >= 1.0)
    throw std::invalid_argument("pagerank: damping must be in (0, 1)");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (n == 0) throw std::invalid_argument("pagerank: empty graph");
  std::vector<double> rank(restart), next(n, 0.0);
  for (std::int32_t it = 0; it < options.max_iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const auto deg = g.degree(static_cast<graph::NodeId>(v));
      if (deg == 0) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(deg);
      for (const auto& a : g.neighbors(static_cast<graph::NodeId>(v)))
        next[static_cast<std::size_t>(a.node)] += share;
    }
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const double mixed = options.damping *
                               (next[v] + dangling / static_cast<double>(n)) +
                           (1.0 - options.damping) * restart[v];
      delta += std::abs(mixed - rank[v]);
      next[v] = mixed;
    }
    std::swap(rank, next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace

std::vector<double> pagerank(const graph::KnowledgeGraph& g,
                             const PageRankOptions& options) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> uniform(n, 1.0 / static_cast<double>(n));
  return power_iteration(g, uniform, options);
}

std::vector<double> personalized_pagerank(const graph::KnowledgeGraph& g,
                                          graph::NodeId source,
                                          const PageRankOptions& options) {
  if (source < 0 || source >= g.num_nodes())
    throw std::invalid_argument("personalized_pagerank: bad source");
  std::vector<double> restart(static_cast<std::size_t>(g.num_nodes()), 0.0);
  restart[static_cast<std::size_t>(source)] = 1.0;
  return power_iteration(g, restart, options);
}

double ppr_link_score(const graph::KnowledgeGraph& g, graph::NodeId u,
                      graph::NodeId v, const PageRankOptions& options) {
  const auto pu = personalized_pagerank(g, u, options);
  const auto pv = personalized_pagerank(g, v, options);
  return pu[static_cast<std::size_t>(v)] + pv[static_cast<std::size_t>(u)];
}

}  // namespace amdgcnn::heuristics
