// First- and second-order link heuristics (paper §I, §VI-A): Common
// Neighbors, Jaccard coefficient, Adamic-Adar index, Preferential
// Attachment.  These are the classical baselines that supervised heuristic
// learning (SEAL) generalises; they are exercised by bench_heuristics and
// the heuristic_comparison example.
#pragma once

#include "graph/knowledge_graph.h"

namespace amdgcnn::heuristics {

/// |N(u) ∩ N(v)|.
double common_neighbors(const graph::KnowledgeGraph& g, graph::NodeId u,
                        graph::NodeId v);

/// |N(u) ∩ N(v)| / |N(u) ∪ N(v)| (0 when both neighborhoods are empty).
double jaccard(const graph::KnowledgeGraph& g, graph::NodeId u,
               graph::NodeId v);

/// Sum over common neighbors w of 1 / log(deg(w)); neighbors of degree <= 1
/// are skipped (their log is <= 0).
double adamic_adar(const graph::KnowledgeGraph& g, graph::NodeId u,
                   graph::NodeId v);

/// deg(u) * deg(v).
double preferential_attachment(const graph::KnowledgeGraph& g,
                               graph::NodeId u, graph::NodeId v);

}  // namespace amdgcnn::heuristics
