// SimRank (Jeh & Widom 2002) — "two objects are similar if they are
// referenced by similar objects".  Iterative fixed point:
//
//   s(u, v) = C / (|N(u)||N(v)|) * sum_{a in N(u)} sum_{b in N(v)} s(a, b)
//   s(v, v) = 1
//
// Dense O(n^2) per-pair storage: intended for the small benchmark graphs
// (the paper classifies SimRank as a γ-decaying heuristic approximable from
// enclosing subgraphs — we use it as a classical baseline).
#pragma once

#include <vector>

#include "graph/knowledge_graph.h"

namespace amdgcnn::heuristics {

struct SimRankOptions {
  double decay = 0.8;          // C
  std::int32_t iterations = 5;
  /// Hard limit on node count; dense SimRank on more nodes would be a
  /// programming error at our scale.
  std::int64_t max_nodes = 5000;
};

/// Full SimRank matrix, row-major [n, n].
std::vector<double> simrank(const graph::KnowledgeGraph& g,
                            const SimRankOptions& options = {});

double simrank_score(const graph::KnowledgeGraph& g, graph::NodeId u,
                     graph::NodeId v, const SimRankOptions& options = {});

}  // namespace amdgcnn::heuristics
