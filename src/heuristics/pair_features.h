// Topological feature extraction for node pairs — the "heuristics as
// features for a classifier" methodology of the paper's related work
// (§VI-A: Katragadda et al. use CN / Adamic-Adar / Jaccard / preferential
// attachment with a decision tree; Vasavada & Wang add degrees and PageRank
// with logistic-regression / neural classifiers).
#pragma once

#include <string>
#include <vector>

#include "graph/knowledge_graph.h"

namespace amdgcnn::heuristics {

/// Names of the extracted features, aligned with pair_features() output.
const std::vector<std::string>& pair_feature_names();

/// Feature vector for the node pair (u, v):
///   common neighbors, Jaccard, Adamic-Adar, preferential attachment,
///   deg(u), deg(v), shortest-path distance (capped; target edge masked),
///   truncated Katz index.
std::vector<double> pair_features(const graph::KnowledgeGraph& g,
                                  graph::NodeId u, graph::NodeId v);

/// Row-major feature matrix for many pairs (OpenMP-parallel).
std::vector<double> pair_feature_matrix(
    const graph::KnowledgeGraph& g,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs);

/// Column-wise standardisation parameters learned on a training matrix.
struct FeatureScaler {
  std::vector<double> mean;
  std::vector<double> stddev;  // >= epsilon

  /// Learn mean/stddev from a row-major [n, d] matrix.
  static FeatureScaler fit(const std::vector<double>& x, std::size_t dims);
  /// Standardise in place.
  void apply(std::vector<double>& x) const;
};

}  // namespace amdgcnn::heuristics
