#include "heuristics/pair_features.h"

#include <cmath>
#include <stdexcept>

#include "graph/traversal.h"
#include "heuristics/katz.h"
#include "heuristics/local_scores.h"

namespace amdgcnn::heuristics {

const std::vector<std::string>& pair_feature_names() {
  static const std::vector<std::string> names = {
      "common_neighbors", "jaccard",    "adamic_adar", "pref_attachment",
      "degree_u",         "degree_v",   "sp_distance", "katz",
  };
  return names;
}

std::vector<double> pair_features(const graph::KnowledgeGraph& g,
                                  graph::NodeId u, graph::NodeId v) {
  graph::BfsOptions bfs;
  bfs.masked_edge = g.find_edge(u, v);  // never leak the target link
  bfs.max_depth = 6;
  const auto d = graph::shortest_path_length(g, u, v, bfs);
  const double dist = d == graph::kUnreachable ? 8.0 : static_cast<double>(d);

  KatzOptions katz_opts;
  katz_opts.max_length = 3;

  return {
      common_neighbors(g, u, v),
      jaccard(g, u, v),
      adamic_adar(g, u, v),
      preferential_attachment(g, u, v),
      static_cast<double>(g.degree(u)),
      static_cast<double>(g.degree(v)),
      dist,
      katz_index(g, u, v, katz_opts),
  };
}

std::vector<double> pair_feature_matrix(
    const graph::KnowledgeGraph& g,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs) {
  const std::size_t dims = pair_feature_names().size();
  std::vector<double> x(pairs.size() * dims);
#pragma omp parallel for schedule(dynamic)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(pairs.size()); ++i) {
    const auto f = pair_features(g, pairs[i].first, pairs[i].second);
    std::copy(f.begin(), f.end(), x.begin() + i * static_cast<std::int64_t>(dims));
  }
  return x;
}

FeatureScaler FeatureScaler::fit(const std::vector<double>& x,
                                 std::size_t dims) {
  if (dims == 0 || x.size() % dims != 0 || x.empty())
    throw std::invalid_argument("FeatureScaler::fit: bad matrix shape");
  const std::size_t n = x.size() / dims;
  FeatureScaler scaler;
  scaler.mean.assign(dims, 0.0);
  scaler.stddev.assign(dims, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < dims; ++c) scaler.mean[c] += x[r * dims + c];
  for (auto& m : scaler.mean) m /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < dims; ++c) {
      const double d = x[r * dims + c] - scaler.mean[c];
      scaler.stddev[c] += d * d;
    }
  for (auto& s : scaler.stddev)
    s = std::max(1e-9, std::sqrt(s / static_cast<double>(n)));
  return scaler;
}

void FeatureScaler::apply(std::vector<double>& x) const {
  const std::size_t dims = mean.size();
  if (dims == 0 || x.size() % dims != 0)
    throw std::invalid_argument("FeatureScaler::apply: bad matrix shape");
  const std::size_t n = x.size() / dims;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < dims; ++c)
      x[r * dims + c] = (x[r * dims + c] - mean[c]) / stddev[c];
}

}  // namespace amdgcnn::heuristics
