// Katz index (truncated power series) — a high-order, γ-decaying heuristic
// (paper §II-B cites it as learnable from low-order enclosing subgraphs).
//
//   Katz(u, v) = sum_{l=1..L} beta^l * |paths of length l between u and v|
//
// computed by L sparse matvec passes from the indicator vector of u.
#pragma once

#include "graph/knowledge_graph.h"

namespace amdgcnn::heuristics {

struct KatzOptions {
  double beta = 0.05;        // must be < 1/spectral-radius for convergence
  std::int32_t max_length = 4;
};

/// Katz score between one pair.
double katz_index(const graph::KnowledgeGraph& g, graph::NodeId u,
                  graph::NodeId v, const KatzOptions& options = {});

/// Katz scores from `u` to every node (one column of the Katz matrix).
std::vector<double> katz_from(const graph::KnowledgeGraph& g, graph::NodeId u,
                              const KatzOptions& options = {});

}  // namespace amdgcnn::heuristics
