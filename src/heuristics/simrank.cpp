#include "heuristics/simrank.h"

#include <stdexcept>

namespace amdgcnn::heuristics {

std::vector<double> simrank(const graph::KnowledgeGraph& g,
                            const SimRankOptions& options) {
  if (options.decay <= 0.0 || options.decay >= 1.0)
    throw std::invalid_argument("simrank: decay must be in (0, 1)");
  const std::int64_t n = g.num_nodes();
  if (n > options.max_nodes)
    throw std::invalid_argument("simrank: graph exceeds max_nodes cap");
  const auto un = static_cast<std::size_t>(n);
  std::vector<double> sim(un * un, 0.0), next(un * un, 0.0);
  for (std::size_t v = 0; v < un; ++v) sim[v * un + v] = 1.0;

  for (std::int32_t it = 0; it < options.iterations; ++it) {
#pragma omp parallel for schedule(dynamic)
    for (std::int64_t u = 0; u < n; ++u) {
      for (std::int64_t v = u; v < n; ++v) {
        if (u == v) {
          next[static_cast<std::size_t>(u) * un + u] = 1.0;
          continue;
        }
        const auto nu = g.neighbors(static_cast<graph::NodeId>(u));
        const auto nv = g.neighbors(static_cast<graph::NodeId>(v));
        double s = 0.0;
        if (!nu.empty() && !nv.empty()) {
          for (const auto& a : nu)
            for (const auto& b : nv)
              s += sim[static_cast<std::size_t>(a.node) * un +
                       static_cast<std::size_t>(b.node)];
          s *= options.decay /
               (static_cast<double>(nu.size()) * static_cast<double>(nv.size()));
        }
        next[static_cast<std::size_t>(u) * un + static_cast<std::size_t>(v)] =
            s;
        next[static_cast<std::size_t>(v) * un + static_cast<std::size_t>(u)] =
            s;
      }
    }
    std::swap(sim, next);
  }
  return sim;
}

double simrank_score(const graph::KnowledgeGraph& g, graph::NodeId u,
                     graph::NodeId v, const SimRankOptions& options) {
  const auto sim = simrank(g, options);
  return sim[static_cast<std::size_t>(u) *
                 static_cast<std::size_t>(g.num_nodes()) +
             static_cast<std::size_t>(v)];
}

}  // namespace amdgcnn::heuristics
