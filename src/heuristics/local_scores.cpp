#include "heuristics/local_scores.h"

#include <cmath>
#include <unordered_set>

namespace amdgcnn::heuristics {

namespace {
std::unordered_set<graph::NodeId> neighbor_set(const graph::KnowledgeGraph& g,
                                               graph::NodeId v) {
  std::unordered_set<graph::NodeId> out;
  for (const auto& a : g.neighbors(v)) out.insert(a.node);
  return out;
}
}  // namespace

double common_neighbors(const graph::KnowledgeGraph& g, graph::NodeId u,
                        graph::NodeId v) {
  const auto nu = neighbor_set(g, u);
  double count = 0.0;
  for (const auto& a : g.neighbors(v))
    if (nu.count(a.node) && a.node != u && a.node != v) count += 1.0;
  return count;
}

double jaccard(const graph::KnowledgeGraph& g, graph::NodeId u,
               graph::NodeId v) {
  const auto nu = neighbor_set(g, u);
  const auto nv = neighbor_set(g, v);
  double inter = 0.0;
  for (auto n : nv)
    if (nu.count(n)) inter += 1.0;
  const double uni = static_cast<double>(nu.size() + nv.size()) - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

double adamic_adar(const graph::KnowledgeGraph& g, graph::NodeId u,
                   graph::NodeId v) {
  const auto nu = neighbor_set(g, u);
  double score = 0.0;
  for (const auto& a : g.neighbors(v)) {
    if (!nu.count(a.node) || a.node == u || a.node == v) continue;
    const double d = static_cast<double>(g.degree(a.node));
    if (d > 1.0) score += 1.0 / std::log(d);
  }
  return score;
}

double preferential_attachment(const graph::KnowledgeGraph& g,
                               graph::NodeId u, graph::NodeId v) {
  return static_cast<double>(g.degree(u)) * static_cast<double>(g.degree(v));
}

}  // namespace amdgcnn::heuristics
