// Uniform link-scorer interface over all heuristics, so benches and
// examples can sweep them (paper §VI: heuristic baselines vs supervised
// heuristic learning).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/knowledge_graph.h"
#include "seal/sampling.h"

namespace amdgcnn::heuristics {

struct LinkScorer {
  std::string name;
  std::function<double(const graph::KnowledgeGraph&, graph::NodeId,
                       graph::NodeId)>
      score;
};

/// All first-order scorers plus Katz; PPR/SimRank are excluded by default
/// (O(n) / O(n^2) per pair) and can be appended by the caller.
std::vector<LinkScorer> standard_scorers();

/// AUC of one scorer on a binary (existence) link task.
double scorer_auc(const LinkScorer& scorer, const graph::KnowledgeGraph& g,
                  const std::vector<seal::LinkExample>& links);

}  // namespace amdgcnn::heuristics
