#include "heuristics/katz.h"

#include <stdexcept>

namespace amdgcnn::heuristics {

std::vector<double> katz_from(const graph::KnowledgeGraph& g, graph::NodeId u,
                              const KatzOptions& options) {
  if (options.beta <= 0.0 || options.beta >= 1.0)
    throw std::invalid_argument("katz: beta must be in (0, 1)");
  if (options.max_length < 1)
    throw std::invalid_argument("katz: max_length must be >= 1");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> walk(n, 0.0), next(n, 0.0), katz(n, 0.0);
  walk[static_cast<std::size_t>(u)] = 1.0;
  double beta_l = 1.0;
  for (std::int32_t l = 1; l <= options.max_length; ++l) {
    beta_l *= options.beta;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t w = 0; w < n; ++w) {
      if (walk[w] == 0.0) continue;
      for (const auto& a : g.neighbors(static_cast<graph::NodeId>(w)))
        next[static_cast<std::size_t>(a.node)] += walk[w];
    }
    std::swap(walk, next);
    for (std::size_t w = 0; w < n; ++w) katz[w] += beta_l * walk[w];
  }
  return katz;
}

double katz_index(const graph::KnowledgeGraph& g, graph::NodeId u,
                  graph::NodeId v, const KatzOptions& options) {
  return katz_from(g, u, options)[static_cast<std::size_t>(v)];
}

}  // namespace amdgcnn::heuristics
