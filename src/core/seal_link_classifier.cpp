#include "core/seal_link_classifier.h"

#include <stdexcept>

namespace amdgcnn::core {

SealLinkClassifier::SealLinkClassifier(ClassifierConfig config)
    : config_(std::move(config)) {}

std::vector<models::EpochRecord> SealLinkClassifier::fit(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& train_links,
    std::int64_t num_classes, std::int64_t eval_every) {
  if (train_links.empty())
    throw std::invalid_argument("SealLinkClassifier::fit: no training links");

  auto dataset = seal::build_seal_dataset(g, train_links, /*test_links=*/{},
                                          num_classes, config_.dataset);

  config_.model.num_classes = num_classes;
  config_.model.node_feature_dim = dataset.node_feature_dim;
  config_.model.edge_attr_dim = dataset.edge_attr_dim;

  util::Rng init_rng(config_.training.seed);
  model_ = models::make_link_gnn(config_.model, init_rng);
  trainer_ = std::make_unique<models::Trainer>(*model_, config_.training);
  return trainer_->fit(dataset.train, dataset.train, eval_every);
}

std::vector<double> SealLinkClassifier::predict_proba(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links) const {
  require_fitted();
  // Inference-time subgraph construction goes through the same deterministic
  // build path as fit(), honouring config_.dataset.num_threads.
  const auto samples = seal::build_samples(g, links, config_.dataset);
  return trainer_->predict_proba(samples);
}

std::vector<std::int32_t> SealLinkClassifier::predict(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links) const {
  const auto probs = predict_proba(g, links);
  return metrics::argmax_rows(probs, config_.model.num_classes);
}

LinkPredictions SealLinkClassifier::predict_links(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links) const {
  require_fitted();
  LinkPredictor::Options options;
  options.dataset = config_.dataset;
  return LinkPredictor(*model_, std::move(options)).predict_links(g, links);
}

models::EvalResult SealLinkClassifier::evaluate(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links) const {
  require_fitted();
  const auto samples = seal::build_samples(g, links, config_.dataset);
  return trainer_->evaluate(samples);
}

const models::LinkGNN& SealLinkClassifier::model() const {
  require_fitted();
  return *model_;
}

void SealLinkClassifier::require_fitted() const {
  if (!fitted())
    throw std::logic_error("SealLinkClassifier: call fit() first");
}

}  // namespace amdgcnn::core
