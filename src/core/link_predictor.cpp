#include "core/link_predictor.h"

#include <exception>
#include <stdexcept>

#include "metrics/classification.h"

namespace amdgcnn::core {

namespace {
/// One arena per worker thread, shared across LinkPredictor instances (the
/// arena is shape-agnostic and grows to the largest pass it ever serves).
infer::Arena& tls_arena() {
  thread_local infer::Arena arena;
  return arena;
}
}  // namespace

LinkPredictor::LinkPredictor(const models::LinkGNN& model, Options options)
    : frozen_(model), options_(std::move(options)) {
  if (options_.dataset.num_threads < 0)
    throw std::invalid_argument("LinkPredictor: num_threads must be >= 0");
  if (options_.warm_nodes > 0)
    frozen_.warm_up(arena_, options_.warm_nodes, options_.warm_edges);
}

LinkPredictions LinkPredictor::predict_links(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links) const {
  const std::int64_t c = frozen_.config().num_classes;
  LinkPredictions result;
  result.num_classes = c;
  result.proba.resize(links.size() * static_cast<std::size_t>(c));
  const auto n = static_cast<std::int64_t>(links.size());

  if (options_.dataset.num_threads == 0) {
    for (std::int64_t i = 0; i < n; ++i) {
      const auto sample = seal::make_sample(g, links[i], options_.dataset);
      frozen_.predict_proba(sample, arena_, result.proba.data() + i * c);
    }
  } else {
    // Deterministic parallel path (same pattern as seal::build_samples):
    // links are distributed dynamically, but each probability row lands in
    // its pre-sized slot and depends only on its link — extraction scratch
    // comes from thread-local pools, activations from the worker's own
    // thread-local arena — so the batch is bit-identical for any worker
    // count.  Exceptions cannot cross the OpenMP region; the first one is
    // captured and rethrown after the join.
    [[maybe_unused]] const int nt =
        static_cast<int>(options_.dataset.num_threads);
    std::exception_ptr error;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(nt)
#endif
    for (std::int64_t i = 0; i < n; ++i) {
      try {
        const auto sample = seal::make_sample(g, links[i], options_.dataset);
        frozen_.predict_proba(sample, tls_arena(),
                              result.proba.data() + i * c);
      } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
        {
          if (!error) error = std::current_exception();
        }
      }
    }
    if (error) std::rethrow_exception(error);
  }

  result.labels = metrics::argmax_rows(result.proba, c);
  return result;
}

void LinkPredictor::forward_logits(const seal::SubgraphSample& sample,
                                   double* out) const {
  frozen_.forward_logits(sample, arena_, out);
}

void LinkPredictor::predict_proba_sample(const seal::SubgraphSample& sample,
                                         double* out) const {
  frozen_.predict_proba(sample, arena_, out);
}

}  // namespace amdgcnn::core
