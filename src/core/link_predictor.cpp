#include "core/link_predictor.h"

#include <algorithm>
#include <stdexcept>

#include "metrics/classification.h"
#include "util/parallel_error.h"

namespace amdgcnn::core {

namespace {
/// One arena per worker thread, shared across LinkPredictor instances (the
/// arena is shape-agnostic and grows to the largest pass it ever serves).
infer::Arena& tls_arena() {
  thread_local infer::Arena arena;
  return arena;
}
}  // namespace

LinkPredictor::LinkPredictor(const models::LinkGNN& model, Options options)
    : frozen_(model, options.quantize), options_(std::move(options)) {
  if (options_.dataset.num_threads < 0)
    throw std::invalid_argument("LinkPredictor: num_threads must be >= 0");
  options_.dataset.extract.reuse_frontiers = options_.reuse_frontiers;
  if (options_.warm_nodes > 0)
    frozen_.warm_up(arena_, options_.warm_nodes, options_.warm_edges);
}

LinkPredictions LinkPredictor::predict_links(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links) const {
  const std::int64_t c = frozen_.config().num_classes;
  LinkPredictions result;
  result.num_classes = c;
  result.proba.resize(links.size() * static_cast<std::size_t>(c));

  if (options_.cache_scores)
    predict_links_cached(g, links, result);
  else
    predict_links_cold(g, links, result);

  result.labels = metrics::argmax_rows(result.proba, c);
  return result;
}

void LinkPredictor::predict_links_cold(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links,
    LinkPredictions& result) const {
  const std::int64_t c = result.num_classes;
  const auto n = static_cast<std::int64_t>(links.size());

  if (options_.dataset.num_threads == 0) {
    for (std::int64_t i = 0; i < n; ++i) {
      const auto sample = seal::make_sample(g, links[i], options_.dataset);
      frozen_.predict_proba(sample, arena_, result.proba.data() + i * c);
    }
  } else {
    // Deterministic parallel path (same pattern as seal::build_samples):
    // links are distributed dynamically, but each probability row lands in
    // its pre-sized slot and depends only on its link — extraction scratch
    // comes from thread-local pools, activations from the worker's own
    // thread-local arena — so the batch is bit-identical for any worker
    // count.  Exceptions cannot cross the OpenMP region; the failure of the
    // lowest link index is rethrown after the join with stage context.
    [[maybe_unused]] const int nt =
        static_cast<int>(options_.dataset.num_threads);
    util::WorkerErrorCollector error;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(nt)
#endif
    for (std::int64_t i = 0; i < n; ++i) {
      try {
        const auto sample = seal::make_sample(g, links[i], options_.dataset);
        frozen_.predict_proba(sample, tls_arena(),
                              result.proba.data() + i * c);
      } catch (...) {
        error.capture(i);
      }
    }
    error.rethrow("predict_links");
  }
}

namespace {
std::uint64_t cache_key(graph::NodeId a, graph::NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}
}  // namespace

void LinkPredictor::predict_links_cached(
    const graph::KnowledgeGraph& g,
    const std::vector<seal::LinkExample>& links,
    LinkPredictions& result) const {
  const std::int64_t c = result.num_classes;
  const auto n = static_cast<std::int64_t>(links.size());
  if (cache_graph_ != &g) {  // new serving graph: nothing cached applies
    cache_.clear();
    cache_graph_ = &g;
  }

  // Phase 1 (serial): serve hits, collect misses.  An entry is live iff no
  // node of its hop-hull was touched after it was filled — any mutation
  // that could change the enclosing subgraph of (a, b) stamps a hull node
  // with a later generation (see EnclosingSubgraph::hull).
  std::vector<std::int64_t> miss;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto it = cache_.find(cache_key(links[i].a, links[i].b));
    if (it != cache_.end()) {
      const CacheEntry& entry = it->second;
      bool live = true;
      for (const auto v : entry.members)
        if (g.node_generation(v) > entry.generation) {
          live = false;
          break;
        }
      if (live) {
        std::copy(entry.proba.begin(), entry.proba.end(),
                  result.proba.begin() + i * c);
        ++cache_stats_.hits;
        continue;
      }
      cache_.erase(it);
      ++cache_stats_.invalidated;
    }
    ++cache_stats_.misses;
    miss.push_back(i);
  }
  if (miss.empty()) return;

  // Phase 2: score the misses with the cold pipeline (serial or the
  // deterministic OpenMP path), keeping each extraction's hull around.
  const auto m = static_cast<std::int64_t>(miss.size());
  std::vector<std::vector<graph::NodeId>> hulls(miss.size());
  auto extract_opts = options_.dataset.extract;
  extract_opts.collect_hull = true;
  auto score_one = [&](std::int64_t k, infer::Arena& arena) {
    const auto& link = links[static_cast<std::size_t>(miss[k])];
    auto sub = graph::extract_enclosing_subgraph(g, link.a, link.b,
                                                 extract_opts);
    const auto sample =
        seal::build_sample(g, sub, link.label, options_.dataset.features);
    frozen_.predict_proba(sample, arena,
                          result.proba.data() + miss[k] * c);
    hulls[static_cast<std::size_t>(k)] = std::move(sub.hull);
  };
  if (options_.dataset.num_threads == 0) {
    for (std::int64_t k = 0; k < m; ++k) score_one(k, arena_);
  } else {
    [[maybe_unused]] const int nt =
        static_cast<int>(options_.dataset.num_threads);
    util::WorkerErrorCollector error;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(nt)
#endif
    for (std::int64_t k = 0; k < m; ++k) {
      try {
        score_one(k, tls_arena());
      } catch (...) {
        error.capture(k);
      }
    }
    error.rethrow("predict_links(cached)");
  }

  // Phase 3 (serial, after the join): admit the fresh entries.  Wipe-on-full
  // keeps the policy deterministic and branch-free; the snapshot generation
  // is the graph's current one (no mutation can interleave with a
  // predict_links call — single-writer contract).
  const std::uint64_t gen = g.generation();
  for (std::int64_t k = 0; k < m; ++k) {
    if (cache_.size() >= options_.cache_capacity) {
      cache_stats_.evictions += static_cast<std::int64_t>(cache_.size());
      cache_.clear();
    }
    const auto& link = links[static_cast<std::size_t>(miss[k])];
    CacheEntry entry;
    entry.proba.assign(result.proba.begin() + miss[k] * c,
                       result.proba.begin() + (miss[k] + 1) * c);
    entry.members = std::move(hulls[static_cast<std::size_t>(k)]);
    entry.generation = gen;
    cache_[cache_key(link.a, link.b)] = std::move(entry);
  }
}

LinkPredictor::Stats LinkPredictor::stats() const {
  Stats s;
  s.score = cache_stats_;
  const auto f = graph::frontier_cache_stats();
  s.frontier_hits = f.hits;
  s.frontier_misses = f.misses;
  s.frontier_evictions = f.evictions;
  return s;
}

void LinkPredictor::clear_cache() const {
  cache_.clear();
  cache_graph_ = nullptr;
  cache_stats_ = CacheStats{};
}

void LinkPredictor::forward_logits(const seal::SubgraphSample& sample,
                                   double* out) const {
  frozen_.forward_logits(sample, arena_, out);
}

void LinkPredictor::predict_proba_sample(const seal::SubgraphSample& sample,
                                         double* out) const {
  frozen_.predict_proba(sample, arena_, out);
}

}  // namespace amdgcnn::core
