// Batched link-classification inference (DESIGN.md §2.4).
//
// LinkPredictor freezes a trained model once and answers candidate-link
// queries through a per-link pipeline: enclosing-subgraph extraction -> DRNL
// labelling -> feature tensors -> arena-allocated frozen forward.  Each link
// runs all four stages back to back on one worker (the sample tensors are
// still cache-hot when the forward reads them, and nothing is materialised
// batch-wide), and links are independent, so the batch parallelises with the
// same deterministic OpenMP pattern as seal::build_samples: probabilities
// are bit-identical for ANY worker count, including the serial path.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "infer/frozen_model.h"
#include "seal/dataset.h"

namespace amdgcnn::core {

struct LinkPredictions {
  /// Row-major [links.size(), num_classes] class probabilities.
  std::vector<double> proba;
  /// Argmax class per link.
  std::vector<std::int32_t> labels;
  std::int64_t num_classes = 0;
};

class LinkPredictor {
 public:
  struct Options {
    /// Extraction / DRNL / feature options plus the worker count, exactly as
    /// used to build the training dataset (the features MUST match what the
    /// model was trained on).  num_threads: 0 = serial, >= 1 = OpenMP.
    seal::SealDatasetOptions dataset;
    /// Warm-up hints: when > 0, the constructor runs one synthetic forward
    /// of this size so the serial arena is right-sized before the first real
    /// query.  Worker arenas warm up on their first query instead.
    std::int64_t warm_nodes = 0;
    std::int64_t warm_edges = 0;
    /// Per-endpoint score cache for the dynamic-graph serving scenario
    /// (DESIGN.md §2.5).  Each cached (a, b) entry remembers the hop-hull of
    /// its extraction plus the graph generation at fill time; a hit is only
    /// served when no hull node has been touched by a later insert/delete
    /// (KnowledgeGraph::node_generation), so scores are always bit-identical
    /// to the cold path.  compact() preserves generations, so compaction
    /// never evicts anything.  The cache assumes one serving graph per
    /// predictor (it resets when a different graph instance is passed) and
    /// that predict_links calls are not issued concurrently.
    bool cache_scores = false;
    /// Entry cap; the cache is wiped when it would grow past this (simple,
    /// deterministic policy — the serving workload re-fills it in one pass).
    std::size_t cache_capacity = 1 << 16;
    /// Reuse hop-bounded BFS frontiers across links sharing an endpoint
    /// (graph::ExtractOptions::reuse_frontiers): candidate batches fan one
    /// source out against many destinations, exactly the cache's hit shape.
    /// On by default — extraction bytes are unchanged, only time.
    bool reuse_frontiers = true;
    /// Quantize-on-freeze scheme (DESIGN.md §2.7).  kNone keeps the exact
    /// bit-identical forward; kF16 / kQ8 shrink the resident weights and run
    /// the relaxed-numerics f32 forward — still deterministic for any worker
    /// count, but not bit-identical to the exact path.
    ag::quant::Scheme quantize = ag::quant::Scheme::kNone;
  };

  struct CacheStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;        // cold entries (includes invalidations)
    std::int64_t invalidated = 0;   // evicted because a hull node went dirty
    std::int64_t evictions = 0;     // entries dropped by a capacity wipe
  };

  /// One plain snapshot of every cache the predictor's pipeline touches
  /// (serving dashboards and the benches read this instead of instrumenting
  /// call sites).  The score-cache rows are per-predictor; the frontier rows
  /// mirror graph::frontier_cache_stats(), which aggregates the per-thread
  /// extraction caches process-wide — with several live predictors they
  /// count all of them.
  struct Stats {
    CacheStats score;
    std::int64_t frontier_hits = 0;
    std::int64_t frontier_misses = 0;
    std::int64_t frontier_evictions = 0;
  };

  /// Snapshots `model`'s parameters (shared storage; the model may be
  /// dropped afterwards).
  LinkPredictor(const models::LinkGNN& model, Options options);

  /// Classify a batch of candidate links against `g`.
  LinkPredictions predict_links(
      const graph::KnowledgeGraph& g,
      const std::vector<seal::LinkExample>& links) const;

  /// Logits / probabilities for one prebuilt sample, widened to double into
  /// `out[num_classes]`.  Logits are bit-identical to the training forward.
  void forward_logits(const seal::SubgraphSample& sample, double* out) const;
  void predict_proba_sample(const seal::SubgraphSample& sample,
                            double* out) const;

  /// High-water mark of the serial/single-sample arena (worker arenas are
  /// thread-local and not aggregated here).
  std::size_t arena_peak_bytes() const { return arena_.peak_bytes(); }

  /// Resident weight bytes of the frozen model (quantized payload when
  /// Options::quantize is active).
  std::size_t weight_bytes() const { return frozen_.weight_bytes(); }

  const models::ModelConfig& config() const { return frozen_.config(); }
  const Options& options() const { return options_; }

  const CacheStats& cache_stats() const { return cache_stats_; }
  Stats stats() const;
  std::size_t cache_size() const { return cache_.size(); }
  void clear_cache() const;

  /// The frozen forward engine, for callers that manage their own arenas
  /// (the serving runtime gives every pool worker a warm one).  Logits /
  /// probabilities through this handle are exactly the ones predict_links
  /// produces — same kernels, same accumulation order.
  const infer::FrozenModel& frozen() const { return frozen_; }

 private:
  struct CacheEntry {
    std::vector<double> proba;           // one row, num_classes wide
    std::vector<graph::NodeId> members;  // hop-hull at fill time
    std::uint64_t generation = 0;        // graph generation at fill time
  };

  /// Batched scoring without the cache (the pre-dynamic-graph path).
  void predict_links_cold(const graph::KnowledgeGraph& g,
                          const std::vector<seal::LinkExample>& links,
                          LinkPredictions& result) const;
  void predict_links_cached(const graph::KnowledgeGraph& g,
                            const std::vector<seal::LinkExample>& links,
                            LinkPredictions& result) const;

  infer::FrozenModel frozen_;
  Options options_;
  mutable infer::Arena arena_;  // serial path + single-sample helpers

  // Score cache (active when options_.cache_scores); keyed by the ordered
  // (a, b) pair packed into one word.  Mutable: predict_links stays const
  // for cache-off callers, and the cache is an observably-pure memo — every
  // hit is bit-identical to recomputation (asserted by the coherence
  // property suite).
  mutable std::unordered_map<std::uint64_t, CacheEntry> cache_;
  mutable const graph::KnowledgeGraph* cache_graph_ = nullptr;
  mutable CacheStats cache_stats_;
};

}  // namespace amdgcnn::core
