// Batched link-classification inference (DESIGN.md §2.4).
//
// LinkPredictor freezes a trained model once and answers candidate-link
// queries through a per-link pipeline: enclosing-subgraph extraction -> DRNL
// labelling -> feature tensors -> arena-allocated frozen forward.  Each link
// runs all four stages back to back on one worker (the sample tensors are
// still cache-hot when the forward reads them, and nothing is materialised
// batch-wide), and links are independent, so the batch parallelises with the
// same deterministic OpenMP pattern as seal::build_samples: probabilities
// are bit-identical for ANY worker count, including the serial path.
#pragma once

#include <cstdint>
#include <vector>

#include "infer/frozen_model.h"
#include "seal/dataset.h"

namespace amdgcnn::core {

struct LinkPredictions {
  /// Row-major [links.size(), num_classes] class probabilities.
  std::vector<double> proba;
  /// Argmax class per link.
  std::vector<std::int32_t> labels;
  std::int64_t num_classes = 0;
};

class LinkPredictor {
 public:
  struct Options {
    /// Extraction / DRNL / feature options plus the worker count, exactly as
    /// used to build the training dataset (the features MUST match what the
    /// model was trained on).  num_threads: 0 = serial, >= 1 = OpenMP.
    seal::SealDatasetOptions dataset;
    /// Warm-up hints: when > 0, the constructor runs one synthetic forward
    /// of this size so the serial arena is right-sized before the first real
    /// query.  Worker arenas warm up on their first query instead.
    std::int64_t warm_nodes = 0;
    std::int64_t warm_edges = 0;
  };

  /// Snapshots `model`'s parameters (shared storage; the model may be
  /// dropped afterwards).
  LinkPredictor(const models::LinkGNN& model, Options options);

  /// Classify a batch of candidate links against `g`.
  LinkPredictions predict_links(
      const graph::KnowledgeGraph& g,
      const std::vector<seal::LinkExample>& links) const;

  /// Logits / probabilities for one prebuilt sample, widened to double into
  /// `out[num_classes]`.  Logits are bit-identical to the training forward.
  void forward_logits(const seal::SubgraphSample& sample, double* out) const;
  void predict_proba_sample(const seal::SubgraphSample& sample,
                            double* out) const;

  /// High-water mark of the serial/single-sample arena (worker arenas are
  /// thread-local and not aggregated here).
  std::size_t arena_peak_bytes() const { return arena_.peak_bytes(); }

  const models::ModelConfig& config() const { return frozen_.config(); }
  const Options& options() const { return options_; }

 private:
  infer::FrozenModel frozen_;
  Options options_;
  mutable infer::Arena arena_;  // serial path + single-sample helpers
};

}  // namespace amdgcnn::core
