#include "core/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/stopwatch.h"

namespace amdgcnn::core {

BenchScale bench_scale_from_env() {
  const char* env = std::getenv("AMDGCNN_BENCH_SCALE");
  if (env == nullptr) return BenchScale::kQuick;
  const std::string value(env);
  if (value == "full") return BenchScale::kFull;
  if (value == "quick" || value.empty()) return BenchScale::kQuick;
  throw std::runtime_error("AMDGCNN_BENCH_SCALE must be 'quick' or 'full'");
}

const char* bench_scale_name(BenchScale scale) {
  return scale == BenchScale::kFull ? "full" : "quick";
}

std::int64_t scaled_links(std::int64_t full_count, BenchScale scale) {
  if (scale == BenchScale::kFull) return full_count;
  return std::max<std::int64_t>(50, full_count / 2);
}

seal::SealDataset prepare_seal_dataset(const datasets::LinkDataset& data,
                                       std::int64_t max_subgraph_nodes,
                                       std::int64_t max_drnl_label,
                                       std::int64_t build_threads,
                                       ag::Dtype dtype) {
  seal::SealDatasetOptions options;
  options.extract.num_hops = 2;  // paper §III-A
  options.extract.mode = data.neighborhood_mode;
  options.extract.max_nodes = max_subgraph_nodes;
  options.features.max_drnl_label = max_drnl_label;
  options.features.dtype = dtype;
  options.num_threads = build_threads;
  return seal::build_seal_dataset(data.graph, data.train_links,
                                  data.test_links, data.num_classes, options);
}

hpo::HyperParams cora_tuned_defaults() {
  // Result of bayes_opt on cora_sim (bench_fig3 reproduces the tuning);
  // used as the paper's "default hyperparameters" on the knowledge graphs.
  hpo::HyperParams hp;
  hp.learning_rate = 2e-3;
  hp.hidden_dim = 64;
  hp.sort_k = 30;
  return hp;
}

RunResult run_model(const seal::SealDataset& dataset, models::GnnKind kind,
                    const hpo::HyperParams& params, std::int64_t epochs,
                    std::uint64_t seed, std::int64_t eval_every,
                    std::int64_t train_subset, std::int64_t batch_size) {
  models::ModelConfig mc;
  mc.kind = kind;
  mc.node_feature_dim = dataset.node_feature_dim;
  mc.edge_attr_dim = dataset.edge_attr_dim;
  mc.num_classes = dataset.num_classes;
  mc.hidden_dim = params.hidden_dim;
  mc.sort_k = params.sort_k;
  // Model precision follows the dataset build (FeatureOptions::dtype): a
  // dataset prepared at f32 trains and evaluates at f32 with no boundary
  // casts, while the long-standing f64 pipelines are untouched.  This also
  // puts HPO sweeps (tune_model routes through here) on the dataset's dtype.
  if (!dataset.train.empty() && dataset.train.front().node_feat.defined())
    mc.dtype = dataset.train.front().node_feat.dtype();
  else if (!dataset.test.empty() && dataset.test.front().node_feat.defined())
    mc.dtype = dataset.test.front().node_feat.dtype();

  models::TrainConfig tc;
  tc.learning_rate = params.learning_rate;
  tc.epochs = epochs;
  tc.seed = seed;
  tc.batch_size = batch_size;
  tc.dtype = mc.dtype;

  util::Rng init_rng(seed ^ 0xA5A5A5A5ULL);
  auto model = models::make_link_gnn(mc, init_rng);
  models::Trainer trainer(*model, tc);

  const auto* train_set = &dataset.train;
  std::vector<seal::SubgraphSample> subset;
  if (train_subset > 0 &&
      train_subset < static_cast<std::int64_t>(dataset.train.size())) {
    subset.assign(dataset.train.begin(), dataset.train.begin() + train_subset);
    train_set = &subset;
  }

  RunResult result;
  result.model_name = models::gnn_kind_name(kind);
  result.num_parameters = model->num_parameters();
  util::Stopwatch watch;
  result.curve = trainer.fit(*train_set, dataset.test, eval_every);
  result.train_seconds = watch.seconds();
  result.final_eval = trainer.evaluate(dataset.test);
  result.model = std::move(model);
  return result;
}

hpo::TuneResult tune_model(const seal::SealDataset& dataset,
                           models::GnnKind kind,
                           const hpo::BayesOptOptions& options,
                           std::int64_t tune_epochs,
                           std::int64_t max_train_samples,
                           std::int64_t max_val_samples) {
  // Split the training set into a tune-train prefix and validation suffix
  // (the samples were shuffled at generation time).
  const auto n = static_cast<std::int64_t>(dataset.train.size());
  if (n < 20)
    throw std::invalid_argument("tune_model: too few training samples");
  const std::int64_t val_size =
      std::min(max_val_samples, std::max<std::int64_t>(10, n / 4));
  const std::int64_t train_size =
      std::min(max_train_samples, n - val_size);

  seal::SealDataset tune_set;
  tune_set.num_classes = dataset.num_classes;
  tune_set.node_feature_dim = dataset.node_feature_dim;
  tune_set.edge_attr_dim = dataset.edge_attr_dim;
  tune_set.train.assign(dataset.train.begin(),
                        dataset.train.begin() + train_size);
  tune_set.test.assign(dataset.train.end() - val_size, dataset.train.end());

  hpo::SearchSpace space;
  auto evaluator = [&](const hpo::HyperParams& hp) {
    const auto run =
        run_model(tune_set, kind, hp, tune_epochs, /*seed=*/101);
    return run.final_eval.metrics.macro_auc;
  };
  return hpo::bayes_opt(space, evaluator, options);
}

}  // namespace amdgcnn::core
