// Experiment plumbing shared by the benchmark harness (bench/): dataset
// preparation with the paper's per-dataset extraction rules, single-model
// runs with epoch trajectories, per-dataset hyperparameter tuning, and the
// quick/full scale switch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "datasets/kg_generator.h"
#include "hpo/bayes_opt.h"
#include "models/trainer.h"
#include "seal/dataset.h"

namespace amdgcnn::core {

/// Benchmark scale, selected by the AMDGCNN_BENCH_SCALE environment
/// variable: "quick" (default; minutes on one CPU core) or "full"
/// (closer to the paper's sample counts).
enum class BenchScale { kQuick, kFull };
BenchScale bench_scale_from_env();
const char* bench_scale_name(BenchScale scale);

/// Scale a link count down in quick mode (halved, floor 50).
std::int64_t scaled_links(std::int64_t full_count, BenchScale scale);

/// Turn a generated LinkDataset into ready-to-train SEAL samples using the
/// dataset's prescribed neighborhood rule (paper §III-A: k = 2 hops,
/// intersection for PrimeKG, union otherwise).  `build_threads` follows the
/// SealDatasetOptions contract: 0 = serial, >= 1 = deterministic parallel
/// build with that many workers (bit-identical output either way).
/// `dtype` is the storage precision of the produced feature tensors;
/// run_model derives the model precision from it, so building at f32 trains
/// and evaluates the whole pipeline at f32.
seal::SealDataset prepare_seal_dataset(const datasets::LinkDataset& data,
                                       std::int64_t max_subgraph_nodes = 48,
                                       std::int64_t max_drnl_label = 24,
                                       std::int64_t build_threads = 0,
                                       ag::Dtype dtype = ag::Dtype::f64);

/// The "default hyperparameters" of the paper's experiment design: the
/// configuration auto-tuned on Cora (no edge attributes) and reused
/// verbatim on the knowledge graphs.  bench_fig3 re-derives this via
/// bayes_opt; the constant keeps the other benches independent.
hpo::HyperParams cora_tuned_defaults();

struct RunResult {
  std::string model_name;
  std::vector<models::EpochRecord> curve;  // per-eval-point trajectory
  models::EvalResult final_eval;
  double train_seconds = 0.0;
  std::int64_t num_parameters = 0;
  /// The trained model, for post-training consumers (quantized-inference
  /// evaluation, checkpointing).  Shared so RunResult stays copyable.
  std::shared_ptr<models::LinkGNN> model;
};

/// Train one model on prepared samples and evaluate on the test split.
/// `eval_every` > 0 records the AUC trajectory (paper Figs. 3-6).
RunResult run_model(const seal::SealDataset& dataset, models::GnnKind kind,
                    const hpo::HyperParams& params, std::int64_t epochs,
                    std::uint64_t seed = 17, std::int64_t eval_every = 0,
                    std::int64_t train_subset = 0,
                    std::int64_t batch_size = 32);

/// Auto-tune hyperparameters for one model on one dataset (paper experiment
/// set (ii)).  The evaluator trains on a train subset for a few epochs and
/// scores AUC on a held-out validation slice of the training set.
hpo::TuneResult tune_model(const seal::SealDataset& dataset,
                           models::GnnKind kind,
                           const hpo::BayesOptOptions& options,
                           std::int64_t tune_epochs = 4,
                           std::int64_t max_train_samples = 300,
                           std::int64_t max_val_samples = 150);

}  // namespace amdgcnn::core
