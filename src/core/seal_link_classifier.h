// SealLinkClassifier — the library's one-stop public API.
//
// Wraps the full paper pipeline behind fit/predict/evaluate:
//
//   KnowledgeGraph + labeled links
//     -> enclosing-subgraph extraction (union/intersection, k hops)
//     -> DRNL + node/edge attribute matrices
//     -> DGCNN (vanilla) or AM-DGCNN (GAT + edge attributes)
//     -> training with Adam, evaluation with AUC/AP
//
// Quickstart (see examples/quickstart.cpp):
//
//   core::ClassifierConfig cfg;
//   cfg.model.kind = models::GnnKind::kAMDGCNN;
//   core::SealLinkClassifier clf(cfg);
//   clf.fit(dataset.graph, dataset.train_links, dataset.num_classes);
//   auto eval = clf.evaluate(dataset.graph, dataset.test_links);
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/link_predictor.h"
#include "models/trainer.h"
#include "seal/dataset.h"

namespace amdgcnn::core {

struct ClassifierConfig {
  models::ModelConfig model;        // node_feature_dim etc. filled by fit()
  models::TrainConfig training;
  seal::SealDatasetOptions dataset;
};

class SealLinkClassifier {
 public:
  explicit SealLinkClassifier(ClassifierConfig config);

  /// Extract subgraphs for the training links, build the model and train.
  /// Returns the per-epoch trajectory (evaluated on the training set when
  /// `eval_every` > 0).
  std::vector<models::EpochRecord> fit(
      const graph::KnowledgeGraph& g,
      const std::vector<seal::LinkExample>& train_links,
      std::int64_t num_classes, std::int64_t eval_every = 0);

  /// Row-major [n, num_classes] probabilities for new links.
  std::vector<double> predict_proba(
      const graph::KnowledgeGraph& g,
      const std::vector<seal::LinkExample>& links) const;

  /// Argmax class predictions.
  std::vector<std::int32_t> predict(
      const graph::KnowledgeGraph& g,
      const std::vector<seal::LinkExample>& links) const;

  /// Batch inference through the frozen engine (src/infer): freezes the
  /// trained model and runs the extract -> DRNL -> featurize -> arena
  /// forward pipeline.  Probabilities are bit-identical to predict_proba()
  /// for any dataset.num_threads; for repeated batches construct a
  /// core::LinkPredictor once instead.
  LinkPredictions predict_links(
      const graph::KnowledgeGraph& g,
      const std::vector<seal::LinkExample>& links) const;

  /// AUC / AP / accuracy on labeled links.
  models::EvalResult evaluate(
      const graph::KnowledgeGraph& g,
      const std::vector<seal::LinkExample>& links) const;

  bool fitted() const { return model_ != nullptr; }
  const models::LinkGNN& model() const;
  const ClassifierConfig& config() const { return config_; }

 private:
  void require_fitted() const;

  ClassifierConfig config_;
  std::unique_ptr<models::LinkGNN> model_;
  std::unique_ptr<models::Trainer> trainer_;
};

}  // namespace amdgcnn::core
