#include "seal/drnl.h"

#include <algorithm>

namespace amdgcnn::seal {

std::int64_t drnl_label(std::int32_t x, std::int32_t y) {
  if (x < 0 || y < 0) return 0;  // unreachable from at least one target
  const std::int64_t d = static_cast<std::int64_t>(x) + y;
  const std::int64_t half = d / 2;
  return 1 + std::min<std::int64_t>(x, y) + half * (half + (d % 2) - 1);
}

std::vector<std::int64_t> drnl_labels(const graph::EnclosingSubgraph& sub) {
  std::vector<std::int64_t> labels(sub.nodes.size(), 0);
  for (std::size_t i = 0; i < sub.nodes.size(); ++i)
    labels[i] = drnl_label(sub.dist_a[i], sub.dist_b[i]);
  labels[graph::EnclosingSubgraph::kTargetA] = 1;
  labels[graph::EnclosingSubgraph::kTargetB] = 1;
  return labels;
}

}  // namespace amdgcnn::seal
