// SEAL dataset assembly: turn labeled target links into ready-to-train
// subgraph samples (extract enclosing subgraph -> DRNL -> feature tensors).
//
// Samples are materialised once and shared across epochs and across the two
// models under comparison — matching the reference pipeline, where subgraph
// extraction happens in the dataset loader, not in the training loop.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"
#include "graph/subgraph.h"
#include "seal/feature_builder.h"
#include "seal/sampling.h"

namespace amdgcnn::seal {

struct SealDatasetOptions {
  graph::ExtractOptions extract;
  FeatureOptions features;
};

struct SealDataset {
  std::vector<SubgraphSample> train;
  std::vector<SubgraphSample> test;
  std::int64_t num_classes = 0;
  std::int64_t node_feature_dim = 0;
  std::int64_t edge_attr_dim = 0;

  /// Mean subgraph node count over train+test (reported by the benches).
  double mean_subgraph_nodes() const;
};

/// Convert one labeled link to a sample.
SubgraphSample make_sample(const graph::KnowledgeGraph& g,
                           const LinkExample& link,
                           const SealDatasetOptions& options);

/// Build the full dataset.  Sample construction is embarrassingly parallel
/// and is OpenMP-parallelised over links.
SealDataset build_seal_dataset(const graph::KnowledgeGraph& g,
                               const std::vector<LinkExample>& train_links,
                               const std::vector<LinkExample>& test_links,
                               std::int64_t num_classes,
                               const SealDatasetOptions& options);

}  // namespace amdgcnn::seal
