// SEAL dataset assembly: turn labeled target links into ready-to-train
// subgraph samples (extract enclosing subgraph -> DRNL -> feature tensors).
//
// Samples are materialised once and shared across epochs and across the two
// models under comparison — matching the reference pipeline, where subgraph
// extraction happens in the dataset loader, not in the training loop.
//
// Per-link work is independent, so the build is parallelised with the same
// deterministic OpenMP pattern as models::Trainer (DESIGN.md §2.2): every
// sample is written into its pre-sized slot, each worker draws extraction
// scratch from its own thread-local buffer pool, and no stage depends on
// worker scheduling — the built dataset is bit-identical for ANY worker
// count, including the serial path.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"
#include "graph/subgraph.h"
#include "seal/feature_builder.h"
#include "seal/sampling.h"

namespace amdgcnn::seal {

struct SealDatasetOptions {
  graph::ExtractOptions extract;
  FeatureOptions features;
  /// Dataset-build workers (mirrors models::TrainConfig::num_threads).
  /// 0 = the legacy serial loop; >= 1 = the OpenMP path, links distributed
  /// dynamically over up to this many threads.  Outputs are bit-identical
  /// (tensor bytes, labels, DRNL vectors) for every setting; negative
  /// values are rejected.  Without OpenMP the parallel path runs serially
  /// and produces the same bytes.
  std::int64_t num_threads = 0;
};

struct SealDataset {
  std::vector<SubgraphSample> train;
  std::vector<SubgraphSample> test;
  std::int64_t num_classes = 0;
  std::int64_t node_feature_dim = 0;
  std::int64_t edge_attr_dim = 0;

  /// Mean subgraph node count over train+test (reported by the benches).
  double mean_subgraph_nodes() const;
};

/// Worker count for callers that just want "all hardware threads":
/// omp_get_max_threads() under OpenMP, 1 otherwise.
std::int64_t default_build_threads();

/// Convert one labeled link to a sample.
SubgraphSample make_sample(const graph::KnowledgeGraph& g,
                           const LinkExample& link,
                           const SealDatasetOptions& options);

/// Convert a whole link list, honouring options.num_threads; sample i of the
/// result always corresponds to links[i].  This is the single build path for
/// both dataset splits and for inference-time sample construction
/// (core::SealLinkClassifier).
std::vector<SubgraphSample> build_samples(
    const graph::KnowledgeGraph& g, const std::vector<LinkExample>& links,
    const SealDatasetOptions& options);

/// Build the full dataset (both splits via build_samples).
SealDataset build_seal_dataset(const graph::KnowledgeGraph& g,
                               const std::vector<LinkExample>& train_links,
                               const std::vector<LinkExample>& test_links,
                               std::int64_t num_classes,
                               const SealDatasetOptions& options);

}  // namespace amdgcnn::seal
