// Double-Radius Node Labeling (DRNL) — SEAL's structural node label.
//
// Each subgraph node gets an integer encoding its (shortest-distance-to-a,
// shortest-distance-to-b) pair through the symmetric perfect hash of
// Zhang & Chen (2018), §II-B of the paper:
//
//   label(x, y) = 1 + min(x, y) + (d/2) * ((d/2) + (d % 2) - 1),  d = x + y
//
// with integer division.  Both target nodes receive the distinctive label 1
// and any node unreachable from either target receives the null label 0.
// The label is one-hot encoded into the node feature vector downstream.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/subgraph.h"

namespace amdgcnn::seal {

/// Label for a node at distances (x, y) from the two targets.  Passing a
/// negative distance means "unreachable" and yields 0.
std::int64_t drnl_label(std::int32_t x, std::int32_t y);

/// Labels for every node of an enclosing subgraph (targets get 1).
std::vector<std::int64_t> drnl_labels(const graph::EnclosingSubgraph& sub);

}  // namespace amdgcnn::seal
