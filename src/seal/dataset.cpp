#include "seal/dataset.h"

#include <stdexcept>

namespace amdgcnn::seal {

double SealDataset::mean_subgraph_nodes() const {
  const std::size_t total = train.size() + test.size();
  if (total == 0) return 0.0;
  double sum = 0.0;
  for (const auto& s : train) sum += static_cast<double>(s.num_nodes);
  for (const auto& s : test) sum += static_cast<double>(s.num_nodes);
  return sum / static_cast<double>(total);
}

SubgraphSample make_sample(const graph::KnowledgeGraph& g,
                           const LinkExample& link,
                           const SealDatasetOptions& options) {
  const auto sub =
      graph::extract_enclosing_subgraph(g, link.a, link.b, options.extract);
  return build_sample(g, sub, link.label, options.features);
}

SealDataset build_seal_dataset(const graph::KnowledgeGraph& g,
                               const std::vector<LinkExample>& train_links,
                               const std::vector<LinkExample>& test_links,
                               std::int64_t num_classes,
                               const SealDatasetOptions& options) {
  if (num_classes < 2)
    throw std::invalid_argument("build_seal_dataset: need >= 2 classes");
  for (const auto* links : {&train_links, &test_links})
    for (const auto& l : *links)
      if (l.label < 0 || l.label >= num_classes)
        throw std::invalid_argument("build_seal_dataset: label out of range");

  SealDataset ds;
  ds.num_classes = num_classes;
  ds.node_feature_dim = node_feature_dim(g, options.features);
  ds.edge_attr_dim = g.edge_attr_dim();
  ds.train.resize(train_links.size());
  ds.test.resize(test_links.size());

#pragma omp parallel for schedule(dynamic)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(train_links.size());
       ++i)
    ds.train[i] = make_sample(g, train_links[i], options);

#pragma omp parallel for schedule(dynamic)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(test_links.size());
       ++i)
    ds.test[i] = make_sample(g, test_links[i], options);

  return ds;
}

}  // namespace amdgcnn::seal
