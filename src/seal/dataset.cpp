#include "seal/dataset.h"

#include <stdexcept>

#include "util/parallel_error.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace amdgcnn::seal {

double SealDataset::mean_subgraph_nodes() const {
  const std::size_t total = train.size() + test.size();
  if (total == 0) return 0.0;
  double sum = 0.0;
  for (const auto& s : train) sum += static_cast<double>(s.num_nodes);
  for (const auto& s : test) sum += static_cast<double>(s.num_nodes);
  return sum / static_cast<double>(total);
}

std::int64_t default_build_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

SubgraphSample make_sample(const graph::KnowledgeGraph& g,
                           const LinkExample& link,
                           const SealDatasetOptions& options) {
  const auto sub =
      graph::extract_enclosing_subgraph(g, link.a, link.b, options.extract);
  return build_sample(g, sub, link.label, options.features);
}

std::vector<SubgraphSample> build_samples(
    const graph::KnowledgeGraph& g, const std::vector<LinkExample>& links,
    const SealDatasetOptions& options) {
  if (options.num_threads < 0)
    throw std::invalid_argument("build_samples: num_threads must be >= 0");
  std::vector<SubgraphSample> out(links.size());
  const auto n = static_cast<std::int64_t>(links.size());

  if (options.num_threads == 0) {
    for (std::int64_t i = 0; i < n; ++i)
      out[i] = make_sample(g, links[i], options);
    return out;
  }

  // Deterministic parallel path (same pattern as Trainer::train_epoch_parallel):
  // links are distributed dynamically, but each sample lands in its pre-sized
  // slot and depends only on its link, so the result is bit-identical for any
  // worker count.  Per-worker BFS scratch lives in thread-local pools inside
  // extract_enclosing_subgraph; feature tensors allocate from each worker's
  // own tensor pool.  Exceptions cannot cross the OpenMP region; the failure
  // of the lowest link index is rethrown after the join with stage context
  // (util::WorkerError), deterministically for any worker count.
  [[maybe_unused]] const int nt = static_cast<int>(options.num_threads);
  util::WorkerErrorCollector error;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(nt)
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    try {
      out[i] = make_sample(g, links[i], options);
    } catch (...) {
      error.capture(i);
    }
  }
  error.rethrow("build_samples");
  return out;
}

SealDataset build_seal_dataset(const graph::KnowledgeGraph& g,
                               const std::vector<LinkExample>& train_links,
                               const std::vector<LinkExample>& test_links,
                               std::int64_t num_classes,
                               const SealDatasetOptions& options) {
  if (num_classes < 2)
    throw std::invalid_argument("build_seal_dataset: need >= 2 classes");
  for (const auto* links : {&train_links, &test_links})
    for (const auto& l : *links)
      if (l.label < 0 || l.label >= num_classes)
        throw std::invalid_argument("build_seal_dataset: label out of range");

  SealDataset ds;
  ds.num_classes = num_classes;
  ds.node_feature_dim = node_feature_dim(g, options.features);
  ds.edge_attr_dim = g.edge_attr_dim();
  ds.train = build_samples(g, train_links, options);
  ds.test = build_samples(g, test_links, options);
  return ds;
}

}  // namespace amdgcnn::seal
