// Node / edge attribute matrix generation (paper §III-B).
//
// The node attribute vector of each subgraph node is the concatenation of
//   (i)  a one-hot encoding of its DRNL label (clamped to max_drnl_label),
//   (ii) a one-hot encoding of its node type in the knowledge graph,
//   (iii) optionally the node's explicit feature vector, and
//   (iv) optionally a precomputed embedding (node2vec) — the paper disables
//        this for knowledge graphs and so do our dataset presets.
//
// The edge attribute matrix has one row per *directed* edge occurrence (both
// orientations of every undirected induced edge) holding the relation-type
// attribute vector from the knowledge graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/knowledge_graph.h"
#include "graph/subgraph.h"
#include "tensor/tensor.h"

namespace amdgcnn::seal {

struct FeatureOptions {
  /// DRNL labels >= max_drnl_label are clamped; one-hot width is
  /// max_drnl_label + 1 (slot 0 = unreachable).
  std::int64_t max_drnl_label = 32;
  bool use_drnl = true;        // ablation hook
  bool use_node_type = true;   // one-hot of KG node type
  bool use_explicit = true;    // KG explicit node features, when present
  /// Optional per-original-node embedding table [num_nodes x dim],
  /// row-major (node2vec).  Empty = disabled.
  std::vector<double> embedding;
  std::int64_t embedding_dim = 0;
  /// Storage precision of the produced node_feat / edge_attr tensors.  Build
  /// it to match ModelConfig::dtype so the model's boundary cast is a no-op
  /// (one-hot and copied feature values are exactly representable in f32).
  ag::Dtype dtype = ag::Dtype::f64;
};

/// Total node-feature width produced by these options on this graph.
std::int64_t node_feature_dim(const graph::KnowledgeGraph& g,
                              const FeatureOptions& options);

/// One ready-to-train SEAL sample: the enclosing subgraph converted to
/// tensors.  `src`/`dst` list each induced undirected edge in both
/// orientations; GNN layers add self-loops internally.
struct SubgraphSample {
  ag::Tensor node_feat;             // [n, F]
  std::vector<std::int64_t> src;    // directed endpoints
  std::vector<std::int64_t> dst;
  ag::Tensor edge_attr;             // [E_directed, edge_attr_dim] or undefined
  std::int64_t num_nodes = 0;
  std::int32_t label = 0;
};

/// Cross-link cache of the DRNL-independent tail of a node's feature row —
/// the node-type one-hot, explicit features and embedding slice, everything
/// after the per-link DRNL one-hot (serving runtime, DESIGN.md §2.8).  Those
/// entries depend only on the original node and the FeatureOptions, never on
/// the link being scored, and edge mutations cannot touch them, so a row is
/// valid for the graph instance's whole lifetime.  Rows are stored as the
/// raw bytes written into the sample tensor, so a hit memcpy's exactly what
/// recomputation would produce — build_sample with and without a cache is
/// bit-identical (asserted by the serve test suite).
///
/// One cache serves one (graph, FeatureOptions, dtype) combination at a
/// time; build_sample rebinds (wiping the rows) when any of those change.
/// Not thread-safe: give each worker its own instance.
class NodeRowCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
  };

  const Stats& stats() const { return stats_; }
  std::size_t size() const { return rows_.size(); }
  void clear() {
    rows_.clear();
    uid_ = 0;
  }

 private:
  friend SubgraphSample build_sample(const graph::KnowledgeGraph&,
                                     const graph::EnclosingSubgraph&,
                                     std::int32_t, const FeatureOptions&,
                                     NodeRowCache*);
  template <typename T>
  friend struct NodeRowCacheAccess;

  std::uint64_t uid_ = 0;         // bound graph (0 = unbound)
  std::int64_t row_bytes_ = -1;   // suffix width in bytes at the bound dtype
  std::unordered_map<graph::NodeId, std::vector<std::byte>> rows_;
  Stats stats_;
};

/// Build the tensors for one extracted subgraph.  `row_cache`, when given,
/// reuses the DRNL-independent feature-row tails across calls (see
/// NodeRowCache); output bytes are identical either way.
SubgraphSample build_sample(const graph::KnowledgeGraph& g,
                            const graph::EnclosingSubgraph& sub,
                            std::int32_t label, const FeatureOptions& options,
                            NodeRowCache* row_cache = nullptr);

}  // namespace amdgcnn::seal
