// Link-example bookkeeping: labeled target links, train/test splitting and
// negative sampling (used for the binary link-existence task on Cora, where
// negatives are uniformly sampled non-edges — the standard SEAL protocol).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"
#include "util/rng.h"

namespace amdgcnn::seal {

struct LinkExample {
  graph::NodeId a = -1;
  graph::NodeId b = -1;
  std::int32_t label = 0;
};

/// Shuffle and split examples into (train, test); test gets
/// round(test_fraction * size) examples.
std::pair<std::vector<LinkExample>, std::vector<LinkExample>> train_test_split(
    std::vector<LinkExample> examples, double test_fraction, util::Rng& rng);

/// Sample `count` distinct node pairs (a, b), a != b, that are NOT edges of
/// g, labeled `label`.  Rejection sampling; throws if the graph is too dense
/// to find enough non-edges within a bounded number of attempts.
std::vector<LinkExample> sample_negative_links(const graph::KnowledgeGraph& g,
                                               std::int64_t count,
                                               std::int32_t label,
                                               util::Rng& rng);

/// Histogram of labels (for dataset summaries and stratification checks).
std::vector<std::int64_t> label_histogram(
    const std::vector<LinkExample>& examples, std::int64_t num_classes);

}  // namespace amdgcnn::seal
