#include "seal/feature_builder.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "seal/drnl.h"

namespace amdgcnn::seal {

/// Typed access to NodeRowCache internals for the fill kernel below: binds
/// the cache to (graph, tail width, dtype) and hands out row slots.  A
/// dtype/graph/width change wipes the rows — the bytes would not match.
template <typename T>
struct NodeRowCacheAccess {
  static void bind(NodeRowCache& c, const graph::KnowledgeGraph& g,
                   std::int64_t tail_elems) {
    const std::int64_t bytes =
        tail_elems * static_cast<std::int64_t>(sizeof(T));
    if (c.uid_ != g.uid() || c.row_bytes_ != bytes) {
      c.rows_.clear();
      c.uid_ = g.uid();
      c.row_bytes_ = bytes;
    }
  }

  /// Serve node `v`'s row tail into `tail` when cached (returns true), or
  /// return false so the caller computes it and then calls store().
  static bool load(NodeRowCache& c, graph::NodeId v, T* tail) {
    const auto it = c.rows_.find(v);
    if (it == c.rows_.end()) return false;
    std::memcpy(tail, it->second.data(), it->second.size());
    ++c.stats_.hits;
    return true;
  }

  static void store(NodeRowCache& c, graph::NodeId v, const T* tail) {
    auto& row = c.rows_[v];
    row.resize(static_cast<std::size_t>(c.row_bytes_));
    std::memcpy(row.data(), tail, row.size());
    ++c.stats_.misses;
  }
};

std::int64_t node_feature_dim(const graph::KnowledgeGraph& g,
                              const FeatureOptions& options) {
  std::int64_t f = 0;
  if (options.use_drnl) f += options.max_drnl_label + 1;
  if (options.use_node_type) f += g.num_node_types();
  if (options.use_explicit) f += g.node_feat_dim();
  f += options.embedding_dim;
  return f;
}

namespace {

// Tensor construction at the requested storage width (FeatureOptions::dtype).
// Filled directly into a vector<T> — no f64 staging pass — so building an
// f32 dataset costs less memory traffic than f64, not more.  One-hot
// indicators and the graph's feature/attribute values are narrowed per
// element (exact for one-hots; bit-rounded for explicit values, matching
// what ops::cast at the model boundary would produce).
template <typename T>
void fill_sample_tensors(const graph::KnowledgeGraph& g,
                         const graph::EnclosingSubgraph& sub,
                         const FeatureOptions& options, std::int64_t n,
                         std::int64_t f, SubgraphSample& sample,
                         NodeRowCache* row_cache) {
  // ---- Node features -------------------------------------------------------
  // Each row is [DRNL one-hot | tail], where the tail (node-type one-hot,
  // explicit features, embedding slice) depends only on the original node —
  // with a NodeRowCache, repeated nodes across the links of a candidate
  // batch memcpy their tail instead of re-gathering it.
  const auto labels = drnl_labels(sub);
  const std::int64_t drnl_w = options.use_drnl ? options.max_drnl_label + 1 : 0;
  const std::int64_t tail_w = f - drnl_w;
  if (row_cache != nullptr && tail_w > 0)
    NodeRowCacheAccess<T>::bind(*row_cache, g, tail_w);
  std::vector<T> feat(static_cast<std::size_t>(n * f), T(0));
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t off = 0;
    if (options.use_drnl) {
      const std::int64_t l =
          std::min<std::int64_t>(labels[i], options.max_drnl_label);
      feat[i * f + off + l] = T(1);
      off += drnl_w;
    }
    T* tail = feat.data() + i * f + off;
    if (row_cache != nullptr && tail_w > 0 &&
        NodeRowCacheAccess<T>::load(*row_cache, sub.nodes[i], tail))
      continue;
    if (options.use_node_type) {
      feat[i * f + off + g.node_type(sub.nodes[i])] = T(1);
      off += g.num_node_types();
    }
    if (options.use_explicit && g.node_feat_dim() > 0) {
      auto nf = g.node_features(sub.nodes[i]);
      std::transform(nf.begin(), nf.end(), feat.begin() + i * f + off,
                     [](double v) { return static_cast<T>(v); });
      off += g.node_feat_dim();
    } else if (options.use_explicit) {
      // no explicit features on this graph: contributes zero width
    }
    if (options.embedding_dim > 0) {
      const auto* row = options.embedding.data() +
                        static_cast<std::size_t>(sub.nodes[i]) *
                            options.embedding_dim;
      std::transform(row, row + options.embedding_dim,
                     feat.begin() + i * f + off,
                     [](double v) { return static_cast<T>(v); });
    }
    if (row_cache != nullptr && tail_w > 0)
      NodeRowCacheAccess<T>::store(*row_cache, sub.nodes[i], tail);
  }
  sample.node_feat = ag::Tensor::from_data({n, f}, std::move(feat));

  // ---- Directed edge arrays + edge attributes ------------------------------
  const std::int64_t e2 = 2 * static_cast<std::int64_t>(sub.edges.size());
  sample.src.reserve(static_cast<std::size_t>(e2));
  sample.dst.reserve(static_cast<std::size_t>(e2));
  const std::int64_t ed = g.edge_attr_dim();
  std::vector<T> eattr;
  if (ed > 0) eattr.reserve(static_cast<std::size_t>(e2 * ed));
  for (const auto& le : sub.edges) {
    for (int orient = 0; orient < 2; ++orient) {
      sample.src.push_back(orient == 0 ? le.src : le.dst);
      sample.dst.push_back(orient == 0 ? le.dst : le.src);
      if (ed > 0) {
        auto a = g.edge_attr(le.orig);
        for (double v : a) eattr.push_back(static_cast<T>(v));
      }
    }
  }
  if (ed > 0)
    sample.edge_attr = ag::Tensor::from_data({e2, ed}, std::move(eattr));
}

}  // namespace

SubgraphSample build_sample(const graph::KnowledgeGraph& g,
                            const graph::EnclosingSubgraph& sub,
                            std::int32_t label, const FeatureOptions& options,
                            NodeRowCache* row_cache) {
  if (options.max_drnl_label < 1)
    throw std::invalid_argument("build_sample: max_drnl_label must be >= 1");
  if (options.embedding_dim > 0 &&
      options.embedding.size() !=
          static_cast<std::size_t>(g.num_nodes() * options.embedding_dim))
    throw std::invalid_argument("build_sample: embedding table size mismatch");

  const std::int64_t n = sub.num_nodes();
  const std::int64_t f = node_feature_dim(g, options);
  if (f == 0)
    throw std::invalid_argument("build_sample: empty feature configuration");

  SubgraphSample sample;
  sample.num_nodes = n;
  sample.label = label;
  if (options.dtype == ag::Dtype::f32)
    fill_sample_tensors<float>(g, sub, options, n, f, sample, row_cache);
  else
    fill_sample_tensors<double>(g, sub, options, n, f, sample, row_cache);
  return sample;
}

}  // namespace amdgcnn::seal
