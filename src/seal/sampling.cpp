#include "seal/sampling.h"

#include <stdexcept>
#include <string>
#include <unordered_set>

namespace amdgcnn::seal {

std::pair<std::vector<LinkExample>, std::vector<LinkExample>> train_test_split(
    std::vector<LinkExample> examples, double test_fraction, util::Rng& rng) {
  if (test_fraction < 0.0 || test_fraction > 1.0)
    throw std::invalid_argument("train_test_split: fraction out of [0,1]");
  rng.shuffle(examples);
  const auto n_test = static_cast<std::size_t>(
      static_cast<double>(examples.size()) * test_fraction + 0.5);
  // The + 0.5 rounding can claim every example at small sizes (e.g. 3
  // examples at fraction 0.9 round to 3); an empty train split is never
  // usable downstream, so fail loudly instead.  This also bounds the
  // `examples.end() - n_test` iterator arithmetic below.
  if (n_test >= examples.size() && !examples.empty())
    throw std::invalid_argument(
        "train_test_split: test_fraction " + std::to_string(test_fraction) +
        " rounds to all " + std::to_string(examples.size()) +
        " examples, leaving an empty train split");
  std::vector<LinkExample> test(examples.end() - n_test, examples.end());
  examples.resize(examples.size() - n_test);
  return {std::move(examples), std::move(test)};
}

std::vector<LinkExample> sample_negative_links(const graph::KnowledgeGraph& g,
                                               std::int64_t count,
                                               std::int32_t label,
                                               util::Rng& rng) {
  if (count < 0)
    throw std::invalid_argument("sample_negative_links: negative count");
  const std::int64_t n = g.num_nodes();
  if (n < 2)
    throw std::invalid_argument("sample_negative_links: graph too small");
  std::vector<LinkExample> out;
  out.reserve(static_cast<std::size_t>(count));
  std::unordered_set<std::int64_t> used;
  const std::int64_t max_attempts = 1000 + 200 * count;
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(out.size()) < count) {
    if (++attempts > max_attempts)
      throw std::runtime_error(
          "sample_negative_links: graph too dense to find enough non-edges");
    const auto a = static_cast<graph::NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    const auto b = static_cast<graph::NodeId>(rng.uniform_int(
        static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    const auto lo = static_cast<std::int64_t>(std::min(a, b));
    const auto hi = static_cast<std::int64_t>(std::max(a, b));
    const std::int64_t key = lo * n + hi;
    if (used.count(key)) continue;
    if (g.has_edge(a, b)) continue;
    used.insert(key);
    out.push_back({a, b, label});
  }
  return out;
}

std::vector<std::int64_t> label_histogram(
    const std::vector<LinkExample>& examples, std::int64_t num_classes) {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(num_classes), 0);
  for (const auto& e : examples) {
    if (e.label < 0 || e.label >= num_classes)
      throw std::invalid_argument("label_histogram: label out of range");
    ++hist[static_cast<std::size_t>(e.label)];
  }
  return hist;
}

}  // namespace amdgcnn::seal
