#include "hpo/search_space.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace amdgcnn::hpo {

std::string HyperParams::to_string() const {
  std::ostringstream os;
  os << "{lr=" << learning_rate << ", hidden=" << hidden_dim
     << ", k=" << sort_k << "}";
  return os.str();
}

HyperParams SearchSpace::sample(util::Rng& rng) const {
  std::array<double, kDims> x = {rng.uniform(), rng.uniform(), rng.uniform()};
  return decode(x);
}

HyperParams SearchSpace::decode(const std::array<double, kDims>& x) const {
  if (hidden_options.empty())
    throw std::logic_error("SearchSpace: no hidden_dim options");
  for (double v : x)
    if (v < 0.0 || v > 1.0)
      throw std::invalid_argument("SearchSpace::decode: point outside cube");
  HyperParams hp;
  hp.learning_rate =
      std::exp(std::log(lr_min) + x[0] * (std::log(lr_max) - std::log(lr_min)));
  const auto idx = std::min<std::size_t>(
      hidden_options.size() - 1,
      static_cast<std::size_t>(x[1] * static_cast<double>(hidden_options.size())));
  hp.hidden_dim = hidden_options[idx];
  hp.sort_k =
      k_min + static_cast<std::int64_t>(
                  std::llround(x[2] * static_cast<double>(k_max - k_min)));
  hp.sort_k = std::clamp(hp.sort_k, k_min, k_max);
  return hp;
}

std::array<double, SearchSpace::kDims> SearchSpace::encode(
    const HyperParams& hp) const {
  std::array<double, kDims> x{};
  x[0] = (std::log(hp.learning_rate) - std::log(lr_min)) /
         (std::log(lr_max) - std::log(lr_min));
  const auto it =
      std::find(hidden_options.begin(), hidden_options.end(), hp.hidden_dim);
  if (it == hidden_options.end())
    throw std::invalid_argument("SearchSpace::encode: hidden_dim not legal");
  const auto idx =
      static_cast<double>(std::distance(hidden_options.begin(), it));
  x[1] = (idx + 0.5) / static_cast<double>(hidden_options.size());
  x[2] = static_cast<double>(hp.sort_k - k_min) /
         static_cast<double>(k_max - k_min);
  for (auto& v : x) v = std::clamp(v, 0.0, 1.0);
  return x;
}

}  // namespace amdgcnn::hpo
