#include "hpo/gaussian_process.h"

#include <cmath>
#include <stdexcept>

namespace amdgcnn::hpo {

GaussianProcess::GaussianProcess(std::size_t input_dim, GpConfig config)
    : dim_(input_dim), config_(config) {
  if (input_dim == 0)
    throw std::invalid_argument("GaussianProcess: zero input dim");
  if (config_.length_scale <= 0.0 || config_.signal_variance <= 0.0 ||
      config_.noise_variance <= 0.0)
    throw std::invalid_argument("GaussianProcess: bad kernel config");
}

double GaussianProcess::kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  if (a.size() != dim_ || b.size() != dim_)
    throw std::invalid_argument("GaussianProcess::kernel: dim mismatch");
  double sq = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return config_.signal_variance *
         std::exp(-sq / (2.0 * config_.length_scale * config_.length_scale));
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("GaussianProcess::fit: bad training data");
  const std::size_t n = x.size();
  train_x_ = x;
  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(n);

  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      k[i * n + j] = kernel(x[i], x[j]);
      if (i == j) k[i * n + j] += config_.noise_variance;
    }
  chol_ = linalg::cholesky(k, n);

  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = y[i] - y_mean_;
  alpha_ = linalg::solve_lower_transpose(
      chol_, n, linalg::solve_lower(chol_, n, centered));
}

GaussianProcess::Prediction GaussianProcess::predict(
    const std::vector<double>& x) const {
  if (!fitted())
    throw std::logic_error("GaussianProcess::predict before fit");
  const std::size_t n = train_x_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(train_x_[i], x);

  Prediction pred;
  pred.mean = y_mean_ + linalg::dot(kstar, alpha_);
  // var = k(x,x) - k*^T K^{-1} k*  computed via v = L^{-1} k*.
  const auto v = linalg::solve_lower(chol_, n, kstar);
  pred.variance = kernel(x, x) - linalg::dot(v, v);
  if (pred.variance < 0.0) pred.variance = 0.0;  // numerical floor
  return pred;
}

double expected_improvement(const GaussianProcess::Prediction& pred,
                            double best_so_far, double xi) {
  const double sigma = std::sqrt(pred.variance);
  if (sigma < 1e-12) return 0.0;
  const double z = (pred.mean - best_so_far - xi) / sigma;
  const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  return (pred.mean - best_so_far - xi) * cdf + sigma * pdf;
}

}  // namespace amdgcnn::hpo
