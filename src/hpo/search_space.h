// The hyperparameter search space of the paper's Table I:
//
//   | Learning rate                    | [1e-6, 1e-2]  (log-uniform) |
//   | GNN layer hidden dimensions      | {16, 32, 64, 128}           |
//   | Sort aggregator k                | 5..150 (we clamp to >= 10,  |
//   |                                  |  the conv head's minimum)   |
//
// Points are encoded into the unit cube [0,1]^3 for the Gaussian-process
// surrogate (log scale for the learning rate, index scale for the
// categorical hidden dimension, linear for k).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace amdgcnn::hpo {

struct HyperParams {
  double learning_rate = 1e-3;
  std::int64_t hidden_dim = 32;
  std::int64_t sort_k = 30;

  std::string to_string() const;
};

class SearchSpace {
 public:
  double lr_min = 1e-6;
  double lr_max = 1e-2;
  std::vector<std::int64_t> hidden_options = {16, 32, 64, 128};
  std::int64_t k_min = 10;   // paper says 5; the DGCNN conv head needs >= 10
  std::int64_t k_max = 150;

  static constexpr std::size_t kDims = 3;

  /// Uniform sample (log-uniform learning rate).
  HyperParams sample(util::Rng& rng) const;

  /// Map a unit-cube point to concrete hyperparameters (and back).  decode
  /// rounds to the nearest legal categorical / integer value, so
  /// encode(decode(x)) is a lattice projection of x.
  HyperParams decode(const std::array<double, kDims>& x) const;
  std::array<double, kDims> encode(const HyperParams& hp) const;
};

}  // namespace amdgcnn::hpo
