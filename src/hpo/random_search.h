// Random search baseline over the same space — the control the paper's
// hyperparameter-sensitivity analysis (Figs. 4-9 (a) vs (b)) implicitly
// compares against.
#pragma once

#include "hpo/bayes_opt.h"

namespace amdgcnn::hpo {

struct RandomSearchOptions {
  std::int32_t num_trials = 10;
  std::uint64_t seed = 31;
};

TuneResult random_search(const SearchSpace& space, const Evaluator& evaluate,
                         const RandomSearchOptions& options = {});

}  // namespace amdgcnn::hpo
