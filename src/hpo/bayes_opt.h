// Centralized Bayesian optimization over the Table-I space: GP surrogate +
// expected-improvement acquisition maximised over random candidate points —
// the same algorithm family as DeepHyper's CBO search (paper §III-D).
#pragma once

#include <functional>
#include <vector>

#include "hpo/gaussian_process.h"
#include "hpo/search_space.h"

namespace amdgcnn::hpo {

/// Objective to MAXIMISE (e.g. validation AUC).
using Evaluator = std::function<double(const HyperParams&)>;

struct Trial {
  HyperParams params;
  double value = 0.0;
};

struct TuneResult {
  HyperParams best;
  double best_value = 0.0;
  std::vector<Trial> history;
};

struct BayesOptOptions {
  std::int32_t num_initial = 3;     // random warm-up trials
  std::int32_t num_iterations = 7;  // BO trials after warm-up
  std::int32_t num_candidates = 512;  // EI maximisation sample size
  std::uint64_t seed = 29;
  GpConfig gp;
};

TuneResult bayes_opt(const SearchSpace& space, const Evaluator& evaluate,
                     const BayesOptOptions& options = {});

}  // namespace amdgcnn::hpo
