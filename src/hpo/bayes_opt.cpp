#include "hpo/bayes_opt.h"

#include <stdexcept>

namespace amdgcnn::hpo {

TuneResult bayes_opt(const SearchSpace& space, const Evaluator& evaluate,
                     const BayesOptOptions& options) {
  if (options.num_initial < 1)
    throw std::invalid_argument("bayes_opt: need >= 1 warm-up trial");
  util::Rng rng(options.seed);
  TuneResult result;
  result.best_value = -1e300;

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  auto run_trial = [&](const HyperParams& hp) {
    const double value = evaluate(hp);
    result.history.push_back({hp, value});
    const auto enc = space.encode(hp);
    xs.emplace_back(enc.begin(), enc.end());
    ys.push_back(value);
    if (value > result.best_value) {
      result.best_value = value;
      result.best = hp;
    }
  };

  for (std::int32_t i = 0; i < options.num_initial; ++i)
    run_trial(space.sample(rng));

  for (std::int32_t it = 0; it < options.num_iterations; ++it) {
    GaussianProcess gp(SearchSpace::kDims, options.gp);
    gp.fit(xs, ys);

    // Maximise EI over random candidates (the lattice projection in
    // decode() keeps candidates legal).
    double best_ei = -1.0;
    HyperParams best_candidate = space.sample(rng);
    for (std::int32_t c = 0; c < options.num_candidates; ++c) {
      const auto hp = space.sample(rng);
      const auto enc = space.encode(hp);
      const auto pred = gp.predict({enc.begin(), enc.end()});
      const double ei = expected_improvement(pred, result.best_value);
      if (ei > best_ei) {
        best_ei = ei;
        best_candidate = hp;
      }
    }
    run_trial(best_candidate);
  }
  return result;
}

}  // namespace amdgcnn::hpo
