// Gaussian-process regression surrogate (RBF kernel) for Bayesian
// hyperparameter optimization — the reproduction's stand-in for DeepHyper's
// centralized Bayesian optimizer (paper §III-D).
//
// Standard zero-mean GP over [0,1]^d inputs:
//   K_ij = signal_variance * exp(-|x_i - x_j|^2 / (2 l^2)) + noise * I
// posterior mean/variance via one Cholesky factorisation per fit.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/linalg.h"

namespace amdgcnn::hpo {

struct GpConfig {
  double length_scale = 0.25;
  double signal_variance = 1.0;
  double noise_variance = 1e-4;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(std::size_t input_dim, GpConfig config = {});

  /// Fit on observations (points are rows of `x`, |y| = rows).  Targets are
  /// internally centered on their mean (restored in predictions).
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };
  Prediction predict(const std::vector<double>& x) const;

  bool fitted() const { return !train_x_.empty(); }
  std::size_t num_observations() const { return train_x_.size(); }

  /// RBF kernel (exposed for tests).
  double kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

 private:
  std::size_t dim_;
  GpConfig config_;
  std::vector<std::vector<double>> train_x_;
  std::vector<double> alpha_;   // K^{-1} (y - mean)
  std::vector<double> chol_;    // lower Cholesky factor of K
  double y_mean_ = 0.0;
};

/// Expected improvement of a candidate over the incumbent best (maximise).
double expected_improvement(const GaussianProcess::Prediction& pred,
                            double best_so_far, double xi = 0.01);

}  // namespace amdgcnn::hpo
