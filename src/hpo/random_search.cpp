#include "hpo/random_search.h"

#include <stdexcept>

namespace amdgcnn::hpo {

TuneResult random_search(const SearchSpace& space, const Evaluator& evaluate,
                         const RandomSearchOptions& options) {
  if (options.num_trials < 1)
    throw std::invalid_argument("random_search: need >= 1 trial");
  util::Rng rng(options.seed);
  TuneResult result;
  result.best_value = -1e300;
  for (std::int32_t i = 0; i < options.num_trials; ++i) {
    const auto hp = space.sample(rng);
    const double value = evaluate(hp);
    result.history.push_back({hp, value});
    if (value > result.best_value) {
      result.best_value = value;
      result.best = hp;
    }
  }
  return result;
}

}  // namespace amdgcnn::hpo
