// Frozen-model forward pass for DGCNN / AM-DGCNN (DESIGN.md §2.4).
//
// A FrozenModel snapshots the parameters of a trained LinkGNN (shared
// storage, no copies) and evaluates the exact training forward pass —
// message passing (GCN or edge-attribute GAT) → tanh → column concat →
// SortPooling → conv1d/maxpool read-out → MLP — without constructing a
// single autograd node: every activation is a raw slice of a caller-provided
// Arena, and all order-sensitive math runs through the same fwd_kernels.h
// instantiations the autograd ops use.  The contract, asserted by
// tests/test_infer.cpp and the inference bench, is that the logits are
// BIT-IDENTICAL to `model.forward(sample, rng)` in eval mode, for both model
// kinds and both storage dtypes.
//
// Parameters are recovered positionally from Module::parameters(), whose
// order is fully determined by the ModelConfig (the same contract the
// checkpoint format relies on); shapes and dtype are validated up front with
// named errors, so a model/config mismatch fails at construction, not with a
// garbage forward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "infer/arena.h"
#include "models/link_gnn.h"
#include "tensor/quant.h"

namespace amdgcnn::infer {

class FrozenModel {
 public:
  /// Snapshot `model`'s parameters (storage shared, nothing copied).  The
  /// model may be dropped afterwards; tensor handles keep the weights alive.
  /// Throws std::runtime_error if the parameter list does not match the
  /// model's config (count, per-tensor shape, dtype).
  explicit FrozenModel(const models::LinkGNN& model);

  /// Quantize-on-freeze (DESIGN.md §2.7): validate exactly like the exact
  /// ctor, then re-encode every weight under `scheme` and RELEASE the f32/
  /// f64 originals, so the resident footprint is the quantized payload.
  /// With Scheme::kNone this is the exact ctor.  Quantized forwards decode
  /// each tensor into arena scratch per query (inside mark/rewind scopes)
  /// and run the relaxed-numerics kernels: outputs are deterministic per
  /// scheme for any worker count, but NOT bit-identical to the f32 path.
  FrozenModel(const models::LinkGNN& model, ag::quant::Scheme scheme);

  /// Eval-mode logits for one sample, widened to double into
  /// `out[num_classes]`.  Bit-identical to the training forward pass.
  void forward_logits(const seal::SubgraphSample& sample, Arena& arena,
                      double* out) const;

  /// Softmax probabilities (f64 normaliser, matching Trainer::predict_proba)
  /// into `out[num_classes]`.
  void predict_proba(const seal::SubgraphSample& sample, Arena& arena,
                     double* out) const;

  /// Run one synthetic max-shape forward to size `arena` up front, then
  /// reset (coalescing), so real queries of up to `max_nodes` nodes and
  /// `max_edges` directed edges never grow the arena mid-pass.
  void warm_up(Arena& arena, std::int64_t max_nodes,
               std::int64_t max_edges) const;

  const models::ModelConfig& config() const { return config_; }

  /// Active quantization scheme (kNone = exact forward).
  ag::quant::Scheme quant() const { return quant_; }

  /// Bytes of resident weight storage: the raw tensor payload for the exact
  /// modes, the quantized payload (values + block scales) after
  /// quantize-on-freeze.  The ≥4x shrink gate in bench_inference_throughput
  /// measures this together with the checkpoint size.
  std::size_t weight_bytes() const { return weight_bytes_; }

 private:
  struct MpLayer {
    ag::Tensor weight, bias;
    ag::Tensor a_src, a_dst, edge_weight, a_edge;  // GAT only
    std::int64_t in = 0;
    std::int64_t out = 0;    // output width (H*F for GAT)
    std::int64_t heads = 1;  // GAT only
  };

  /// Quantized mirror of MpLayer; active when quant_ != kNone (the
  /// ag::Tensor handles above are released so the originals can die).
  struct QuantMpLayer {
    ag::quant::QuantizedTensor weight, bias;
    ag::quant::QuantizedTensor a_src, a_dst, edge_weight, a_edge;
  };

  template <typename T>
  void run(const seal::SubgraphSample& sample, Arena& arena, bool proba,
           double* out) const;
  template <typename T>
  const T* forward_impl(const seal::SubgraphSample& sample,
                        Arena& arena) const;
  /// f32-compute forward over quantized weights (decode-to-arena-scratch,
  /// relaxed-numerics kernels).  See the .cpp for the numerics contract.
  const float* forward_quant(const seal::SubgraphSample& sample,
                             Arena& arena) const;

  models::ModelConfig config_;
  std::int64_t edge_dim_ = 0;         // 0 = attention ignores edge attrs
  std::int64_t total_channels_ = 0;   // columns entering SortPooling
  std::int64_t conv_out_len_ = 0;     // length after the conv read-out
  std::vector<MpLayer> mp_;
  ag::Tensor conv1_w_, conv1_b_, conv2_w_, conv2_b_;
  ag::Tensor fc1_w_, fc1_b_, fc2_w_, fc2_b_;

  ag::quant::Scheme quant_ = ag::quant::Scheme::kNone;
  std::size_t weight_bytes_ = 0;
  std::vector<QuantMpLayer> qmp_;
  ag::quant::QuantizedTensor qconv1_w_, qconv1_b_, qconv2_w_, qconv2_b_;
  ag::quant::QuantizedTensor qfc1_w_, qfc1_b_, qfc2_w_, qfc2_b_;
};

}  // namespace amdgcnn::infer
