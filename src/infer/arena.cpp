#include "infer/arena.h"

#include <algorithm>

namespace amdgcnn::infer {

namespace {
constexpr std::size_t kMinBlockBytes = 1 << 14;  // 16 KiB floor

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) & ~(a - 1);
}
}  // namespace

Arena::Arena(std::size_t initial_bytes) {
  if (initial_bytes > 0) add_block(initial_bytes);
}

void Arena::add_block(std::size_t min_bytes) {
  // Geometric growth bounds the number of mid-pass chainings to O(log size);
  // reset() collapses the chain again, so capacity stays within 2x of the
  // largest pass ever seen plus one growth step.
  const std::size_t want =
      std::max({min_bytes, capacity_bytes(), kMinBlockBytes});
  Block b;
  b.size = align_up(want, kAlign);
  b.storage = std::make_unique<std::byte[]>(b.size + kAlign - 1);
  b.base = reinterpret_cast<std::byte*>(
      align_up(reinterpret_cast<std::uintptr_t>(b.storage.get()), kAlign));
  blocks_.push_back(std::move(b));
  active_ = blocks_.size() - 1;
}

void* Arena::alloc_raw(std::size_t bytes) {
  const std::size_t need = align_up(std::max<std::size_t>(bytes, 1), kAlign);
  if (blocks_.empty()) add_block(need);
  // Later blocks of a chained pass may have been rewound empty; advance
  // through them before chaining a fresh one.
  while (blocks_[active_].used + need > blocks_[active_].size) {
    if (active_ + 1 < blocks_.size())
      ++active_;
    else {
      add_block(need);
      break;
    }
  }
  Block& b = blocks_[active_];
  std::byte* p = b.base + b.used;
  b.used += need;
  peak_ = std::max(peak_, used_bytes());
  return p;
}

void Arena::rewind(Mark m) {
  if (m.block >= blocks_.size()) return;
  for (std::size_t i = m.block + 1; i < blocks_.size(); ++i)
    blocks_[i].used = 0;
  blocks_[m.block].used = m.used;
  active_ = m.block;
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    const std::size_t total = capacity_bytes();
    blocks_.clear();
    add_block(total);
  }
  for (auto& b : blocks_) b.used = 0;
  active_ = 0;
}

std::size_t Arena::used_bytes() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.used;
  return total;
}

std::size_t Arena::capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size;
  return total;
}

}  // namespace amdgcnn::infer
