#include "infer/frozen_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "tensor/fwd_kernels.h"
#include "tensor/kernels.h"

namespace amdgcnn::infer {

namespace {

/// Positional parameter reader with named shape/dtype validation.  The
/// parameter order is Module::parameters() order: own parameters first, then
/// children depth-first in registration order — fully determined by the
/// ModelConfig (the same contract load_weights relies on).
class ParamReader {
 public:
  ParamReader(const std::vector<ag::Tensor>& params, const models::ModelConfig& cfg)
      : params_(params), cfg_(cfg) {}

  ag::Tensor take(ag::Shape expected, const char* name) {
    if (i_ >= params_.size())
      throw std::runtime_error(prefix() + "ran out of parameters at '" + name +
                               "' (have " + std::to_string(params_.size()) +
                               ")");
    const ag::Tensor& t = params_[i_];
    if (t.shape() != expected)
      throw std::runtime_error(
          prefix() + "parameter " + std::to_string(i_) + " ('" + name +
          "') has shape " + ag::shape_str(t.shape()) + ", expected " +
          ag::shape_str(expected));
    if (t.dtype() != cfg_.dtype)
      throw std::runtime_error(prefix() + "parameter " + std::to_string(i_) +
                               " ('" + name + "') is " +
                               ag::dtype_name(t.dtype()) + ", config says " +
                               ag::dtype_name(cfg_.dtype));
    ++i_;
    return t;
  }

  void expect_count(std::size_t expected) const {
    if (params_.size() != expected)
      throw std::runtime_error(
          prefix() + "model has " + std::to_string(params_.size()) +
          " parameters, config implies " + std::to_string(expected));
  }

 private:
  std::string prefix() const {
    return std::string("FrozenModel(") + models::gnn_kind_name(cfg_.kind) +
           "): ";
  }

  const std::vector<ag::Tensor>& params_;
  const models::ModelConfig& cfg_;
  std::size_t i_ = 0;
};

template <typename T, typename S>
void cast_copy(const std::vector<S>& src, T* dst) {
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = static_cast<T>(src[i]);
}

/// Node/edge features at the model width: zero-copy view when the sample was
/// built at the model dtype, arena-backed static_cast copy otherwise (same
/// conversion ops::cast performs at the training model boundary).
template <typename T>
const T* features_at_width(const ag::Tensor& t, Arena& arena) {
  if (t.dtype() == ag::dtype_of_v<T>) return t.data_as<T>().data();
  T* buf = arena.alloc<T>(static_cast<std::size_t>(t.numel()));
  if constexpr (std::is_same_v<T, float>)
    cast_copy(t.data_as<double>(), buf);
  else
    cast_copy(t.data_as<float>(), buf);
  return buf;
}

}  // namespace

FrozenModel::FrozenModel(const models::LinkGNN& model)
    : FrozenModel(model, ag::quant::Scheme::kNone) {}

FrozenModel::FrozenModel(const models::LinkGNN& model,
                         ag::quant::Scheme scheme)
    : config_(model.config()) {
  // config() reflects the constructed model, sort_k already clamped.
  const bool attention = config_.kind == models::GnnKind::kAMDGCNN;
  edge_dim_ = attention && config_.use_edge_attr ? config_.edge_attr_dim : 0;
  total_channels_ = config_.num_layers * config_.hidden_dim + 1;
  conv_out_len_ = config_.sort_k / 2 - config_.conv2_kernel + 1;

  const auto params = model.parameters();
  ParamReader reader(params, config_);
  const std::size_t num_mp = static_cast<std::size_t>(config_.num_layers) + 1;
  const std::size_t per_layer = attention ? (edge_dim_ > 0 ? 6 : 4) : 2;
  reader.expect_count(num_mp * per_layer + 8);

  mp_.reserve(num_mp);
  std::int64_t in = config_.node_feature_dim;
  for (std::size_t l = 0; l < num_mp; ++l) {
    const bool last = l + 1 == num_mp;
    MpLayer layer;
    layer.in = in;
    if (attention) {
      layer.heads = last ? 1 : config_.heads;
      layer.out = last ? 1 : config_.hidden_dim;  // heads * head_features
      layer.weight = reader.take({layer.in, layer.out}, "gat.weight");
      layer.a_src = reader.take({1, layer.out}, "gat.a_src");
      layer.a_dst = reader.take({1, layer.out}, "gat.a_dst");
      if (edge_dim_ > 0) {
        layer.edge_weight =
            reader.take({edge_dim_, layer.out}, "gat.edge_weight");
        layer.a_edge = reader.take({1, layer.out}, "gat.a_edge");
      }
      layer.bias = reader.take({1, layer.out}, "gat.bias");
    } else {
      layer.out = last ? 1 : config_.hidden_dim;
      layer.weight = reader.take({layer.in, layer.out}, "gcn.weight");
      layer.bias = reader.take({1, layer.out}, "gcn.bias");
    }
    in = layer.out;
    mp_.push_back(std::move(layer));
  }

  conv1_w_ = reader.take({config_.conv1_channels, total_channels_}, "conv1.weight");
  conv1_b_ = reader.take({config_.conv1_channels}, "conv1.bias");
  conv2_w_ = reader.take(
      {config_.conv2_channels, config_.conv1_channels * config_.conv2_kernel},
      "conv2.weight");
  conv2_b_ = reader.take({config_.conv2_channels}, "conv2.bias");
  fc1_w_ = reader.take({config_.conv2_channels * conv_out_len_, config_.dense_dim},
                       "fc1.weight");
  fc1_b_ = reader.take({1, config_.dense_dim}, "fc1.bias");
  fc2_w_ = reader.take({config_.dense_dim, config_.num_classes}, "fc2.weight");
  fc2_b_ = reader.take({1, config_.num_classes}, "fc2.bias");

  for (const auto& p : params)
    weight_bytes_ += static_cast<std::size_t>(p.numel()) *
                     ag::dtype_size(p.dtype());

  quant_ = scheme;
  if (quant_ == ag::quant::Scheme::kNone) return;

  // Quantize-on-freeze: re-encode every validated tensor, then RELEASE the
  // exact handles — the quantized payload is the only resident copy (the
  // shrink gate measures exactly this), and the caller's model can drop its
  // storage.
  namespace q = ag::quant;
  const auto take = [&](ag::Tensor& t) {
    q::QuantizedTensor qt = q::quantize_tensor(t, quant_);
    t = ag::Tensor();
    return qt;
  };
  qmp_.reserve(mp_.size());
  for (auto& L : mp_) {
    QuantMpLayer ql;
    ql.weight = take(L.weight);
    ql.bias = take(L.bias);
    if (attention) {
      ql.a_src = take(L.a_src);
      ql.a_dst = take(L.a_dst);
      if (edge_dim_ > 0) {
        ql.edge_weight = take(L.edge_weight);
        ql.a_edge = take(L.a_edge);
      }
    }
    qmp_.push_back(std::move(ql));
  }
  qconv1_w_ = take(conv1_w_);
  qconv1_b_ = take(conv1_b_);
  qconv2_w_ = take(conv2_w_);
  qconv2_b_ = take(conv2_b_);
  qfc1_w_ = take(fc1_w_);
  qfc1_b_ = take(fc1_b_);
  qfc2_w_ = take(fc2_w_);
  qfc2_b_ = take(fc2_b_);

  weight_bytes_ = 0;
  for (const auto& ql : qmp_)
    weight_bytes_ += ql.weight.resident_bytes() + ql.bias.resident_bytes() +
                     ql.a_src.resident_bytes() + ql.a_dst.resident_bytes() +
                     ql.edge_weight.resident_bytes() +
                     ql.a_edge.resident_bytes();
  for (const auto* qt : {&qconv1_w_, &qconv1_b_, &qconv2_w_, &qconv2_b_,
                         &qfc1_w_, &qfc1_b_, &qfc2_w_, &qfc2_b_})
    weight_bytes_ += qt->resident_bytes();
}

namespace {
/// Decode one quantized tensor into arena scratch.
inline const float* decode_to(const ag::quant::QuantizedTensor& qt,
                              Arena& arena) {
  float* buf = arena.alloc<float>(static_cast<std::size_t>(qt.n));
  qt.decode(buf);
  return buf;
}
}  // namespace

// f32-compute forward over quantized weights.  Structure mirrors
// forward_impl<float>; the differences, all covered by the relaxed
// numerics contract (deterministic per scheme, NOT bit-identical to f32):
//   * each weight tensor is decoded into arena scratch inside the stage's
//     mark/rewind scope, so at most one stage's decoded weights are live
//     at a time (resident weights stay quantized);
//   * tanh and the attention softmax run the polynomial fast_exp/fast_tanh
//     kernels with f32 accumulation (fwd_kernels.h relaxed section) — the
//     scalar-libm tanh alone is ~55% of the exact f32 forward, so this is
//     where the ≥2x throughput gate is won.
const float* FrozenModel::forward_quant(const seal::SubgraphSample& sample,
                                        Arena& arena) const {
  namespace fwd = ag::fwd;
  namespace kern = ag::kern;
  using T = float;
  const bool attention = config_.kind == models::GnnKind::kAMDGCNN;

  ag::check(sample.node_feat.defined() &&
                sample.node_feat.dim(1) == config_.node_feature_dim,
            "FrozenModel: sample feature width mismatch");
  ag::check(sample.src.size() == sample.dst.size(),
            "FrozenModel: edge array size mismatch");
  const std::int64_t n = sample.num_nodes;
  const auto e_in = static_cast<std::int64_t>(sample.src.size());
  const std::int64_t e_all = e_in + n;
  if (edge_dim_ > 0)
    ag::check(sample.edge_attr.defined() && sample.edge_attr.rank() == 2 &&
                  sample.edge_attr.dim(0) == e_in &&
                  sample.edge_attr.dim(1) == edge_dim_,
              "FrozenModel: edge attribute shape mismatch");

  arena.reset();

  auto* s = arena.alloc<std::int64_t>(static_cast<std::size_t>(e_all));
  auto* d = arena.alloc<std::int64_t>(static_cast<std::size_t>(e_all));
  std::copy(sample.src.begin(), sample.src.end(), s);
  std::copy(sample.dst.begin(), sample.dst.end(), d);
  for (std::int64_t i = 0; i < n; ++i) {
    s[e_in + i] = i;
    d[e_in + i] = i;
  }

  float* coef = nullptr;  // f32 is enough off the exact path
  if (!attention) {
    float* deg = arena.alloc<float>(static_cast<std::size_t>(n));
    std::fill(deg, deg + n, 0.0f);
    for (std::int64_t e = 0; e < e_all; ++e) deg[d[e]] += 1.0f;
    coef = arena.alloc<float>(static_cast<std::size_t>(e_all));
    for (std::int64_t e = 0; e < e_all; ++e)
      coef[e] = 1.0f / std::sqrt(deg[s[e]] * deg[d[e]]);
  }

  const T* h = features_at_width<T>(sample.node_feat, arena);
  const T* eattr =
      edge_dim_ > 0 ? features_at_width<T>(sample.edge_attr, arena) : nullptr;

  const std::size_t num_mp = mp_.size();
  auto** outs = arena.alloc<const T*>(num_mp);

  for (std::size_t l = 0; l < num_mp; ++l) {
    const MpLayer& L = mp_[l];
    const QuantMpLayer& Q = qmp_[l];
    const std::int64_t w = L.out;
    T* out_l = arena.alloc<T>(static_cast<std::size_t>(n * w));
    const Arena::Mark scratch = arena.mark();

    const T* wdec = decode_to(Q.weight, arena);
    T* xw = arena.alloc<T>(static_cast<std::size_t>(n * w));
    std::fill(xw, xw + n * w, T(0));
    kern::mm_add(h, wdec, xw, n, L.in, w);

    const T* bias = decode_to(Q.bias, arena);
    if (attention) {
      const std::int64_t heads = L.heads;
      const std::int64_t f = w / heads;
      const T* a_src = decode_to(Q.a_src, arena);
      const T* a_dst = decode_to(Q.a_dst, arena);
      T* nd_src = arena.alloc<T>(static_cast<std::size_t>(n * heads));
      T* nd_dst = arena.alloc<T>(static_cast<std::size_t>(n * heads));
      fwd::heads_dot_relaxed(xw, a_src, nd_src, n, w, heads);
      fwd::heads_dot_relaxed(xw, a_dst, nd_dst, n, w, heads);
      T* scores = arena.alloc<T>(static_cast<std::size_t>(e_all * heads));
      for (std::int64_t r = 0; r < e_all; ++r)
        for (std::int64_t hh = 0; hh < heads; ++hh)
          scores[r * heads + hh] =
              nd_src[s[r] * heads + hh] + nd_dst[d[r] * heads + hh];

      const T* ea = nullptr;
      if (edge_dim_ > 0) {
        const T* ew = decode_to(Q.edge_weight, arena);
        T* eam = arena.alloc<T>(static_cast<std::size_t>(e_in * w));
        std::fill(eam, eam + e_in * w, T(0));
        kern::mm_add(eattr, ew, eam, e_in, edge_dim_, w);
        ea = eam;
        const T* a_edge = decode_to(Q.a_edge, arena);
        T* s3 = arena.alloc<T>(static_cast<std::size_t>(e_in * heads));
        fwd::heads_dot_relaxed(eam, a_edge, s3, e_in, w, heads);
        for (std::int64_t i = 0; i < e_in * heads; ++i) scores[i] += s3[i];
      }

      const T slope = 0.2f;
      for (std::int64_t i = 0; i < e_all * heads; ++i)
        scores[i] = scores[i] > T(0) ? scores[i] : slope * scores[i];

      T* alpha = arena.alloc<T>(static_cast<std::size_t>(e_all * heads));
      T* seg_max = arena.alloc<T>(static_cast<std::size_t>(n * heads));
      T* seg_sum = arena.alloc<T>(static_cast<std::size_t>(n * heads));
      fwd::segment_softmax_relaxed(scores, d, alpha, seg_max, seg_sum, e_all,
                                   heads, n);

      T* msg = arena.alloc<T>(static_cast<std::size_t>(e_all * w));
      for (std::int64_t r = 0; r < e_all; ++r) {
        const T* row = xw + s[r] * w;
        const T* erow = (ea != nullptr && r < e_in) ? ea + r * w : nullptr;
        for (std::int64_t hh = 0; hh < heads; ++hh) {
          const T sc = alpha[r * heads + hh];
          const std::int64_t base = hh * f;
          T* mrow = msg + r * w + base;
          if (erow != nullptr)
            for (std::int64_t c = 0; c < f; ++c)
              mrow[c] = (row[base + c] + erow[base + c]) * sc;
          else
            for (std::int64_t c = 0; c < f; ++c) mrow[c] = row[base + c] * sc;
        }
      }
      fwd::scatter_add_bias_fwd(msg, d, e_all, n, w, bias, out_l);
    } else {
      T* msg = arena.alloc<T>(static_cast<std::size_t>(e_all * w));
      for (std::int64_t r = 0; r < e_all; ++r) {
        const T cf = coef[r];
        const T* row = xw + s[r] * w;
        for (std::int64_t c = 0; c < w; ++c) msg[r * w + c] = row[c] * cf;
      }
      fwd::scatter_add_bias_fwd(msg, d, e_all, n, w, bias, out_l);
    }

    for (std::int64_t i = 0; i < n * w; ++i) out_l[i] = fwd::fast_tanh(out_l[i]);
    arena.rewind(scratch);
    outs[l] = out_l;
    h = out_l;
  }

  // ---- Concat + SortPooling (weight-free, same as the exact path) ---------
  const std::int64_t C = total_channels_;
  T* z = arena.alloc<T>(static_cast<std::size_t>(n * C));
  std::int64_t col_off = 0;
  for (std::size_t l = 0; l < num_mp; ++l) {
    const std::int64_t w = mp_[l].out;
    for (std::int64_t r = 0; r < n; ++r)
      std::copy_n(outs[l] + r * w, w, z + r * C + col_off);
    col_off += w;
  }

  const std::int64_t k = config_.sort_k;
  auto* perm = arena.alloc<std::int64_t>(static_cast<std::size_t>(n));
  const std::int64_t keep = fwd::sort_perm_topk(z, n, C, k, perm);
  T* pooled = arena.alloc<T>(static_cast<std::size_t>(k * C));
  std::fill(pooled, pooled + k * C, T(0));
  for (std::int64_t r = 0; r < keep; ++r)
    std::copy_n(z + perm[r] * C, C, pooled + r * C);

  // ---- Conv read-out: decode each stage's weights inside its own scope ----
  T* c1 = arena.alloc<T>(static_cast<std::size_t>(config_.conv1_channels * k));
  {
    const Arena::Mark m = arena.mark();
    const T* w1 = decode_to(qconv1_w_, arena);
    const T* b1 = decode_to(qconv1_b_, arena);
    // conv1 has kernel == stride == C, so row oc of the output is exactly
    // dot(w1_oc, pooled_j) over j — both row-major over the same C.  The
    // relaxed contract lets this path reorder the accumulation, so use the
    // lane-accumulated row-dot kernel (~3x the strided conv kernel here).
    const std::int64_t c1n = config_.conv1_channels;
    fwd::dot_rows_relaxed(w1, pooled, c1, c1n, k, C);
    for (std::int64_t oc = 0; oc < c1n; ++oc)
      for (std::int64_t j = 0; j < k; ++j) c1[oc * k + j] += b1[oc];
    arena.rewind(m);
  }
  for (std::int64_t i = 0; i < config_.conv1_channels * k; ++i)
    c1[i] = c1[i] > T(0) ? c1[i] : T(0);

  const std::int64_t lp = (k - 2) / 2 + 1;
  T* p1 = arena.alloc<T>(static_cast<std::size_t>(config_.conv1_channels * lp));
  auto* argmax = arena.alloc<std::int64_t>(
      static_cast<std::size_t>(config_.conv1_channels * lp));
  fwd::max_pool1d_fwd(c1, p1, argmax, config_.conv1_channels, k, 2, 2);

  T* c2 = arena.alloc<T>(
      static_cast<std::size_t>(config_.conv2_channels * conv_out_len_));
  {
    const Arena::Mark m = arena.mark();
    const T* w2 = decode_to(qconv2_w_, arena);
    const T* b2 = decode_to(qconv2_b_, arena);
    // conv2 as gather + row-dots: each output column j reads the patch
    // p1[ic][j..j+k2) for every channel; laying the patches out as rows
    // matches conv2's (cout x cin*k2) weight rows, and the row-dot kernel
    // keeps the short 11-column output vectorized.
    const std::int64_t k2 = config_.conv2_kernel;
    const std::int64_t c2n = config_.conv2_channels;
    const std::int64_t pk = config_.conv1_channels * k2;
    T* patches = arena.alloc<T>(static_cast<std::size_t>(conv_out_len_ * pk));
    for (std::int64_t j = 0; j < conv_out_len_; ++j)
      for (std::int64_t ic = 0; ic < config_.conv1_channels; ++ic)
        std::copy_n(p1 + ic * lp + j, k2, patches + j * pk + ic * k2);
    fwd::dot_rows_relaxed(w2, patches, c2, c2n, conv_out_len_, pk);
    for (std::int64_t oc = 0; oc < c2n; ++oc)
      for (std::int64_t j = 0; j < conv_out_len_; ++j)
        c2[oc * conv_out_len_ + j] += b2[oc];
    arena.rewind(m);
  }
  for (std::int64_t i = 0; i < config_.conv2_channels * conv_out_len_; ++i)
    c2[i] = c2[i] > T(0) ? c2[i] : T(0);

  T* hidden = arena.alloc<T>(static_cast<std::size_t>(config_.dense_dim));
  {
    const Arena::Mark m = arena.mark();
    const T* w = decode_to(qfc1_w_, arena);  // the largest decode of the pass
    const T* b = decode_to(qfc1_b_, arena);
    fwd::vecmat_relaxed(c2, w, b, hidden,
                        config_.conv2_channels * conv_out_len_,
                        config_.dense_dim);
    arena.rewind(m);
  }
  for (std::int64_t i = 0; i < config_.dense_dim; ++i)
    hidden[i] = hidden[i] > T(0) ? hidden[i] : T(0);

  T* logits = arena.alloc<T>(static_cast<std::size_t>(config_.num_classes));
  {
    const Arena::Mark m = arena.mark();
    const T* w = decode_to(qfc2_w_, arena);
    const T* b = decode_to(qfc2_b_, arena);
    fwd::vecmat_relaxed(hidden, w, b, logits, config_.dense_dim,
                        config_.num_classes);
    arena.rewind(m);
  }
  return logits;
}

template <typename T>
const T* FrozenModel::forward_impl(const seal::SubgraphSample& sample,
                                   Arena& arena) const {
  namespace fwd = ag::fwd;
  namespace kern = ag::kern;
  const bool attention = config_.kind == models::GnnKind::kAMDGCNN;

  ag::check(sample.node_feat.defined() &&
                sample.node_feat.dim(1) == config_.node_feature_dim,
            "FrozenModel: sample feature width mismatch");
  ag::check(sample.src.size() == sample.dst.size(),
            "FrozenModel: edge array size mismatch");
  const std::int64_t n = sample.num_nodes;
  const auto e_in = static_cast<std::int64_t>(sample.src.size());
  const std::int64_t e_all = e_in + n;  // self-loops appended per layer
  if (edge_dim_ > 0)
    ag::check(sample.edge_attr.defined() && sample.edge_attr.rank() == 2 &&
                  sample.edge_attr.dim(0) == e_in &&
                  sample.edge_attr.dim(1) == edge_dim_,
              "FrozenModel: edge attribute shape mismatch");

  arena.reset();

  // ---- Pass-lifetime buffers (edges, casts, layer outputs) ----------------
  auto* s = arena.alloc<std::int64_t>(static_cast<std::size_t>(e_all));
  auto* d = arena.alloc<std::int64_t>(static_cast<std::size_t>(e_all));
  std::copy(sample.src.begin(), sample.src.end(), s);
  std::copy(sample.dst.begin(), sample.dst.end(), d);
  for (std::int64_t i = 0; i < n; ++i) {
    s[e_in + i] = i;
    d[e_in + i] = i;
  }

  // GCN normalisation — identical across layers (pure function of the edge
  // list), so computed once here instead of per layer.  Degrees and
  // coefficients stay f64 exactly as in GCNConv; the cast to T happens per
  // scaled row, matching ops::scale_rows.
  double* coef = nullptr;
  if (!attention) {
    double* deg = arena.alloc<double>(static_cast<std::size_t>(n));
    std::fill(deg, deg + n, 0.0);
    for (std::int64_t e = 0; e < e_all; ++e) deg[d[e]] += 1.0;
    coef = arena.alloc<double>(static_cast<std::size_t>(e_all));
    for (std::int64_t e = 0; e < e_all; ++e)
      coef[e] = 1.0 / std::sqrt(deg[s[e]] * deg[d[e]]);
  }

  const T* h = features_at_width<T>(sample.node_feat, arena);
  const T* eattr =
      edge_dim_ > 0 ? features_at_width<T>(sample.edge_attr, arena) : nullptr;

  const std::size_t num_mp = mp_.size();
  auto** outs = arena.alloc<const T*>(num_mp);

  // ---- Message passing ----------------------------------------------------
  for (std::size_t l = 0; l < num_mp; ++l) {
    const MpLayer& L = mp_[l];
    const std::int64_t w = L.out;
    T* out_l = arena.alloc<T>(static_cast<std::size_t>(n * w));
    const Arena::Mark scratch = arena.mark();

    // x · W — zeroed accumulator + mm_add, exactly ops::matmul.
    T* xw = arena.alloc<T>(static_cast<std::size_t>(n * w));
    std::fill(xw, xw + n * w, T(0));
    kern::mm_add(h, L.weight.data_as<T>().data(), xw, n, L.in, w);

    if (attention) {
      const std::int64_t heads = L.heads;
      const std::int64_t f = w / heads;
      // Attention logits: <x·W[src], a_src> + <x·W[dst], a_dst>
      // (+ <ea, a_edge>).  heads_dot_fwd's per-row result depends only on
      // the row's values, so the training path's per-EDGE dots over gathered
      // hs/hd rows equal per-NODE dots over xw gathered afterwards as
      // scalars — e_all row-dots and two e_all*w row copies collapse to n
      // row-dots.  The adds land in the same per-element order as the
      // training graph (s1 + s2, then += s3), keeping the sums bit-exact.
      T* nd_src = arena.alloc<T>(static_cast<std::size_t>(n * heads));
      T* nd_dst = arena.alloc<T>(static_cast<std::size_t>(n * heads));
      fwd::heads_dot_fwd(xw, L.a_src.data_as<T>().data(), nd_src, n, w, heads);
      fwd::heads_dot_fwd(xw, L.a_dst.data_as<T>().data(), nd_dst, n, w, heads);
      T* scores = arena.alloc<T>(static_cast<std::size_t>(e_all * heads));
      for (std::int64_t r = 0; r < e_all; ++r)
        for (std::int64_t hh = 0; hh < heads; ++hh)
          scores[r * heads + hh] =
              nd_src[s[r] * heads + hh] + nd_dst[d[r] * heads + hh];

      const T* ea = nullptr;  // projected edge attributes, e_in rows
      if (edge_dim_ > 0) {
        // Self-loop rows of the training path's ea are exact zeros, and a
        // heads_dot over a zero row is exactly +0.0 (the f64 lanes stay
        // zero), so both the projection and the s3 dot shrink to the e_in
        // real-edge rows; the self-loop tail of s3 is filled with the same
        // +0.0 and still ADDED to the scores (x + 0.0 normalises -0.0 to
        // +0.0, matching the training add bit for bit).
        T* eam = arena.alloc<T>(static_cast<std::size_t>(e_in * w));
        std::fill(eam, eam + e_in * w, T(0));
        kern::mm_add(eattr, L.edge_weight.data_as<T>().data(), eam, e_in,
                     edge_dim_, w);
        ea = eam;
        T* s3 = arena.alloc<T>(static_cast<std::size_t>(e_all * heads));
        fwd::heads_dot_fwd(eam, L.a_edge.data_as<T>().data(), s3, e_in, w,
                           heads);
        std::fill(s3 + e_in * heads, s3 + e_all * heads, T(0));
        for (std::int64_t i = 0; i < e_all * heads; ++i)
          scores[i] = scores[i] + s3[i];
      }

      const T slope = static_cast<T>(0.2);
      for (std::int64_t i = 0; i < e_all * heads; ++i)
        scores[i] = scores[i] > T(0) ? scores[i] : slope * scores[i];

      T* alpha = arena.alloc<T>(static_cast<std::size_t>(e_all * heads));
      T* seg_max = arena.alloc<T>(static_cast<std::size_t>(n * heads));
      double* seg_sum = arena.alloc<double>(static_cast<std::size_t>(n * heads));
      std::fill(seg_sum, seg_sum + n * heads, 0.0);
      fwd::segment_softmax_fwd(scores, d, alpha, seg_max, seg_sum, e_all, heads,
                               n);

      // Messages in one fused pass: the training path materialises the hs
      // gather, the payload add (hs + ea) and the heads_scale product as
      // three e_all*w arrays; each element here runs the SAME single add
      // followed by the SAME single multiply ((a + b) * s has no contractible
      // mul-add pair, so the two roundings survive any FMA policy) — reading
      // xw rows in place and writing only the scaled message.  Self-loop
      // rows add the training path's literal +0.0 edge contribution.
      T* msg = arena.alloc<T>(static_cast<std::size_t>(e_all * w));
      for (std::int64_t r = 0; r < e_all; ++r) {
        const T* row = xw + s[r] * w;
        const T* erow = (ea != nullptr && r < e_in) ? ea + r * w : nullptr;
        for (std::int64_t hh = 0; hh < heads; ++hh) {
          const T sc = alpha[r * heads + hh];
          const std::int64_t base = hh * f;
          T* mrow = msg + r * w + base;
          if (ea != nullptr) {
            if (erow != nullptr)
              for (std::int64_t c = 0; c < f; ++c)
                mrow[c] = (row[base + c] + erow[base + c]) * sc;
            else
              for (std::int64_t c = 0; c < f; ++c)
                mrow[c] = (row[base + c] + T(0)) * sc;
          } else {
            for (std::int64_t c = 0; c < f; ++c) mrow[c] = row[base + c] * sc;
          }
        }
      }
      fwd::scatter_add_bias_fwd(msg, d, e_all, n, w, L.bias.data_as<T>().data(),
                                out_l);
    } else {
      // gather_rows + scale_rows fused: one copy-multiply per element, the
      // same single FP multiply the two-op training path performs.
      T* msg = arena.alloc<T>(static_cast<std::size_t>(e_all * w));
      for (std::int64_t r = 0; r < e_all; ++r) {
        const T cf = static_cast<T>(coef[r]);
        const T* row = xw + s[r] * w;
        for (std::int64_t c = 0; c < w; ++c) msg[r * w + c] = row[c] * cf;
      }
      fwd::scatter_add_bias_fwd(msg, d, e_all, n, w, L.bias.data_as<T>().data(),
                                out_l);
    }

    for (std::int64_t i = 0; i < n * w; ++i) out_l[i] = std::tanh(out_l[i]);
    arena.rewind(scratch);  // drop everything but the layer output
    outs[l] = out_l;
    h = out_l;
  }

  // ---- Concat + SortPooling -----------------------------------------------
  const std::int64_t C = total_channels_;
  T* z = arena.alloc<T>(static_cast<std::size_t>(n * C));
  std::int64_t col_off = 0;
  for (std::size_t l = 0; l < num_mp; ++l) {
    const std::int64_t w = mp_[l].out;
    for (std::int64_t r = 0; r < n; ++r)
      std::copy_n(outs[l] + r * w, w, z + r * C + col_off);
    col_off += w;
  }

  const std::int64_t k = config_.sort_k;
  auto* perm = arena.alloc<std::int64_t>(static_cast<std::size_t>(n));
  const std::int64_t keep = fwd::sort_perm_topk(z, n, C, k, perm);
  T* pooled = arena.alloc<T>(static_cast<std::size_t>(k * C));
  std::fill(pooled, pooled + k * C, T(0));
  for (std::int64_t r = 0; r < keep; ++r)
    std::copy_n(z + perm[r] * C, C, pooled + r * C);

  // ---- Conv read-out ------------------------------------------------------
  // The reshape to [1, k*C] is a view of the same row-major buffer; conv1
  // reads `pooled` directly.
  T* c1 = arena.alloc<T>(static_cast<std::size_t>(config_.conv1_channels * k));
  fwd::conv1d_fwd(pooled, conv1_w_.data_as<T>().data(),
                  conv1_b_.data_as<T>().data(), c1, 1, k * C,
                  config_.conv1_channels, C, C);
  for (std::int64_t i = 0; i < config_.conv1_channels * k; ++i)
    c1[i] = c1[i] > T(0) ? c1[i] : T(0);

  const std::int64_t lp = (k - 2) / 2 + 1;
  T* p1 = arena.alloc<T>(static_cast<std::size_t>(config_.conv1_channels * lp));
  auto* argmax =
      arena.alloc<std::int64_t>(static_cast<std::size_t>(config_.conv1_channels * lp));
  fwd::max_pool1d_fwd(c1, p1, argmax, config_.conv1_channels, k, 2, 2);

  T* c2 = arena.alloc<T>(
      static_cast<std::size_t>(config_.conv2_channels * conv_out_len_));
  fwd::conv1d_fwd(p1, conv2_w_.data_as<T>().data(),
                  conv2_b_.data_as<T>().data(), c2, config_.conv1_channels, lp,
                  config_.conv2_channels, config_.conv2_kernel, 1);
  for (std::int64_t i = 0; i < config_.conv2_channels * conv_out_len_; ++i)
    c2[i] = c2[i] > T(0) ? c2[i] : T(0);

  // ---- Classifier ---------------------------------------------------------
  // Flatten is again a view; eval-mode dropout multiplies by exactly 1.0
  // (bitwise identity), so it is elided.
  T* hidden = arena.alloc<T>(static_cast<std::size_t>(config_.dense_dim));
  fwd::linear_fwd(c2, fc1_w_.data_as<T>().data(), fc1_b_.data_as<T>().data(),
                  hidden, 1, config_.conv2_channels * conv_out_len_,
                  config_.dense_dim);
  for (std::int64_t i = 0; i < config_.dense_dim; ++i)
    hidden[i] = hidden[i] > T(0) ? hidden[i] : T(0);

  T* logits = arena.alloc<T>(static_cast<std::size_t>(config_.num_classes));
  fwd::linear_fwd(hidden, fc2_w_.data_as<T>().data(),
                  fc2_b_.data_as<T>().data(), logits, 1, config_.dense_dim,
                  config_.num_classes);
  return logits;
}

template <typename T>
void FrozenModel::run(const seal::SubgraphSample& sample, Arena& arena,
                      bool proba, double* out) const {
  const std::int64_t c = config_.num_classes;
  const T* logits = forward_impl<T>(sample, arena);
  const T* result = logits;
  if (proba) {
    T* pr = arena.alloc<T>(static_cast<std::size_t>(c));
    ag::fwd::softmax_rows_fwd(logits, pr, 1, c);
    result = pr;
  }
  // Same widening Trainer::predict_proba applies via Tensor::item().
  for (std::int64_t j = 0; j < c; ++j) out[j] = static_cast<double>(result[j]);
}

void FrozenModel::forward_logits(const seal::SubgraphSample& sample,
                                 Arena& arena, double* out) const {
  if (quant_ != ag::quant::Scheme::kNone) {
    const float* logits = forward_quant(sample, arena);
    for (std::int64_t j = 0; j < config_.num_classes; ++j)
      out[j] = static_cast<double>(logits[j]);
    return;
  }
  if (config_.dtype == ag::Dtype::f32)
    run<float>(sample, arena, /*proba=*/false, out);
  else
    run<double>(sample, arena, /*proba=*/false, out);
}

void FrozenModel::predict_proba(const seal::SubgraphSample& sample,
                                Arena& arena, double* out) const {
  if (quant_ != ag::quant::Scheme::kNone) {
    const std::int64_t c = config_.num_classes;
    const float* logits = forward_quant(sample, arena);
    // Same exact f64-normalised softmax as the f32 path: the logits already
    // carry the relaxed numerics, the tiny [1, C] softmax costs nothing.
    float* pr = arena.alloc<float>(static_cast<std::size_t>(c));
    ag::fwd::softmax_rows_fwd(logits, pr, 1, c);
    for (std::int64_t j = 0; j < c; ++j) out[j] = static_cast<double>(pr[j]);
    return;
  }
  if (config_.dtype == ag::Dtype::f32)
    run<float>(sample, arena, /*proba=*/true, out);
  else
    run<double>(sample, arena, /*proba=*/true, out);
}

void FrozenModel::warm_up(Arena& arena, std::int64_t max_nodes,
                          std::int64_t max_edges) const {
  seal::SubgraphSample sample;
  sample.num_nodes = std::max<std::int64_t>(max_nodes, 2);
  sample.node_feat = ag::Tensor::zeros(
      {sample.num_nodes, config_.node_feature_dim}, config_.dtype);
  const std::int64_t e = std::max<std::int64_t>(max_edges, 0);
  sample.src.resize(static_cast<std::size_t>(e));
  sample.dst.resize(static_cast<std::size_t>(e));
  for (std::int64_t i = 0; i < e; ++i) {
    sample.src[i] = i % sample.num_nodes;
    sample.dst[i] = (i + 1) % sample.num_nodes;
  }
  if (edge_dim_ > 0)
    sample.edge_attr = ag::Tensor::zeros({e, edge_dim_}, config_.dtype);

  std::vector<double> sink(static_cast<std::size_t>(config_.num_classes));
  forward_logits(sample, arena, sink.data());
  arena.reset();  // coalesce now so real queries start on one block
}

}  // namespace amdgcnn::infer
