// Bump-pointer activation arena for the forward-only inference engine
// (DESIGN.md §2.4).
//
// A frozen forward pass allocates a fully predictable sequence of activation
// buffers whose lifetimes all end when the query's logits are read out.
// That access pattern needs none of the machinery the training path pays
// for — no tape nodes, no per-buffer shared_ptr, no size-class pool lookups.
// The arena hands out 64-byte-aligned slices of one large block by bumping
// an offset; `reset()` at the start of the next query makes every byte
// reusable in O(1).
//
// Growth contract: the arena never invalidates outstanding pointers
// mid-pass.  When a request does not fit the current block, a new block is
// chained (the old one keeps its live allocations); the next `reset()`
// coalesces all blocks into a single one of their combined capacity, so a
// steady-state workload reaches one right-sized block after its first query
// and never allocates again — the arena-reuse tests assert exactly this.
// `mark()`/`rewind()` give scoped reclamation within a pass (per-layer
// intermediates die young; only the layer outputs survive to the concat).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace amdgcnn::infer {

class Arena {
 public:
  /// Alignment of every allocation and block base (one cache line).
  static constexpr std::size_t kAlign = 64;

  /// `initial_bytes` pre-sizes the first block (0 = defer until first use).
  explicit Arena(std::size_t initial_bytes = 0);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Position snapshot for scoped reclamation; only valid until the next
  /// reset() of the same arena.
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  /// Bump-allocate `count` elements of trivially-destructible T, 64-byte
  /// aligned.  Grows (new chained block) when out of space; never moves or
  /// invalidates prior allocations.
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::alloc: arena memory is never destructed");
    return static_cast<T*>(alloc_raw(count * sizeof(T)));
  }

  Mark mark() const { return {active_, blocks_.empty() ? 0 : blocks_[active_].used}; }

  /// Roll the bump pointer back to `m`, freeing everything allocated after
  /// it (blocks stay owned; only their offsets move).
  void rewind(Mark m);

  /// Drop all allocations.  If the pass overflowed into extra blocks, they
  /// are coalesced into one block of the combined capacity, so repeated
  /// same-shaped queries stabilise at a single block.
  void reset();

  /// Bytes currently allocated (including per-allocation alignment padding).
  std::size_t used_bytes() const;
  /// Total bytes owned across all blocks.
  std::size_t capacity_bytes() const;
  /// High-water mark of used_bytes() over the arena's lifetime.
  std::size_t peak_bytes() const { return peak_; }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> storage;  // over-allocated by kAlign - 1
    std::byte* base = nullptr;             // aligned start within storage
    std::size_t size = 0;                  // usable bytes from base
    std::size_t used = 0;
  };

  void* alloc_raw(std::size_t bytes);
  void add_block(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // index of the block currently bumping
  std::size_t peak_ = 0;
};

}  // namespace amdgcnn::infer
