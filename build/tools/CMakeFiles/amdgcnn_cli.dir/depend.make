# Empty dependencies file for amdgcnn_cli.
# This may be replaced when dependencies are built.
