file(REMOVE_RECURSE
  "CMakeFiles/amdgcnn_cli.dir/amdgcnn_cli.cpp.o"
  "CMakeFiles/amdgcnn_cli.dir/amdgcnn_cli.cpp.o.d"
  "amdgcnn_cli"
  "amdgcnn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdgcnn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
