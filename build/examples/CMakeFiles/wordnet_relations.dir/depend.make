# Empty dependencies file for wordnet_relations.
# This may be replaced when dependencies are built.
