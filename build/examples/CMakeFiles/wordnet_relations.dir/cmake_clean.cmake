file(REMOVE_RECURSE
  "CMakeFiles/wordnet_relations.dir/wordnet_relations.cpp.o"
  "CMakeFiles/wordnet_relations.dir/wordnet_relations.cpp.o.d"
  "wordnet_relations"
  "wordnet_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordnet_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
