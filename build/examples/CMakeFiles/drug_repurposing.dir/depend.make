# Empty dependencies file for drug_repurposing.
# This may be replaced when dependencies are built.
