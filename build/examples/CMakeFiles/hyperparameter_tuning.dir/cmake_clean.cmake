file(REMOVE_RECURSE
  "CMakeFiles/hyperparameter_tuning.dir/hyperparameter_tuning.cpp.o"
  "CMakeFiles/hyperparameter_tuning.dir/hyperparameter_tuning.cpp.o.d"
  "hyperparameter_tuning"
  "hyperparameter_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperparameter_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
