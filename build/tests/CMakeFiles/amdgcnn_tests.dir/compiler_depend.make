# Empty compiler generated dependencies file for amdgcnn_tests.
# This may be replaced when dependencies are built.
