
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_datasets.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_datasets.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_datasets.cpp.o.d"
  "/root/repo/tests/test_embed_hpo.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_embed_hpo.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_embed_hpo.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_heuristics.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_heuristics.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_heuristics.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_nn_layers.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_nn_layers.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_nn_layers.cpp.o.d"
  "/root/repo/tests/test_optim_linalg.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_optim_linalg.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_optim_linalg.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_segment_conv_ops.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_segment_conv_ops.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_segment_conv_ops.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_subgraph_seal.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_subgraph_seal.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_subgraph_seal.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_tensor_grad.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_tensor_grad.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_tensor_grad.cpp.o.d"
  "/root/repo/tests/test_tensor_ops.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_tensor_ops.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_tensor_ops.cpp.o.d"
  "/root/repo/tests/test_util_module.cpp" "tests/CMakeFiles/amdgcnn_tests.dir/test_util_module.cpp.o" "gcc" "tests/CMakeFiles/amdgcnn_tests.dir/test_util_module.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amdgcnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
