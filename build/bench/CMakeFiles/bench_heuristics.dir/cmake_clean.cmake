file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristics.dir/bench_heuristics.cpp.o"
  "CMakeFiles/bench_heuristics.dir/bench_heuristics.cpp.o.d"
  "bench_heuristics"
  "bench_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
