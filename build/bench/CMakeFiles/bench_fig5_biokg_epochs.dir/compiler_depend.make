# Empty compiler generated dependencies file for bench_fig5_biokg_epochs.
# This may be replaced when dependencies are built.
