file(REMOVE_RECURSE
  "CMakeFiles/bench_gamma_decay.dir/bench_gamma_decay.cpp.o"
  "CMakeFiles/bench_gamma_decay.dir/bench_gamma_decay.cpp.o.d"
  "bench_gamma_decay"
  "bench_gamma_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gamma_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
