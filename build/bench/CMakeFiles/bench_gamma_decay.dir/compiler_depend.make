# Empty compiler generated dependencies file for bench_gamma_decay.
# This may be replaced when dependencies are built.
