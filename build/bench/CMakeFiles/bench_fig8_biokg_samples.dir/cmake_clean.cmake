file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_biokg_samples.dir/bench_fig8_biokg_samples.cpp.o"
  "CMakeFiles/bench_fig8_biokg_samples.dir/bench_fig8_biokg_samples.cpp.o.d"
  "bench_fig8_biokg_samples"
  "bench_fig8_biokg_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_biokg_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
