# Empty dependencies file for bench_fig8_biokg_samples.
# This may be replaced when dependencies are built.
