# Empty compiler generated dependencies file for bench_fig9_wordnet_samples.
# This may be replaced when dependencies are built.
