# Empty compiler generated dependencies file for bench_fig7_primekg_samples.
# This may be replaced when dependencies are built.
