file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_primekg_samples.dir/bench_fig7_primekg_samples.cpp.o"
  "CMakeFiles/bench_fig7_primekg_samples.dir/bench_fig7_primekg_samples.cpp.o.d"
  "bench_fig7_primekg_samples"
  "bench_fig7_primekg_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_primekg_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
