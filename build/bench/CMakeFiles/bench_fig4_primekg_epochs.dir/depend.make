# Empty dependencies file for bench_fig4_primekg_epochs.
# This may be replaced when dependencies are built.
