file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cora_epochs.dir/bench_fig3_cora_epochs.cpp.o"
  "CMakeFiles/bench_fig3_cora_epochs.dir/bench_fig3_cora_epochs.cpp.o.d"
  "bench_fig3_cora_epochs"
  "bench_fig3_cora_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cora_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
