# Empty compiler generated dependencies file for bench_fig3_cora_epochs.
# This may be replaced when dependencies are built.
