# Empty compiler generated dependencies file for bench_fig6_wordnet_epochs.
# This may be replaced when dependencies are built.
