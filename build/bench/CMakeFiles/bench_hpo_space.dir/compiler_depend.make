# Empty compiler generated dependencies file for bench_hpo_space.
# This may be replaced when dependencies are built.
