file(REMOVE_RECURSE
  "CMakeFiles/bench_hpo_space.dir/bench_hpo_space.cpp.o"
  "CMakeFiles/bench_hpo_space.dir/bench_hpo_space.cpp.o.d"
  "bench_hpo_space"
  "bench_hpo_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpo_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
