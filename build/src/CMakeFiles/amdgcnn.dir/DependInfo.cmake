
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/decision_tree.cpp" "src/CMakeFiles/amdgcnn.dir/baselines/decision_tree.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/baselines/decision_tree.cpp.o.d"
  "/root/repo/src/baselines/logistic_regression.cpp" "src/CMakeFiles/amdgcnn.dir/baselines/logistic_regression.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/baselines/logistic_regression.cpp.o.d"
  "/root/repo/src/baselines/wlnm.cpp" "src/CMakeFiles/amdgcnn.dir/baselines/wlnm.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/baselines/wlnm.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/amdgcnn.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/seal_link_classifier.cpp" "src/CMakeFiles/amdgcnn.dir/core/seal_link_classifier.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/core/seal_link_classifier.cpp.o.d"
  "/root/repo/src/datasets/biokg_sim.cpp" "src/CMakeFiles/amdgcnn.dir/datasets/biokg_sim.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/datasets/biokg_sim.cpp.o.d"
  "/root/repo/src/datasets/cora_sim.cpp" "src/CMakeFiles/amdgcnn.dir/datasets/cora_sim.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/datasets/cora_sim.cpp.o.d"
  "/root/repo/src/datasets/kg_generator.cpp" "src/CMakeFiles/amdgcnn.dir/datasets/kg_generator.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/datasets/kg_generator.cpp.o.d"
  "/root/repo/src/datasets/primekg_sim.cpp" "src/CMakeFiles/amdgcnn.dir/datasets/primekg_sim.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/datasets/primekg_sim.cpp.o.d"
  "/root/repo/src/datasets/wordnet_sim.cpp" "src/CMakeFiles/amdgcnn.dir/datasets/wordnet_sim.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/datasets/wordnet_sim.cpp.o.d"
  "/root/repo/src/embed/node2vec.cpp" "src/CMakeFiles/amdgcnn.dir/embed/node2vec.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/embed/node2vec.cpp.o.d"
  "/root/repo/src/embed/random_walk.cpp" "src/CMakeFiles/amdgcnn.dir/embed/random_walk.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/embed/random_walk.cpp.o.d"
  "/root/repo/src/graph/knowledge_graph.cpp" "src/CMakeFiles/amdgcnn.dir/graph/knowledge_graph.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/graph/knowledge_graph.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/CMakeFiles/amdgcnn.dir/graph/subgraph.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/graph/subgraph.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "src/CMakeFiles/amdgcnn.dir/graph/traversal.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/graph/traversal.cpp.o.d"
  "/root/repo/src/heuristics/katz.cpp" "src/CMakeFiles/amdgcnn.dir/heuristics/katz.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/heuristics/katz.cpp.o.d"
  "/root/repo/src/heuristics/local_scores.cpp" "src/CMakeFiles/amdgcnn.dir/heuristics/local_scores.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/heuristics/local_scores.cpp.o.d"
  "/root/repo/src/heuristics/pagerank.cpp" "src/CMakeFiles/amdgcnn.dir/heuristics/pagerank.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/heuristics/pagerank.cpp.o.d"
  "/root/repo/src/heuristics/pair_features.cpp" "src/CMakeFiles/amdgcnn.dir/heuristics/pair_features.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/heuristics/pair_features.cpp.o.d"
  "/root/repo/src/heuristics/scorer.cpp" "src/CMakeFiles/amdgcnn.dir/heuristics/scorer.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/heuristics/scorer.cpp.o.d"
  "/root/repo/src/heuristics/simrank.cpp" "src/CMakeFiles/amdgcnn.dir/heuristics/simrank.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/heuristics/simrank.cpp.o.d"
  "/root/repo/src/hpo/bayes_opt.cpp" "src/CMakeFiles/amdgcnn.dir/hpo/bayes_opt.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/hpo/bayes_opt.cpp.o.d"
  "/root/repo/src/hpo/gaussian_process.cpp" "src/CMakeFiles/amdgcnn.dir/hpo/gaussian_process.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/hpo/gaussian_process.cpp.o.d"
  "/root/repo/src/hpo/random_search.cpp" "src/CMakeFiles/amdgcnn.dir/hpo/random_search.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/hpo/random_search.cpp.o.d"
  "/root/repo/src/hpo/search_space.cpp" "src/CMakeFiles/amdgcnn.dir/hpo/search_space.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/hpo/search_space.cpp.o.d"
  "/root/repo/src/metrics/classification.cpp" "src/CMakeFiles/amdgcnn.dir/metrics/classification.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/metrics/classification.cpp.o.d"
  "/root/repo/src/metrics/ranking.cpp" "src/CMakeFiles/amdgcnn.dir/metrics/ranking.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/metrics/ranking.cpp.o.d"
  "/root/repo/src/models/dgcnn.cpp" "src/CMakeFiles/amdgcnn.dir/models/dgcnn.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/models/dgcnn.cpp.o.d"
  "/root/repo/src/models/link_gnn.cpp" "src/CMakeFiles/amdgcnn.dir/models/link_gnn.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/models/link_gnn.cpp.o.d"
  "/root/repo/src/models/serialize.cpp" "src/CMakeFiles/amdgcnn.dir/models/serialize.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/models/serialize.cpp.o.d"
  "/root/repo/src/models/trainer.cpp" "src/CMakeFiles/amdgcnn.dir/models/trainer.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/models/trainer.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/CMakeFiles/amdgcnn.dir/nn/conv1d.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/nn/conv1d.cpp.o.d"
  "/root/repo/src/nn/gat_conv.cpp" "src/CMakeFiles/amdgcnn.dir/nn/gat_conv.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/nn/gat_conv.cpp.o.d"
  "/root/repo/src/nn/gcn_conv.cpp" "src/CMakeFiles/amdgcnn.dir/nn/gcn_conv.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/nn/gcn_conv.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/amdgcnn.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/amdgcnn.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/amdgcnn.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/sort_pooling.cpp" "src/CMakeFiles/amdgcnn.dir/nn/sort_pooling.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/nn/sort_pooling.cpp.o.d"
  "/root/repo/src/seal/dataset.cpp" "src/CMakeFiles/amdgcnn.dir/seal/dataset.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/seal/dataset.cpp.o.d"
  "/root/repo/src/seal/drnl.cpp" "src/CMakeFiles/amdgcnn.dir/seal/drnl.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/seal/drnl.cpp.o.d"
  "/root/repo/src/seal/feature_builder.cpp" "src/CMakeFiles/amdgcnn.dir/seal/feature_builder.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/seal/feature_builder.cpp.o.d"
  "/root/repo/src/seal/sampling.cpp" "src/CMakeFiles/amdgcnn.dir/seal/sampling.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/seal/sampling.cpp.o.d"
  "/root/repo/src/tensor/conv_ops.cpp" "src/CMakeFiles/amdgcnn.dir/tensor/conv_ops.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/tensor/conv_ops.cpp.o.d"
  "/root/repo/src/tensor/linalg.cpp" "src/CMakeFiles/amdgcnn.dir/tensor/linalg.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/tensor/linalg.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/amdgcnn.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/optim.cpp" "src/CMakeFiles/amdgcnn.dir/tensor/optim.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/tensor/optim.cpp.o.d"
  "/root/repo/src/tensor/segment_ops.cpp" "src/CMakeFiles/amdgcnn.dir/tensor/segment_ops.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/tensor/segment_ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/amdgcnn.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/amdgcnn.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stopwatch.cpp" "src/CMakeFiles/amdgcnn.dir/util/stopwatch.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/util/stopwatch.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/amdgcnn.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/amdgcnn.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
