# Empty compiler generated dependencies file for amdgcnn.
# This may be replaced when dependencies are built.
