file(REMOVE_RECURSE
  "libamdgcnn.a"
)
