// Heuristics, embeddings and supervised heuristic learning on one task —
// the progression the paper's related-work section walks through:
//
//   fixed heuristics (CN / Jaccard / AA / PA / Katz / PPR)
//     -> node2vec embedding similarity
//       -> SEAL + GNN (learned heuristics)
//
//   build/examples/heuristic_comparison
#include <iostream>

#include "core/experiment.h"
#include "datasets/cora_sim.h"
#include "embed/node2vec.h"
#include "heuristics/pagerank.h"
#include "heuristics/scorer.h"
#include "metrics/ranking.h"
#include "util/table.h"

using namespace amdgcnn;

int main() {
  datasets::CoraSimOptions opts;
  opts.num_pos_links = 250;
  auto data = datasets::make_cora_sim(opts);
  std::cout << "cora_sim: " << data.graph.num_nodes() << " papers, "
            << data.graph.num_edges() << " citations; binary link task, "
            << data.test_links.size() << " test pairs\n\n";

  util::Table table({"method", "order", "test AUC"});

  // ---- Fixed topological heuristics -----------------------------------------
  for (const auto& scorer : heuristics::standard_scorers()) {
    const double auc =
        heuristics::scorer_auc(scorer, data.graph, data.test_links);
    const char* order = scorer.name == "katz" ? "high" : "1st/2nd";
    table.add_row({scorer.name, order, util::Table::fmt(auc, 3)});
  }

  // Personalized PageRank (high-order; O(V) per source, so test-set only).
  {
    std::vector<double> scores;
    std::vector<std::int32_t> labels;
    for (const auto& l : data.test_links) {
      scores.push_back(heuristics::ppr_link_score(data.graph, l.a, l.b));
      labels.push_back(l.label);
    }
    table.add_row({"personalized-pagerank", "high",
                   util::Table::fmt(metrics::binary_auc(scores, labels), 3)});
  }

  // ---- node2vec cosine similarity -------------------------------------------
  {
    std::cout << "training node2vec embeddings...\n";
    embed::Node2VecOptions n2v;
    n2v.dimensions = 32;
    n2v.walk.walks_per_node = 4;
    n2v.walk.walk_length = 15;
    auto emb = embed::node2vec(data.graph, n2v);
    std::vector<double> scores;
    std::vector<std::int32_t> labels;
    for (const auto& l : data.test_links) {
      scores.push_back(
          embed::embedding_cosine(emb, n2v.dimensions, l.a, l.b));
      labels.push_back(l.label);
    }
    table.add_row({"node2vec cosine", "learned",
                   util::Table::fmt(metrics::binary_auc(scores, labels), 3)});
  }

  // ---- SEAL + GNNs (supervised heuristic learning) ---------------------------
  const auto ds = core::prepare_seal_dataset(data);
  for (auto kind :
       {models::GnnKind::kVanillaDGCNN, models::GnnKind::kAMDGCNN}) {
    std::cout << "training SEAL + " << models::gnn_kind_name(kind)
              << "...\n";
    auto run = core::run_model(ds, kind, core::cora_tuned_defaults(),
                               /*epochs=*/10);
    table.add_row({std::string("SEAL + ") + run.model_name, "learned",
                   util::Table::fmt(run.final_eval.metrics.macro_auc, 3)});
  }

  std::cout << "\n";
  table.print(std::cout);
  return 0;
}
