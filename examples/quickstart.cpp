// Quickstart: the complete AM-DGCNN pipeline on a small hand-built
// knowledge graph, in ~60 lines.
//
//   build/examples/quickstart
//
// We build a toy "pharma" knowledge graph where the polarity of a
// drug/disease's relations to shared proteins decides whether a target
// drug-disease link is an indication (class 1) or a contra-indication
// (class 0), train AM-DGCNN on a handful of labeled links, and classify
// held-out pairs.
#include <iostream>

#include "core/seal_link_classifier.h"
#include "datasets/kg_generator.h"
#include "util/rng.h"

using namespace amdgcnn;

int main() {
  // ---- 1. Build a knowledge graph ------------------------------------------
  // Node types: 0 = drug, 1 = disease, 2 = protein.
  // Edge types: 0 = activates (positive), 1 = inhibits (negative).
  graph::KnowledgeGraph g(/*num_node_types=*/3, /*num_edge_types=*/2,
                          /*edge_attr_dim=*/2);
  g.set_edge_type_attr(0, std::vector<double>{1.0, 0.0});
  g.set_edge_type_attr(1, std::vector<double>{0.0, 1.0});

  util::Rng rng(7);
  std::vector<graph::NodeId> drugs, diseases, proteins;
  for (int i = 0; i < 40; ++i) drugs.push_back(g.add_node(0));
  for (int i = 0; i < 40; ++i) diseases.push_back(g.add_node(1));
  for (int i = 0; i < 120; ++i) proteins.push_back(g.add_node(2));

  // Each labeled pair shares proteins; the relation polarity encodes the
  // class (the signal AM-DGCNN is built to read).
  datasets::GraphBuilder builder(g);
  std::vector<seal::LinkExample> links;
  for (int i = 0; i < 40; ++i) {
    const auto drug = drugs[i];
    const auto disease = diseases[i];
    const std::int32_t label = i % 2;  // 1 = indication, 0 = contra
    const std::int32_t rel = label == 1 ? 0 : 1;
    for (int s = 0; s < 3; ++s) {
      const auto p = proteins[rng.uniform_int(proteins.size())];
      builder.add_edge_unique(drug, p, rel);
      builder.add_edge_unique(disease, p, rel);
    }
    links.push_back({drug, disease, label});
  }
  // Background noise edges.
  for (int i = 0; i < 150; ++i) {
    const auto p1 = proteins[rng.uniform_int(proteins.size())];
    const auto p2 = proteins[rng.uniform_int(proteins.size())];
    if (p1 != p2)
      builder.add_edge_unique(
          p1, p2, static_cast<std::int32_t>(rng.uniform_int(2ULL)));
  }
  g.finalize();

  // ---- 2. Split and train ---------------------------------------------------
  auto [train, test] = seal::train_test_split(links, 0.25, rng);

  core::ClassifierConfig cfg;
  cfg.model.kind = models::GnnKind::kAMDGCNN;  // swap for kVanillaDGCNN
  cfg.model.hidden_dim = 16;
  cfg.model.heads = 2;
  cfg.model.sort_k = 10;
  cfg.training.epochs = 15;
  cfg.training.learning_rate = 3e-3;

  core::SealLinkClassifier clf(cfg);
  clf.fit(g, train, /*num_classes=*/2);

  // ---- 3. Evaluate and predict ----------------------------------------------
  const auto eval = clf.evaluate(g, test);
  std::cout << "test AUC: " << eval.metrics.macro_auc
            << "  AP: " << eval.metrics.macro_precision
            << "  accuracy: " << eval.metrics.accuracy << "\n";

  const auto preds = clf.predict(g, test);
  int shown = 0;
  for (std::size_t i = 0; i < test.size() && shown < 5; ++i, ++shown)
    std::cout << "  drug " << test[i].a << " / disease " << test[i].b
              << ": predicted " << (preds[i] ? "indication" : "contra")
              << " (truth " << (test[i].label ? "indication" : "contra")
              << ")\n";
  return eval.metrics.macro_auc > 0.8 ? 0 : 1;
}
