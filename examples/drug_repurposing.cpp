// Drug repurposing on primekg_sim — the precision-medicine scenario the
// paper's introduction motivates (PrimeKG classifies drug-disease links as
// Indication / Off-label use / Contra-indication).
//
//   build/examples/drug_repurposing
//
// Trains AM-DGCNN on labeled drug-disease links, then screens a pool of
// unlabeled candidate pairs and prints the top repurposing candidates —
// the pairs with the highest predicted Indication probability — together
// with the model's contra-indication warnings.
#include <algorithm>
#include <iostream>

#include "core/seal_link_classifier.h"
#include "datasets/primekg_sim.h"
#include "util/table.h"

using namespace amdgcnn;

int main() {
  // A small PrimeKG-like graph (see DESIGN.md §2 for the substitution).
  datasets::PrimeKGSimOptions opts;
  opts.scale = 0.4;
  opts.num_train = 300;
  opts.num_test = 120;
  auto data = datasets::make_primekg_sim(opts);
  std::cout << "knowledge graph: " << data.graph.num_nodes() << " nodes / "
            << data.graph.num_edges() << " edges, "
            << data.train_links.size() << " labeled drug-disease pairs\n";

  core::ClassifierConfig cfg;
  cfg.model.kind = models::GnnKind::kAMDGCNN;
  cfg.model.hidden_dim = 32;
  cfg.model.sort_k = 24;
  cfg.training.epochs = 10;
  cfg.training.learning_rate = 3e-3;
  // Paper §III-A: intersection neighborhoods for PrimeKG.
  cfg.dataset.extract.mode = graph::NeighborhoodMode::kIntersection;
  cfg.dataset.extract.max_nodes = 48;

  core::SealLinkClassifier clf(cfg);
  std::cout << "training AM-DGCNN...\n";
  clf.fit(data.graph, data.train_links, data.num_classes);

  const auto eval = clf.evaluate(data.graph, data.test_links);
  std::cout << "held-out AUC " << util::Table::fmt(eval.metrics.macro_auc, 3)
            << ", AP " << util::Table::fmt(eval.metrics.macro_precision, 3)
            << "\n\n";

  // Screen the test pairs as "unknown relationship" candidates.
  const auto probs = clf.predict_proba(data.graph, data.test_links);
  struct Candidate {
    seal::LinkExample link;
    double p_indication;
    double p_contra;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < data.test_links.size(); ++i)
    candidates.push_back({data.test_links[i], probs[i * 3 + 0],
                          probs[i * 3 + 2]});

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.p_indication > b.p_indication;
            });

  util::Table top({"drug", "disease", "P(indication)", "P(contra)",
                   "true class"});
  for (std::size_t i = 0; i < 10 && i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    top.add_row({std::to_string(c.link.a), std::to_string(c.link.b),
                 util::Table::fmt(c.p_indication, 3),
                 util::Table::fmt(c.p_contra, 3),
                 data.class_names[c.link.label]});
  }
  std::cout << "top repurposing candidates (highest P(indication)):\n";
  top.print(std::cout);

  // How many of the top-10 shortlist are genuine indications?
  int hits = 0;
  for (std::size_t i = 0; i < 10 && i < candidates.size(); ++i)
    hits += candidates[i].link.label == 0 ? 1 : 0;
  std::cout << "precision@10 for Indication: " << hits << "/10\n";
  return hits >= 6 ? 0 : 1;
}
