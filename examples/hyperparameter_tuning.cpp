// Hyperparameter auto-tuning (paper §III-D) through the public API:
// Bayesian optimization vs random search over the Table-I space, with the
// winning configuration retrained and evaluated on the test split.
//
//   build/examples/hyperparameter_tuning
#include <iostream>

#include "core/experiment.h"
#include "datasets/biokg_sim.h"
#include "hpo/random_search.h"
#include "util/table.h"

using namespace amdgcnn;

int main() {
  datasets::BioKGSimOptions opts;
  opts.scale = 0.4;
  opts.num_train = 400;
  opts.num_test = 150;
  auto data = datasets::make_biokg_sim(opts);
  auto ds = core::prepare_seal_dataset(data);
  std::cout << "biokg_sim: " << ds.train.size() << " train / "
            << ds.test.size() << " test samples, " << ds.num_classes
            << " classes\n\n";

  // Shared evaluator: short training run on a subset, validated on a
  // held-out slice of the training set.
  const auto kind = models::GnnKind::kAMDGCNN;

  std::cout << "=== Bayesian optimization (GP + expected improvement) ===\n";
  hpo::BayesOptOptions bo;
  bo.num_initial = 3;
  bo.num_iterations = 3;
  auto bo_result = core::tune_model(ds, kind, bo, /*tune_epochs=*/3,
                                    /*max_train_samples=*/200,
                                    /*max_val_samples=*/100);
  util::Table trials({"trial", "configuration", "val AUC"});
  for (std::size_t i = 0; i < bo_result.history.size(); ++i)
    trials.add_row({std::to_string(i + 1),
                    bo_result.history[i].params.to_string(),
                    util::Table::fmt(bo_result.history[i].value, 3)});
  trials.print(std::cout);
  std::cout << "best: " << bo_result.best.to_string() << "\n\n";

  std::cout << "=== Retraining the winner on the full training set ===\n";
  auto final_run = core::run_model(ds, kind, bo_result.best, /*epochs=*/10);
  std::cout << "test AUC "
            << util::Table::fmt(final_run.final_eval.metrics.macro_auc, 3)
            << ", AP "
            << util::Table::fmt(final_run.final_eval.metrics.macro_precision,
                                3)
            << " with " << final_run.num_parameters << " parameters\n";

  // Paper §V-F observation: performance should be fairly insensitive to the
  // exact configuration — compare against the library defaults.
  auto default_run =
      core::run_model(ds, kind, core::cora_tuned_defaults(), 10);
  std::cout << "default-config AUC "
            << util::Table::fmt(default_run.final_eval.metrics.macro_auc, 3)
            << " (sensitivity gap "
            << util::Table::fmt(final_run.final_eval.metrics.macro_auc -
                                    default_run.final_eval.metrics.macro_auc,
                                3)
            << ")\n";
  return 0;
}
