// Relation typing on wordnet_sim — classify the semantic relation of a word
// pair into one of 18 classes using ONLY link information (the graph has a
// single node type and no node features), the ablation the paper uses to
// show why edge attributes matter.
//
//   build/examples/wordnet_relations
//
// Trains both AM-DGCNN and vanilla DGCNN and prints their per-class recall
// side by side: the edge-blind model collapses to the majority classes
// while the edge-aware one recovers the relation structure.
#include <iostream>

#include "core/experiment.h"
#include "datasets/wordnet_sim.h"
#include "util/table.h"

using namespace amdgcnn;

int main() {
  datasets::WordNetSimOptions opts;
  opts.num_nodes = 1500;
  opts.num_train = 700;
  opts.num_test = 250;
  auto data = datasets::make_wordnet_sim(opts);
  std::cout << "wordnet_sim: " << data.graph.num_nodes() << " words, "
            << data.graph.num_edges() << " edges, 18 relation classes, "
            << "no node features\n";

  const auto ds = core::prepare_seal_dataset(data);
  hpo::HyperParams hp;
  hp.learning_rate = 3e-3;
  hp.hidden_dim = 64;
  hp.sort_k = 20;

  util::Table summary({"model", "AUC", "AP", "accuracy"});
  std::vector<std::vector<std::int64_t>> confusions;
  for (auto kind :
       {models::GnnKind::kAMDGCNN, models::GnnKind::kVanillaDGCNN}) {
    std::cout << "training " << models::gnn_kind_name(kind) << "...\n";
    auto run = core::run_model(ds, kind, hp, /*epochs=*/12);
    summary.add_row({run.model_name,
                     util::Table::fmt(run.final_eval.metrics.macro_auc, 3),
                     util::Table::fmt(
                         run.final_eval.metrics.macro_precision, 3),
                     util::Table::fmt(run.final_eval.metrics.accuracy, 3)});
    confusions.push_back(run.final_eval.metrics.confusion);
  }
  summary.print(std::cout);

  // Per-class recall comparison from the confusion matrices.
  util::Table recall({"relation", "support", "AM-DGCNN recall",
                      "Vanilla recall"});
  for (std::int64_t c = 0; c < 18; ++c) {
    std::int64_t support = 0, am_tp = 0, va_tp = 0;
    for (std::int64_t o = 0; o < 18; ++o)
      support += confusions[0][c * 18 + o];
    if (support == 0) continue;
    am_tp = confusions[0][c * 18 + c];
    va_tp = confusions[1][c * 18 + c];
    recall.add_row({data.class_names[c], std::to_string(support),
                    util::Table::fmt(
                        static_cast<double>(am_tp) / support, 2),
                    util::Table::fmt(
                        static_cast<double>(va_tp) / support, 2)});
  }
  std::cout << "\nper-relation recall:\n";
  recall.print(std::cout);
  return 0;
}
