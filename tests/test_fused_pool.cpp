// Tests for the tensor-engine hot-path machinery: fused linear/scatter ops
// (forward equivalence + finite-difference gradients), buffer-pool recycling
// correctness, and determinism of the parallel trainer path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "models/dgcnn.h"
#include "models/trainer.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"
#include "test_util.h"

namespace amdgcnn::ag {
namespace {

// ---- Fused ops: forward equivalence -----------------------------------------

TEST(FusedOps, AddmmMatchesMatmulPlusRowvec) {
  util::Rng rng(1);
  auto a = Tensor::randn({5, 3}, rng);
  auto w = Tensor::randn({3, 4}, rng);
  auto b = Tensor::randn({1, 4}, rng);
  auto fused = ops::addmm(a, w, b);
  auto composed = ops::add_rowvec(ops::matmul(a, w), b);
  ASSERT_EQ(fused.shape(), composed.shape());
  for (std::int64_t i = 0; i < fused.numel(); ++i)
    EXPECT_NEAR(fused.item(i), composed.item(i), 1e-12);
}

TEST(FusedOps, LinearReluMatchesComposition) {
  util::Rng rng(2);
  auto a = Tensor::randn({6, 4}, rng);
  auto w = Tensor::randn({4, 3}, rng);
  auto b = Tensor::randn({1, 3}, rng);
  auto fused = ops::linear_relu(a, w, b);
  auto composed = ops::relu(ops::add_rowvec(ops::matmul(a, w), b));
  for (std::int64_t i = 0; i < fused.numel(); ++i)
    EXPECT_NEAR(fused.item(i), composed.item(i), 1e-12);
}

TEST(FusedOps, LinearTanhMatchesComposition) {
  util::Rng rng(3);
  auto a = Tensor::randn({4, 5}, rng);
  auto w = Tensor::randn({5, 2}, rng);
  auto b = Tensor::randn({1, 2}, rng);
  auto fused = ops::linear_tanh(a, w, b);
  auto composed = ops::tanh_act(ops::add_rowvec(ops::matmul(a, w), b));
  for (std::int64_t i = 0; i < fused.numel(); ++i)
    EXPECT_NEAR(fused.item(i), composed.item(i), 1e-12);
}

TEST(FusedOps, ScatterAddBiasMatchesComposition) {
  util::Rng rng(4);
  auto src = Tensor::randn({7, 3}, rng);
  auto bias = Tensor::randn({1, 3}, rng);
  std::vector<std::int64_t> idx = {0, 2, 1, 2, 3, 0, 3};
  auto fused = ops::scatter_add_bias(src, idx, 4, bias);
  auto composed = ops::add_rowvec(ops::scatter_add_rows(src, idx, 4), bias);
  ASSERT_EQ(fused.shape(), composed.shape());
  for (std::int64_t i = 0; i < fused.numel(); ++i)
    EXPECT_NEAR(fused.item(i), composed.item(i), 1e-12);
}

TEST(FusedOps, RejectShapeMismatches) {
  util::Rng rng(5);
  auto a = Tensor::randn({2, 3}, rng);
  auto w = Tensor::randn({4, 2}, rng);  // inner dim mismatch
  auto b = Tensor::randn({1, 2}, rng);
  EXPECT_THROW(ops::addmm(a, w, b), std::invalid_argument);
  auto w2 = Tensor::randn({3, 2}, rng);
  auto bad_bias = Tensor::randn({1, 5}, rng);
  EXPECT_THROW(ops::linear_relu(a, w2, bad_bias), std::invalid_argument);
  EXPECT_THROW(ops::scatter_add_bias(a, {0, 5}, 3, b),
               std::invalid_argument);  // index out of range
}

// ---- Fused ops: gradients vs central differences ----------------------------

TEST(FusedOpsGrad, AddmmAllParents) {
  util::Rng rng(6);
  auto a = Tensor::randn({4, 3}, rng);
  auto w = Tensor::randn({3, 5}, rng);
  auto b = Tensor::randn({1, 5}, rng);
  for (Tensor* p : {&a, &w, &b})
    amdgcnn::testing::expect_gradient_matches(
        *p, [&] { return ops::mean(ops::addmm(a, w, b)); });
}

TEST(FusedOpsGrad, LinearReluAllParents) {
  util::Rng rng(7);
  // Offset inputs away from the ReLU kink so finite differences are clean.
  auto a = Tensor::randn({3, 4}, rng);
  auto w = Tensor::randn({4, 3}, rng);
  auto b = Tensor::full({1, 3}, 0.37);
  for (Tensor* p : {&a, &w, &b})
    amdgcnn::testing::expect_gradient_matches(
        *p, [&] { return ops::mean(ops::linear_relu(a, w, b)); }, 1e-5, 1e-5);
}

TEST(FusedOpsGrad, LinearTanhAllParents) {
  util::Rng rng(8);
  auto a = Tensor::randn({3, 2}, rng);
  auto w = Tensor::randn({2, 4}, rng);
  auto b = Tensor::randn({1, 4}, rng);
  for (Tensor* p : {&a, &w, &b})
    amdgcnn::testing::expect_gradient_matches(
        *p, [&] { return ops::mean(ops::linear_tanh(a, w, b)); });
}

TEST(FusedOpsGrad, ScatterAddBiasBothParents) {
  util::Rng rng(9);
  auto src = Tensor::randn({6, 3}, rng);
  auto bias = Tensor::randn({1, 3}, rng);
  std::vector<std::int64_t> idx = {1, 0, 2, 2, 1, 3};
  for (Tensor* p : {&src, &bias})
    amdgcnn::testing::expect_gradient_matches(*p, [&] {
      return ops::mean(ops::scatter_add_bias(src, idx, 4, bias));
    });
}

TEST(FusedOpsGrad, MatmulBackwardHandlesZeroEntries) {
  // Regression for the removed zero-skip: dB must be exact even when A (and
  // the upstream gradient) contain exact zeros.
  auto a = Tensor::from_data({2, 3}, {0.0, 1.0, 0.0, 2.0, 0.0, 3.0});
  auto b = Tensor::from_data({3, 2}, {1.0, 0.0, 0.0, 2.0, 3.0, 0.0});
  for (Tensor* p : {&a, &b})
    amdgcnn::testing::expect_gradient_matches(
        *p, [&] { return ops::mean(ops::matmul(a, b)); });
}

// ---- Buffer pool ------------------------------------------------------------

TEST(BufferPool, RecyclesTapeStorageAcrossIterations) {
  clear_buffer_pool();
  util::Rng rng(10);
  auto w = Tensor::randn({8, 8}, rng).requires_grad(true);
  auto x = Tensor::randn({4, 8}, rng);
  // Warm the pool with one iteration, then measure hits over the next ones.
  for (int warm = 0; warm < 2; ++warm) {
    auto loss = ops::mean(ops::matmul(x, w));
    loss.backward();
    release_graph(loss);
  }
  reset_pool_stats();
  for (int i = 0; i < 5; ++i) {
    auto loss = ops::mean(ops::matmul(x, w));
    loss.backward();
    release_graph(loss);
  }
  const auto stats = pool_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u) << "steady-state iterations should allocate "
                                 "nothing once the pool is warm";
}

TEST(BufferPool, LiveTensorsNeverShareRecycledStorage) {
  auto a = Tensor::zeros({16});
  const double* pa = a.data().data();
  auto b = Tensor::zeros({16});
  EXPECT_NE(pa, b.data().data());
  // Release `a`'s buffer back to the pool, then reacquire the same size: the
  // new tensor may reuse the dead buffer but must never overlap `b`.
  a = Tensor();
  auto c = Tensor::zeros({16});
  EXPECT_NE(c.data().data(), b.data().data());
}

TEST(BufferPool, GradAccumulationSurvivesGraphRecycling) {
  // Two consecutive "batches" over recycled tape storage must accumulate
  // into the SAME live gradient buffer without corruption: after the second
  // backward the gradient is exactly twice the first.
  util::Rng rng(11);
  auto w = Tensor::randn({6, 6}, rng).requires_grad(true);
  auto x = Tensor::randn({3, 6}, rng);
  w.zero_grad();
  auto loss1 = ops::mean(ops::matmul(x, w));
  loss1.backward();
  release_graph(loss1);
  const std::vector<double> after_first = w.grad();
  auto loss2 = ops::mean(ops::matmul(x, w));
  loss2.backward();
  release_graph(loss2);
  for (std::size_t i = 0; i < after_first.size(); ++i)
    EXPECT_DOUBLE_EQ(w.grad()[i], 2.0 * after_first[i]);
}

TEST(BufferPool, SizeClassRoundingIsPowerOfTwo) {
  EXPECT_EQ(detail::pool_size_class(1), detail::kMinPoolClass);
  EXPECT_EQ(detail::pool_size_class(16), 16u);
  EXPECT_EQ(detail::pool_size_class(17), 32u);
  EXPECT_EQ(detail::pool_size_class(900), 1024u);
  EXPECT_EQ(detail::pool_size_class(1024), 1024u);
  EXPECT_EQ(detail::pool_size_class(1025), 2048u);
}

TEST(BufferPool, NearDuplicateSizesShareOneBucket) {
  // Regression guard for the pow2 rounding policy: sizes 513..1024 all map
  // to the 1024 class, so a sweep over near-duplicate subgraph shapes is
  // served by ONE parked buffer instead of parking one buffer per size —
  // the failure mode that inflated the peak pooled footprint before
  // size-class rounding.
  clear_buffer_pool();
  auto& pool = detail::buffer_pool();
  pool.release(pool.acquire(900));  // warm: allocates the class-1024 buffer
  pool.reset_stats();
  for (std::size_t n : {901u, 950u, 1000u, 1024u, 600u, 513u})
    pool.release(pool.acquire(n));
  const auto stats = pool.stats();
  EXPECT_EQ(stats.hits, 6u);
  EXPECT_EQ(stats.misses, 0u) << "every size in (512, 1024] must reuse the "
                                 "single warmed class-1024 buffer";
  EXPECT_LE(stats.peak_pooled_bytes, 1024 * sizeof(double))
      << "the sweep must park at most one class-1024 buffer";
  clear_buffer_pool();
}

TEST(BufferPool, PooledBuffersAcrossClassesNeverAlias) {
  // Simultaneously held buffers — same class, different classes, and across
  // the double/int32 pools — must be disjoint allocations: writes through
  // one must never show up in another.
  clear_buffer_pool();
  auto& dpool = detail::buffer_pool();
  auto& ipool = detail::i32_buffer_pool();
  auto a = dpool.acquire_zeroed(600);   // class 1024
  auto b = dpool.acquire_zeroed(900);   // class 1024, a still live
  auto c = dpool.acquire_zeroed(100);   // class 128
  auto d = ipool.acquire_zeroed(600);   // int pool, class 1024
  EXPECT_NE(a.data(), b.data());
  EXPECT_NE(a.data(), c.data());
  EXPECT_NE(static_cast<const void*>(a.data()),
            static_cast<const void*>(d.data()));
  std::fill(a.begin(), a.end(), 1.0);
  std::fill(d.begin(), d.end(), std::int32_t{7});
  EXPECT_TRUE(std::all_of(b.begin(), b.end(),
                          [](double v) { return v == 0.0; }));
  EXPECT_TRUE(std::all_of(c.begin(), c.end(),
                          [](double v) { return v == 0.0; }));
  EXPECT_TRUE(std::all_of(a.begin(), a.end(),
                          [](double v) { return v == 1.0; }));
  dpool.release(std::move(a));
  // A recycled buffer may reuse a's storage but must never overlap the
  // still-live b.
  auto e = dpool.acquire(700);
  EXPECT_NE(e.data(), b.data());
  dpool.release(std::move(b));
  dpool.release(std::move(c));
  dpool.release(std::move(e));
  ipool.release(std::move(d));
  clear_buffer_pool();
}

TEST(BufferPool, StatsTrackInUseBytes) {
  clear_buffer_pool();
  reset_pool_stats();
  {
    auto t = Tensor::zeros({1000});
    EXPECT_GE(pool_stats().in_use_bytes, 1000 * sizeof(double));
    EXPECT_GE(pool_stats().peak_in_use_bytes, 1000 * sizeof(double));
  }
  // After destruction the buffer is parked, not in use.
  EXPECT_GE(pool_stats().pooled_bytes, 1000 * sizeof(double));
}

}  // namespace
}  // namespace amdgcnn::ag

// ---- Parallel trainer determinism -------------------------------------------

namespace amdgcnn::models {
namespace {

seal::SubgraphSample toy_sample(std::int64_t leaves, double attr_value,
                                std::int32_t label) {
  seal::SubgraphSample s;
  s.num_nodes = leaves + 1;
  s.label = label;
  const std::int64_t f = 4;
  std::vector<double> feat(static_cast<std::size_t>(s.num_nodes * f), 0.0);
  for (std::int64_t i = 0; i < s.num_nodes; ++i)
    feat[i * f + (i == 0 ? 0 : 1)] = 1.0;
  s.node_feat = ag::Tensor::from_data({s.num_nodes, f}, std::move(feat));
  std::vector<double> ea;
  for (std::int64_t l = 1; l <= leaves; ++l) {
    s.src.push_back(0);
    s.dst.push_back(l);
    s.src.push_back(l);
    s.dst.push_back(0);
    for (int rep = 0; rep < 2; ++rep) {
      ea.push_back(attr_value);
      ea.push_back(1.0 - attr_value);
    }
  }
  s.edge_attr = ag::Tensor::from_data(
      {static_cast<std::int64_t>(s.src.size()), 2}, std::move(ea));
  return s;
}

ModelConfig toy_config(GnnKind kind) {
  ModelConfig mc;
  mc.kind = kind;
  mc.node_feature_dim = 4;
  mc.edge_attr_dim = 2;
  mc.num_classes = 2;
  mc.hidden_dim = 8;
  mc.heads = 2;
  mc.num_layers = 2;
  mc.sort_k = 10;
  mc.dense_dim = 16;
  return mc;
}

std::vector<seal::SubgraphSample> toy_dataset() {
  std::vector<seal::SubgraphSample> train;
  for (int i = 0; i < 30; ++i)
    train.push_back(toy_sample(2 + i % 5, (i % 2) ? 0.9 : 0.1, i % 2));
  return train;
}

/// Epoch losses + final flat parameter vector for a fresh seeded model
/// trained with the given worker count.
std::pair<std::vector<double>, std::vector<double>> train_with_threads(
    GnnKind kind, std::int64_t num_threads, int epochs) {
  util::Rng init(42);
  DGCNN model(toy_config(kind), init);
  TrainConfig tc;
  tc.learning_rate = 5e-3;
  tc.num_threads = num_threads;
  Trainer trainer(model, tc);
  auto train = toy_dataset();
  std::vector<double> losses;
  for (int e = 0; e < epochs; ++e) losses.push_back(trainer.train_epoch(train));
  std::vector<double> flat;
  for (const auto& p : model.parameters())
    flat.insert(flat.end(), p.data().begin(), p.data().end());
  return {losses, flat};
}

TEST(ParallelTrainer, OneThreadAndManyThreadsAreBitIdentical) {
  for (auto kind : {GnnKind::kAMDGCNN, GnnKind::kVanillaDGCNN}) {
    auto [losses1, params1] = train_with_threads(kind, 1, 3);
    auto [losses4, params4] = train_with_threads(kind, 4, 3);
    ASSERT_EQ(losses1.size(), losses4.size());
    for (std::size_t e = 0; e < losses1.size(); ++e)
      EXPECT_EQ(losses1[e], losses4[e]) << "epoch " << e;
    ASSERT_EQ(params1.size(), params4.size());
    for (std::size_t i = 0; i < params1.size(); ++i)
      ASSERT_EQ(params1[i], params4[i]) << "parameter flat index " << i;
  }
}

TEST(ParallelTrainer, ParallelPathLearns) {
  util::Rng init(43);
  DGCNN model(toy_config(GnnKind::kVanillaDGCNN), init);
  TrainConfig tc;
  tc.learning_rate = 5e-3;
  tc.num_threads = 2;
  Trainer trainer(model, tc);
  auto train = toy_dataset();
  const double first = trainer.train_epoch(train);
  double last = first;
  for (int e = 0; e < 5; ++e) last = trainer.train_epoch(train);
  EXPECT_LT(last, first);
}

TEST(ParallelTrainer, RejectsNegativeThreadCount) {
  util::Rng init(44);
  DGCNN model(toy_config(GnnKind::kAMDGCNN), init);
  TrainConfig tc;
  tc.num_threads = -1;
  EXPECT_THROW(Trainer(model, tc), std::invalid_argument);
}

}  // namespace
}  // namespace amdgcnn::models
