// node2vec embedding tests and hyperparameter-optimization tests
// (search space, GP surrogate, expected improvement, BO / random search).
#include <gtest/gtest.h>

#include <cmath>

#include "embed/node2vec.h"
#include "hpo/bayes_opt.h"
#include "hpo/random_search.h"
#include "test_util.h"

namespace amdgcnn {
namespace {

// ---- Random walks ---------------------------------------------------------------

TEST(RandomWalk, StepsFollowEdges) {
  auto g = testing::triangle_with_tail();
  util::Rng rng(1);
  embed::WalkOptions opts;
  opts.walk_length = 12;
  for (int trial = 0; trial < 10; ++trial) {
    auto walk = embed::random_walk(g, 0, opts, rng);
    ASSERT_GE(walk.size(), 2u);
    EXPECT_EQ(walk[0], 0);
    for (std::size_t i = 1; i < walk.size(); ++i)
      EXPECT_TRUE(g.has_edge(walk[i - 1], walk[i]));
  }
}

TEST(RandomWalk, DeadEndTerminatesEarly) {
  graph::KnowledgeGraph g(1, 1);
  g.add_node(0);
  g.add_node(0);
  g.add_node(0);  // isolated
  g.add_edge(0, 1, 0);
  g.finalize();
  util::Rng rng(2);
  embed::WalkOptions opts;
  auto walk = embed::random_walk(g, 2, opts, rng);
  EXPECT_EQ(walk.size(), 1u);  // isolated start: no step possible
}

TEST(RandomWalk, LowPBiasesTowardReturning) {
  // On a path graph, returning (1/p weight) dominates when p is tiny.
  auto g = testing::path_graph(10);
  embed::WalkOptions sticky;
  sticky.walk_length = 40;
  sticky.p = 0.01;
  sticky.q = 1.0;
  embed::WalkOptions roaming;
  roaming.walk_length = 40;
  roaming.p = 100.0;
  roaming.q = 1.0;
  util::Rng rng(3);
  double sticky_span = 0.0, roaming_span = 0.0;
  for (int t = 0; t < 20; ++t) {
    auto w1 = embed::random_walk(g, 5, sticky, rng);
    auto w2 = embed::random_walk(g, 5, roaming, rng);
    auto span = [](const std::vector<graph::NodeId>& w) {
      auto [mn, mx] = std::minmax_element(w.begin(), w.end());
      return static_cast<double>(*mx - *mn);
    };
    sticky_span += span(w1);
    roaming_span += span(w2);
  }
  EXPECT_LT(sticky_span, roaming_span);
}

TEST(RandomWalk, GeneratesWalksForEveryNode) {
  auto g = testing::path_graph(4);
  util::Rng rng(4);
  embed::WalkOptions opts;
  opts.walks_per_node = 3;
  auto walks = embed::generate_walks(g, opts, rng);
  EXPECT_EQ(walks.size(), 12u);
}

TEST(RandomWalk, ValidatesParameters) {
  auto g = testing::path_graph(3);
  util::Rng rng(5);
  embed::WalkOptions bad;
  bad.p = 0.0;
  EXPECT_THROW(embed::random_walk(g, 0, bad, rng), std::invalid_argument);
}

// ---- node2vec -----------------------------------------------------------------------

TEST(Node2Vec, EmbedsCommunitiesCloserThanCrossPairs) {
  // Two triangles joined by one bridge.
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 6; ++i) g.add_node(0);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(0, 2, 0);
  g.add_edge(3, 4, 0);
  g.add_edge(4, 5, 0);
  g.add_edge(3, 5, 0);
  g.add_edge(2, 3, 0);
  g.finalize();

  embed::Node2VecOptions opts;
  opts.dimensions = 16;
  opts.walk.walks_per_node = 10;
  opts.walk.walk_length = 15;
  opts.epochs = 4;
  auto emb = embed::node2vec(g, opts);
  ASSERT_EQ(emb.size(), 6u * 16u);

  const double within =
      embed::embedding_cosine(emb, 16, 0, 1) +
      embed::embedding_cosine(emb, 16, 3, 5);
  const double across =
      embed::embedding_cosine(emb, 16, 0, 4) +
      embed::embedding_cosine(emb, 16, 1, 5);
  EXPECT_GT(within, across);
}

TEST(Node2Vec, ValidatesOptions) {
  auto g = testing::path_graph(3);
  embed::Node2VecOptions bad;
  bad.dimensions = 0;
  EXPECT_THROW(embed::node2vec(g, bad), std::invalid_argument);
}

TEST(Node2Vec, CosineOfZeroVectorIsZero) {
  std::vector<double> emb(8, 0.0);
  EXPECT_EQ(embed::embedding_cosine(emb, 4, 0, 1), 0.0);
}

// ---- Search space ----------------------------------------------------------------------

TEST(SearchSpaceTest, SampleStaysInsideTableOneBounds) {
  hpo::SearchSpace space;
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto hp = space.sample(rng);
    EXPECT_GE(hp.learning_rate, space.lr_min);
    EXPECT_LE(hp.learning_rate, space.lr_max);
    EXPECT_TRUE(hp.hidden_dim == 16 || hp.hidden_dim == 32 ||
                hp.hidden_dim == 64 || hp.hidden_dim == 128);
    EXPECT_GE(hp.sort_k, space.k_min);
    EXPECT_LE(hp.sort_k, space.k_max);
  }
}

TEST(SearchSpaceTest, EncodeDecodeRoundTripsLatticePoints) {
  hpo::SearchSpace space;
  util::Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const auto hp = space.sample(rng);
    const auto enc = space.encode(hp);
    const auto back = space.decode(enc);
    EXPECT_EQ(back.hidden_dim, hp.hidden_dim);
    EXPECT_EQ(back.sort_k, hp.sort_k);
    EXPECT_NEAR(std::log(back.learning_rate), std::log(hp.learning_rate),
                1e-9);
  }
  EXPECT_THROW(space.decode({1.5, 0.0, 0.0}), std::invalid_argument);
  hpo::HyperParams bad;
  bad.hidden_dim = 48;
  EXPECT_THROW(space.encode(bad), std::invalid_argument);
}

TEST(SearchSpaceTest, ToStringMentionsAllFields) {
  hpo::HyperParams hp;
  const auto s = hp.to_string();
  EXPECT_NE(s.find("lr="), std::string::npos);
  EXPECT_NE(s.find("hidden="), std::string::npos);
  EXPECT_NE(s.find("k="), std::string::npos);
}

// ---- Gaussian process ----------------------------------------------------------------------

TEST(GpTest, InterpolatesTrainingPointsWithLowVariance) {
  hpo::GaussianProcess gp(1);
  gp.fit({{0.1}, {0.5}, {0.9}}, {1.0, 2.0, 0.5});
  for (auto [x, y] : {std::pair{0.1, 1.0}, {0.5, 2.0}, {0.9, 0.5}}) {
    const auto p = gp.predict({x});
    EXPECT_NEAR(p.mean, y, 0.05);
    EXPECT_LT(p.variance, 0.01);
  }
  // Far from data: variance grows toward the prior.
  const auto far = gp.predict({5.0});
  EXPECT_GT(far.variance, 0.5);
}

TEST(GpTest, KernelIsOneAtZeroDistanceAndDecays) {
  hpo::GaussianProcess gp(2);
  EXPECT_NEAR(gp.kernel({0.3, 0.3}, {0.3, 0.3}), 1.0, 1e-12);
  EXPECT_GT(gp.kernel({0.0, 0.0}, {0.1, 0.0}),
            gp.kernel({0.0, 0.0}, {0.5, 0.0}));
}

TEST(GpTest, ValidatesUsage) {
  hpo::GaussianProcess gp(2);
  EXPECT_THROW(gp.predict({0.5, 0.5}), std::logic_error);
  EXPECT_THROW(gp.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(gp.fit({{0.1, 0.2}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(hpo::GaussianProcess(0), std::invalid_argument);
}

TEST(ExpectedImprovement, ZeroWhenCertainAndBelowIncumbent) {
  hpo::GaussianProcess::Prediction certain_bad{0.2, 0.0};
  EXPECT_EQ(hpo::expected_improvement(certain_bad, 0.9), 0.0);
  hpo::GaussianProcess::Prediction promising{0.95, 0.01};
  EXPECT_GT(hpo::expected_improvement(promising, 0.9), 0.0);
  // More uncertainty -> more EI at the same mean.
  hpo::GaussianProcess::Prediction uncertain{0.85, 0.2};
  hpo::GaussianProcess::Prediction confident{0.85, 0.001};
  EXPECT_GT(hpo::expected_improvement(uncertain, 0.9),
            hpo::expected_improvement(confident, 0.9));
}

// ---- Optimizers over the space ---------------------------------------------------------------

/// Smooth test objective over the encoded cube with a unique optimum at
/// lr ~ 1e-3, hidden = 64, k ~ 60.
double toy_objective(const hpo::SearchSpace& space,
                     const hpo::HyperParams& hp) {
  const auto x = space.encode(hp);
  const double dx = x[0] - 0.75, dy = x[1] - 0.625, dz = x[2] - 0.36;
  return 1.0 - (dx * dx + dy * dy + dz * dz);
}

TEST(BayesOptTest, FindsNearOptimalConfiguration) {
  hpo::SearchSpace space;
  auto result = hpo::bayes_opt(
      space, [&](const hpo::HyperParams& hp) { return toy_objective(space, hp); });
  EXPECT_EQ(result.history.size(), 10u);  // 3 warm-up + 7 BO
  EXPECT_GT(result.best_value, 0.9);
  // Best of history must equal reported best.
  double best = -1e300;
  for (const auto& t : result.history) best = std::max(best, t.value);
  EXPECT_DOUBLE_EQ(best, result.best_value);
}

TEST(BayesOptTest, BeatsRandomSearchOnAverageBudget) {
  hpo::SearchSpace space;
  double bo_total = 0.0, rs_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    hpo::BayesOptOptions bo;
    bo.seed = seed;
    bo.num_initial = 2;
    bo.num_iterations = 6;
    bo_total += hpo::bayes_opt(space,
                               [&](const hpo::HyperParams& hp) {
                                 return toy_objective(space, hp);
                               },
                               bo)
                    .best_value;
    hpo::RandomSearchOptions rs;
    rs.seed = seed;
    rs.num_trials = 8;
    rs_total += hpo::random_search(space,
                                   [&](const hpo::HyperParams& hp) {
                                     return toy_objective(space, hp);
                                   },
                                   rs)
                    .best_value;
  }
  EXPECT_GE(bo_total, rs_total - 0.05);  // BO at least matches random search
}

TEST(RandomSearchTest, HonoursTrialBudget) {
  hpo::SearchSpace space;
  hpo::RandomSearchOptions opts;
  opts.num_trials = 4;
  auto result = hpo::random_search(
      space,
      [&](const hpo::HyperParams& hp) { return toy_objective(space, hp); },
      opts);
  EXPECT_EQ(result.history.size(), 4u);
  opts.num_trials = 0;
  EXPECT_THROW(hpo::random_search(space, [](const hpo::HyperParams&) {
                 return 0.0;
               }, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace amdgcnn
