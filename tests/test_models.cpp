// DGCNN / AM-DGCNN model and Trainer tests: shapes, gradients, learning on
// planted-signal toys, and the paper's core contrast (edge-aware beats
// edge-blind when the class lives in edge attributes).
#include <gtest/gtest.h>

#include <cmath>

#include "models/dgcnn.h"
#include "models/trainer.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace amdgcnn::models {
namespace {

/// Minimal synthetic sample: a star graph with `n` leaves around node 0,
/// label decided either by edge attributes (polarity of leaf edges) or by
/// topology (leaf count), depending on the toy in use.
seal::SubgraphSample star_sample(std::int64_t leaves, double attr_value,
                                 std::int32_t label) {
  seal::SubgraphSample s;
  s.num_nodes = leaves + 1;
  s.label = label;
  const std::int64_t f = 4;
  std::vector<double> feat(static_cast<std::size_t>(s.num_nodes * f), 0.0);
  for (std::int64_t i = 0; i < s.num_nodes; ++i)
    feat[i * f + (i == 0 ? 0 : 1)] = 1.0;  // crude "target vs leaf" marker
  s.node_feat = ag::Tensor::from_data({s.num_nodes, f}, std::move(feat));
  std::vector<double> ea;
  for (std::int64_t l = 1; l <= leaves; ++l) {
    s.src.push_back(0);
    s.dst.push_back(l);
    s.src.push_back(l);
    s.dst.push_back(0);
    for (int rep = 0; rep < 2; ++rep) {
      ea.push_back(attr_value);
      ea.push_back(1.0 - attr_value);
    }
  }
  s.edge_attr = ag::Tensor::from_data(
      {static_cast<std::int64_t>(s.src.size()), 2}, std::move(ea));
  return s;
}

ModelConfig small_config(GnnKind kind) {
  ModelConfig mc;
  mc.kind = kind;
  mc.node_feature_dim = 4;
  mc.edge_attr_dim = 2;
  mc.num_classes = 2;
  mc.hidden_dim = 8;
  mc.heads = 2;
  mc.num_layers = 2;
  mc.sort_k = 10;
  mc.dense_dim = 16;
  return mc;
}

TEST(DGCNNModel, ForwardShapeIsOneByClasses) {
  util::Rng rng(1);
  for (auto kind : {GnnKind::kVanillaDGCNN, GnnKind::kAMDGCNN}) {
    auto model = make_link_gnn(small_config(kind), rng);
    auto s = star_sample(5, 1.0, 0);
    util::Rng fwd(2);
    auto logits = model->forward(s, fwd);
    EXPECT_EQ(logits.shape(), (ag::Shape{1, 2}));
  }
}

TEST(DGCNNModel, SortKClampedToConvHeadMinimum) {
  util::Rng rng(3);
  auto mc = small_config(GnnKind::kAMDGCNN);
  mc.sort_k = 5;  // paper Table I lower bound; conv head needs >= 10
  DGCNN model(mc, rng);
  EXPECT_EQ(model.config().sort_k, 10);
}

TEST(DGCNNModel, TotalChannelsMatchesArchitecture) {
  util::Rng rng(4);
  auto mc = small_config(GnnKind::kVanillaDGCNN);
  DGCNN model(mc, rng);
  EXPECT_EQ(model.total_channels(), mc.num_layers * mc.hidden_dim + 1);
}

TEST(DGCNNModel, RejectsInvalidConfigs) {
  util::Rng rng(5);
  auto mc = small_config(GnnKind::kAMDGCNN);
  mc.node_feature_dim = 0;
  EXPECT_THROW(DGCNN(mc, rng), std::invalid_argument);
  mc = small_config(GnnKind::kAMDGCNN);
  mc.hidden_dim = 6;  // not divisible by heads=2? 6/2=3 fine; use 7
  mc.hidden_dim = 7;
  EXPECT_THROW(DGCNN(mc, rng), std::invalid_argument);
  mc = small_config(GnnKind::kVanillaDGCNN);
  mc.num_classes = 1;
  EXPECT_THROW(DGCNN(mc, rng), std::invalid_argument);
}

TEST(DGCNNModel, HandlesTinySubgraphs) {
  // Two isolated targets: no real edges at all.
  util::Rng rng(6);
  auto model = make_link_gnn(small_config(GnnKind::kAMDGCNN), rng);
  seal::SubgraphSample s;
  s.num_nodes = 2;
  s.label = 0;
  s.node_feat = ag::Tensor::ones({2, 4});
  s.edge_attr = ag::Tensor::zeros({0, 2});
  util::Rng fwd(7);
  auto logits = model->forward(s, fwd);
  EXPECT_EQ(logits.shape(), (ag::Shape{1, 2}));
  EXPECT_TRUE(std::isfinite(logits.item(0)));
}

TEST(DGCNNModel, EndToEndParameterGradientsMatchNumerical) {
  util::Rng rng(8);
  auto mc = small_config(GnnKind::kAMDGCNN);
  mc.dropout = 0.0;  // deterministic loss for finite differences
  DGCNN model(mc, rng);
  auto s = star_sample(4, 0.7, 1);
  auto loss_fn = [&] {
    util::Rng fwd(99);
    auto logits = model.forward(s, fwd);
    return ag::ops::cross_entropy(logits, {1});
  };
  // Full check over every parameter tensor is expensive; spot-check the
  // first GAT layer weight and the classifier head.
  auto params = model.parameters();
  amdgcnn::testing::expect_gradient_matches(params.front(), loss_fn, 1e-5,
                                            1e-5);
  amdgcnn::testing::expect_gradient_matches(params.back(), loss_fn, 1e-5,
                                            1e-5);
}

TEST(Trainer, LossDecreasesOnLearnableToy) {
  // Topology toy: class = many-vs-few leaves; learnable by both models.
  std::vector<seal::SubgraphSample> train;
  util::Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    const bool big = i % 2 == 0;
    train.push_back(star_sample(big ? 8 : 2, 0.5, big ? 1 : 0));
  }
  auto mc = small_config(GnnKind::kVanillaDGCNN);
  util::Rng init(10);
  DGCNN model(mc, init);
  TrainConfig tc;
  tc.learning_rate = 5e-3;
  Trainer trainer(model, tc);
  const double first = trainer.train_epoch(train);
  double last = first;
  for (int e = 0; e < 5; ++e) last = trainer.train_epoch(train);
  EXPECT_LT(last, first);
}

TEST(Trainer, PredictProbaRowsSumToOne) {
  std::vector<seal::SubgraphSample> samples = {star_sample(3, 1.0, 0),
                                               star_sample(5, 0.0, 1)};
  util::Rng init(11);
  DGCNN model(small_config(GnnKind::kAMDGCNN), init);
  TrainConfig tc;
  Trainer trainer(model, tc);
  auto probs = trainer.predict_proba(samples);
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-9);
  EXPECT_NEAR(probs[2] + probs[3], 1.0, 1e-9);
}

TEST(Trainer, EvaluateReportsCoherentMetrics) {
  std::vector<seal::SubgraphSample> samples;
  for (int i = 0; i < 10; ++i)
    samples.push_back(star_sample(3 + i % 4, 0.5, i % 2));
  util::Rng init(12);
  DGCNN model(small_config(GnnKind::kVanillaDGCNN), init);
  TrainConfig tc;
  Trainer trainer(model, tc);
  auto ev = trainer.evaluate(samples);
  EXPECT_GE(ev.metrics.macro_auc, 0.0);
  EXPECT_LE(ev.metrics.macro_auc, 1.0);
  EXPECT_GT(ev.mean_loss, 0.0);
  EXPECT_THROW(trainer.evaluate({}), std::invalid_argument);
}

TEST(Trainer, FitRecordsRequestedEpochs) {
  std::vector<seal::SubgraphSample> train = {star_sample(2, 1, 0),
                                             star_sample(6, 0, 1)};
  util::Rng init(13);
  DGCNN model(small_config(GnnKind::kAMDGCNN), init);
  TrainConfig tc;
  tc.epochs = 6;
  Trainer trainer(model, tc);
  auto records = trainer.fit(train, train, /*eval_every=*/2);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].epoch, 2);
  EXPECT_EQ(records[2].epoch, 6);
  for (const auto& r : records) EXPECT_GE(r.seconds, 0.0);
}

TEST(Trainer, ValidatesConfig) {
  util::Rng init(14);
  DGCNN model(small_config(GnnKind::kAMDGCNN), init);
  TrainConfig bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(Trainer(model, bad), std::invalid_argument);
  bad = TrainConfig{};
  bad.batch_size = 0;
  EXPECT_THROW(Trainer(model, bad), std::invalid_argument);
}

TEST(PaperContrast, EdgeAwareModelSeparatesEdgeOnlySignal) {
  // The WordNet-18 mechanism in miniature: identical topology everywhere,
  // class carried ONLY by edge attributes.  AM-DGCNN must reach high train
  // AUC; vanilla DGCNN must hover at chance.
  std::vector<seal::SubgraphSample> train;
  util::Rng noise(15);
  for (int i = 0; i < 60; ++i) {
    const std::int32_t label = i % 2;
    const double attr = label == 1 ? 0.9 : 0.1;
    train.push_back(star_sample(4, attr, label));
  }
  auto run = [&](GnnKind kind) {
    auto mc = small_config(kind);
    mc.dropout = 0.2;
    util::Rng init(16);
    DGCNN model(mc, init);
    TrainConfig tc;
    tc.learning_rate = 5e-3;
    tc.epochs = 15;
    Trainer trainer(model, tc);
    trainer.fit(train, {}, 0);
    return trainer.evaluate(train).metrics.macro_auc;
  };
  const double am = run(GnnKind::kAMDGCNN);
  const double vanilla = run(GnnKind::kVanillaDGCNN);
  EXPECT_GT(am, 0.95);
  EXPECT_NEAR(vanilla, 0.5, 0.15);
  EXPECT_GT(am, vanilla + 0.3);
}

TEST(GnnKindName, Names) {
  EXPECT_STREQ(gnn_kind_name(GnnKind::kAMDGCNN), "AM-DGCNN");
  EXPECT_STREQ(gnn_kind_name(GnnKind::kVanillaDGCNN), "Vanilla-DGCNN");
}

}  // namespace
}  // namespace amdgcnn::models
